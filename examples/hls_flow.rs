//! A miniature HLS flow built from the future-work pieces of §6: parse a
//! dataflow graph from its text format, run force-directed scheduling at
//! several latency budgets to see the implied allocations, then explore
//! the allocation space and print the latency/area Pareto frontier under
//! distributed telescopic control.
//!
//! Run with `cargo run --release --example hls_flow`.

use tauhls::core::explore::{explore_allocations, ExploreParams};
use tauhls::dfg::{parse_dfg, ResourceClass};
use tauhls::sched::fds_schedule;
use tauhls::sim::BatchRunner;

const SOURCE: &str = "\
# r = (a*x + y) * (b*z * a) + correction chain
dfg example
input a
input x
input y
input b
input z
op m1 = mul a x
op s1 = add m1 y
op m2 = mul b z
op m3 = mul m2 a
op m4 = mul s1 m3
op s2 = add m4 17
op c1 = lt s2 y
output r s2
output flag c1
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dfg = parse_dfg(SOURCE)?;
    println!(
        "parsed '{}': {} ops ({} mult-class)",
        dfg.name(),
        dfg.num_ops(),
        dfg.ops_of_class(ResourceClass::Multiplier).len()
    );

    // 1. Time-constrained scheduling: what does each latency budget cost?
    println!("\nforce-directed scheduling:");
    println!("{:>8} {:>6} {:>6} {:>6}", "latency", "muls", "adds", "subs");
    for budget in 5..=8 {
        let s = fds_schedule(&dfg, budget);
        assert!(s.verify(&dfg));
        let a = s.implied_allocation(&dfg);
        println!(
            "{:>8} {:>6} {:>6} {:>6}",
            budget,
            a.get(&ResourceClass::Multiplier).copied().unwrap_or(0),
            a.get(&ResourceClass::Adder).copied().unwrap_or(0),
            a.get(&ResourceClass::Subtractor).copied().unwrap_or(0),
        );
    }

    // 2. Allocation exploration with measured telescopic latency.
    println!("\nallocation space (P = 0.7, distributed control):");
    println!(
        "{:>5} {:>5} {:>5} {:>10} {:>10} {:>7}",
        "muls", "adds", "subs", "cycles", "area GE", "pareto"
    );
    let points = explore_allocations(
        &dfg,
        &ExploreParams {
            max_muls: 4,
            max_adds: 2,
            max_subs: 1,
            trials: 600,
            ..Default::default()
        },
        &BatchRunner::available(),
    );
    for p in &points {
        println!(
            "{:>5} {:>5} {:>5} {:>10.2} {:>10.0} {:>7}",
            p.muls,
            p.adds,
            p.subs,
            p.latency_cycles,
            p.area_ge,
            if p.pareto { "*" } else { "" }
        );
    }
    println!("\n(*) = on the latency/area Pareto frontier.");
    Ok(())
}
