//! Beyond multipliers: the paper's §6 notes the method "can be applied to
//! other types of VCAUs without special modification". This example
//! telescopes the *adder* class as well (carry-chain completion on a
//! ripple-carry adder) and shows the same Algorithm-1 controllers handle
//! a fully variable-latency datapath.
//!
//! Run with `cargo run --example custom_vcau`.

use rand::SeedableRng;
use tauhls::datapath::{measure_p, OperandDistribution, RippleCarryAdder, Tau};
use tauhls::dfg::benchmarks::ewf;
use tauhls::dfg::ResourceClass;
use tauhls::fsm::DistributedControlUnit;
use tauhls::sim::{simulate_distributed, CompletionModel, TauLibrary};
use tauhls::{Allocation, Synthesis};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const WIDTH: u32 = 16;

    // A ripple-carry adder telescoped at 8 of 18 levels: most operand
    // pairs have short carry chains, so P is high even on uniform data.
    let tau_add = Tau::new(RippleCarryAdder::new(WIDTH), 8);
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let p_add = measure_p(&tau_add, OperandDistribution::Uniform, 20_000, &mut rng);
    println!(
        "telescopic adder: SD {} / LD {} levels, measured P = {p_add:.3}",
        tau_add.short_levels(),
        tau_add.long_levels()
    );

    // Telescope BOTH classes on the elliptic-wave-filter benchmark.
    let alloc = Allocation::new()
        .with_units(ResourceClass::Multiplier, 2)
        .with_units(ResourceClass::Adder, 3)
        .telescopic(ResourceClass::Multiplier)
        .telescopic(ResourceClass::Adder);
    let design = Synthesis::new(ewf()).allocation(alloc).run()?;
    let cu = DistributedControlUnit::generate(design.bound());
    println!(
        "\nEWF with telescopic × and +: {} controllers, {} total states",
        cu.controllers().len(),
        cu.total_states()
    );
    for (u, fsm) in cu.controllers() {
        let name = design.bound().allocation().units()[u.0].display_name();
        println!(
            "  {name}: {} ops, {} states (S' extension states present: {})",
            design.bound().sequence(*u).len(),
            fsm.num_states(),
            fsm.inputs().iter().any(|i| i == &format!("C_{name}"))
        );
    }

    // Operand-driven run with both unit kinds variable-latency.
    let lib = TauLibrary {
        mul: Some(Tau::new(tauhls::datapath::ArrayMultiplier::new(WIDTH), 20)),
        add: Some(tau_add),
        sub: None,
        width: WIDTH,
    };
    let model = CompletionModel::OperandDriven(lib);
    let inputs: Vec<i64> = (0..design.bound().dfg().num_inputs() as i64)
        .map(|i| (i * 37 + 11) % 200)
        .collect();
    let r = simulate_distributed(design.bound(), &cu, &model, Some(&inputs), &mut rng)
        .expect("fault-free simulation");
    r.verify(design.bound()).expect("legal execution");
    println!(
        "\noperand-driven run: {} cycles ({:.0} ns); every dependence honoured",
        r.cycles,
        r.latency_ns(design.timing().clock_ns())
    );

    // Bernoulli extremes for reference.
    let best = simulate_distributed(
        design.bound(),
        &cu,
        &CompletionModel::AlwaysShort,
        None,
        &mut rng,
    )
    .expect("fault-free simulation");
    let worst = simulate_distributed(
        design.bound(),
        &cu,
        &CompletionModel::AlwaysLong,
        None,
        &mut rng,
    )
    .expect("fault-free simulation");
    println!("best {} / worst {} cycles", best.cycles, worst.cycles);
    Ok(())
}
