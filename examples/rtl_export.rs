//! RTL export: synthesize the distributed control unit for the paper's
//! Fig 3 example and emit it as Verilog-2001 — per-controller modules plus
//! a top module with the completion-signal wiring of Fig 7.
//!
//! Run with `cargo run --example rtl_export` (writes `control_unit.v`).

use tauhls::dfg::{benchmarks::fig3_dfg, OpId};
use tauhls::fsm::{control_unit_to_verilog, synthesize, DistributedControlUnit, Encoding};
use tauhls::logic::AreaModel;
use tauhls::sched::BoundDfg;
use tauhls::Allocation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Fig 3(c) binding.
    let bound = BoundDfg::bind_explicit(
        &fig3_dfg(),
        &Allocation::paper(2, 2, 0),
        vec![
            vec![OpId(0), OpId(1)],
            vec![OpId(6), OpId(4), OpId(8)],
            vec![OpId(3), OpId(2)],
            vec![OpId(7), OpId(5)],
        ],
    )?;
    let cu = DistributedControlUnit::generate(&bound);

    let model = AreaModel::default();
    println!("controller areas per encoding (GE total):");
    println!(
        "{:<10} {:>8} {:>8} {:>8}",
        "unit", "binary", "gray", "onehot"
    );
    for (u, fsm) in cu.controllers() {
        let name = bound.allocation().units()[u.0].display_name();
        let cost = |e| synthesize(fsm, e, &model).area().total();
        println!(
            "{:<10} {:>8.0} {:>8.0} {:>8.0}",
            name,
            cost(Encoding::Binary),
            cost(Encoding::Gray),
            cost(Encoding::OneHot)
        );
    }

    let verilog = control_unit_to_verilog(&cu, Encoding::Binary, &model);
    std::fs::write("control_unit.v", &verilog)?;
    println!(
        "\nwrote control_unit.v: {} modules, {} lines",
        verilog.matches("endmodule").count(),
        verilog.lines().count()
    );
    println!("top-level interface:");
    for line in verilog
        .split("module control_unit")
        .nth(1)
        .unwrap_or("")
        .lines()
        .take_while(|l| !l.contains(");"))
    {
        println!("  {line}");
    }
    Ok(())
}
