//! Quickstart: build a small dataflow graph, telescope its multipliers,
//! synthesize a distributed control unit, and compare it against the
//! synchronized centralized baseline.
//!
//! Run with `cargo run --example quickstart`.

use rand::SeedableRng;
use tauhls::dfg::DfgBuilder;
use tauhls::fsm::Encoding;
use tauhls::logic::AreaModel;
use tauhls::sim::latency_pair;
use tauhls::{Allocation, Synthesis};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the computation: two unbalanced chains joining at the
    //    end — r = ((a*b + e) * f) + (c*d * g). Under synchronized control
    //    the short chain is dragged along by the long one; distributed
    //    control lets each multiplier run free.
    let mut b = DfgBuilder::new("quickstart");
    let a = b.input("a");
    let bb = b.input("b");
    let c = b.input("c");
    let d = b.input("d");
    let e = b.input("e");
    let f = b.input("f");
    let g = b.input("g");
    let m1 = b.mul(a.into(), bb.into()); // chain 1: mul -> add -> mul
    let s1 = b.add(m1.into(), e.into());
    let m2 = b.mul(s1.into(), f.into());
    let m3 = b.mul(c.into(), d.into()); // chain 2: mul -> mul
    let m4 = b.mul(m3.into(), g.into());
    let r = b.add(m2.into(), m4.into());
    b.output("r", r);
    let dfg = b.build()?;
    println!("DFG '{}' with {} operations", dfg.name(), dfg.num_ops());
    println!(
        "reference: r(1,2,3,4,5,6,7) = {}",
        dfg.evaluate(&[1, 2, 3, 4, 5, 6, 7])["r"]
    );

    // 2. Allocate two telescopic multipliers and one adder, synthesize.
    let design = Synthesis::new(dfg)
        .allocation(Allocation::paper(2, 1, 0))
        .run()?;

    println!("\nDistributed control unit:");
    let units = design.bound().allocation().units();
    for (u, fsm) in design.distributed().controllers() {
        let syn = design.synthesize_controller(*u, Encoding::Binary, &AreaModel::default());
        println!(
            "  {}: runs {:?} | {} states, {} FFs, area {:.0} GE",
            units[u.0].display_name(),
            design.bound().sequence(*u),
            fsm.num_states(),
            syn.flip_flops(),
            syn.area().total(),
        );
    }

    // 3. Compare latency against the synchronized TAUBM controller.
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let (sync, dist) = latency_pair(design.bound(), &[0.9, 0.7, 0.5], 2000, &mut rng)
        .expect("fault-free simulation");
    let clk = design.timing().clock_ns();
    println!("\nLatency at a {clk} ns clock:");
    println!("  synchronized TAUBM : {}", sync.to_ns_string(clk));
    println!("  distributed (ours) : {}", dist.to_ns_string(clk));
    for (p, (s, d)) in sync
        .p_values
        .iter()
        .zip(sync.average_cycles.iter().zip(&dist.average_cycles))
    {
        println!("  P = {p}: {:.1}% faster", (s - d) / s * 100.0);
    }
    Ok(())
}
