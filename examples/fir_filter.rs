//! FIR filter case study: drive the distributed control unit with
//! *operand-driven* completion — the telescopic multipliers decide short
//! vs long from the actual sample magnitudes flowing through a 5-tap FIR
//! filter, exactly the effect Benini et al. built TAUs for.
//!
//! Run with `cargo run --example fir_filter`.

use rand::{Rng, SeedableRng};
use tauhls::datapath::{measure_p, ArrayMultiplier, OperandDistribution, Tau};
use tauhls::dfg::benchmarks::fir5;
use tauhls::fsm::DistributedControlUnit;
use tauhls::sim::{simulate_distributed, CompletionModel, TauLibrary};
use tauhls::{Allocation, Synthesis};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const WIDTH: u32 = 16;
    const SHORT_LEVELS: u32 = 16;

    // Characterize the telescoped multiplier on different signal profiles.
    let tau = Tau::new(ArrayMultiplier::new(WIDTH), SHORT_LEVELS);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    println!(
        "16-bit telescopic multiplier, SD = {SHORT_LEVELS} of {} levels",
        tau.long_levels()
    );
    for (name, dist) in [
        ("uniform full-scale", OperandDistribution::Uniform),
        (
            "8-bit audio-like",
            OperandDistribution::SmallMagnitude { bits: 8 },
        ),
        ("log-uniform", OperandDistribution::LogUniform),
    ] {
        let p = measure_p(&tau, dist, 20_000, &mut rng);
        println!("  measured P on {name:<20}: {p:.3}");
    }

    // Synthesize the FIR5 design under the paper's allocation.
    let design = Synthesis::new(fir5())
        .allocation(Allocation::paper(2, 1, 0))
        .run()?;
    let cu = DistributedControlUnit::generate(design.bound());
    let model = CompletionModel::OperandDriven(TauLibrary::multiplier_only(WIDTH, SHORT_LEVELS));

    // Stream blocks of samples through the filter and measure latency.
    let clk = design.timing().clock_ns();
    let coeffs: Vec<i64> = vec![3, 9, 21, 9, 3]; // small fixed-point taps
    for (profile, max_mag) in [("quiet passage", 120i64), ("loud passage", 28_000i64)] {
        // Unsigned sample magnitudes: a negative value sign-extends to a
        // full-width two's-complement pattern, which the array multiplier
        // delay model rightly treats as a long operand.
        let mut total_cycles = 0usize;
        let mut total_busy = 0usize;
        let blocks = 200;
        for _ in 0..blocks {
            let mut inputs: Vec<i64> = (0..5).map(|_| rng.random_range(0..=max_mag)).collect();
            inputs.extend(coeffs.iter());
            let r = simulate_distributed(design.bound(), &cu, &model, Some(&inputs), &mut rng)
                .expect("fault-free simulation");
            r.verify(design.bound()).expect("legal execution");
            total_cycles += r.cycles;
            total_busy += r.unit_busy_cycles.iter().sum::<usize>();
        }
        let avg = total_cycles as f64 / blocks as f64;
        println!(
            "\n{profile}: mean latency {:.2} cycles = {:.1} ns per output sample",
            avg,
            avg * clk
        );
        println!(
            "  mean unit busy-cycles per sample: {:.2}",
            total_busy as f64 / blocks as f64
        );
    }
    println!("\nSmall samples keep every multiplication short: the filter runs at");
    println!("the best-case schedule; full-scale samples degrade toward worst case.");
    Ok(())
}
