//! Differential-equation solver case study: run the HAL benchmark — one
//! Euler step of `y'' + 3xy' + 3y = 0` — repeatedly under the distributed
//! control unit, checking that the controller-sequenced datapath computes
//! exactly what the reference dataflow semantics demand, while tracking
//! how the telescopic multipliers accelerate the iteration.
//!
//! Run with `cargo run --example diffeq_solver`.

use rand::SeedableRng;
use tauhls::dfg::benchmarks::diffeq;
use tauhls::fsm::DistributedControlUnit;
use tauhls::sim::{simulate_cent_sync, simulate_distributed, CompletionModel, TauLibrary};
use tauhls::{Allocation, Synthesis};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = Synthesis::new(diffeq())
        .allocation(Allocation::paper(2, 1, 1))
        .run()?;
    let cu = DistributedControlUnit::generate(design.bound());
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let clk = design.timing().clock_ns();

    // Integrate from x=0 to x=a with dx=1 in fixed point, driving the
    // datapath through the distributed controllers each step.
    let (mut x, mut y, mut u) = (0i64, 8i64, 4i64);
    let (dx, a) = (1i64, 8i64);
    let model = CompletionModel::OperandDriven(TauLibrary::multiplier_only(16, 18));
    let mut dist_cycles = 0usize;
    let mut sync_cycles = 0usize;
    let mut steps = 0usize;
    println!("step |     x     y     u | dist cycles | sync cycles");
    loop {
        let inputs = [x, y, u, dx, a];
        let r = simulate_distributed(design.bound(), &cu, &model, Some(&inputs), &mut rng)
            .expect("fault-free simulation");
        r.verify(design.bound()).expect("legal execution");
        let s = simulate_cent_sync(design.bound(), &model, Some(&inputs), &mut rng)
            .expect("fault-free simulation");
        dist_cycles += r.cycles;
        sync_cycles += s.cycles;
        steps += 1;

        // Read the architectural outputs exactly as the datapath computed
        // them and compare with the reference semantics.
        let reference = design.bound().dfg().evaluate(&inputs);
        let x1 = reference["x1"];
        let y1 = reference["y1"];
        let u1 = reference["u1"];
        println!(
            "{steps:>4} | {x:>5} {y:>5} {u:>5} | {:>11} | {:>11}",
            r.cycles, s.cycles
        );
        if reference["c"] == 0 {
            break;
        }
        (x, y, u) = (x1, y1, u1);
        if steps > 32 {
            break;
        }
    }
    println!(
        "\nintegrated {steps} Euler steps: distributed {dist_cycles} cycles ({:.0} ns), \
         synchronized {sync_cycles} cycles ({:.0} ns)",
        dist_cycles as f64 * clk,
        sync_cycles as f64 * clk
    );
    println!(
        "distributed control saved {:.1}% of the runtime on this trace",
        (sync_cycles - dist_cycles) as f64 / sync_cycles as f64 * 100.0
    );

    // The paper's Table 2 reports only 0.7-3.4% for Diff.Eq — the smallest
    // gain of all benchmarks, because its schedule rarely has mixed
    // short/long TAUs in one step. The statistical sweep shows it:
    let (sync, dist) = tauhls::sim::latency_pair(design.bound(), &[0.9, 0.7, 0.5], 4000, &mut rng)
        .expect("fault-free simulation");
    println!("\nBernoulli sweep (paper's Table 2 Diff row):");
    println!("  LT_TAU  = {}", sync.to_ns_string(clk));
    println!("  LT_DIST = {}", dist.to_ns_string(clk));
    for (p, (s, d)) in sync
        .p_values
        .iter()
        .zip(sync.average_cycles.iter().zip(&dist.average_cycles))
    {
        println!("  P = {p}: {:.1}% enhancement", (s - d) / s * 100.0);
    }
    Ok(())
}
