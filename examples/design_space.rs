//! Design-space exploration: sweep the number of telescopic multipliers
//! and the short-probability `P` for the AR-lattice benchmark, reporting
//! the latency/area trade-off of distributed vs synchronized control —
//! the engineering decision the paper's method informs.
//!
//! Run with `cargo run --release --example design_space`.

use rand::SeedableRng;
use tauhls::dfg::benchmarks::ar_lattice4;
use tauhls::fsm::Encoding;
use tauhls::logic::AreaModel;
use tauhls::sim::latency_pair;
use tauhls::{Allocation, Synthesis};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let model = AreaModel::default();
    println!("AR-lattice (16 ×, 8 +) design space — distributed control");
    println!(
        "{:<8} {:<10} {:<22} {:<22} {:<12} ctrl area (GE)",
        "TAUs", "adders", "LT_DIST(ns) @P=.9/.5", "LT_SYNC(ns) @P=.9/.5", "gain@.5"
    );
    for muls in 1..=4usize {
        for adds in [1usize, 2] {
            let design = Synthesis::new(ar_lattice4())
                .allocation(Allocation::paper(muls, adds, 0))
                .run()?;
            let (sync, dist) = latency_pair(design.bound(), &[0.9, 0.5], 1200, &mut rng)
                .expect("fault-free simulation");
            let clk = design.timing().clock_ns();
            let area: f64 = design
                .distributed()
                .controllers()
                .iter()
                .map(|(u, _)| {
                    design
                        .synthesize_controller(*u, Encoding::Binary, &model)
                        .area()
                        .total()
                })
                .sum();
            let gain =
                (sync.average_cycles[1] - dist.average_cycles[1]) / sync.average_cycles[1] * 100.0;
            println!(
                "{:<8} {:<10} {:>8.1} / {:<10.1} {:>8.1} / {:<10.1} {:>6.1}%     {:>8.0}",
                muls,
                adds,
                dist.average_cycles[0] * clk,
                dist.average_cycles[1] * clk,
                sync.average_cycles[0] * clk,
                sync.average_cycles[1] * clk,
                gain,
                area
            );
        }
    }
    println!("\nMore TAUs shorten the schedule but widen the synchronized");
    println!("controller's P^n penalty — the distributed gain grows with both");
    println!("the TAU count and the long-delay probability.");
    Ok(())
}
