//! Generators for random completion-signal fault plans.
//!
//! The resilience sweeps and property tests need arbitrary-but-replayable
//! [`FaultPlan`]s: every plan is a pure function of the [`Gen`] stream, so
//! a failing sweep trial reproduces from its printed seed exactly like any
//! other `tauhls-check` property case.

use crate::Gen;
use tauhls_dfg::OpId;
use tauhls_sim::{ElasticSpec, Fault, FaultKind, FaultPlan};

/// Draws one random fault touching one of `num_ops` operations or one of
/// `num_controllers` controllers, scheduled within `1..=max_cycle`.
///
/// All six *synchronous* fault kinds are equally likely; delayed latches
/// defer by 1-4 cycles and state upsets flip one of the low 4
/// state-register bits. The clock-domain-only `ClockSkew` kind is **not**
/// in this distribution — the stream positions of every existing consumer
/// (and the resilience sweeps' rejection sampling) depend on the 6-way
/// draw staying put; use [`arbitrary_skew_fault`] to add skew excursions.
///
/// # Panics
///
/// Panics if `num_ops == 0`, `num_controllers == 0`, or `max_cycle == 0`.
pub fn arbitrary_fault(
    g: &mut Gen,
    num_ops: usize,
    num_controllers: usize,
    max_cycle: usize,
) -> Fault {
    assert!(num_ops > 0 && num_controllers > 0 && max_cycle > 0);
    let at_cycle = g.usize(1..=max_cycle);
    let op = OpId(g.usize(0..num_ops));
    let kind = match g.usize(0..6) {
        0 => FaultKind::StuckAtShort { op },
        1 => FaultKind::StuckAtLong { op },
        2 => FaultKind::DropPulse { op },
        3 => FaultKind::SpuriousPulse { op },
        4 => FaultKind::DelayLatch {
            op,
            delay: g.usize(1..=4),
        },
        _ => FaultKind::FlipState {
            controller: g.usize(0..num_controllers),
            bit: g.u8(0..4) as u32,
        },
    };
    Fault { at_cycle, kind }
}

/// Draws a [`FaultPlan`] holding `1..=max_faults` faults from
/// [`arbitrary_fault`]'s distribution.
///
/// # Panics
///
/// Panics on the same empty domains as [`arbitrary_fault`], or if
/// `max_faults == 0`.
pub fn arbitrary_plan(
    g: &mut Gen,
    num_ops: usize,
    num_controllers: usize,
    max_cycle: usize,
    max_faults: usize,
) -> FaultPlan {
    assert!(max_faults > 0);
    let count = g.usize(1..=max_faults);
    let mut plan = FaultPlan::empty();
    for _ in 0..count {
        plan.push(arbitrary_fault(g, num_ops, num_controllers, max_cycle));
    }
    plan
}

/// Draws one clock-skew excursion: a [`FaultKind::ClockSkew`] stalling
/// one of `num_controllers` local clocks for `1..=max_stall` fabric
/// cycles, scheduled within `1..=max_cycle`. Synchronous engines ignore
/// it; the elastic engine freezes the controller for the stall span.
///
/// Kept out of [`arbitrary_fault`] so the historical 6-way distribution
/// (and every stream position derived from it) is untouched.
///
/// # Panics
///
/// Panics if `num_controllers == 0`, `max_cycle == 0`, or
/// `max_stall == 0`.
pub fn arbitrary_skew_fault(
    g: &mut Gen,
    num_controllers: usize,
    max_cycle: usize,
    max_stall: usize,
) -> Fault {
    assert!(num_controllers > 0 && max_cycle > 0 && max_stall > 0);
    Fault {
        at_cycle: g.usize(1..=max_cycle),
        kind: FaultKind::ClockSkew {
            controller: g.usize(0..num_controllers),
            stall: g.usize(1..=max_stall),
        },
    }
}

/// Draws a [`FaultPlan`] of `1..=max_faults` clock-skew excursions from
/// [`arbitrary_skew_fault`]'s distribution.
///
/// # Panics
///
/// Panics on the same empty domains as [`arbitrary_skew_fault`], or if
/// `max_faults == 0`.
pub fn arbitrary_skew_plan(
    g: &mut Gen,
    num_controllers: usize,
    max_cycle: usize,
    max_stall: usize,
    max_faults: usize,
) -> FaultPlan {
    assert!(max_faults > 0);
    let count = g.usize(1..=max_faults);
    let mut plan = FaultPlan::empty();
    for _ in 0..count {
        plan.push(arbitrary_skew_fault(
            g,
            num_controllers,
            max_cycle,
            max_stall,
        ));
    }
    plan
}

/// Draws an arbitrary elastic clocking spec with both knobs in
/// `0..=max`: skew bound 0 with latency 0 is the synchronous degenerate
/// case (bisimilar to the distributed engine), so property tests over
/// this generator exercise the degenerate corner alongside real GALS
/// configurations.
///
/// # Panics
///
/// Panics if `max == 0` (the spec space would be a single point; assert
/// the bisimulation directly instead).
pub fn arbitrary_elastic_spec(g: &mut Gen, max: u32) -> ElasticSpec {
    assert!(max > 0);
    ElasticSpec {
        skew_bound: g.usize(0..=max as usize) as u32,
        sync_latency: g.usize(0..=max as usize) as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_in_the_seed() {
        let mut a = Gen::from_seed(42);
        let mut b = Gen::from_seed(42);
        for _ in 0..50 {
            let pa = arbitrary_plan(&mut a, 7, 3, 30, 4);
            let pb = arbitrary_plan(&mut b, 7, 3, 30, 4);
            assert_eq!(pa.faults(), pb.faults());
            assert!(!pa.is_empty());
            assert!(pa.faults().len() <= 4);
        }
    }

    #[test]
    fn faults_stay_inside_their_domains() {
        let mut g = Gen::from_seed(7);
        let mut seen_kinds = std::collections::BTreeSet::new();
        for _ in 0..500 {
            let f = arbitrary_fault(&mut g, 5, 2, 20);
            assert!((1..=20).contains(&f.at_cycle));
            seen_kinds.insert(f.kind.tag());
            match f.kind {
                FaultKind::StuckAtShort { op }
                | FaultKind::StuckAtLong { op }
                | FaultKind::DropPulse { op }
                | FaultKind::SpuriousPulse { op } => assert!(op.0 < 5),
                FaultKind::DelayLatch { op, delay } => {
                    assert!(op.0 < 5 && (1..=4).contains(&delay));
                }
                FaultKind::FlipState { controller, bit } => {
                    assert!(controller < 2 && bit < 4);
                }
                FaultKind::ClockSkew { .. } => {
                    unreachable!("arbitrary_fault must not draw clock skew")
                }
            }
        }
        // 500 draws cover all six synchronous kinds with overwhelming
        // probability — and never the clock-domain-only seventh.
        assert_eq!(seen_kinds.len(), 6);
    }

    #[test]
    fn skew_faults_stay_inside_their_domains_and_are_deterministic() {
        let mut a = Gen::from_seed(11);
        let mut b = Gen::from_seed(11);
        let mut seen_controllers = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let fa = arbitrary_skew_fault(&mut a, 3, 25, 4);
            let fb = arbitrary_skew_fault(&mut b, 3, 25, 4);
            assert_eq!(fa, fb);
            assert!((1..=25).contains(&fa.at_cycle));
            match fa.kind {
                FaultKind::ClockSkew { controller, stall } => {
                    assert!(controller < 3 && (1..=4).contains(&stall));
                    seen_controllers.insert(controller);
                }
                other => panic!("skew generator drew {other:?}"),
            }
        }
        assert_eq!(seen_controllers.len(), 3);
        let plan = arbitrary_skew_plan(&mut a, 3, 25, 4, 5);
        assert!(!plan.is_empty() && plan.faults().len() <= 5);
        assert!(plan
            .faults()
            .iter()
            .all(|f| matches!(f.kind, FaultKind::ClockSkew { .. })));
    }

    #[test]
    fn elastic_specs_cover_the_degenerate_and_skewed_corners() {
        let mut g = Gen::from_seed(3);
        let mut zeros = 0;
        let mut skewed = 0;
        for _ in 0..300 {
            let spec = arbitrary_elastic_spec(&mut g, 3);
            assert!(spec.skew_bound <= 3 && spec.sync_latency <= 3);
            if spec == ElasticSpec::zero() {
                zeros += 1;
            }
            if spec.skew_bound > 0 {
                skewed += 1;
            }
        }
        assert!(zeros > 0, "degenerate corner never drawn");
        assert!(skewed > 0, "no skewed specs drawn");
    }
}
