//! Generators for random completion-signal fault plans.
//!
//! The resilience sweeps and property tests need arbitrary-but-replayable
//! [`FaultPlan`]s: every plan is a pure function of the [`Gen`] stream, so
//! a failing sweep trial reproduces from its printed seed exactly like any
//! other `tauhls-check` property case.

use crate::Gen;
use tauhls_dfg::OpId;
use tauhls_sim::{Fault, FaultKind, FaultPlan};

/// Draws one random fault touching one of `num_ops` operations or one of
/// `num_controllers` controllers, scheduled within `1..=max_cycle`.
///
/// All six fault kinds are equally likely; delayed latches defer by 1-4
/// cycles and state upsets flip one of the low 4 state-register bits.
///
/// # Panics
///
/// Panics if `num_ops == 0`, `num_controllers == 0`, or `max_cycle == 0`.
pub fn arbitrary_fault(
    g: &mut Gen,
    num_ops: usize,
    num_controllers: usize,
    max_cycle: usize,
) -> Fault {
    assert!(num_ops > 0 && num_controllers > 0 && max_cycle > 0);
    let at_cycle = g.usize(1..=max_cycle);
    let op = OpId(g.usize(0..num_ops));
    let kind = match g.usize(0..6) {
        0 => FaultKind::StuckAtShort { op },
        1 => FaultKind::StuckAtLong { op },
        2 => FaultKind::DropPulse { op },
        3 => FaultKind::SpuriousPulse { op },
        4 => FaultKind::DelayLatch {
            op,
            delay: g.usize(1..=4),
        },
        _ => FaultKind::FlipState {
            controller: g.usize(0..num_controllers),
            bit: g.u8(0..4) as u32,
        },
    };
    Fault { at_cycle, kind }
}

/// Draws a [`FaultPlan`] holding `1..=max_faults` faults from
/// [`arbitrary_fault`]'s distribution.
///
/// # Panics
///
/// Panics on the same empty domains as [`arbitrary_fault`], or if
/// `max_faults == 0`.
pub fn arbitrary_plan(
    g: &mut Gen,
    num_ops: usize,
    num_controllers: usize,
    max_cycle: usize,
    max_faults: usize,
) -> FaultPlan {
    assert!(max_faults > 0);
    let count = g.usize(1..=max_faults);
    let mut plan = FaultPlan::empty();
    for _ in 0..count {
        plan.push(arbitrary_fault(g, num_ops, num_controllers, max_cycle));
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_in_the_seed() {
        let mut a = Gen::from_seed(42);
        let mut b = Gen::from_seed(42);
        for _ in 0..50 {
            let pa = arbitrary_plan(&mut a, 7, 3, 30, 4);
            let pb = arbitrary_plan(&mut b, 7, 3, 30, 4);
            assert_eq!(pa.faults(), pb.faults());
            assert!(!pa.is_empty());
            assert!(pa.faults().len() <= 4);
        }
    }

    #[test]
    fn faults_stay_inside_their_domains() {
        let mut g = Gen::from_seed(7);
        let mut seen_kinds = std::collections::BTreeSet::new();
        for _ in 0..500 {
            let f = arbitrary_fault(&mut g, 5, 2, 20);
            assert!((1..=20).contains(&f.at_cycle));
            seen_kinds.insert(f.kind.tag());
            match f.kind {
                FaultKind::StuckAtShort { op }
                | FaultKind::StuckAtLong { op }
                | FaultKind::DropPulse { op }
                | FaultKind::SpuriousPulse { op } => assert!(op.0 < 5),
                FaultKind::DelayLatch { op, delay } => {
                    assert!(op.0 < 5 && (1..=4).contains(&delay));
                }
                FaultKind::FlipState { controller, bit } => {
                    assert!(controller < 2 && bit < 4);
                }
            }
        }
        // 500 draws cover all six kinds with overwhelming probability.
        assert_eq!(seen_kinds.len(), 6);
    }
}
