//! # tauhls-check — a minimal deterministic property-testing harness
//!
//! The workspace's property tests used to run on `proptest`; in offline
//! build environments that dependency is unavailable, so this crate
//! provides the small subset the tests actually need:
//!
//! * [`forall`] runs a property closure over `cases` deterministic random
//!   cases, each with its own [`Gen`] (seeded from a per-case SplitMix64
//!   derivation, so a failure reproduces from the printed case index);
//! * [`Gen`] wraps the workspace `StdRng` with the generator combinators
//!   the tests use (ranges, vectors, probability-weighted booleans).
//!
//! Failures re-panic with the case number and derived seed attached, so a
//! failing property can be replayed in isolation with [`replay`].
//!
//! # Examples
//!
//! ```
//! tauhls_check::forall("addition_commutes", 64, |g| {
//!     let a = g.i64(-1000..1000);
//!     let b = g.i64(-1000..1000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fault_gen;

pub use fault_gen::{
    arbitrary_elastic_spec, arbitrary_fault, arbitrary_plan, arbitrary_skew_fault,
    arbitrary_skew_plan,
};

use rand::rngs::StdRng;
use rand::{splitmix64_mix, Rng, SampleRange, SeedableRng, StandardSample};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// A deterministic case generator handed to property closures.
pub struct Gen {
    rng: StdRng,
}

impl Gen {
    /// Builds a generator from an explicit seed (see [`replay`]).
    pub fn from_seed(seed: u64) -> Self {
        Gen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Direct access to the underlying RNG (for APIs taking `impl Rng`).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// A uniform `usize` from a range.
    pub fn usize(&mut self, range: impl SampleRange<usize>) -> usize {
        self.rng.random_range(range)
    }

    /// A uniform `u64` from a range.
    pub fn u64(&mut self, range: impl SampleRange<u64>) -> u64 {
        self.rng.random_range(range)
    }

    /// A uniform `i64` from a range.
    pub fn i64(&mut self, range: impl SampleRange<i64>) -> i64 {
        self.rng.random_range(range)
    }

    /// A uniform `u8` from a range.
    pub fn u8(&mut self, range: impl SampleRange<u8>) -> u8 {
        self.rng.random_range(range)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.rng.random()
    }

    /// `true` with probability `p`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.rng.random_bool(p)
    }

    /// A full-domain value of any sampleable type.
    pub fn any<T: StandardSample>(&mut self) -> T {
        self.rng.random()
    }

    /// A vector of `len` items produced by `f`.
    pub fn vec<T>(&mut self, len: usize, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        (0..len).map(|_| f(self)).collect()
    }

    /// One element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.rng.random_range(0..items.len())]
    }
}

/// Derives the per-case seed for `(property name, case index)`.
///
/// The property name participates so distinct properties in one test
/// binary explore different spaces.
pub fn case_seed(name: &str, case: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the name
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    splitmix64_mix(splitmix64_mix(h) ^ case)
}

/// Runs `prop` over `cases` deterministic random cases.
///
/// # Panics
///
/// Re-panics with the failing case index and seed attached when the
/// property fails.
pub fn forall(name: &str, cases: u64, prop: impl Fn(&mut Gen)) {
    for case in 0..cases {
        let seed = case_seed(name, case);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut g = Gen::from_seed(seed);
            prop(&mut g);
        }));
        if let Err(payload) = result {
            eprintln!(
                "property `{name}` failed at case {case}/{cases} \
                 (replay with tauhls_check::replay({seed:#x}, ...))"
            );
            resume_unwind(payload);
        }
    }
}

/// Replays a single property case from a seed printed by [`forall`].
pub fn replay(seed: u64, prop: impl Fn(&mut Gen)) {
    let mut g = Gen::from_seed(seed);
    prop(&mut g);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forall_runs_all_cases() {
        let n = std::cell::Cell::new(0u64);
        forall("count", 10, |g| {
            let _ = g.usize(0..5);
            n.set(n.get() + 1);
        });
        assert_eq!(n.get(), 10);
    }

    #[test]
    fn cases_are_deterministic_but_distinct() {
        let a = case_seed("p", 0);
        let b = case_seed("p", 1);
        let c = case_seed("q", 0);
        assert_eq!(a, case_seed("p", 0));
        assert_ne!(a, b);
        assert_ne!(a, c);
        let mut g1 = Gen::from_seed(a);
        let mut g2 = Gen::from_seed(a);
        assert_eq!(g1.u64(0..1000), g2.u64(0..1000));
    }

    #[test]
    #[should_panic(expected = "forced failure")]
    fn failures_propagate() {
        forall("failing", 5, |g| {
            let v = g.usize(0..10);
            assert!(v < 100, "impossible");
            if v < 100 {
                panic!("forced failure");
            }
        });
    }

    #[test]
    fn vec_and_choose() {
        let mut g = Gen::from_seed(1);
        let v = g.vec(8, |g| g.i64(0..100));
        assert_eq!(v.len(), 8);
        let picked = *g.choose(&v);
        assert!(v.contains(&picked));
    }
}
