//! # tauhls-datapath — bit-level arithmetic with telescopic completion
//!
//! The datapath substrate of the `tauhls` workspace. Telescopic arithmetic
//! units (TAUs) only make sense over arithmetic whose settling time depends
//! on the operands, so this crate provides:
//!
//! * [`RippleCarryAdder`] / [`RippleCarrySubtractor`] — exact carry-chain
//!   delay per operand pair;
//! * [`ArrayMultiplier`] — magnitude-dependent array delay model;
//! * [`Tau`] — the telescopic wrapper (short-delay threshold, completion
//!   signal, SD/LD timing);
//! * [`CompletionGenerator`] — automatic synthesis of the completion
//!   signal generator as minimized two-level logic (paper §2.1);
//! * [`measure_p`] / [`threshold_for_target_p`] — empirical short-delay
//!   probability under configurable operand distributions.
//!
//! # Examples
//!
//! Telescope a 16-bit multiplier and measure its `P` on small-magnitude
//! data:
//!
//! ```
//! use tauhls_datapath::{
//!     measure_p, ArrayMultiplier, OperandDistribution, Tau,
//! };
//! use rand::SeedableRng;
//!
//! let tau = Tau::new(ArrayMultiplier::new(16), 20);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let p = measure_p(
//!     &tau,
//!     OperandDistribution::SmallMagnitude { bits: 8 },
//!     1000,
//!     &mut rng,
//! );
//! assert!(p > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod approx;
mod area;
mod completion;
mod stats;
mod tau;
mod units;
mod units_ext;

pub use approx::{conservatism_gap, ConservativeAdderPredictor};
pub use area::{UnitArea, AND2_GE, FULL_ADDER_GE, MUX2_GE};
pub use completion::CompletionGenerator;
pub use stats::{measure_p, threshold_for_target_p, OperandDistribution};
pub use tau::{Tau, TauOutcome, Technology};
pub use units::{
    carry_chain_length, ArrayMultiplier, FunctionalUnit, RippleCarryAdder, RippleCarrySubtractor,
};
pub use units_ext::{BoothMultiplier, CarryLookaheadAdder, CarrySkipAdder};
