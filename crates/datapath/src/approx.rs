//! Approximate completion predictors.
//!
//! The exact completion function of a unit can be expensive to realize as
//! logic (for the ripple adder it must trace the longest *exercised* carry
//! chain). A practical generator may instead use a cheaper **conservative**
//! predicate: it may claim "long" for some operand pairs that are actually
//! short (losing a little `P`), but must never claim "short" for a pair
//! that is long — a false-short would latch a wrong result. This module
//! implements such a predictor for carry-chain adders and quantifies the
//! `P` it gives away.

use crate::units::{FunctionalUnit, RippleCarryAdder};
use rand::Rng;

/// A conservative completion predictor for a ripple-carry adder: predicts
/// short iff the operands contain **no propagate run of length ≥ k**
/// (regardless of whether a carry actually enters the run).
///
/// Any exercised carry chain travels only through propagate positions, so
/// `longest chain ≤ longest propagate run`: the predicate can only err on
/// the safe side. The logic is much cheaper than the exact chain trace —
/// `w − k + 1` AND(k) gates and a NOR — at the price of pessimism when a
/// long propagate run exists but no carry enters it.
#[derive(Clone, Copy, Debug)]
pub struct ConservativeAdderPredictor {
    width: u32,
    run_limit: u32,
}

impl ConservativeAdderPredictor {
    /// Predicts short iff every propagate run is shorter than `run_limit`
    /// (so the exercised chain is at most `run_limit - 1 + 1` positions,
    /// fitting a short threshold of `run_limit + 2` gate levels on the
    /// matching [`RippleCarryAdder`]).
    ///
    /// # Panics
    ///
    /// Panics if `run_limit` is 0 or `width` is 0 or greater than 64.
    pub fn new(width: u32, run_limit: u32) -> Self {
        assert!((1..=64).contains(&width));
        assert!(run_limit >= 1);
        ConservativeAdderPredictor { width, run_limit }
    }

    /// The short-delay threshold (gate levels) this predictor guarantees
    /// on a ripple adder: chain ≤ run_limit ⇒ delay ≤ run_limit + 2.
    pub fn guaranteed_levels(&self) -> u32 {
        self.run_limit + 2
    }

    /// The conservative prediction for one operand pair.
    pub fn predict_short(&self, a: u64, b: u64) -> bool {
        let mask = if self.width >= 64 {
            !0
        } else {
            (1u64 << self.width) - 1
        };
        let p = (a ^ b) & mask;
        let mut run = 0u32;
        for i in 0..self.width {
            if p >> i & 1 == 1 {
                run += 1;
                if run >= self.run_limit {
                    return false;
                }
            } else {
                run = 0;
            }
        }
        true
    }

    /// True iff the prediction is sound against the exact adder delay for
    /// this operand pair (used by tests; always true by construction).
    pub fn sound_for(&self, adder: &RippleCarryAdder, a: u64, b: u64) -> bool {
        !self.predict_short(a, b) || adder.delay_levels(a, b) <= self.guaranteed_levels()
    }
}

/// Measures the `P` lost to conservatism: returns
/// `(p_exact, p_conservative)` over `samples` uniform operand pairs, where
/// the exact predictor answers "delay ≤ guaranteed_levels".
pub fn conservatism_gap(
    adder: &RippleCarryAdder,
    predictor: &ConservativeAdderPredictor,
    samples: usize,
    rng: &mut impl Rng,
) -> (f64, f64) {
    assert!(samples > 0);
    let mask = if adder.width() >= 64 {
        !0u64
    } else {
        (1u64 << adder.width()) - 1
    };
    let mut exact = 0usize;
    let mut conservative = 0usize;
    for _ in 0..samples {
        let a = rng.random::<u64>() & mask;
        let b = rng.random::<u64>() & mask;
        if adder.delay_levels(a, b) <= predictor.guaranteed_levels() {
            exact += 1;
        }
        if predictor.predict_short(a, b) {
            conservative += 1;
        }
    }
    (
        exact as f64 / samples as f64,
        conservative as f64 / samples as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conservative_predictor_is_sound_exhaustively() {
        let adder = RippleCarryAdder::new(8);
        for k in 1..8 {
            let pred = ConservativeAdderPredictor::new(8, k);
            for a in 0..256u64 {
                for b in 0..256u64 {
                    assert!(pred.sound_for(&adder, a, b), "k={k} a={a} b={b}");
                }
            }
        }
    }

    #[test]
    fn conservative_p_below_exact_p() {
        let adder = RippleCarryAdder::new(16);
        let pred = ConservativeAdderPredictor::new(16, 6);
        let mut rng = StdRng::seed_from_u64(1);
        let (p_exact, p_cons) = conservatism_gap(&adder, &pred, 20_000, &mut rng);
        assert!(p_cons <= p_exact + 1e-9);
        // The gap exists but is not catastrophic at this threshold.
        assert!(p_cons > 0.3, "conservative P collapsed: {p_cons}");
        assert!(
            p_exact - p_cons < 0.4,
            "gap too large: {p_exact} - {p_cons}"
        );
    }

    #[test]
    fn run_limit_one_rejects_any_propagate() {
        let pred = ConservativeAdderPredictor::new(8, 1);
        assert!(pred.predict_short(0b1010, 0b1010)); // p = 0 everywhere
        assert!(!pred.predict_short(0b0001, 0b0010)); // one propagate bit
    }

    #[test]
    fn wider_run_limit_is_less_pessimistic() {
        let mut rng = StdRng::seed_from_u64(2);
        let adder = RippleCarryAdder::new(16);
        let tight = ConservativeAdderPredictor::new(16, 3);
        let loose = ConservativeAdderPredictor::new(16, 8);
        let (_, p_tight) = conservatism_gap(&adder, &tight, 8000, &mut rng);
        let (_, p_loose) = conservatism_gap(&adder, &loose, 8000, &mut rng);
        assert!(p_tight < p_loose);
    }
}
