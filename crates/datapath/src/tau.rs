//! The telescopic arithmetic unit (TAU) wrapper — paper §2.1, Fig 1.
//!
//! A TAU pairs an ordinary arithmetic logic block with a combinational
//! *completion signal generator*. The system clock is set by the short
//! delay `SD`; operand pairs whose settling delay fits in `SD` assert the
//! completion signal `C = 1` and finish in one cycle, all others take a
//! second cycle (total `LD`, the worst-case delay).

use crate::units::FunctionalUnit;

/// Timing technology: converts gate levels to nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Technology {
    /// Nanoseconds per gate level.
    pub ns_per_level: f64,
}

impl Default for Technology {
    fn default() -> Self {
        // 16 gate levels ≈ 15 ns, echoing the paper's SD(×) = 15 ns scale.
        Technology { ns_per_level: 1.0 }
    }
}

/// Result of one telescopic evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TauOutcome {
    /// The computed value (truncated to the unit width).
    pub result: u64,
    /// The completion signal: `true` iff the operand pair settles within
    /// the short delay, i.e. the operation needs only one fast cycle.
    pub short: bool,
    /// The exact settling delay of the arithmetic logic, in gate levels.
    pub actual_levels: u32,
}

/// A telescopic wrapper around any [`FunctionalUnit`].
///
/// # Examples
///
/// ```
/// use tauhls_datapath::{ArrayMultiplier, Tau};
/// // 16-bit multiplier telescoped at 20 of 32 worst-case levels.
/// let tau = Tau::new(ArrayMultiplier::new(16), 20);
/// let fast = tau.evaluate(9, 11);     // small operands
/// assert!(fast.short);
/// let slow = tau.evaluate(0xABC0, 0xDEF0);
/// assert!(!slow.short);
/// assert_eq!(fast.result, 99);
/// ```
#[derive(Clone, Debug)]
pub struct Tau<U> {
    unit: U,
    short_levels: u32,
}

impl<U: FunctionalUnit> Tau<U> {
    /// Wraps `unit` with a short-delay threshold of `short_levels` gate
    /// levels.
    ///
    /// # Panics
    ///
    /// Panics if `short_levels` is zero or at least the unit's worst-case
    /// delay (in which case telescoping is pointless: every operand pair
    /// would be short, or none would matter).
    pub fn new(unit: U, short_levels: u32) -> Self {
        assert!(short_levels > 0, "short delay must be positive");
        assert!(
            short_levels < unit.worst_delay_levels(),
            "short delay {short_levels} must be below the worst case {}",
            unit.worst_delay_levels()
        );
        Tau { unit, short_levels }
    }

    /// The wrapped arithmetic logic.
    pub fn unit(&self) -> &U {
        &self.unit
    }

    /// Short-delay threshold in gate levels (`SD`).
    pub fn short_levels(&self) -> u32 {
        self.short_levels
    }

    /// Worst-case delay in gate levels (`LD`).
    pub fn long_levels(&self) -> u32 {
        self.unit.worst_delay_levels()
    }

    /// `SD` in nanoseconds under the given technology.
    pub fn sd_ns(&self, tech: &Technology) -> f64 {
        f64::from(self.short_levels) * tech.ns_per_level
    }

    /// `LD` in nanoseconds under the given technology.
    pub fn ld_ns(&self, tech: &Technology) -> f64 {
        f64::from(self.long_levels()) * tech.ns_per_level
    }

    /// Evaluates the unit telescopically for one operand pair.
    pub fn evaluate(&self, a: u64, b: u64) -> TauOutcome {
        let actual = self.unit.delay_levels(a, b);
        TauOutcome {
            result: self.unit.compute(a, b),
            short: actual <= self.short_levels,
            actual_levels: actual,
        }
    }

    /// The completion signal alone (the output of the completion signal
    /// generator for this operand pair).
    pub fn completion(&self, a: u64, b: u64) -> bool {
        self.unit.delay_levels(a, b) <= self.short_levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{ArrayMultiplier, RippleCarryAdder};

    #[test]
    fn completion_tracks_threshold() {
        let tau = Tau::new(RippleCarryAdder::new(8), 5);
        // No carries: delay 2 <= 5 -> short.
        assert!(tau.completion(0b0101_0101, 0b1010_1010 & !1));
        // Full ripple: delay 10 > 5 -> long.
        assert!(!tau.completion(1, 0xFF));
        let o = tau.evaluate(1, 0xFF);
        assert_eq!(o.result, 0);
        assert_eq!(o.actual_levels, 10);
    }

    #[test]
    fn sd_ld_in_ns() {
        let tau = Tau::new(ArrayMultiplier::new(16), 24);
        let tech = Technology {
            ns_per_level: 0.625,
        };
        assert!((tau.sd_ns(&tech) - 15.0).abs() < 1e-9);
        assert!((tau.ld_ns(&tech) - 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "below the worst case")]
    fn threshold_must_telescope() {
        let _ = Tau::new(RippleCarryAdder::new(8), 10);
    }

    #[test]
    fn short_results_still_correct() {
        let tau = Tau::new(ArrayMultiplier::new(12), 12);
        for (a, b) in [(0u64, 0u64), (1, 1), (50, 60), (4000, 4000)] {
            let o = tau.evaluate(a, b);
            assert_eq!(o.result, a.wrapping_mul(b) & 0xFFF);
        }
    }
}
