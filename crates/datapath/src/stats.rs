//! Empirical measurement of the short-delay probability `P`.
//!
//! The paper sweeps `P ∈ {0.9, 0.7, 0.5}` analytically; a real TAU's `P`
//! is a property of its operand distribution. This module measures it by
//! Monte-Carlo over configurable distributions, and can solve for the
//! short-delay threshold that achieves a target `P` — the "telescoping
//! knob" of Benini et al.

use crate::tau::Tau;
use crate::units::FunctionalUnit;
use rand::Rng;

/// Operand distributions for `P` measurement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OperandDistribution {
    /// Uniform over the full operand width.
    Uniform,
    /// Uniform over values of at most `bits` significant bits — models
    /// small-magnitude data (audio samples, filter states near zero).
    SmallMagnitude {
        /// Maximum significant bits of the drawn operands.
        bits: u32,
    },
    /// Geometric-ish magnitude: draws a bit-length uniformly, then a value
    /// of that length — a log-uniform proxy typical of DSP signal content.
    LogUniform,
}

impl OperandDistribution {
    /// Draws one operand of the given width.
    pub fn sample(&self, rng: &mut impl Rng, width: u32) -> u64 {
        let full = if width >= 64 { !0 } else { (1u64 << width) - 1 };
        match *self {
            OperandDistribution::Uniform => rng.random::<u64>() & full,
            OperandDistribution::SmallMagnitude { bits } => {
                let m = if bits >= 64 { !0 } else { (1u64 << bits) - 1 };
                rng.random::<u64>() & m & full
            }
            OperandDistribution::LogUniform => {
                let len = rng.random_range(0..=width);
                if len == 0 {
                    0
                } else {
                    let m = if len >= 64 { !0 } else { (1u64 << len) - 1 };
                    rng.random::<u64>() & m & full
                }
            }
        }
    }
}

/// Measures the short-completion probability of `tau` under `dist` with
/// `samples` random operand pairs.
///
/// # Panics
///
/// Panics if `samples == 0`.
pub fn measure_p<U: FunctionalUnit>(
    tau: &Tau<U>,
    dist: OperandDistribution,
    samples: usize,
    rng: &mut impl Rng,
) -> f64 {
    assert!(samples > 0);
    let w = tau.unit().width();
    let short = (0..samples)
        .filter(|_| {
            let a = dist.sample(rng, w);
            let b = dist.sample(rng, w);
            tau.completion(a, b)
        })
        .count();
    short as f64 / samples as f64
}

/// Finds the smallest short-delay threshold whose measured `P` under
/// `dist` is at least `target_p`. Returns `None` if even `LD - 1` levels
/// fall short.
pub fn threshold_for_target_p<U: FunctionalUnit + Clone>(
    unit: &U,
    dist: OperandDistribution,
    target_p: f64,
    samples: usize,
    rng: &mut impl Rng,
) -> Option<u32> {
    for k in 1..unit.worst_delay_levels() {
        let tau = Tau::new(unit.clone(), k);
        if measure_p(&tau, dist, samples, rng) >= target_p {
            return Some(k);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{ArrayMultiplier, RippleCarryAdder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_adder_p_grows_with_threshold() {
        let mut rng = StdRng::seed_from_u64(1);
        let unit = RippleCarryAdder::new(16);
        let p_small = measure_p(
            &Tau::new(unit, 4),
            OperandDistribution::Uniform,
            4000,
            &mut rng,
        );
        let p_large = measure_p(
            &Tau::new(unit, 12),
            OperandDistribution::Uniform,
            4000,
            &mut rng,
        );
        assert!(p_small < p_large);
        assert!(p_large > 0.9, "12 levels cover almost all carry chains");
    }

    #[test]
    fn small_magnitude_mult_is_mostly_short() {
        let mut rng = StdRng::seed_from_u64(2);
        let tau = Tau::new(ArrayMultiplier::new(16), 20);
        let p_small = measure_p(
            &tau,
            OperandDistribution::SmallMagnitude { bits: 8 },
            4000,
            &mut rng,
        );
        let p_full = measure_p(&tau, OperandDistribution::Uniform, 4000, &mut rng);
        assert!(p_small > 0.95, "8-bit operands: 16 levels < 20");
        assert!(p_full < 0.2, "uniform 16-bit operands rarely fit 20 levels");
    }

    #[test]
    fn threshold_solver_hits_target() {
        let mut rng = StdRng::seed_from_u64(3);
        let unit = ArrayMultiplier::new(16);
        let k = threshold_for_target_p(&unit, OperandDistribution::LogUniform, 0.7, 3000, &mut rng)
            .expect("achievable");
        let tau = Tau::new(unit, k);
        let p = measure_p(&tau, OperandDistribution::LogUniform, 6000, &mut rng);
        assert!(p >= 0.65, "measured {p} at threshold {k}");
        if k > 1 {
            let tau_lo = Tau::new(unit, k - 1);
            let p_lo = measure_p(&tau_lo, OperandDistribution::LogUniform, 6000, &mut rng);
            assert!(p_lo < 0.75, "threshold should be minimal-ish, got {p_lo}");
        }
    }

    #[test]
    fn distribution_samples_respect_width() {
        let mut rng = StdRng::seed_from_u64(4);
        for dist in [
            OperandDistribution::Uniform,
            OperandDistribution::SmallMagnitude { bits: 4 },
            OperandDistribution::LogUniform,
        ] {
            for _ in 0..200 {
                let v = dist.sample(&mut rng, 12);
                assert!(v < 1 << 12);
            }
        }
    }
}
