//! Bit-level functional units with operand-dependent delay.
//!
//! The telescopic idea only works because real arithmetic logic settles at
//! an operand-dependent speed: a ripple adder is done as soon as its longest
//! *actual* carry chain has propagated, and an array multiplier's active
//! critical path shrinks with the magnitude of its operands. These models
//! compute both the value and that settling delay (in gate levels), which
//! the TAU wrapper compares against its short-delay threshold.

use std::fmt;

/// A combinational two-operand functional unit with an operand-dependent
/// settling delay measured in gate levels.
pub trait FunctionalUnit: fmt::Debug {
    /// Operand width in bits (results are truncated to this width,
    /// two's-complement).
    fn width(&self) -> u32;

    /// Computes the result for the given operand pair.
    fn compute(&self, a: u64, b: u64) -> u64;

    /// The settling delay, in gate levels, for this operand pair.
    fn delay_levels(&self, a: u64, b: u64) -> u32;

    /// The worst-case settling delay over all operand pairs (the unit's
    /// "long delay" in gate levels).
    fn worst_delay_levels(&self) -> u32;

    /// Human-readable unit name for reports.
    fn name(&self) -> String;
}

fn mask(width: u32) -> u64 {
    if width >= 64 {
        !0
    } else {
        (1u64 << width) - 1
    }
}

/// Length of the longest carry chain actually exercised by `a + b + cin`
/// over `width` bits: the maximum number of consecutive positions a carry
/// travels through generate/propagate logic.
pub fn carry_chain_length(a: u64, b: u64, cin: bool, width: u32) -> u32 {
    let g = a & b; // generate
    let p = a ^ b; // propagate
    let mut carry = cin;
    let mut run: u32 = 0; // length of the chain feeding the current carry
    let mut longest: u32 = 0;
    for i in 0..width {
        let gi = g >> i & 1 == 1;
        let pi = p >> i & 1 == 1;
        let next = gi || (pi && carry);
        if next {
            // Either a fresh generate (chain restarts at length 1) or the
            // incoming carry propagated one stage further.
            run = if pi && carry { run + 1 } else { 1 };
        } else {
            run = 0;
        }
        longest = longest.max(run);
        carry = next;
    }
    longest
}

/// A `width`-bit ripple-carry adder.
///
/// Delay model: one level to form generate/propagate, plus one level per
/// stage of the longest exercised carry chain, plus one level for the sum
/// XOR — i.e. `delay = carry_chain + 2`, worst case `width + 2`.
///
/// # Examples
///
/// ```
/// use tauhls_datapath::{FunctionalUnit, RippleCarryAdder};
/// let u = RippleCarryAdder::new(16);
/// assert_eq!(u.compute(3, 5), 8);
/// // 0 + anything exercises no carry chain:
/// assert_eq!(u.delay_levels(0, 0xFFFF), 2);
/// // 1 + 0xFFFF ripples across all 16 bits:
/// assert_eq!(u.delay_levels(1, 0xFFFF), 18);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct RippleCarryAdder {
    width: u32,
}

impl RippleCarryAdder {
    /// Creates a `width`-bit adder.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn new(width: u32) -> Self {
        assert!((1..=64).contains(&width));
        RippleCarryAdder { width }
    }
}

impl FunctionalUnit for RippleCarryAdder {
    fn width(&self) -> u32 {
        self.width
    }

    fn compute(&self, a: u64, b: u64) -> u64 {
        a.wrapping_add(b) & mask(self.width)
    }

    fn delay_levels(&self, a: u64, b: u64) -> u32 {
        carry_chain_length(
            a & mask(self.width),
            b & mask(self.width),
            false,
            self.width,
        ) + 2
    }

    fn worst_delay_levels(&self) -> u32 {
        self.width + 2
    }

    fn name(&self) -> String {
        format!("rca{}", self.width)
    }
}

/// A `width`-bit ripple-borrow subtractor implemented as `a + !b + 1`;
/// also produces the sign for comparison use.
#[derive(Clone, Copy, Debug)]
pub struct RippleCarrySubtractor {
    width: u32,
}

impl RippleCarrySubtractor {
    /// Creates a `width`-bit subtractor.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn new(width: u32) -> Self {
        assert!((1..=64).contains(&width));
        RippleCarrySubtractor { width }
    }

    /// Signed less-than via the subtractor (overflow-corrected sign bit).
    pub fn less_than(&self, a: u64, b: u64) -> bool {
        let w = self.width;
        let sign = |x: u64| x >> (w - 1) & 1 == 1;
        let diff = self.compute(a, b);
        // lt = sign(diff) XOR overflow
        let overflow = (sign(a) != sign(b)) && (sign(diff) != sign(a));
        sign(diff) ^ overflow
    }
}

impl FunctionalUnit for RippleCarrySubtractor {
    fn width(&self) -> u32 {
        self.width
    }

    fn compute(&self, a: u64, b: u64) -> u64 {
        a.wrapping_sub(b) & mask(self.width)
    }

    fn delay_levels(&self, a: u64, b: u64) -> u32 {
        let m = mask(self.width);
        // a - b = a + !b with carry-in 1.
        carry_chain_length(a & m, !b & m, true, self.width) + 2
    }

    fn worst_delay_levels(&self) -> u32 {
        self.width + 2
    }

    fn name(&self) -> String {
        format!("rcs{}", self.width)
    }
}

/// A `width × width` array multiplier with a magnitude-dependent delay
/// model.
///
/// In a (carry-save) array, partial-product rows for zero multiplier bits
/// do not switch, and the active critical path runs through roughly
/// `bitlen(a) + bitlen(b)` cells before the final ripple stage — so small
/// operands finish much earlier than full-width ones. This is the effect
/// the telescopic-unit paper exploits for multipliers.
///
/// # Examples
///
/// ```
/// use tauhls_datapath::{ArrayMultiplier, FunctionalUnit};
/// let u = ArrayMultiplier::new(16);
/// assert_eq!(u.compute(300, 7), 2100);
/// assert!(u.delay_levels(3, 5) < u.delay_levels(0x7FFF, 0x7FFF));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ArrayMultiplier {
    width: u32,
}

impl ArrayMultiplier {
    /// Creates a `width`-bit multiplier (result truncated to `width` bits).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 32 (so the full product fits
    /// in `u64`).
    pub fn new(width: u32) -> Self {
        assert!((1..=32).contains(&width));
        ArrayMultiplier { width }
    }

    fn bitlen(x: u64) -> u32 {
        64 - x.leading_zeros()
    }
}

impl FunctionalUnit for ArrayMultiplier {
    fn width(&self) -> u32 {
        self.width
    }

    fn compute(&self, a: u64, b: u64) -> u64 {
        (a & mask(self.width)).wrapping_mul(b & mask(self.width)) & mask(self.width)
    }

    fn delay_levels(&self, a: u64, b: u64) -> u32 {
        let a = a & mask(self.width);
        let b = b & mask(self.width);
        if a == 0 || b == 0 {
            return 1;
        }
        // Active array depth: one level per used row plus the diagonal
        // carry path across the used columns.
        Self::bitlen(a) + Self::bitlen(b)
    }

    fn worst_delay_levels(&self) -> u32 {
        2 * self.width
    }

    fn name(&self) -> String {
        format!("mul{}", self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carry_chain_basics() {
        // No carries at all.
        assert_eq!(carry_chain_length(0b0101, 0b1010, false, 4), 0);
        // Single generate that dies immediately: 1+1 = carry into bit 1,
        // but bit 1 has p=0,g=0 -> chain length 1.
        assert_eq!(carry_chain_length(0b0001, 0b0001, false, 4), 1);
        // Full ripple: 0001 + 1111 -> carry travels through bits 1..3.
        assert_eq!(carry_chain_length(0b0001, 0b1111, false, 4), 4);
        // Carry-in rippling through all-propagate operands.
        assert_eq!(carry_chain_length(0b1111, 0b0000, true, 4), 4);
    }

    #[test]
    fn adder_compute_wraps() {
        let u = RippleCarryAdder::new(8);
        assert_eq!(u.compute(200, 100), 44);
        assert_eq!(u.worst_delay_levels(), 10);
    }

    #[test]
    fn adder_delay_monotone_with_chain() {
        let u = RippleCarryAdder::new(16);
        assert!(u.delay_levels(0, 0) <= u.delay_levels(1, 1));
        assert_eq!(u.delay_levels(1, 0xFFFF), u.worst_delay_levels());
        // Delay never exceeds the worst case.
        for (a, b) in [(7, 9), (0xFFFF, 0xFFFF), (0x8000, 0x8000), (123, 456)] {
            assert!(u.delay_levels(a, b) <= u.worst_delay_levels());
        }
    }

    #[test]
    fn subtractor_semantics() {
        let u = RippleCarrySubtractor::new(8);
        assert_eq!(u.compute(5, 3), 2);
        assert_eq!(u.compute(3, 5), 0xFE); // -2 in two's complement
        assert!(u.less_than(3, 5));
        assert!(!u.less_than(5, 3));
        // Signed comparison across the sign boundary: -1 < 1.
        assert!(u.less_than(0xFF, 1));
        assert!(!u.less_than(1, 0xFF));
        // Overflow case: -128 < 127.
        assert!(u.less_than(0x80, 0x7F));
    }

    #[test]
    fn subtractor_equal_operands_fast() {
        let u = RippleCarrySubtractor::new(16);
        // a - a: !a + a = all-propagate, carry-in 1 ripples everywhere: slow!
        assert_eq!(u.delay_levels(0x1234, 0x1234), u.worst_delay_levels());
        // a - 0 with a having no propagate from carry-in position:
        // !0 = all ones (all propagate) -> also rippling. Subtracting zero
        // is slow on a real ripple borrow unit; just bound it.
        assert!(u.delay_levels(5, 0) <= u.worst_delay_levels());
    }

    #[test]
    fn multiplier_semantics_and_delay() {
        let u = ArrayMultiplier::new(16);
        assert_eq!(u.compute(0, 12345), 0);
        assert_eq!(u.delay_levels(0, 12345), 1);
        assert_eq!(u.compute(0xFFFF, 2), 0xFFFE);
        assert_eq!(u.delay_levels(1, 1), 2);
        assert_eq!(u.delay_levels(0xFFFF, 0xFFFF), u.worst_delay_levels());
        // Monotone in operand magnitude (bit length).
        assert!(u.delay_levels(3, 3) < u.delay_levels(0xFF, 0xFF));
        assert!(u.delay_levels(0xFF, 0xFF) < u.delay_levels(0xFFFF, 0xFFFF));
    }

    #[test]
    fn masks_applied_to_wide_inputs() {
        let u = ArrayMultiplier::new(8);
        assert_eq!(u.compute(0x1FF, 1), 0xFF);
        let a = RippleCarryAdder::new(8);
        assert_eq!(a.compute(0x1FF, 1), 0);
    }
}
