//! Gate-equivalent area estimates for the functional-unit architectures,
//! so designs can be costed end to end (controllers + units + registers).
//!
//! Estimates use textbook cell counts: a full adder ≈ 9 GE, a 2-input
//! AND ≈ 1.5 GE, a 2:1 mux ≈ 3 GE. They are deliberately coarse — the
//! purpose is relative comparison between architectures and against the
//! controller areas of Table 1, on the same gate-equivalent scale.

use crate::units::{ArrayMultiplier, RippleCarryAdder, RippleCarrySubtractor};
use crate::units_ext::{BoothMultiplier, CarryLookaheadAdder, CarrySkipAdder};

/// Gate-equivalents of one full adder cell.
pub const FULL_ADDER_GE: f64 = 9.0;
/// Gate-equivalents of one 2-input AND gate.
pub const AND2_GE: f64 = 1.5;
/// Gate-equivalents of one 2:1 multiplexer.
pub const MUX2_GE: f64 = 3.0;

/// Area estimate (GE) for a functional-unit architecture.
pub trait UnitArea {
    /// Estimated combinational area in gate equivalents.
    fn area_ge(&self) -> f64;
}

impl UnitArea for RippleCarryAdder {
    fn area_ge(&self) -> f64 {
        f64::from(crate::FunctionalUnit::width(self)) * FULL_ADDER_GE
    }
}

impl UnitArea for RippleCarrySubtractor {
    fn area_ge(&self) -> f64 {
        // Adder + input inverters.
        f64::from(crate::FunctionalUnit::width(self)) * (FULL_ADDER_GE + 1.0)
    }
}

impl UnitArea for CarryLookaheadAdder {
    fn area_ge(&self) -> f64 {
        // P/G + sum cells plus the lookahead tree (~4 GE per bit extra).
        f64::from(crate::FunctionalUnit::width(self)) * (FULL_ADDER_GE + 4.0)
    }
}

impl UnitArea for CarrySkipAdder {
    fn area_ge(&self) -> f64 {
        let w = f64::from(crate::FunctionalUnit::width(self));
        // Ripple cells + one skip mux and block-AND per block.
        w * FULL_ADDER_GE + (w / 4.0).ceil() * (MUX2_GE + 2.0 * AND2_GE)
    }
}

impl UnitArea for ArrayMultiplier {
    fn area_ge(&self) -> f64 {
        let w = f64::from(crate::FunctionalUnit::width(self));
        // w^2 AND gates + (w^2 - w) adder cells.
        w * w * AND2_GE + (w * w - w) * FULL_ADDER_GE
    }
}

impl UnitArea for BoothMultiplier {
    fn area_ge(&self) -> f64 {
        let w = f64::from(crate::FunctionalUnit::width(self));
        // Half the partial products of the array plus recoders and muxes.
        (w * w / 2.0) * FULL_ADDER_GE + (w / 2.0).ceil() * (2.0 * MUX2_GE + 3.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adders_ordered_by_sophistication() {
        let rca = RippleCarryAdder::new(16).area_ge();
        let csk = CarrySkipAdder::new(16, 4).area_ge();
        let cla = CarryLookaheadAdder::new(16).area_ge();
        assert!(rca < csk, "{rca} {csk}");
        assert!(csk < cla, "{csk} {cla}");
    }

    #[test]
    fn booth_smaller_than_array_at_width() {
        let array = ArrayMultiplier::new(16).area_ge();
        let booth = BoothMultiplier::new(16).area_ge();
        assert!(booth < array);
        // Multipliers dwarf adders.
        assert!(array > 10.0 * RippleCarryAdder::new(16).area_ge());
    }

    #[test]
    fn area_scales_with_width() {
        assert!(ArrayMultiplier::new(8).area_ge() < ArrayMultiplier::new(16).area_ge());
        assert!(RippleCarryAdder::new(8).area_ge() < RippleCarryAdder::new(32).area_ge());
    }
}
