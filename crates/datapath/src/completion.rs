//! Automatic synthesis of completion signal generators (paper §2.1).
//!
//! The completion signal generator of a TAU is a combinational circuit
//! that, looking only at the input operands, decides whether the arithmetic
//! logic settles within the short delay. Benini et al. derive it
//! automatically from the logic netlist; here we reproduce that flow for
//! small operand widths by building the exact predictor function
//! `C(a, b) = [delay(a, b) <= SD]` as a truth table and synthesizing a
//! minimized two-level implementation through `tauhls-logic` — yielding a
//! concrete gate-count for the generator and hence the TAU area overhead.

use crate::units::FunctionalUnit;
use tauhls_logic::{minimize_exact, AreaModel, AreaReport, Cover, TruthTable};

/// A synthesized completion signal generator: the minimized two-level
/// implementation of the completion predicate over the concatenated
/// operand bits (`a` in the low bits, `b` in the high bits).
#[derive(Clone, Debug)]
pub struct CompletionGenerator {
    width: u32,
    short_levels: u32,
    cover: Cover,
}

impl CompletionGenerator {
    /// Synthesizes the generator for `unit` at threshold `short_levels`.
    ///
    /// # Panics
    ///
    /// Panics if `2 * unit.width() > 16` — exact synthesis enumerates the
    /// operand space, so it is limited to small (demonstration) widths;
    /// wider TAUs use the oracle predictor in [`crate::Tau`] directly.
    pub fn synthesize(unit: &dyn FunctionalUnit, short_levels: u32) -> Self {
        let w = unit.width();
        let bits = 2 * w as usize;
        assert!(bits <= 16, "exact synthesis limited to 8-bit operands");
        let table = TruthTable::from_fn(bits, |m| {
            let a = m & ((1 << w) - 1);
            let b = m >> w;
            Some(unit.delay_levels(a, b) <= short_levels)
        });
        CompletionGenerator {
            width: w,
            short_levels,
            cover: minimize_exact(&table),
        }
    }

    /// Operand width of the underlying unit.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The threshold this generator detects.
    pub fn short_levels(&self) -> u32 {
        self.short_levels
    }

    /// The minimized two-level implementation.
    pub fn cover(&self) -> &Cover {
        &self.cover
    }

    /// Evaluates the synthesized circuit (must agree with the oracle).
    pub fn predict(&self, a: u64, b: u64) -> bool {
        let w = self.width;
        self.cover
            .evaluate((a & ((1 << w) - 1)) | (b & ((1 << w) - 1)) << w)
    }

    /// Area of the generator under the given model (no flip-flops — it is
    /// purely combinational).
    pub fn area(&self, model: &AreaModel) -> AreaReport {
        model.area(std::slice::from_ref(&self.cover), 0)
    }

    /// The fraction of the operand space predicted short — the *uniform*
    /// short-probability `P` of the telescoped unit.
    pub fn uniform_p(&self) -> f64 {
        let bits = 2 * self.width as usize;
        let total = 1u64 << bits;
        let on = (0..total).filter(|&m| self.cover.evaluate(m)).count();
        on as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{ArrayMultiplier, RippleCarryAdder};

    #[test]
    fn generator_agrees_with_oracle_adder() {
        let unit = RippleCarryAdder::new(4);
        let g = CompletionGenerator::synthesize(&unit, 4);
        for a in 0..16u64 {
            for b in 0..16u64 {
                assert_eq!(
                    g.predict(a, b),
                    unit.delay_levels(a, b) <= 4,
                    "mismatch at {a},{b}"
                );
            }
        }
    }

    #[test]
    fn generator_agrees_with_oracle_multiplier() {
        let unit = ArrayMultiplier::new(4);
        let g = CompletionGenerator::synthesize(&unit, 5);
        for a in 0..16u64 {
            for b in 0..16u64 {
                assert_eq!(g.predict(a, b), unit.delay_levels(a, b) <= 5);
            }
        }
    }

    #[test]
    fn tighter_threshold_smaller_p() {
        let unit = ArrayMultiplier::new(4);
        let loose = CompletionGenerator::synthesize(&unit, 6);
        let tight = CompletionGenerator::synthesize(&unit, 3);
        assert!(tight.uniform_p() < loose.uniform_p());
        assert!(loose.uniform_p() <= 1.0);
        assert!(tight.uniform_p() > 0.0);
    }

    #[test]
    fn generator_has_finite_area() {
        let unit = RippleCarryAdder::new(4);
        let g = CompletionGenerator::synthesize(&unit, 3);
        let area = g.area(&AreaModel::default());
        assert!(area.combinational > 0.0);
        assert_eq!(area.sequential, 0.0);
    }

    #[test]
    #[should_panic(expected = "limited")]
    fn wide_units_rejected() {
        let unit = RippleCarryAdder::new(16);
        let _ = CompletionGenerator::synthesize(&unit, 8);
    }
}
