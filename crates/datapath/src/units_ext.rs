//! Additional functional-unit architectures with distinct delay
//! *profiles*, for studying where telescoping pays off:
//!
//! * [`CarryLookaheadAdder`] — (nearly) operand-independent delay: the
//!   anti-telescopic baseline. Wrapping it in a [`crate::Tau`] yields
//!   `P ≈ 0` or `P ≈ 1`, never a useful split.
//! * [`CarrySkipAdder`] — carry chains measured in skip *blocks*: coarser
//!   operand dependence than ripple, cheaper worst case.
//! * [`BoothMultiplier`] — radix-4 Booth recoding: delay follows the
//!   number of non-zero recoded digits, so sparse operands finish early
//!   even at full magnitude (a different "shortness" notion than the
//!   array multiplier's bit-length).

use crate::units::{carry_chain_length, FunctionalUnit};

fn mask(width: u32) -> u64 {
    if width >= 64 {
        !0
    } else {
        (1u64 << width) - 1
    }
}

/// A `width`-bit carry-lookahead adder with 4-bit lookahead groups.
///
/// Delay model: generate/propagate (1 level), group lookahead tree
/// (2 levels per tree stage), sum XOR (1 level) — independent of the
/// operands except for the trivial no-carry case. This is the classic
/// "fast but untelescopic" unit.
#[derive(Clone, Copy, Debug)]
pub struct CarryLookaheadAdder {
    width: u32,
}

impl CarryLookaheadAdder {
    /// Creates a `width`-bit CLA.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn new(width: u32) -> Self {
        assert!((1..=64).contains(&width));
        CarryLookaheadAdder { width }
    }

    fn tree_stages(&self) -> u32 {
        // ceil(log4(groups)), groups = ceil(width/4)
        let groups = self.width.div_ceil(4);
        let mut stages = 0;
        let mut reach = 1u32;
        while reach < groups {
            reach *= 4;
            stages += 1;
        }
        stages
    }
}

impl FunctionalUnit for CarryLookaheadAdder {
    fn width(&self) -> u32 {
        self.width
    }

    fn compute(&self, a: u64, b: u64) -> u64 {
        a.wrapping_add(b) & mask(self.width)
    }

    fn delay_levels(&self, a: u64, b: u64) -> u32 {
        let m = mask(self.width);
        if carry_chain_length(a & m, b & m, false, self.width) == 0 {
            // No carry activity at all: only P/G and the sum XOR settle.
            2
        } else {
            self.worst_delay_levels()
        }
    }

    fn worst_delay_levels(&self) -> u32 {
        2 + 2 * self.tree_stages() + 1
    }

    fn name(&self) -> String {
        format!("cla{}", self.width)
    }
}

/// A `width`-bit carry-skip adder with fixed-size skip blocks.
///
/// A carry entering a block whose bits all propagate skips the block in
/// one gate level; otherwise it ripples inside the block. Delay follows
/// the *longest actual carry path* measured as ripple-within-block plus
/// skips — operand-dependent like the ripple adder, but with a much
/// tighter worst case.
#[derive(Clone, Copy, Debug)]
pub struct CarrySkipAdder {
    width: u32,
    block: u32,
}

impl CarrySkipAdder {
    /// Creates a `width`-bit carry-skip adder with `block`-bit skip blocks.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64, or if `block` is 0.
    pub fn new(width: u32, block: u32) -> Self {
        assert!((1..=64).contains(&width));
        assert!(block >= 1);
        CarrySkipAdder { width, block }
    }

    /// Longest carry path in gate levels for one operand pair: simulate
    /// the carry front through ripple/skip decisions.
    fn carry_path_levels(&self, a: u64, b: u64) -> u32 {
        let g = a & b;
        let p = a ^ b;
        let mut longest = 0u32;
        // For each generate position, walk the carry forward.
        for i in 0..self.width {
            if g >> i & 1 == 0 {
                continue;
            }
            let mut levels = 1u32; // the generate itself
            let mut pos = i + 1;
            while pos < self.width && p >> pos & 1 == 1 {
                let block_start = (pos / self.block) * self.block;
                let block_end = (block_start + self.block).min(self.width);
                // Can we skip the whole remaining block?
                let all_prop = (block_start..block_end).all(|j| p >> j & 1 == 1);
                if all_prop && pos == block_start && block_end <= self.width {
                    levels += 1; // one skip-mux level for the block
                    pos = block_end;
                } else {
                    levels += 1; // ripple one position
                    pos += 1;
                }
            }
            longest = longest.max(levels);
        }
        longest
    }
}

impl FunctionalUnit for CarrySkipAdder {
    fn width(&self) -> u32 {
        self.width
    }

    fn compute(&self, a: u64, b: u64) -> u64 {
        a.wrapping_add(b) & mask(self.width)
    }

    fn delay_levels(&self, a: u64, b: u64) -> u32 {
        let m = mask(self.width);
        self.carry_path_levels(a & m, b & m) + 2
    }

    fn worst_delay_levels(&self) -> u32 {
        // Ripple through the first block, skip the middle blocks, ripple
        // into the last: block + blocks + block, conservatively.
        let blocks = self.width.div_ceil(self.block);
        2 * self.block + blocks + 2
    }

    fn name(&self) -> String {
        format!("csk{}x{}", self.width, self.block)
    }
}

/// A `width × width` radix-4 Booth multiplier.
///
/// Delay model: each non-zero Booth digit contributes one partial-product
/// accumulation level; the final carry-propagate add contributes a fixed
/// tail. Sparse bit patterns (runs of 0s *or* 1s) recode to few non-zero
/// digits and finish early — even for large magnitudes, unlike the array
/// multiplier.
#[derive(Clone, Copy, Debug)]
pub struct BoothMultiplier {
    width: u32,
}

impl BoothMultiplier {
    /// Creates a `width`-bit Booth multiplier.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 32.
    pub fn new(width: u32) -> Self {
        assert!((1..=32).contains(&width));
        BoothMultiplier { width }
    }

    /// Number of non-zero radix-4 Booth digits of `x`.
    pub fn nonzero_booth_digits(&self, x: u64) -> u32 {
        let x = x & mask(self.width);
        let mut count = 0;
        let digits = self.width.div_ceil(2);
        for d in 0..digits {
            let i = 2 * d;
            let b_m1 = if i == 0 { 0 } else { x >> (i - 1) & 1 };
            let b0 = x >> i & 1;
            let b1 = x >> (i + 1) & 1;
            // digit = -2*b1 + b0 + b_m1 ∈ {-2,-1,0,1,2}
            let digit = b0 as i32 + b_m1 as i32 - 2 * b1 as i32;
            if digit != 0 {
                count += 1;
            }
        }
        count
    }
}

impl FunctionalUnit for BoothMultiplier {
    fn width(&self) -> u32 {
        self.width
    }

    fn compute(&self, a: u64, b: u64) -> u64 {
        (a & mask(self.width)).wrapping_mul(b & mask(self.width)) & mask(self.width)
    }

    fn delay_levels(&self, a: u64, b: u64) -> u32 {
        // Recode the operand with fewer non-zero digits (commutative).
        let da = self.nonzero_booth_digits(a & mask(self.width));
        let db = self.nonzero_booth_digits(b & mask(self.width));
        let active = da.min(db);
        if active == 0 {
            return 1;
        }
        // One accumulation level per active digit + final CPA tail.
        active + self.width / 4 + 2
    }

    fn worst_delay_levels(&self) -> u32 {
        self.width.div_ceil(2) + self.width / 4 + 2
    }

    fn name(&self) -> String {
        format!("booth{}", self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{measure_p, OperandDistribution};
    use crate::tau::Tau;
    use crate::units::{ArrayMultiplier, RippleCarryAdder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cla_is_fast_and_flat() {
        let cla = CarryLookaheadAdder::new(16);
        let rca = RippleCarryAdder::new(16);
        assert!(cla.worst_delay_levels() < rca.worst_delay_levels());
        // Operand-independent except the trivial case.
        assert_eq!(cla.delay_levels(1, 0xFFFF), cla.worst_delay_levels());
        assert_eq!(cla.delay_levels(0x00F0, 0x0F00), 2); // no carries
        assert_eq!(cla.compute(0xFFFF, 1), 0);
    }

    #[test]
    fn cla_makes_a_useless_tau() {
        // Telescoping a CLA: essentially nothing lands strictly between
        // the trivial and worst delays, so P is degenerate.
        let cla = CarryLookaheadAdder::new(16);
        let tau = Tau::new(cla, cla.worst_delay_levels() - 1);
        let mut rng = StdRng::seed_from_u64(1);
        let p = measure_p(&tau, OperandDistribution::Uniform, 4000, &mut rng);
        assert!(p < 0.05, "CLA P = {p}");
    }

    #[test]
    fn carry_skip_between_ripple_and_cla() {
        let skip = CarrySkipAdder::new(16, 4);
        let rca = RippleCarryAdder::new(16);
        assert!(skip.worst_delay_levels() < rca.worst_delay_levels());
        assert_eq!(skip.compute(1234, 4321), 5555);
        // Skipping: 8 + 0xFFF8 -> generate at bit 3, long propagate run
        // gets skipped block-wise, so delay ≪ ripple's.
        let d_skip = skip.delay_levels(8, 0xFFF8);
        let d_rip = rca.delay_levels(8, 0xFFF8);
        assert!(d_skip < d_rip, "skip {d_skip} vs ripple {d_rip}");
        // No-carry operands are fast.
        assert!(skip.delay_levels(0x5555, 0xAAAA & !1) <= 3);
        // Delay never exceeds worst case.
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..2000 {
            let a: u64 = rand::Rng::random::<u64>(&mut rng) & 0xFFFF;
            let b: u64 = rand::Rng::random::<u64>(&mut rng) & 0xFFFF;
            assert!(
                skip.delay_levels(a, b) <= skip.worst_delay_levels(),
                "{a:#x}+{b:#x}"
            );
        }
    }

    #[test]
    fn booth_digit_counting() {
        let m = BoothMultiplier::new(16);
        assert_eq!(m.nonzero_booth_digits(0), 0);
        assert_eq!(m.nonzero_booth_digits(1), 1);
        // A run of ones recodes into 2 non-zero digits (+-): 0b0111_1110.
        assert!(m.nonzero_booth_digits(0b0111_1110) <= 2);
        // Alternating bits are the worst case for Booth.
        assert_eq!(m.nonzero_booth_digits(0xAAAA), 8);
        assert_eq!(m.compute(123, 45), 123 * 45);
    }

    #[test]
    fn booth_favours_sparse_not_small() {
        let booth = BoothMultiplier::new(16);
        let array = ArrayMultiplier::new(16);
        // 0xFF00 is large in magnitude but sparse in Booth digits.
        let sparse_large = 0xFF00u64;
        let dense_small = 0x0155u64; // alternating low bits
        assert!(booth.delay_levels(sparse_large, 3) < booth.delay_levels(dense_small, 0xAAAA));
        // The array multiplier sees it the other way around.
        assert!(array.delay_levels(sparse_large, 3) > array.delay_levels(dense_small, 0x3));
    }

    #[test]
    fn booth_tau_has_useful_p_on_uniform_data() {
        // Unlike the array multiplier (magnitude-driven), Booth telescoping
        // splits uniform data non-trivially.
        let booth = BoothMultiplier::new(16);
        let tau = Tau::new(booth, booth.worst_delay_levels() - 3);
        let mut rng = StdRng::seed_from_u64(3);
        let p = measure_p(&tau, OperandDistribution::Uniform, 6000, &mut rng);
        assert!(p > 0.1 && p < 0.999, "booth P = {p}");
    }
}
