//! # tauhls-json — deterministic JSON for artifact snapshots
//!
//! The workspace writes machine-readable copies of the paper artifacts
//! (Table 1, Table 2, sweep curves) and snapshot-tests them byte-for-byte
//! against checked-in golden files under `results/`. That demands a JSON
//! emitter that is (a) dependency-free, so the workspace builds offline,
//! and (b) *deterministic*: object keys keep insertion order and floats
//! print via Rust's shortest-roundtrip formatting, which is identical on
//! every platform.
//!
//! # Examples
//!
//! ```
//! use tauhls_json::Json;
//!
//! let doc = Json::object([
//!     ("name", Json::from("fir5")),
//!     ("cycles", Json::from(5usize)),
//!     ("averages", Json::array([5.5f64.into(), 6.25f64.into()])),
//! ]);
//! assert_eq!(doc.to_compact(), r#"{"name":"fir5","cycles":5,"averages":[5.5,6.25]}"#);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (serialized without a decimal point).
    Int(i64),
    /// An unsigned integer (for counts exceeding `i64`).
    UInt(u64),
    /// A finite float, printed with shortest-roundtrip formatting.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An ordered key-value map.
    Object(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::UInt(v as u64)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

/// Types that render themselves as a [`Json`] value.
pub trait ToJson {
    /// The JSON representation.
    fn to_json(&self) -> Json;
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn array(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(items.into_iter().collect())
    }

    /// An array of floats.
    pub fn floats<'a>(items: impl IntoIterator<Item = &'a f64>) -> Json {
        Json::Array(items.into_iter().map(|&f| Json::Float(f)).collect())
    }

    /// Serializes without whitespace.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation and a trailing newline —
    /// the canonical form for checked-in golden files.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_seq(out, indent, level, '[', ']', items.len(), |out, i, lvl| {
                    items[i].write(out, indent, lvl)
                });
            }
            Json::Object(pairs) => {
                write_seq(out, indent, level, '{', '}', pairs.len(), |out, i, lvl| {
                    let (k, v) = &pairs[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, lvl);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..(level + 1) * width {
                out.push(' ');
            }
        }
        item(out, i, level + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..level * width {
            out.push(' ');
        }
    }
    out.push(close);
}

/// Writes a float deterministically: integral values gain a `.0` suffix so
/// they stay distinguishable from integers; non-finite values (which JSON
/// cannot express) become `null`.
fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{v:.1}");
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_compact(), "null");
        assert_eq!(Json::from(true).to_compact(), "true");
        assert_eq!(Json::from(-3i64).to_compact(), "-3");
        assert_eq!(Json::from(7usize).to_compact(), "7");
        assert_eq!(Json::from(2.5).to_compact(), "2.5");
        assert_eq!(Json::from(2.0).to_compact(), "2.0");
        assert_eq!(Json::Float(f64::NAN).to_compact(), "null");
        assert_eq!(Json::from("a\"b\n").to_compact(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn pretty_printing_is_stable() {
        let doc = Json::object([
            ("b", Json::from(1i64)),
            ("a", Json::array([Json::from("x"), Json::Null])),
            ("empty", Json::array([])),
        ]);
        let expected =
            "{\n  \"b\": 1,\n  \"a\": [\n    \"x\",\n    null\n  ],\n  \"empty\": []\n}\n";
        assert_eq!(doc.to_pretty(), expected);
        // Insertion order is preserved (no key sorting).
        assert!(doc.to_pretty().find("\"b\"").unwrap() < doc.to_pretty().find("\"a\"").unwrap());
    }

    #[test]
    fn float_roundtrip_formatting() {
        // Shortest-roundtrip: parse(back) == original.
        for &v in &[0.1, 1.0 / 3.0, 68.5812, 1e-9, 12345.678901] {
            let s = Json::from(v).to_compact();
            let back: f64 = s.parse().unwrap();
            assert_eq!(back, v, "{s}");
        }
    }

    #[test]
    fn nested_compact() {
        let doc = Json::object([(
            "rows",
            Json::array([Json::object([("n", Json::from(1i64))])]),
        )]);
        assert_eq!(doc.to_compact(), r#"{"rows":[{"n":1}]}"#);
    }
}
