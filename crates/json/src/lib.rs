//! # tauhls-json — deterministic JSON for artifact snapshots
//!
//! The workspace writes machine-readable copies of the paper artifacts
//! (Table 1, Table 2, sweep curves) and snapshot-tests them byte-for-byte
//! against checked-in golden files under `results/`. That demands a JSON
//! emitter that is (a) dependency-free, so the workspace builds offline,
//! and (b) *deterministic*: object keys keep insertion order and floats
//! print via Rust's shortest-roundtrip formatting, which is identical on
//! every platform.
//!
//! The simulation service added on top of the batch engine also needs the
//! opposite direction: [`Json::parse`] is a strict, recursion-bounded
//! RFC 8259 parser with byte-offset error positions, so hostile request
//! bodies come back as a [`JsonParseError`] — never a panic or a stack
//! overflow.
//!
//! # Examples
//!
//! ```
//! use tauhls_json::Json;
//!
//! let doc = Json::object([
//!     ("name", Json::from("fir5")),
//!     ("cycles", Json::from(5usize)),
//!     ("averages", Json::array([5.5f64.into(), 6.25f64.into()])),
//! ]);
//! assert_eq!(doc.to_compact(), r#"{"name":"fir5","cycles":5,"averages":[5.5,6.25]}"#);
//! assert_eq!(Json::parse(&doc.to_compact()).unwrap(), doc);
//!
//! let err = Json::parse(r#"{"p": [0.9, oops]}"#).unwrap_err();
//! assert_eq!(err.offset, 12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::borrow::Cow;
use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (serialized without a decimal point).
    Int(i64),
    /// An unsigned integer (for counts exceeding `i64`).
    UInt(u64),
    /// A finite float, printed with shortest-roundtrip formatting.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An ordered key-value map.
    Object(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::UInt(v as u64)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

/// Types that render themselves as a [`Json`] value.
pub trait ToJson {
    /// The JSON representation.
    fn to_json(&self) -> Json;
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn array(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(items.into_iter().collect())
    }

    /// An array of floats.
    pub fn floats<'a>(items: impl IntoIterator<Item = &'a f64>) -> Json {
        Json::Array(items.into_iter().map(|&f| Json::Float(f)).collect())
    }

    /// Serializes without whitespace.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation and a trailing newline —
    /// the canonical form for checked-in golden files.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_seq(out, indent, level, '[', ']', items.len(), |out, i, lvl| {
                    items[i].write(out, indent, lvl)
                });
            }
            Json::Object(pairs) => {
                write_seq(out, indent, level, '{', '}', pairs.len(), |out, i, lvl| {
                    let (k, v) = &pairs[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, lvl);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..(level + 1) * width {
                out.push(' ');
            }
        }
        item(out, i, level + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..level * width {
            out.push(' ');
        }
    }
    out.push(close);
}

/// Writes a float deterministically: integral values gain a `.0` suffix so
/// they stay distinguishable from integers; non-finite values (which JSON
/// cannot express) become `null`.
fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{v:.1}");
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Accessors — the small read API the job-spec layer navigates parsed
// documents with.
// ---------------------------------------------------------------------------

impl Json {
    /// Looks up the first entry named `key` in an object (`None` for
    /// non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, for `UInt` and non-negative `Int`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as an `f64`, for any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::UInt(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The items, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The `(key, value)` entries, if this is an `Object`.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Borrowed values — zero-copy view over a parsed input buffer.
// ---------------------------------------------------------------------------

/// A JSON value borrowing from the input it was parsed from.
///
/// Strings and object keys are [`Cow`]s: escape-free segments borrow the
/// request buffer directly and only strings containing escapes allocate.
/// This is the value type hot request paths (the simulation service's
/// `/v1/*` decode) navigate; [`Json::parse`] is a thin wrapper that calls
/// [`JsonRef::parse`] and deep-copies via [`JsonRef::into_owned`].
#[derive(Clone, Debug, PartialEq)]
pub enum JsonRef<'a> {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A finite float.
    Float(f64),
    /// A string; borrows the input unless it contained escapes.
    Str(Cow<'a, str>),
    /// An ordered array.
    Array(Vec<JsonRef<'a>>),
    /// An ordered key-value map.
    Object(Vec<(Cow<'a, str>, JsonRef<'a>)>),
}

impl<'a> JsonRef<'a> {
    /// Looks up the first entry named `key` in an object (`None` for
    /// non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonRef<'a>> {
        match self {
            JsonRef::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonRef::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonRef::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, for `UInt` and non-negative `Int`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonRef::UInt(v) => Some(*v),
            JsonRef::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as an `f64`, for any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonRef::Int(v) => Some(*v as f64),
            JsonRef::UInt(v) => Some(*v as f64),
            JsonRef::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The items, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[JsonRef<'a>]> {
        match self {
            JsonRef::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The `(key, value)` entries, if this is an `Object`.
    pub fn as_object(&self) -> Option<&[(Cow<'a, str>, JsonRef<'a>)]> {
        match self {
            JsonRef::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Deep-copies into an owned [`Json`].
    pub fn into_owned(self) -> Json {
        match self {
            JsonRef::Null => Json::Null,
            JsonRef::Bool(b) => Json::Bool(b),
            JsonRef::Int(v) => Json::Int(v),
            JsonRef::UInt(v) => Json::UInt(v),
            JsonRef::Float(v) => Json::Float(v),
            JsonRef::Str(s) => Json::Str(s.into_owned()),
            JsonRef::Array(items) => {
                Json::Array(items.into_iter().map(JsonRef::into_owned).collect())
            }
            JsonRef::Object(pairs) => Json::Object(
                pairs
                    .into_iter()
                    .map(|(k, v)| (k.into_owned(), v.into_owned()))
                    .collect(),
            ),
        }
    }

    /// A borrowed view over an owned [`Json`]. Strings borrow; arrays and
    /// objects rebuild their spines (cheap `Vec`s of references), which
    /// lets owned documents flow through `JsonRef`-consuming code paths.
    pub fn from_owned(doc: &'a Json) -> JsonRef<'a> {
        match doc {
            Json::Null => JsonRef::Null,
            Json::Bool(b) => JsonRef::Bool(*b),
            Json::Int(v) => JsonRef::Int(*v),
            Json::UInt(v) => JsonRef::UInt(*v),
            Json::Float(v) => JsonRef::Float(*v),
            Json::Str(s) => JsonRef::Str(Cow::Borrowed(s)),
            Json::Array(items) => JsonRef::Array(items.iter().map(JsonRef::from_owned).collect()),
            Json::Object(pairs) => JsonRef::Object(
                pairs
                    .iter()
                    .map(|(k, v)| (Cow::Borrowed(k.as_str()), JsonRef::from_owned(v)))
                    .collect(),
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing — strict RFC 8259, bounded recursion, byte-offset diagnostics.
// ---------------------------------------------------------------------------

/// Maximum container nesting depth [`Json::parse`] accepts. Deeper inputs
/// fail with a `JsonParseError` instead of exhausting the stack.
pub const MAX_PARSE_DEPTH: usize = 128;

/// A parse failure: the byte offset where it was detected plus a message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input at which parsing failed.
    pub offset: usize,
    /// Human-readable description of what was expected or rejected.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

impl Json {
    /// Parses a strict JSON document.
    ///
    /// * **Strict**: no trailing commas, comments, `NaN`/`Infinity`,
    ///   leading zeros, or unescaped control characters; exactly one
    ///   document with nothing but whitespace after it.
    /// * **Bounded**: containers may nest at most [`MAX_PARSE_DEPTH`]
    ///   levels, so adversarial inputs cannot overflow the stack.
    /// * **Positioned**: every error carries the byte offset at which it
    ///   was detected (see [`JsonParseError`]).
    ///
    /// Numbers parse into the canonical variants the emitter produces:
    /// non-negative integers become `UInt`, negative integers `Int`, and
    /// anything with a fraction or exponent `Float` (integers too large
    /// for 64 bits also fall back to `Float`). Consequently
    /// `parse(to_compact(j)) == j` holds for every document built from
    /// those canonical variants.
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        JsonRef::parse(text).map(JsonRef::into_owned)
    }
}

impl<'a> JsonRef<'a> {
    /// Parses a strict JSON document into a borrowed value.
    ///
    /// Identical grammar, limits, and diagnostics to [`Json::parse`] —
    /// the owned parser is this one plus a deep copy — but escape-free
    /// strings and keys borrow `text` instead of allocating.
    pub fn parse(text: &'a str) -> Result<JsonRef<'a>, JsonParseError> {
        let mut p = Parser {
            text,
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = p.parse_value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return p.err(p.pos, "trailing characters after the JSON document");
        }
        Ok(value)
    }
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, offset: usize, message: impl Into<String>) -> Result<T, JsonParseError> {
        Err(JsonParseError {
            offset,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<JsonRef<'a>, JsonParseError> {
        self.skip_ws();
        let Some(b) = self.peek() else {
            return self.err(self.pos, "unexpected end of input; expected a JSON value");
        };
        match b {
            b'{' => self.parse_object(depth),
            b'[' => self.parse_array(depth),
            b'"' => Ok(JsonRef::Str(self.parse_string()?)),
            b't' => self.parse_literal("true", JsonRef::Bool(true)),
            b'f' => self.parse_literal("false", JsonRef::Bool(false)),
            b'n' => self.parse_literal("null", JsonRef::Null),
            b'-' | b'0'..=b'9' => self.parse_number(),
            _ => {
                let found = self
                    .text
                    .get(self.pos..)
                    .and_then(|t| t.chars().next())
                    .unwrap_or('\u{fffd}');
                self.err(self.pos, format!("expected a JSON value, found {found:?}"))
            }
        }
    }

    fn parse_literal(
        &mut self,
        literal: &str,
        value: JsonRef<'a>,
    ) -> Result<JsonRef<'a>, JsonParseError> {
        let end = self.pos + literal.len();
        if self.bytes.len() >= end && &self.bytes[self.pos..end] == literal.as_bytes() {
            self.pos = end;
            Ok(value)
        } else {
            self.err(self.pos, format!("expected the literal {literal:?}"))
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<JsonRef<'a>, JsonParseError> {
        if depth >= MAX_PARSE_DEPTH {
            return self.err(
                self.pos,
                format!("nesting exceeds the depth limit of {MAX_PARSE_DEPTH}"),
            );
        }
        self.pos += 1; // '{'
        self.skip_ws();
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonRef::Object(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return self.err(self.pos, "expected a string object key");
            }
            let key = self.parse_string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return self.err(self.pos, "expected ':' after object key");
            }
            self.pos += 1;
            let value = self.parse_value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonRef::Object(pairs));
                }
                _ => return self.err(self.pos, "expected ',' or '}' in object"),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<JsonRef<'a>, JsonParseError> {
        if depth >= MAX_PARSE_DEPTH {
            return self.err(
                self.pos,
                format!("nesting exceeds the depth limit of {MAX_PARSE_DEPTH}"),
            );
        }
        self.pos += 1; // '['
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonRef::Array(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonRef::Array(items));
                }
                _ => return self.err(self.pos, "expected ',' or ']' in array"),
            }
        }
    }

    /// Parses a string, borrowing the input when it contains no escapes —
    /// the common case for spec field names and benchmark identifiers —
    /// and building an owned buffer only once the first escape appears.
    fn parse_string(&mut self) -> Result<Cow<'a, str>, JsonParseError> {
        let open_quote = self.pos;
        self.pos += 1; // '"'
        let mut out = String::new();
        let mut borrowed = true;
        let mut segment_start = self.pos;
        loop {
            let Some(b) = self.peek() else {
                return self.err(open_quote, "unterminated string");
            };
            match b {
                b'"' => {
                    let segment = &self.text[segment_start..self.pos];
                    self.pos += 1;
                    if borrowed {
                        return Ok(Cow::Borrowed(segment));
                    }
                    out.push_str(segment);
                    return Ok(Cow::Owned(out));
                }
                b'\\' => {
                    out.push_str(&self.text[segment_start..self.pos]);
                    borrowed = false;
                    let escape_at = self.pos;
                    self.pos += 1;
                    let Some(e) = self.peek() else {
                        return self.err(escape_at, "unterminated escape sequence");
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.parse_unicode_escape(escape_at)?),
                        _ => return self.err(escape_at, "invalid escape sequence"),
                    }
                    segment_start = self.pos;
                }
                0x00..=0x1f => return self.err(self.pos, "unescaped control character in string"),
                _ => {
                    // Advance one whole UTF-8 character; the input is a
                    // &str, so the leading byte determines the width.
                    self.pos += match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                }
            }
        }
    }

    /// Parses the `XXXX` of a `\uXXXX` escape (the `\u` is consumed),
    /// combining surrogate pairs. Lone or malformed surrogates — escapes
    /// that would decode to invalid UTF-8 — are rejected.
    fn parse_unicode_escape(&mut self, escape_at: usize) -> Result<char, JsonParseError> {
        let high = self.parse_hex4(escape_at)?;
        if (0xdc00..=0xdfff).contains(&high) {
            return self.err(escape_at, "invalid \\u escape: unpaired low surrogate");
        }
        if (0xd800..=0xdbff).contains(&high) {
            if self.peek() != Some(b'\\') || self.bytes.get(self.pos + 1) != Some(&b'u') {
                return self.err(escape_at, "invalid \\u escape: lone high surrogate");
            }
            self.pos += 2;
            let low = self.parse_hex4(escape_at)?;
            if !(0xdc00..=0xdfff).contains(&low) {
                return self.err(escape_at, "invalid \\u escape: expected a low surrogate");
            }
            let code = 0x10000 + ((high - 0xd800) << 10) + (low - 0xdc00);
            return char::from_u32(code)
                .ok_or(())
                .or_else(|()| self.err(escape_at, "invalid \\u escape"));
        }
        char::from_u32(high)
            .ok_or(())
            .or_else(|()| self.err(escape_at, "invalid \\u escape"))
    }

    fn parse_hex4(&mut self, escape_at: usize) -> Result<u32, JsonParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return self.err(escape_at, "truncated \\u escape");
        }
        let mut code: u32 = 0;
        for &b in &self.bytes[self.pos..end] {
            let digit = match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => return self.err(escape_at, "invalid hex digit in \\u escape"),
            };
            code = (code << 4) | u32::from(digit);
        }
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<JsonRef<'a>, JsonParseError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return self.err(start, "leading zero in number");
                }
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return self.err(self.pos, "expected a digit"),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return self.err(self.pos, "expected a digit after the decimal point");
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return self.err(self.pos, "expected a digit in the exponent");
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let literal = &self.text[start..self.pos];
        if !is_float {
            if negative {
                if let Ok(v) = literal.parse::<i64>() {
                    return Ok(JsonRef::Int(v));
                }
            } else if let Ok(v) = literal.parse::<u64>() {
                return Ok(JsonRef::UInt(v));
            }
            // Integers beyond 64 bits fall back to the float path below.
        }
        match literal.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(JsonRef::Float(v)),
            _ => self.err(start, "number does not fit in an f64"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_compact(), "null");
        assert_eq!(Json::from(true).to_compact(), "true");
        assert_eq!(Json::from(-3i64).to_compact(), "-3");
        assert_eq!(Json::from(7usize).to_compact(), "7");
        assert_eq!(Json::from(2.5).to_compact(), "2.5");
        assert_eq!(Json::from(2.0).to_compact(), "2.0");
        assert_eq!(Json::Float(f64::NAN).to_compact(), "null");
        assert_eq!(Json::from("a\"b\n").to_compact(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn pretty_printing_is_stable() {
        let doc = Json::object([
            ("b", Json::from(1i64)),
            ("a", Json::array([Json::from("x"), Json::Null])),
            ("empty", Json::array([])),
        ]);
        let expected =
            "{\n  \"b\": 1,\n  \"a\": [\n    \"x\",\n    null\n  ],\n  \"empty\": []\n}\n";
        assert_eq!(doc.to_pretty(), expected);
        // Insertion order is preserved (no key sorting).
        assert!(doc.to_pretty().find("\"b\"").unwrap() < doc.to_pretty().find("\"a\"").unwrap());
    }

    #[test]
    fn float_roundtrip_formatting() {
        // Shortest-roundtrip: parse(back) == original.
        for &v in &[0.1, 1.0 / 3.0, 68.5812, 1e-9, 12345.678901] {
            let s = Json::from(v).to_compact();
            let back: f64 = s.parse().unwrap();
            assert_eq!(back, v, "{s}");
        }
    }

    #[test]
    fn nested_compact() {
        let doc = Json::object([(
            "rows",
            Json::array([Json::object([("n", Json::from(1i64))])]),
        )]);
        assert_eq!(doc.to_compact(), r#"{"rows":[{"n":1}]}"#);
    }

    #[test]
    fn parse_scalars_into_canonical_variants() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("0").unwrap(), Json::UInt(0));
        assert_eq!(Json::parse("-0").unwrap(), Json::Int(0));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
        assert_eq!(
            Json::parse("-9223372036854775808").unwrap(),
            Json::Int(i64::MIN)
        );
        assert_eq!(Json::parse("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(Json::parse("2.0").unwrap(), Json::Float(2.0));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("-1.5E-2").unwrap(), Json::Float(-0.015));
        // 2^64 has no exact u64; it falls back to the float path.
        assert_eq!(
            Json::parse("18446744073709551616").unwrap(),
            Json::Float(18446744073709551616.0)
        );
        assert_eq!(Json::parse("  \"a b\"\n").unwrap(), Json::from("a b"));
    }

    #[test]
    fn parse_strings_and_escapes() {
        assert_eq!(
            Json::parse(r#""a\"b\\c\/d\n\t\r\b\f""#).unwrap(),
            Json::from("a\"b\\c/d\n\t\r\u{8}\u{c}")
        );
        assert_eq!(Json::parse(r#""\u0041""#).unwrap(), Json::from("A"));
        assert_eq!(Json::parse(r#""\u00e9""#).unwrap(), Json::from("é"));
        // Surrogate pair → U+1D11E (musical G clef).
        assert_eq!(
            Json::parse(r#""\uD834\uDD1E""#).unwrap(),
            Json::from("\u{1d11e}")
        );
        // Raw multibyte characters pass through untouched.
        assert_eq!(
            Json::parse("\"héllo — 🎉\"").unwrap(),
            Json::from("héllo — 🎉")
        );
    }

    #[test]
    fn parse_rejects_hostile_inputs_with_offsets() {
        let cases: &[(&str, usize)] = &[
            ("", 0),
            ("  ", 2),
            ("tru", 0),
            ("nul", 0),
            ("01", 0),
            ("+1", 0),
            ("1.", 2),
            (".5", 0),
            ("1e", 2),
            ("--1", 1),
            ("\"abc", 0),
            ("\"a\\q\"", 2),
            ("\"a\\u12\"", 2),
            ("\"a\\uZZZZ\"", 2),
            ("\"\\uD800\"", 1),
            ("\"\\uD834x\"", 1),
            ("\"\\uDD1E\"", 1),
            ("\"\\uD834\\u0041\"", 1),
            ("\"a\nb\"", 2),
            ("[1, x]", 4),
            ("[1 2]", 3),
            ("[1,]", 3),
            ("{\"a\" 1}", 5),
            ("{\"a\":1,}", 7),
            ("{a:1}", 1),
            ("{\"a\":1} x", 8),
            ("1 1", 2),
            ("1e999", 0),
            ("NaN", 0),
        ];
        for (text, offset) in cases {
            let err = Json::parse(text).unwrap_err();
            assert_eq!(err.offset, *offset, "{text:?}: {}", err.message);
            assert!(err.to_string().starts_with(&format!("byte {offset}")));
        }
    }

    #[test]
    fn parse_depth_limit_blocks_deep_nesting() {
        let deep_ok = format!(
            "{}0{}",
            "[".repeat(MAX_PARSE_DEPTH),
            "]".repeat(MAX_PARSE_DEPTH)
        );
        assert!(Json::parse(&deep_ok).is_ok());
        let too_deep = format!(
            "{}0{}",
            "[".repeat(MAX_PARSE_DEPTH + 1),
            "]".repeat(MAX_PARSE_DEPTH + 1)
        );
        let err = Json::parse(&too_deep).unwrap_err();
        assert!(err.message.contains("depth limit"));
        // A pathological unclosed run must error, not overflow the stack.
        assert!(Json::parse(&"[".repeat(100_000)).is_err());
        assert!(Json::parse(&"{\"k\":".repeat(100_000)).is_err());
    }

    #[test]
    fn parse_roundtrips_both_renderings() {
        let doc = Json::object([
            ("name", Json::from("fir5")),
            ("neg", Json::Int(-7)),
            ("count", Json::UInt(3)),
            ("p", Json::floats(&[0.9, 0.5])),
            ("flag", Json::Bool(false)),
            ("nested", Json::array([Json::Null, Json::Object(vec![])])),
        ]);
        assert_eq!(Json::parse(&doc.to_compact()).unwrap(), doc);
        assert_eq!(Json::parse(&doc.to_pretty()).unwrap(), doc);
    }

    #[test]
    fn accessors_navigate_parsed_documents() {
        let doc = Json::parse(r#"{"a":{"b":[1,2.5,"x",true]},"n":-3}"#).unwrap();
        let b = doc.get("a").and_then(|a| a.get("b")).unwrap();
        let items = b.as_array().unwrap();
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(2.5));
        assert_eq!(items[2].as_str(), Some("x"));
        assert_eq!(items[3].as_bool(), Some(true));
        assert_eq!(doc.get("n").unwrap().as_u64(), None);
        assert_eq!(doc.get("n").unwrap().as_f64(), Some(-3.0));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(doc.as_object().unwrap().len(), 2);
        assert!(items[0].as_object().is_none());
        assert!(doc.get("a").unwrap().get("b").unwrap().get("c").is_none());
    }

    #[test]
    fn borrowed_parse_borrows_escape_free_strings() {
        let text = r#"{"dfg":"ewf","label":"a\nb","p":[0.9,0.5]}"#;
        let doc = JsonRef::parse(text).unwrap();
        let pairs = doc.as_object().unwrap();
        // Escape-free keys and values borrow the input buffer.
        assert!(matches!(pairs[0].0, Cow::Borrowed(_)));
        assert!(matches!(pairs[0].1, JsonRef::Str(Cow::Borrowed(_))));
        // A string with an escape must allocate.
        assert!(matches!(pairs[1].1, JsonRef::Str(Cow::Owned(_))));
        assert_eq!(doc.get("label").unwrap().as_str(), Some("a\nb"));
    }

    #[test]
    fn borrowed_parse_matches_owned_parse() {
        let cases = [
            r#"{"a":1,"b":[true,null,-2,3.5,"xA"],"c":{"d":"e"}}"#,
            "[]",
            "{}",
            r#""only a string""#,
            "18446744073709551615",
        ];
        for text in cases {
            let owned = Json::parse(text).unwrap();
            let borrowed = JsonRef::parse(text).unwrap();
            assert_eq!(borrowed.clone().into_owned(), owned, "{text}");
            // And the reverse bridge agrees with the borrowed parse.
            assert_eq!(JsonRef::from_owned(&owned).into_owned(), owned, "{text}");
        }
    }

    #[test]
    fn borrowed_accessors_navigate() {
        let text = r#"{"a":{"b":[1,2.5,"x",true]},"n":-3}"#;
        let doc = JsonRef::parse(text).unwrap();
        let b = doc.get("a").and_then(|a| a.get("b")).unwrap();
        let items = b.as_array().unwrap();
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(2.5));
        assert_eq!(items[2].as_str(), Some("x"));
        assert_eq!(items[3].as_bool(), Some(true));
        assert_eq!(doc.get("n").unwrap().as_u64(), None);
        assert_eq!(doc.get("n").unwrap().as_f64(), Some(-3.0));
        assert_eq!(doc.as_object().unwrap().len(), 2);
    }
}
