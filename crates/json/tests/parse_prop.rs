//! Round-trip and hostile-input properties for `Json::parse`, in the
//! style of `crates/dfg/tests/parse_fuzz.rs`: every input must come back
//! as a value or a positioned `JsonParseError` — never a panic — and any
//! document built from the canonical variants must survive
//! `parse(to_compact(j)) == j` and `parse(to_pretty(j)) == j` unchanged.

use tauhls_check::{forall, Gen};
use tauhls_json::{Json, MAX_PARSE_DEPTH};

/// Characters biased toward the escaping-sensitive corners of strings.
const STRING_CHARS: [char; 16] = [
    'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{8}', '\u{c}', '\u{1}', 'é', '∀', '🎉',
];

/// Tokens biased toward the JSON grammar, so mutation explores the
/// parser's deep paths instead of bouncing off the first byte.
const TOKENS: [&str; 20] = [
    "{",
    "}",
    "[",
    "]",
    ":",
    ",",
    "\"",
    "\\u12",
    "\\",
    "null",
    "true",
    "false",
    "-",
    "0",
    "1e5",
    "0.5",
    "9223372036854775807",
    "18446744073709551616",
    "\"k\"",
    "é",
];

fn arbitrary_string(g: &mut Gen) -> String {
    let len = g.usize(0..12);
    (0..len).map(|_| *g.choose(&STRING_CHARS)).collect()
}

/// A document built only from the canonical variants `parse` produces:
/// `UInt` for non-negative integers, `Int` for negative ones, finite
/// `Float`s, and arbitrary strings/arrays/objects (duplicate keys
/// included — objects are ordered multimaps).
fn arbitrary_canonical(g: &mut Gen, depth: usize) -> Json {
    let scalar_only = depth >= 4;
    match g.usize(0..if scalar_only { 6 } else { 8 }) {
        0 => Json::Null,
        1 => Json::Bool(g.bool(0.5)),
        2 => Json::UInt(g.u64(0..u64::MAX)),
        3 => Json::Int(-(g.i64(1..i64::MAX))),
        4 => {
            // Mix integral floats (printed as "x.0") with fractional ones.
            let v = if g.bool(0.3) {
                g.i64(-1_000_000..1_000_000) as f64
            } else {
                (g.unit_f64() - 0.5) * 10f64.powi(g.i64(-12..13) as i32)
            };
            Json::Float(v)
        }
        5 => Json::Str(arbitrary_string(g)),
        6 => {
            let len = g.usize(0..5);
            Json::Array(
                (0..len)
                    .map(|_| arbitrary_canonical(g, depth + 1))
                    .collect(),
            )
        }
        _ => {
            let len = g.usize(0..5);
            Json::Object(
                (0..len)
                    .map(|_| (arbitrary_string(g), arbitrary_canonical(g, depth + 1)))
                    .collect(),
            )
        }
    }
}

#[test]
fn compact_and_pretty_roundtrip() {
    forall("json_roundtrip", 400, |g| {
        let doc = arbitrary_canonical(g, 0);
        let compact = doc.to_compact();
        assert_eq!(
            Json::parse(&compact).unwrap_or_else(|e| panic!("{e} in {compact}")),
            doc
        );
        assert_eq!(Json::parse(&doc.to_pretty()).unwrap(), doc);
    });
}

#[test]
fn truncated_documents_error_instead_of_panicking() {
    forall("json_truncation", 120, |g| {
        // Objects/arrays only: every strict prefix of a closed container
        // is incomplete, so truncation must always be an error.
        let doc = Json::object([
            ("k", arbitrary_canonical(g, 2)),
            ("rest", Json::array([arbitrary_canonical(g, 3)])),
        ]);
        let compact = doc.to_compact();
        let boundaries: Vec<usize> = compact.char_indices().map(|(i, _)| i).collect();
        let cut = *g.choose(&boundaries);
        let prefix = &compact[..cut];
        assert!(
            Json::parse(prefix).is_err(),
            "prefix parsed: {prefix:?} of {compact:?}"
        );
    });
}

#[test]
fn token_soup_never_panics() {
    forall("json_token_soup", 500, |g| {
        let tokens = g.usize(0..20);
        let mut text = String::new();
        for _ in 0..tokens {
            // The deref pins `choose`'s element type to `&str` (see the
            // same pattern in `crates/dfg/tests/parse_fuzz.rs`).
            #[allow(clippy::explicit_auto_deref)]
            text.push_str(*g.choose(&TOKENS));
            if g.bool(0.3) {
                text.push(' ');
            }
        }
        // Parse must terminate with a Result; on error, the offset points
        // inside (or one past) the input.
        if let Err(e) = Json::parse(&text) {
            assert!(e.offset <= text.len(), "{e} out of range for {text:?}");
            assert!(!e.message.is_empty());
        }
    });
}

#[test]
fn mutated_wellformed_documents_never_panic() {
    forall("json_mutation", 200, |g| {
        let doc = arbitrary_canonical(g, 0);
        let mut text = doc.to_compact().into_bytes();
        let flips = g.usize(1..4);
        for _ in 0..flips {
            let at = g.usize(0..text.len());
            text[at] = g.u8(0..128);
        }
        // Mutation can break UTF-8; parse only accepts &str, so invalid
        // sequences are rejected before the parser even runs.
        if let Ok(text) = String::from_utf8(text) {
            let _ = Json::parse(&text);
        }
    });
}

#[test]
fn depth_limit_is_exact() {
    let nest = |n: usize| format!("{}1{}", "[".repeat(n), "]".repeat(n));
    assert!(Json::parse(&nest(MAX_PARSE_DEPTH)).is_ok());
    assert!(Json::parse(&nest(MAX_PARSE_DEPTH + 1)).is_err());
}
