//! Property tests for the two-level minimization engines: whatever the
//! engine, the result must implement the specified function exactly, never
//! grow the canonical cover, and compose correctly with complementation.

use tauhls_check::{forall, Gen};
use tauhls_logic::{minimize_auto, minimize_exact, minimize_heuristic, Cover, Cube, TruthTable};

/// Draws a random incompletely-specified function of 2-5 variables.
fn draw_table(g: &mut Gen) -> TruthTable {
    let n = g.usize(2..6);
    let cells = g.vec(1 << n, |g| g.u8(0..3));
    TruthTable::from_fn(n, |m| match cells[m as usize] {
        0 => Some(false),
        1 => Some(true),
        _ => None,
    })
}

/// Draws a random cover: 1-6 variables, up to 7 cubes.
fn draw_cover(g: &mut Gen) -> Cover {
    let n = g.usize(1..7);
    let num_cubes = g.usize(0..8);
    let cubes = g.vec(num_cubes, |g| Cube::new(g.u64(0..1 << n), g.u64(0..1 << n)));
    Cover::from_cubes(n, cubes)
}

fn dc_cover(t: &TruthTable) -> Cover {
    Cover::from_cubes(
        t.num_vars(),
        t.dcset()
            .into_iter()
            .map(|m| Cube::minterm(t.num_vars(), m)),
    )
}

#[test]
fn exact_minimization_implements_function() {
    forall("exact_minimization_implements_function", 128, |g| {
        let t = draw_table(g);
        let c = minimize_exact(&t);
        assert!(t.is_implemented_by(&c));
        // Every cube is within on ∪ dc (prime implicants never cover the
        // off-set).
        for cube in c.cubes() {
            for m in cube.minterms(t.num_vars()) {
                assert!(t.get(m) != tauhls_logic::Tri::Off, "cube covers off-set");
            }
        }
    });
}

#[test]
fn heuristic_equals_function_and_never_grows() {
    forall("heuristic_equals_function_and_never_grows", 128, |g| {
        let t = draw_table(g);
        let canon = t.canonical_cover();
        let dc = dc_cover(&t);
        let h = minimize_heuristic(&canon, &dc);
        assert!(t.is_implemented_by(&h));
        assert!(h.len() <= canon.len());
        // Auto engine agrees on implementation too.
        let a = minimize_auto(&canon, &dc, 12);
        assert!(t.is_implemented_by(&a));
    });
}

#[test]
fn exact_never_larger_than_heuristic_in_cubes() {
    forall("exact_never_larger_than_heuristic_in_cubes", 128, |g| {
        let t = draw_table(g);
        let exact = minimize_exact(&t);
        let h = minimize_heuristic(&t.canonical_cover(), &dc_cover(&t));
        assert!(
            exact.len() <= h.len(),
            "exact {} cubes vs heuristic {}",
            exact.len(),
            h.len()
        );
    });
}

#[test]
fn complement_laws() {
    forall("complement_laws", 128, |g| {
        let f = draw_cover(g);
        let n = f.num_vars();
        let g2 = f.complement();
        // F ∧ ¬F = 0 (pointwise), F ∨ ¬F = 1.
        for m in 0..1u64 << n {
            assert!(f.evaluate(m) != g2.evaluate(m));
        }
        assert!(f.or(&g2).is_tautology());
        assert!(g2.complement().equivalent(&f));
    });
}

#[test]
fn tautology_matches_enumeration() {
    forall("tautology_matches_enumeration", 128, |g| {
        let f = draw_cover(g);
        let n = f.num_vars();
        let all = (0..1u64 << n).all(|m| f.evaluate(m));
        assert_eq!(f.is_tautology(), all);
    });
}

#[test]
fn equivalence_is_reflexive_and_detects_difference() {
    forall(
        "equivalence_is_reflexive_and_detects_difference",
        128,
        |g| {
            let f = draw_cover(g);
            assert!(f.equivalent(&f));
            let g2 = f.complement();
            let nonconstant = !f.is_empty() && !f.is_tautology();
            if nonconstant {
                assert!(!f.equivalent(&g2));
            }
        },
    );
}
