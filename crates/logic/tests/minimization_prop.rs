//! Property tests for the two-level minimization engines: whatever the
//! engine, the result must implement the specified function exactly, never
//! grow the canonical cover, and compose correctly with complementation.

use proptest::prelude::*;
use tauhls_logic::{
    minimize_auto, minimize_exact, minimize_heuristic, Cover, Cube, TruthTable,
};

fn table_strategy() -> impl Strategy<Value = TruthTable> {
    (2usize..6).prop_flat_map(|n| {
        proptest::collection::vec(0u8..3, 1 << n).prop_map(move |cells| {
            TruthTable::from_fn(n, |m| match cells[m as usize] {
                0 => Some(false),
                1 => Some(true),
                _ => None,
            })
        })
    })
}

fn cover_strategy() -> impl Strategy<Value = Cover> {
    (1usize..7).prop_flat_map(|n| {
        proptest::collection::vec((0u64..1 << n, 0u64..1 << n), 0..8).prop_map(move |cubes| {
            Cover::from_cubes(n, cubes.into_iter().map(|(m, v)| Cube::new(m, v)))
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn exact_minimization_implements_function(t in table_strategy()) {
        let c = minimize_exact(&t);
        prop_assert!(t.is_implemented_by(&c));
        // Every cube is within on ∪ dc (prime implicants never cover the
        // off-set).
        for cube in c.cubes() {
            for m in cube.minterms(t.num_vars()) {
                prop_assert!(t.get(m) != tauhls_logic::Tri::Off, "cube covers off-set");
            }
        }
    }

    #[test]
    fn heuristic_equals_function_and_never_grows(t in table_strategy()) {
        let canon = t.canonical_cover();
        let dc = Cover::from_cubes(
            t.num_vars(),
            t.dcset().into_iter().map(|m| Cube::minterm(t.num_vars(), m)),
        );
        let h = minimize_heuristic(&canon, &dc);
        prop_assert!(t.is_implemented_by(&h));
        prop_assert!(h.len() <= canon.len());
        // Auto engine agrees on implementation too.
        let a = minimize_auto(&canon, &dc, 12);
        prop_assert!(t.is_implemented_by(&a));
    }

    #[test]
    fn exact_never_larger_than_heuristic_in_cubes(t in table_strategy()) {
        let exact = minimize_exact(&t);
        let h = minimize_heuristic(&t.canonical_cover(), &Cover::from_cubes(
            t.num_vars(),
            t.dcset().into_iter().map(|m| Cube::minterm(t.num_vars(), m)),
        ));
        prop_assert!(exact.len() <= h.len(),
            "exact {} cubes vs heuristic {}", exact.len(), h.len());
    }

    #[test]
    fn complement_laws(f in cover_strategy()) {
        let n = f.num_vars();
        let g = f.complement();
        // F ∧ ¬F = 0 (pointwise), F ∨ ¬F = 1.
        for m in 0..1u64 << n {
            prop_assert!(f.evaluate(m) != g.evaluate(m));
        }
        prop_assert!(f.or(&g).is_tautology());
        prop_assert!(g.complement().equivalent(&f));
    }

    #[test]
    fn tautology_matches_enumeration(f in cover_strategy()) {
        let n = f.num_vars();
        let all = (0..1u64 << n).all(|m| f.evaluate(m));
        prop_assert_eq!(f.is_tautology(), all);
    }

    #[test]
    fn equivalence_is_reflexive_and_detects_difference(f in cover_strategy()) {
        prop_assert!(f.equivalent(&f));
        let g = f.complement();
        let nonconstant = !f.is_empty() && !f.is_tautology();
        if nonconstant {
            prop_assert!(!f.equivalent(&g));
        }
    }
}
