//! Boolean guard expressions over indexed variables.
//!
//! Controller transitions are guarded by small boolean expressions over
//! completion signals (e.g. `C_M1' · C_PO(3)`). [`Expr`] is the AST used to
//! build those guards; it can be evaluated directly or lowered to a
//! sum-of-products [`Cover`] for synthesis.

use crate::cover::Cover;
use crate::cube::Cube;
use std::fmt;

/// A boolean expression over variables `x0, x1, ...`.
///
/// # Examples
///
/// ```
/// use tauhls_logic::Expr;
/// let g = Expr::var(0).and(Expr::var(1).not());
/// assert!(g.evaluate(|v| v == 0));
/// assert!(!g.evaluate(|_| true));
/// let cover = g.to_cover(2);
/// assert!(cover.evaluate(0b01));
/// assert!(!cover.evaluate(0b11));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Constant true or false.
    Const(bool),
    /// The variable with the given index.
    Var(usize),
    /// Negation.
    Not(Box<Expr>),
    /// Conjunction of all children (true when empty).
    And(Vec<Expr>),
    /// Disjunction of all children (false when empty).
    Or(Vec<Expr>),
}

impl Expr {
    /// The constant-true expression.
    pub const fn truth() -> Self {
        Expr::Const(true)
    }

    /// The constant-false expression.
    pub const fn falsity() -> Self {
        Expr::Const(false)
    }

    /// The variable `x{index}`.
    pub const fn var(index: usize) -> Self {
        Expr::Var(index)
    }

    /// Logical negation (with light simplification of constants and
    /// double negation).
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        match self {
            Expr::Const(b) => Expr::Const(!b),
            Expr::Not(e) => *e,
            e => Expr::Not(Box::new(e)),
        }
    }

    /// Logical conjunction (flattens nested conjunctions, folds constants).
    pub fn and(self, rhs: Expr) -> Self {
        match (self, rhs) {
            (Expr::Const(false), _) | (_, Expr::Const(false)) => Expr::Const(false),
            (Expr::Const(true), e) | (e, Expr::Const(true)) => e,
            (Expr::And(mut a), Expr::And(b)) => {
                a.extend(b);
                Expr::And(a)
            }
            (Expr::And(mut a), e) => {
                a.push(e);
                Expr::And(a)
            }
            (e, Expr::And(mut b)) => {
                b.insert(0, e);
                Expr::And(b)
            }
            (a, b) => Expr::And(vec![a, b]),
        }
    }

    /// Logical disjunction (flattens nested disjunctions, folds constants).
    pub fn or(self, rhs: Expr) -> Self {
        match (self, rhs) {
            (Expr::Const(true), _) | (_, Expr::Const(true)) => Expr::Const(true),
            (Expr::Const(false), e) | (e, Expr::Const(false)) => e,
            (Expr::Or(mut a), Expr::Or(b)) => {
                a.extend(b);
                Expr::Or(a)
            }
            (Expr::Or(mut a), e) => {
                a.push(e);
                Expr::Or(a)
            }
            (e, Expr::Or(mut b)) => {
                b.insert(0, e);
                Expr::Or(b)
            }
            (a, b) => Expr::Or(vec![a, b]),
        }
    }

    /// Conjunction over an iterator of expressions.
    pub fn all(exprs: impl IntoIterator<Item = Expr>) -> Self {
        exprs.into_iter().fold(Expr::truth(), |acc, e| acc.and(e))
    }

    /// Disjunction over an iterator of expressions.
    pub fn any(exprs: impl IntoIterator<Item = Expr>) -> Self {
        exprs.into_iter().fold(Expr::falsity(), |acc, e| acc.or(e))
    }

    /// Evaluates under an assignment given as a predicate on variable index.
    pub fn evaluate(&self, assign: impl Fn(usize) -> bool + Copy) -> bool {
        match self {
            Expr::Const(b) => *b,
            Expr::Var(v) => assign(*v),
            Expr::Not(e) => !e.evaluate(assign),
            Expr::And(es) => es.iter().all(|e| e.evaluate(assign)),
            Expr::Or(es) => es.iter().any(|e| e.evaluate(assign)),
        }
    }

    /// Evaluates under an assignment given as a bit mask (bit `i` = `x_i`).
    pub fn evaluate_mask(&self, mask: u64) -> bool {
        self.evaluate(|v| mask & (1 << v) != 0)
    }

    /// The set of variable indices appearing in the expression.
    pub fn variables(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => out.push(*v),
            Expr::Not(e) => e.collect_vars(out),
            Expr::And(es) | Expr::Or(es) => {
                for e in es {
                    e.collect_vars(out);
                }
            }
        }
    }

    /// Lowers the expression to a sum-of-products cover over `n` variables.
    ///
    /// # Panics
    ///
    /// Panics if the expression uses a variable `>= n`.
    pub fn to_cover(&self, n: usize) -> Cover {
        match self {
            Expr::Const(true) => Cover::tautology_cover(n),
            Expr::Const(false) => Cover::empty(n),
            Expr::Var(v) => Cover::from_cubes(n, [Cube::from_literals(&[(*v, true)])]),
            Expr::Not(e) => complement(&e.to_cover(n)),
            Expr::And(es) => {
                let mut acc = Cover::tautology_cover(n);
                for e in es {
                    acc = acc.and(&e.to_cover(n));
                    acc.remove_contained();
                }
                acc
            }
            Expr::Or(es) => {
                let mut acc = Cover::empty(n);
                for e in es {
                    acc = acc.or(&e.to_cover(n));
                }
                acc.remove_contained();
                acc
            }
        }
    }
}

/// Complements a cover by De Morgan expansion (product of complemented
/// cubes). Exponential in the worst case but guards are tiny.
fn complement(c: &Cover) -> Cover {
    let n = c.num_vars();
    let mut acc = Cover::tautology_cover(n);
    for cube in c.cubes() {
        // Complement of a single cube: sum of negated literals.
        let mut comp = Cover::empty(n);
        for v in 0..n {
            if let Some(pol) = cube.literal(v) {
                comp.push(Cube::from_literals(&[(v, !pol)]));
            }
        }
        if cube.literal_count() == 0 {
            return Cover::empty(n); // complement of tautology
        }
        acc = acc.and(&comp);
        acc.remove_contained();
    }
    acc
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(b) => write!(f, "{}", if *b { "1" } else { "0" }),
            Expr::Var(v) => write!(f, "x{v}"),
            Expr::Not(e) => write!(f, "({:?})'", e),
            Expr::And(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, "·")?;
                    }
                    write!(f, "{e:?}")?;
                }
                write!(f, ")")
            }
            Expr::Or(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{e:?}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding() {
        assert_eq!(Expr::truth().and(Expr::var(3)), Expr::var(3));
        assert_eq!(Expr::falsity().and(Expr::var(3)), Expr::falsity());
        assert_eq!(Expr::falsity().or(Expr::var(3)), Expr::var(3));
        assert_eq!(Expr::truth().or(Expr::var(3)), Expr::truth());
        assert_eq!(Expr::var(1).not().not(), Expr::var(1));
    }

    #[test]
    fn cover_matches_evaluation() {
        let exprs = [
            Expr::var(0).and(Expr::var(1)).or(Expr::var(2).not()),
            Expr::all([Expr::var(0), Expr::var(1).not(), Expr::var(2)]),
            Expr::any([Expr::var(0).not(), Expr::var(2)]).not(),
            Expr::var(0)
                .and(Expr::var(1))
                .not()
                .or(Expr::var(2).and(Expr::var(0).not())),
        ];
        for e in &exprs {
            let c = e.to_cover(3);
            for m in 0..8u64 {
                assert_eq!(
                    c.evaluate(m),
                    e.evaluate_mask(m),
                    "mismatch for {e:?} at {m:#b}"
                );
            }
        }
    }

    #[test]
    fn variables_collected_sorted_unique() {
        let e = Expr::var(3).and(Expr::var(1)).or(Expr::var(3).not());
        assert_eq!(e.variables(), vec![1, 3]);
    }

    #[test]
    fn all_and_any_empty() {
        assert_eq!(Expr::all([]), Expr::truth());
        assert_eq!(Expr::any([]), Expr::falsity());
    }

    #[test]
    fn complement_of_tautology_is_empty() {
        let e = Expr::truth().not();
        assert!(e.to_cover(3).is_empty());
    }
}
