//! Gate-equivalent area model for synthesized two-level logic.
//!
//! The paper's Table 1 reports control-unit area split into combinational
//! and sequential parts. Absolute μm² for a 2003 cell library are not
//! reproducible, so we use the standard *gate-equivalent* (GE) proxy:
//! a two-level implementation is costed from its AND-plane literals, its
//! OR-plane inputs, and shared input inverters, while the sequential part
//! is a fixed cost per flip-flop. Relative comparisons between controller
//! styles — which is what Table 1 argues — are preserved.

use crate::cover::Cover;

/// Cost coefficients (in gate equivalents) for the area model.
///
/// The defaults approximate a conventional standard-cell library where a
/// 2-input NAND is 1 GE and a scannable D flip-flop is ~22 GE — chosen so
/// that magnitudes land in the same range as the paper's Table 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AreaModel {
    /// Cost per AND-plane input (one literal of one product term).
    pub and_per_input: f64,
    /// Cost per OR-plane input (one product term of one output).
    pub or_per_input: f64,
    /// Cost of one input inverter (complemented literals share one
    /// inverter per variable across the whole block).
    pub inverter: f64,
    /// Cost of one D flip-flop.
    pub flip_flop: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel {
            and_per_input: 2.0,
            or_per_input: 2.0,
            inverter: 1.0,
            flip_flop: 22.0,
        }
    }
}

/// Area report for one synthesized block.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AreaReport {
    /// Combinational gate-equivalents (AND/OR planes + inverters).
    pub combinational: f64,
    /// Sequential gate-equivalents (flip-flops).
    pub sequential: f64,
    /// Number of flip-flops.
    pub flip_flops: usize,
    /// Total literals over all output covers.
    pub literals: u32,
    /// Total product terms over all output covers.
    pub cubes: usize,
}

impl AreaReport {
    /// Total area (combinational + sequential).
    pub fn total(&self) -> f64 {
        self.combinational + self.sequential
    }

    /// Sums two reports (used to aggregate the distributed controllers).
    pub fn combine(&self, other: &AreaReport) -> AreaReport {
        AreaReport {
            combinational: self.combinational + other.combinational,
            sequential: self.sequential + other.sequential,
            flip_flops: self.flip_flops + other.flip_flops,
            literals: self.literals + other.literals,
            cubes: self.cubes + other.cubes,
        }
    }
}

impl AreaModel {
    /// Costs a multi-output two-level block given one minimized cover per
    /// output, plus `flip_flops` state bits.
    ///
    /// Input inverters are shared: each variable that appears complemented
    /// in *any* cube of *any* output contributes one inverter. Product terms
    /// are **not** shared between outputs (conservative, like PLA row
    /// duplication after single-output minimization).
    ///
    /// # Panics
    ///
    /// Panics if the covers disagree on variable count.
    pub fn area(&self, outputs: &[Cover], flip_flops: usize) -> AreaReport {
        let mut literals = 0u32;
        let mut cubes = 0usize;
        let mut and_inputs = 0u64;
        let mut or_inputs = 0u64;
        let mut neg_vars = 0u64; // bitmask of variables needing an inverter

        if let Some(first) = outputs.first() {
            for o in outputs {
                assert_eq!(o.num_vars(), first.num_vars(), "mixed variable counts");
            }
        }
        for cover in outputs {
            cubes += cover.len();
            literals += cover.literal_count();
            if cover.len() > 1 {
                or_inputs += cover.len() as u64;
            }
            for cube in cover.cubes() {
                if cube.literal_count() > 1 {
                    and_inputs += u64::from(cube.literal_count());
                }
                neg_vars |= cube.mask() & !cube.val();
            }
        }
        let combinational = self.and_per_input * and_inputs as f64
            + self.or_per_input * or_inputs as f64
            + self.inverter * neg_vars.count_ones() as f64;
        AreaReport {
            combinational,
            sequential: self.flip_flop * flip_flops as f64,
            flip_flops,
            literals,
            cubes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::Cover;

    #[test]
    fn empty_block_costs_only_ffs() {
        let m = AreaModel::default();
        let r = m.area(&[], 3);
        assert_eq!(r.combinational, 0.0);
        assert_eq!(r.sequential, 66.0);
        assert_eq!(r.flip_flops, 3);
        assert_eq!(r.total(), 66.0);
    }

    #[test]
    fn single_literal_output_needs_no_gates() {
        let m = AreaModel::default();
        let f = Cover::parse_pcn(2, &["1-"]).unwrap();
        let r = m.area(&[f], 0);
        // One cube, one positive literal: no AND, no OR, no inverter.
        assert_eq!(r.combinational, 0.0);
        assert_eq!(r.literals, 1);
    }

    #[test]
    fn xor_costs_two_ands_one_or_two_inverters() {
        let m = AreaModel::default();
        let f = Cover::parse_pcn(2, &["10", "01"]).unwrap();
        let r = m.area(&[f], 0);
        // AND inputs: 2+2 = 4 -> 8; OR inputs: 2 -> 4; inverters: x0', x1' -> 2.
        assert_eq!(r.combinational, 8.0 + 4.0 + 2.0);
        assert_eq!(r.cubes, 2);
    }

    #[test]
    fn inverters_shared_across_outputs() {
        let m = AreaModel::default();
        let f = Cover::parse_pcn(2, &["0-"]).unwrap();
        let g = Cover::parse_pcn(2, &["01"]).unwrap();
        let r = m.area(&[f.clone(), g], 0);
        // x0' needed by both outputs, x1 positive: exactly 1 inverter.
        // f: single negative literal (no AND); g: 2-input AND (4).
        assert_eq!(r.combinational, 4.0 + 1.0);
        let solo = m.area(&[f], 0);
        assert_eq!(solo.combinational, 1.0);
    }

    #[test]
    fn combine_adds_fields() {
        let a = AreaReport {
            combinational: 10.0,
            sequential: 44.0,
            flip_flops: 2,
            literals: 7,
            cubes: 3,
        };
        let b = a.combine(&a);
        assert_eq!(b.total(), 108.0);
        assert_eq!(b.flip_flops, 4);
        assert_eq!(b.literals, 14);
    }
}
