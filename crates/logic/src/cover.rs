//! Covers: sums of product terms (two-level SOP representations).

use crate::cube::Cube;
use std::fmt;

/// A sum-of-products representation of a single-output boolean function
/// over `num_vars` variables.
///
/// # Examples
///
/// ```
/// use tauhls_logic::{Cover, Cube};
/// let mut f = Cover::empty(3);
/// f.push(Cube::parse_pcn("1--").unwrap()); // x0
/// f.push(Cube::parse_pcn("-11").unwrap()); // x1·x2
/// assert!(f.evaluate(0b001)); // x0 = 1
/// assert!(f.evaluate(0b110)); // x1 = x2 = 1
/// assert!(!f.evaluate(0b010));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Cover {
    num_vars: usize,
    cubes: Vec<Cube>,
}

impl Cover {
    /// The constant-false function over `n` variables.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn empty(n: usize) -> Self {
        assert!(n <= crate::cube::MAX_VARS);
        Cover {
            num_vars: n,
            cubes: Vec::new(),
        }
    }

    /// The constant-true function over `n` variables.
    pub fn tautology_cover(n: usize) -> Self {
        let mut c = Cover::empty(n);
        c.push(Cube::universe());
        c
    }

    /// Builds a cover from a list of cubes.
    pub fn from_cubes(n: usize, cubes: impl IntoIterator<Item = Cube>) -> Self {
        let mut c = Cover::empty(n);
        for cube in cubes {
            c.push(cube);
        }
        c
    }

    /// Parses a cover from positional-cube strings (one per product term).
    ///
    /// Returns `None` if any row fails to parse or has the wrong width.
    pub fn parse_pcn(n: usize, rows: &[&str]) -> Option<Self> {
        let mut c = Cover::empty(n);
        for r in rows {
            if r.len() != n {
                return None;
            }
            c.push(Cube::parse_pcn(r)?);
        }
        Some(c)
    }

    /// Number of input variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The product terms.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Number of product terms.
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// True iff the cover has no product terms (constant false).
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Appends a product term.
    ///
    /// # Panics
    ///
    /// Panics if the cube uses a variable `>= num_vars`.
    pub fn push(&mut self, cube: Cube) {
        let space = if self.num_vars == 64 {
            !0u64
        } else {
            (1u64 << self.num_vars) - 1
        };
        assert!(
            cube.mask() & !space == 0,
            "cube uses variables outside the {}-variable space",
            self.num_vars
        );
        self.cubes.push(cube);
    }

    /// Evaluates the function at minterm `m`.
    pub fn evaluate(&self, m: u64) -> bool {
        self.cubes.iter().any(|c| c.covers_minterm(m))
    }

    /// Total number of literals over all product terms (the primary
    /// combinational-area proxy).
    pub fn literal_count(&self) -> u32 {
        self.cubes.iter().map(Cube::literal_count).sum()
    }

    /// Disjunction with another cover over the same variables.
    ///
    /// # Panics
    ///
    /// Panics on mismatched variable counts.
    pub fn or(&self, other: &Cover) -> Cover {
        assert_eq!(self.num_vars, other.num_vars);
        let mut c = self.clone();
        c.cubes.extend_from_slice(&other.cubes);
        c
    }

    /// Conjunction with another cover (pairwise cube intersections).
    ///
    /// # Panics
    ///
    /// Panics on mismatched variable counts.
    pub fn and(&self, other: &Cover) -> Cover {
        assert_eq!(self.num_vars, other.num_vars);
        let mut out = Cover::empty(self.num_vars);
        for a in &self.cubes {
            for b in &other.cubes {
                if let Some(c) = a.intersect(b) {
                    out.cubes.push(c);
                }
            }
        }
        out
    }

    /// Removes product terms single-cube-contained in another term of the
    /// cover. Cheap cleanup; not a full irredundancy pass.
    pub fn remove_contained(&mut self) {
        let cubes = std::mem::take(&mut self.cubes);
        let mut kept: Vec<Cube> = Vec::with_capacity(cubes.len());
        'outer: for (i, c) in cubes.iter().enumerate() {
            for (j, d) in cubes.iter().enumerate() {
                if i != j && d.covers(c) && (!c.covers(d) || j < i) {
                    continue 'outer;
                }
            }
            kept.push(*c);
        }
        self.cubes = kept;
    }

    /// Shannon cofactor with respect to a single literal: the function with
    /// variable `v` fixed to `pol`, expressed over the same variable space
    /// (variable `v` no longer appears).
    pub fn cofactor_literal(&self, v: usize, pol: bool) -> Cover {
        let mut out = Cover::empty(self.num_vars);
        for c in &self.cubes {
            match c.literal(v) {
                Some(p) if p != pol => {} // conflicting term vanishes
                _ => out.cubes.push(c.raise(v)),
            }
        }
        out
    }

    /// Cofactor with respect to a cube `q` (the cover restricted to the
    /// subspace where `q` holds, with `q`'s variables raised).
    pub fn cofactor_cube(&self, q: &Cube) -> Cover {
        let mut out = Cover::empty(self.num_vars);
        'next: for c in &self.cubes {
            let mut r = *c;
            for v in 0..self.num_vars {
                if let Some(pq) = q.literal(v) {
                    match r.literal(v) {
                        Some(pc) if pc != pq => continue 'next,
                        _ => r = r.raise(v),
                    }
                }
            }
            out.cubes.push(r);
        }
        out
    }

    /// True iff the cover evaluates to 1 for *every* minterm (tautology).
    ///
    /// Uses recursive Shannon expansion on the most-bound variable — the
    /// standard unate-recursive paradigm — so it does not enumerate the
    /// minterm space.
    pub fn is_tautology(&self) -> bool {
        // Fast outs.
        if self.cubes.iter().any(|c| c.literal_count() == 0) {
            return true;
        }
        if self.cubes.is_empty() {
            return false;
        }
        // Unate reduction: for a cover unate in v (say, only positive
        // occurrences), F(v=0) <= F(v=1) pointwise, so F is a tautology iff
        // the cofactor at the *weak* polarity (v = 0) is.
        let mut pos = 0u64;
        let mut neg = 0u64;
        for c in &self.cubes {
            pos |= c.mask() & c.val();
            neg |= c.mask() & !c.val();
        }
        let used = pos | neg;
        let unate_pos = pos & !neg;
        let unate_neg = neg & !pos;
        if unate_pos != 0 {
            let v = unate_pos.trailing_zeros() as usize;
            return self.cofactor_literal(v, false).is_tautology();
        }
        if unate_neg != 0 {
            let v = unate_neg.trailing_zeros() as usize;
            return self.cofactor_literal(v, true).is_tautology();
        }
        // Binate: split on the most frequently used binate variable.
        let mut best = usize::MAX;
        let mut best_cnt = 0u32;
        for v in 0..self.num_vars {
            if used & (1 << v) != 0 {
                let cnt = self.cubes.iter().filter(|c| c.literal(v).is_some()).count() as u32;
                if cnt > best_cnt {
                    best_cnt = cnt;
                    best = v;
                }
            }
        }
        debug_assert!(best != usize::MAX);
        self.cofactor_literal(best, false).is_tautology()
            && self.cofactor_literal(best, true).is_tautology()
    }

    /// True iff every minterm of `cube` is covered by this cover.
    pub fn covers_cube(&self, cube: &Cube) -> bool {
        self.cofactor_cube(cube).is_tautology()
    }

    /// True iff the two covers denote the same function.
    pub fn equivalent(&self, other: &Cover) -> bool {
        assert_eq!(self.num_vars, other.num_vars);
        self.cubes.iter().all(|c| other.covers_cube(c))
            && other.cubes.iter().all(|c| self.covers_cube(c))
    }

    /// The complement cover, computed by the unate-recursive paradigm:
    /// `¬F = x'·¬F|x=0 + x·¬F|x=1` on a most-bound splitting variable,
    /// with tautology/empty short-circuits. No minterm enumeration.
    ///
    /// # Examples
    ///
    /// ```
    /// use tauhls_logic::Cover;
    /// let f = Cover::parse_pcn(3, &["11-", "--1"]).unwrap();
    /// let g = f.complement();
    /// for m in 0..8 {
    ///     assert_eq!(g.evaluate(m), !f.evaluate(m));
    /// }
    /// ```
    pub fn complement(&self) -> Cover {
        let n = self.num_vars;
        if self.cubes.is_empty() {
            return Cover::tautology_cover(n);
        }
        if self.cubes.iter().any(|c| c.literal_count() == 0) {
            return Cover::empty(n);
        }
        // Single-cube fast path: De Morgan.
        if self.cubes.len() == 1 {
            let cube = self.cubes[0];
            let mut out = Cover::empty(n);
            for v in 0..n {
                if let Some(pol) = cube.literal(v) {
                    out.push(Cube::from_literals(&[(v, !pol)]));
                }
            }
            return out;
        }
        // Split on the most frequently used variable.
        let mut best = 0usize;
        let mut best_cnt = 0usize;
        for v in 0..n {
            let cnt = self.cubes.iter().filter(|c| c.literal(v).is_some()).count();
            if cnt > best_cnt {
                best_cnt = cnt;
                best = v;
            }
        }
        let f0 = self.cofactor_literal(best, false).complement();
        let f1 = self.cofactor_literal(best, true).complement();
        let mut out = Cover::empty(n);
        for c in f0.cubes() {
            out.push(c.with_literal(best, false));
        }
        for c in f1.cubes() {
            out.push(c.with_literal(best, true));
        }
        out.remove_contained();
        out
    }

    /// Exhaustively enumerates the on-set. Only sensible for small `n`.
    pub fn onset_minterms(&self) -> Vec<u64> {
        assert!(self.num_vars <= 24, "onset enumeration limited to 24 vars");
        (0..1u64 << self.num_vars)
            .filter(|&m| self.evaluate(m))
            .collect()
    }
}

impl fmt::Debug for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Cover({} vars, {} cubes):",
            self.num_vars,
            self.cubes.len()
        )?;
        for c in &self.cubes {
            writeln!(f, "  {}", c.to_pcn_string(self.num_vars))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor2() -> Cover {
        Cover::parse_pcn(2, &["10", "01"]).unwrap()
    }

    #[test]
    fn evaluate_xor() {
        let f = xor2();
        assert!(!f.evaluate(0b00));
        assert!(f.evaluate(0b01));
        assert!(f.evaluate(0b10));
        assert!(!f.evaluate(0b11));
        assert_eq!(f.literal_count(), 4);
    }

    #[test]
    fn tautology_detection() {
        assert!(Cover::tautology_cover(4).is_tautology());
        assert!(!xor2().is_tautology());
        // x + x' is a tautology.
        let f = Cover::parse_pcn(1, &["1", "0"]).unwrap();
        assert!(f.is_tautology());
        // Three-variable tautology needing recursion: a + a'b + a'b'.
        let g = Cover::parse_pcn(3, &["1--", "01-", "00-"]).unwrap();
        assert!(g.is_tautology());
        // Drop one term -> not a tautology.
        let h = Cover::parse_pcn(3, &["1--", "01-"]).unwrap();
        assert!(!h.is_tautology());
        assert!(!Cover::empty(3).is_tautology());
    }

    #[test]
    fn covers_cube_and_equivalence() {
        let f = Cover::parse_pcn(3, &["1--", "-1-"]).unwrap();
        assert!(f.covers_cube(&Cube::parse_pcn("11-").unwrap()));
        assert!(f.covers_cube(&Cube::parse_pcn("10-").unwrap()));
        assert!(!f.covers_cube(&Cube::parse_pcn("00-").unwrap()));
        let g = Cover::parse_pcn(3, &["-1-", "1--", "11-"]).unwrap();
        assert!(f.equivalent(&g));
        let h = Cover::parse_pcn(3, &["-1-"]).unwrap();
        assert!(!f.equivalent(&h));
    }

    #[test]
    fn and_or_match_semantics() {
        let a = Cover::parse_pcn(3, &["1--"]).unwrap();
        let b = Cover::parse_pcn(3, &["-1-", "--1"]).unwrap();
        let and = a.and(&b);
        let or = a.or(&b);
        for m in 0..8u64 {
            assert_eq!(and.evaluate(m), a.evaluate(m) && b.evaluate(m));
            assert_eq!(or.evaluate(m), a.evaluate(m) || b.evaluate(m));
        }
    }

    #[test]
    fn cofactor_literal_semantics() {
        let f = Cover::parse_pcn(3, &["10-", "0-1"]).unwrap();
        let f0 = f.cofactor_literal(0, false);
        let f1 = f.cofactor_literal(0, true);
        for m in 0..8u64 {
            // Cofactor ignores bit 0 of m by construction.
            assert_eq!(f0.evaluate(m & !1), f.evaluate(m & !1));
            assert_eq!(f1.evaluate(m | 1), f.evaluate(m | 1));
        }
    }

    #[test]
    fn remove_contained_keeps_function() {
        let mut f = Cover::parse_pcn(3, &["1--", "11-", "111", "0-0"]).unwrap();
        let orig = f.clone();
        f.remove_contained();
        assert_eq!(f.len(), 2);
        assert!(f.equivalent(&orig));
    }

    #[test]
    fn remove_contained_handles_duplicates() {
        let mut f = Cover::parse_pcn(2, &["1-", "1-"]).unwrap();
        f.remove_contained();
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn onset_enumeration() {
        let f = xor2();
        assert_eq!(f.onset_minterms(), vec![1, 2]);
    }

    #[test]
    fn complement_correct_on_random_covers() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..40 {
            let n = rng.random_range(1..=6usize);
            let cubes = rng.random_range(0..6usize);
            let mut f = Cover::empty(n);
            for _ in 0..cubes {
                let mask = rng.random_range(0..1u64 << n);
                let val = rng.random_range(0..1u64 << n);
                f.push(Cube::new(mask, val));
            }
            let g = f.complement();
            for m in 0..1u64 << n {
                assert_eq!(g.evaluate(m), !f.evaluate(m), "n={n} m={m:#b}");
            }
            // Double complement preserves the function.
            let h = g.complement();
            assert!(h.equivalent(&f));
        }
    }

    #[test]
    fn complement_edge_cases() {
        assert!(Cover::empty(4).complement().is_tautology());
        assert!(Cover::tautology_cover(4).complement().is_empty());
        let single = Cover::parse_pcn(3, &["10-"]).unwrap();
        let c = single.complement();
        assert_eq!(c.len(), 2); // x0' + x1
        for m in 0..8u64 {
            assert_eq!(c.evaluate(m), !single.evaluate(m));
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn push_rejects_wide_cube() {
        let mut f = Cover::empty(2);
        f.push(Cube::from_literals(&[(5, true)]));
    }
}
