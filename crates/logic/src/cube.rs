//! Cubes: products of literals over up to 64 boolean variables.
//!
//! A [`Cube`] represents a product term in positional-cube style using two
//! bit masks: `mask` marks the *care* variables (those appearing as a
//! literal) and `val` gives the required polarity of each care variable.
//! Variables outside `mask` are don't-cares within the cube.

use std::fmt;

/// Maximum number of variables representable in a [`Cube`].
pub const MAX_VARS: usize = 64;

/// A product term over boolean variables `x0..x{n-1}`.
///
/// # Examples
///
/// ```
/// use tauhls_logic::Cube;
/// // x0 AND NOT x2 over any width >= 3
/// let c = Cube::from_literals(&[(0, true), (2, false)]);
/// assert!(c.covers_minterm(0b001));
/// assert!(c.covers_minterm(0b011));
/// assert!(!c.covers_minterm(0b101));
/// assert_eq!(c.literal_count(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cube {
    mask: u64,
    val: u64,
}

impl Cube {
    /// The universal cube (true for every minterm): no literals at all.
    pub const fn universe() -> Self {
        Cube { mask: 0, val: 0 }
    }

    /// Creates a cube from raw care-mask and value bits.
    ///
    /// Bits of `val` outside `mask` are ignored (normalized to 0).
    pub const fn new(mask: u64, val: u64) -> Self {
        Cube {
            mask,
            val: val & mask,
        }
    }

    /// Creates a cube that covers exactly one minterm of an `n`-variable space.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn minterm(n: usize, m: u64) -> Self {
        assert!(n <= MAX_VARS, "minterm space wider than {MAX_VARS} vars");
        let mask = if n == MAX_VARS { !0 } else { (1u64 << n) - 1 };
        Cube {
            mask,
            val: m & mask,
        }
    }

    /// Builds a cube from `(variable index, polarity)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if a variable index is `>= 64` or if the same variable appears
    /// with both polarities (an empty product is almost always a bug here;
    /// use [`Cover::empty`](crate::Cover::empty) for the constant-false
    /// function instead).
    pub fn from_literals(lits: &[(usize, bool)]) -> Self {
        let mut c = Cube::universe();
        for &(v, pol) in lits {
            assert!(v < MAX_VARS, "variable index {v} out of range");
            let bit = 1u64 << v;
            if c.mask & bit != 0 {
                assert_eq!(
                    c.val & bit != 0,
                    pol,
                    "variable {v} used with both polarities"
                );
            }
            c.mask |= bit;
            if pol {
                c.val |= bit;
            }
        }
        c
    }

    /// The care mask: bit `i` set iff variable `i` appears as a literal.
    pub const fn mask(&self) -> u64 {
        self.mask
    }

    /// The polarity bits for care variables (0 outside the mask).
    pub const fn val(&self) -> u64 {
        self.val
    }

    /// Number of literals in the product term.
    pub const fn literal_count(&self) -> u32 {
        self.mask.count_ones()
    }

    /// Returns the polarity of variable `v`, or `None` if `v` is a don't-care.
    pub fn literal(&self, v: usize) -> Option<bool> {
        if self.mask & (1 << v) != 0 {
            Some(self.val & (1 << v) != 0)
        } else {
            None
        }
    }

    /// True iff the minterm `m` (bit `i` = value of variable `i`) satisfies
    /// this product term.
    pub const fn covers_minterm(&self, m: u64) -> bool {
        m & self.mask == self.val
    }

    /// True iff every minterm of `other` is also a minterm of `self`.
    pub const fn covers(&self, other: &Cube) -> bool {
        // `self`'s literals must be a subset of `other`'s and agree in value.
        self.mask & other.mask == self.mask && other.val & self.mask == self.val
    }

    /// Intersection of two cubes, or `None` if they are disjoint.
    pub fn intersect(&self, other: &Cube) -> Option<Cube> {
        let conflict = (self.val ^ other.val) & self.mask & other.mask;
        if conflict != 0 {
            return None;
        }
        Some(Cube {
            mask: self.mask | other.mask,
            val: self.val | other.val,
        })
    }

    /// True iff the two cubes share at least one minterm.
    pub fn intersects(&self, other: &Cube) -> bool {
        (self.val ^ other.val) & self.mask & other.mask == 0
    }

    /// The number of variables on which the cubes have opposite polarities.
    ///
    /// Two cubes with equal masks and distance 1 can be merged by the
    /// adjacency theorem `a·x + a·x' = a`.
    pub const fn distance(&self, other: &Cube) -> u32 {
        ((self.val ^ other.val) & self.mask & other.mask).count_ones()
    }

    /// Merges two cubes with identical masks differing in exactly one
    /// variable, dropping that variable. Returns `None` otherwise.
    pub fn merge_adjacent(&self, other: &Cube) -> Option<Cube> {
        if self.mask != other.mask {
            return None;
        }
        let diff = self.val ^ other.val;
        if diff.count_ones() != 1 {
            return None;
        }
        Some(Cube {
            mask: self.mask & !diff,
            val: self.val & !diff,
        })
    }

    /// Removes variable `v` from the product (raises it to don't-care).
    pub fn raise(&self, v: usize) -> Cube {
        let bit = 1u64 << v;
        Cube {
            mask: self.mask & !bit,
            val: self.val & !bit,
        }
    }

    /// Adds or overwrites the literal for variable `v`.
    pub fn with_literal(&self, v: usize, pol: bool) -> Cube {
        let bit = 1u64 << v;
        Cube {
            mask: self.mask | bit,
            val: if pol { self.val | bit } else { self.val & !bit },
        }
    }

    /// Number of minterms covered in an `n`-variable space.
    pub fn minterm_count(&self, n: usize) -> u128 {
        let free = n as u32 - self.literal_count();
        1u128 << free
    }

    /// Iterates over all minterms of this cube within an `n`-variable space.
    ///
    /// Intended for small `n` (exhaustive algorithms); the iterator yields
    /// `2^(n - literals)` values.
    pub fn minterms(&self, n: usize) -> impl Iterator<Item = u64> + '_ {
        let space = if n == MAX_VARS {
            !0u64
        } else {
            (1u64 << n) - 1
        };
        let free = space & !self.mask;
        // Enumerate subsets of `free` via the standard (x - free) & free trick.
        let mut sub = Some(0u64);
        let val = self.val;
        std::iter::from_fn(move || {
            let s = sub?;
            sub = if s == free {
                None
            } else {
                Some((s.wrapping_sub(free)) & free)
            };
            Some(val | s)
        })
    }

    /// Renders the cube as a positional string over `n` variables,
    /// e.g. `"1-0"` for `x0·x2'` with `n = 3` (variable 0 leftmost).
    pub fn to_pcn_string(&self, n: usize) -> String {
        (0..n)
            .map(|v| match self.literal(v) {
                Some(true) => '1',
                Some(false) => '0',
                None => '-',
            })
            .collect()
    }

    /// Parses a positional-cube string such as `"1-0"`.
    ///
    /// Returns `None` on characters other than `0`, `1`, `-` or on length
    /// greater than [`MAX_VARS`].
    pub fn parse_pcn(s: &str) -> Option<Cube> {
        if s.len() > MAX_VARS {
            return None;
        }
        let mut c = Cube::universe();
        for (v, ch) in s.chars().enumerate() {
            match ch {
                '1' => c = c.with_literal(v, true),
                '0' => c = c.with_literal(v, false),
                '-' => {}
                _ => return None,
            }
        }
        Some(c)
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.mask == 0 {
            return write!(f, "Cube(1)");
        }
        write!(f, "Cube(")?;
        let mut first = true;
        for v in 0..MAX_VARS {
            if let Some(pol) = self.literal(v) {
                if !first {
                    write!(f, "·")?;
                }
                first = false;
                write!(f, "x{v}{}", if pol { "" } else { "'" })?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universe_covers_everything() {
        let u = Cube::universe();
        for m in 0..16 {
            assert!(u.covers_minterm(m));
        }
        assert_eq!(u.literal_count(), 0);
    }

    #[test]
    fn minterm_cube_covers_only_itself() {
        let c = Cube::minterm(4, 0b1010);
        assert!(c.covers_minterm(0b1010));
        for m in 0..16 {
            if m != 0b1010 {
                assert!(!c.covers_minterm(m), "covered {m:04b}");
            }
        }
    }

    #[test]
    fn from_literals_roundtrip() {
        let c = Cube::from_literals(&[(1, true), (3, false)]);
        assert_eq!(c.literal(1), Some(true));
        assert_eq!(c.literal(3), Some(false));
        assert_eq!(c.literal(0), None);
        assert_eq!(c.literal_count(), 2);
    }

    #[test]
    #[should_panic(expected = "both polarities")]
    fn conflicting_literals_panic() {
        let _ = Cube::from_literals(&[(1, true), (1, false)]);
    }

    #[test]
    fn covers_relation() {
        let big = Cube::from_literals(&[(0, true)]);
        let small = Cube::from_literals(&[(0, true), (1, false)]);
        assert!(big.covers(&small));
        assert!(!small.covers(&big));
        assert!(big.covers(&big));
    }

    #[test]
    fn intersect_and_disjoint() {
        let a = Cube::from_literals(&[(0, true)]);
        let b = Cube::from_literals(&[(1, false)]);
        let c = a.intersect(&b).unwrap();
        assert_eq!(c, Cube::from_literals(&[(0, true), (1, false)]));
        let d = Cube::from_literals(&[(0, false)]);
        assert!(a.intersect(&d).is_none());
        assert!(!a.intersects(&d));
        assert!(a.intersects(&b));
    }

    #[test]
    fn merge_adjacent_drops_variable() {
        let a = Cube::parse_pcn("10-1").unwrap();
        let b = Cube::parse_pcn("11-1").unwrap();
        let m = a.merge_adjacent(&b).unwrap();
        assert_eq!(m, Cube::parse_pcn("1--1").unwrap());
        // Non-adjacent cubes do not merge.
        let c = Cube::parse_pcn("01-0").unwrap();
        assert!(a.merge_adjacent(&c).is_none());
        // Different masks do not merge.
        let d = Cube::parse_pcn("1-11").unwrap();
        assert!(a.merge_adjacent(&d).is_none());
    }

    #[test]
    fn minterm_enumeration_matches_count() {
        let c = Cube::parse_pcn("1--0").unwrap();
        let ms: Vec<u64> = c.minterms(4).collect();
        assert_eq!(ms.len() as u128, c.minterm_count(4));
        for m in &ms {
            assert!(c.covers_minterm(*m));
        }
        // all distinct
        let mut s = ms.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), ms.len());
    }

    #[test]
    fn pcn_string_roundtrip() {
        for s in ["1-0", "----", "1111", "0"] {
            let c = Cube::parse_pcn(s).unwrap();
            assert_eq!(c.to_pcn_string(s.len()), s);
        }
        assert!(Cube::parse_pcn("10x").is_none());
    }

    #[test]
    fn distance_counts_conflicts() {
        let a = Cube::parse_pcn("110").unwrap();
        let b = Cube::parse_pcn("001").unwrap();
        assert_eq!(a.distance(&b), 3);
        assert_eq!(a.distance(&a), 0);
    }

    #[test]
    fn raise_removes_literal() {
        let a = Cube::parse_pcn("101").unwrap();
        assert_eq!(a.raise(1), Cube::parse_pcn("1-1").unwrap());
        assert_eq!(a.raise(1).raise(0).raise(2), Cube::universe());
    }
}
