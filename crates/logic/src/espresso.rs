//! Heuristic two-level minimization in the style of espresso's
//! EXPAND / IRREDUNDANT loop, operating on covers (no minterm enumeration),
//! so it scales to the wide-input functions produced by one-hot-encoded
//! controllers.
//!
//! The function to minimize is given as an on-set cover `f` plus an optional
//! don't-care cover `dc`. All containment checks go through the
//! unate-recursive tautology test in [`Cover`], which is exact — the result
//! is always a correct implementation, merely not guaranteed minimum.

use crate::cover::Cover;
use crate::cube::Cube;

/// Heuristically minimizes `f` against don't-care set `dc`.
///
/// The result `r` satisfies `f ⊆ r ⊆ f ∪ dc` (correct implementation) and
/// usually has far fewer literals than `f`. Iterates expand → irredundant
/// until the cost stops improving.
///
/// # Examples
///
/// ```
/// use tauhls_logic::{minimize_heuristic, Cover};
/// // f = a·b + a·b' ( = a )
/// let f = Cover::parse_pcn(2, &["11", "10"]).unwrap();
/// let r = minimize_heuristic(&f, &Cover::empty(2));
/// assert_eq!(r.len(), 1);
/// assert_eq!(r.literal_count(), 1);
/// ```
///
/// # Panics
///
/// Panics if `f` and `dc` disagree on variable count.
pub fn minimize_heuristic(f: &Cover, dc: &Cover) -> Cover {
    assert_eq!(f.num_vars(), dc.num_vars());
    if f.is_empty() {
        return f.clone();
    }
    let upper = f.or(dc); // the region a raised cube must stay inside
    let mut current = f.clone();
    current.remove_contained();

    let mut best_cost = cost(&current);
    loop {
        current = expand(&current, &upper);
        current = irredundant(&current, dc);
        let c = cost(&current);
        if c >= best_cost {
            break;
        }
        best_cost = c;
    }
    current
}

fn cost(c: &Cover) -> (usize, u32) {
    (c.len(), c.literal_count())
}

/// EXPAND: raise literals of each cube as long as the raised cube remains
/// inside `upper` (= onset ∪ dcset). Cubes that become covered by an
/// already-expanded cube are dropped.
fn expand(cover: &Cover, upper: &Cover) -> Cover {
    let n = cover.num_vars();
    // Process big cubes first — they are more likely to absorb others.
    let mut cubes: Vec<Cube> = cover.cubes().to_vec();
    cubes.sort_by_key(|c| c.literal_count());

    let mut out: Vec<Cube> = Vec::with_capacity(cubes.len());
    'next: for cube in cubes {
        for done in &out {
            if done.covers(&cube) {
                continue 'next;
            }
        }
        let mut c = cube;
        // Try raising each literal; a literal is raisable iff the raised
        // cube is still contained in upper. Order: try to free the variable
        // that appears in the fewest other cubes first (weak espresso-style
        // heuristic favouring literals unlikely to be needed).
        let mut vars: Vec<usize> = (0..n).filter(|&v| c.literal(v).is_some()).collect();
        vars.sort_by_key(|&v| {
            out.iter()
                .chain(std::iter::once(&c))
                .filter(|d| d.literal(v).is_some())
                .count()
        });
        for v in vars {
            let raised = c.raise(v);
            if upper.covers_cube(&raised) {
                c = raised;
            }
        }
        out.retain(|d| !c.covers(d));
        out.push(c);
    }
    Cover::from_cubes(n, out)
}

/// IRREDUNDANT: drop cubes covered by the union of the remaining cubes and
/// the don't-care set. Greedy single pass, testing the costliest cubes for
/// removal first.
fn irredundant(cover: &Cover, dc: &Cover) -> Cover {
    let n = cover.num_vars();
    let mut cubes: Vec<Cube> = cover.cubes().to_vec();
    // Try to remove cubes with many literals first (they buy the least).
    let mut order: Vec<usize> = (0..cubes.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(cubes[i].literal_count()));

    let mut alive = vec![true; cubes.len()];
    for &i in &order {
        alive[i] = false;
        let rest = Cover::from_cubes(
            n,
            cubes
                .iter()
                .enumerate()
                .filter_map(|(j, c)| alive[j].then_some(*c))
                .chain(dc.cubes().iter().copied()),
        );
        if !rest.covers_cube(&cubes[i]) {
            alive[i] = true; // still needed
        }
    }
    let kept: Vec<Cube> = cubes
        .drain(..)
        .zip(alive)
        .filter_map(|(c, a)| a.then_some(c))
        .collect();
    Cover::from_cubes(n, kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::TruthTable;

    fn check_implements(orig: &Cover, dc: &Cover, min: &Cover) {
        let n = orig.num_vars();
        assert!(n <= 16, "exhaustive check limited");
        for m in 0..1u64 << n {
            if orig.evaluate(m) {
                assert!(min.evaluate(m), "lost onset minterm {m:#b}");
            } else if !dc.evaluate(m) {
                assert!(!min.evaluate(m), "gained offset minterm {m:#b}");
            }
        }
    }

    #[test]
    fn merges_complementary_pair() {
        let f = Cover::parse_pcn(2, &["11", "10"]).unwrap();
        let r = minimize_heuristic(&f, &Cover::empty(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.literal_count(), 1);
        check_implements(&f, &Cover::empty(2), &r);
    }

    #[test]
    fn xor_cannot_shrink() {
        let f = Cover::parse_pcn(2, &["10", "01"]).unwrap();
        let r = minimize_heuristic(&f, &Cover::empty(2));
        assert_eq!(r.literal_count(), 4);
        check_implements(&f, &Cover::empty(2), &r);
    }

    #[test]
    fn uses_dontcares() {
        // on = {111}, dc = everything else with x0=1 -> f reduces to x0.
        let f = Cover::parse_pcn(3, &["111"]).unwrap();
        let dc = Cover::parse_pcn(3, &["110", "101", "100"]).unwrap();
        let r = minimize_heuristic(&f, &dc);
        assert_eq!(r.len(), 1);
        assert_eq!(r.literal_count(), 1);
        check_implements(&f, &dc, &r);
    }

    #[test]
    fn drops_redundant_consensus_cube() {
        // ab + a'c + bc : the bc term is redundant.
        let f = Cover::parse_pcn(3, &["11-", "0-1", "-11"]).unwrap();
        let r = minimize_heuristic(&f, &Cover::empty(3));
        assert_eq!(r.len(), 2);
        check_implements(&f, &Cover::empty(3), &r);
    }

    #[test]
    fn matches_exact_on_random_small_functions() {
        // Heuristic must implement the function; cost should be close to QM.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..30 {
            let n = rng.random_range(3..=5usize);
            let t = TruthTable::from_fn(n, |_| Some(rng.random_bool(0.5)));
            let canon = t.canonical_cover();
            let h = minimize_heuristic(&canon, &Cover::empty(n));
            assert!(t.is_implemented_by(&h));
            let exact = crate::qm::minimize_exact(&t);
            assert!(
                h.len() <= canon.len(),
                "heuristic should not grow the cover"
            );
            // Allow slack, but catch gross regressions.
            assert!(
                h.len() <= exact.len() * 2 + 2,
                "heuristic {} vs exact {}",
                h.len(),
                exact.len()
            );
        }
    }

    #[test]
    fn wide_function_terminates() {
        // 30-variable one-hot-style cover: x_i alone for i in 0..10, each
        // padded with a guard literal; expansion should strip the guards
        // where legal and terminate quickly.
        let n = 30;
        let mut cubes = Vec::new();
        for i in 0..10 {
            cubes.push(Cube::from_literals(&[(i, true), (i + 10, false)]));
            cubes.push(Cube::from_literals(&[(i, true), (i + 10, true)]));
        }
        let f = Cover::from_cubes(n, cubes);
        let r = minimize_heuristic(&f, &Cover::empty(n));
        assert_eq!(r.len(), 10); // each pair merges to the single literal x_i
        assert_eq!(r.literal_count(), 10);
    }
}
