//! # tauhls-logic — two-level boolean logic substrate
//!
//! Boolean-function machinery backing the FSM synthesis and area analysis
//! of the `tauhls` workspace (a reproduction of *"Distributed Synchronous
//! Control Units for Dataflow Graphs under Allocation of Telescopic
//! Arithmetic Units"*, DATE 2003):
//!
//! * [`Cube`] / [`Cover`] — product terms and sum-of-products covers with
//!   the unate-recursive tautology/containment tests.
//! * [`TruthTable`] — explicit incompletely-specified functions.
//! * [`minimize_exact`] — Quine–McCluskey prime generation plus exact or
//!   greedy covering.
//! * [`minimize_heuristic`] — espresso-style EXPAND/IRREDUNDANT loop that
//!   scales to wide (e.g. one-hot encoded) controller logic.
//! * [`Expr`] — guard expressions lowered to covers.
//! * [`AreaModel`] — gate-equivalent area costing of synthesized blocks.
//!
//! # Examples
//!
//! Minimize a full adder's carry output and cost it:
//!
//! ```
//! use tauhls_logic::{minimize_exact, AreaModel, TruthTable};
//!
//! let carry = TruthTable::from_fn(3, |m| Some(m.count_ones() >= 2));
//! let cover = minimize_exact(&carry);
//! assert_eq!(cover.len(), 3); // ab + bc + ca
//!
//! let report = AreaModel::default().area(&[cover], 0);
//! assert!(report.combinational > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod cover;
mod cube;
mod espresso;
mod expr;
mod qm;
mod truth;

pub use area::{AreaModel, AreaReport};
pub use cover::Cover;
pub use cube::{Cube, MAX_VARS};
pub use espresso::minimize_heuristic;
pub use expr::Expr;
pub use qm::{minimize_exact, prime_implicants};
pub use truth::{Tri, TruthTable};

/// Minimizes a cover choosing the right engine for its width: exact
/// Quine–McCluskey when the function has at most `exact_limit` variables,
/// the heuristic EXPAND/IRREDUNDANT loop otherwise.
///
/// This is the entry point the FSM synthesizer uses: binary-encoded
/// controllers stay under the exact limit, one-hot controllers go through
/// the heuristic.
///
/// # Examples
///
/// ```
/// use tauhls_logic::{minimize_auto, Cover};
/// let f = Cover::parse_pcn(3, &["110", "111", "011"]).unwrap();
/// let r = minimize_auto(&f, &Cover::empty(3), 12);
/// assert!(r.literal_count() < f.literal_count());
/// ```
pub fn minimize_auto(onset: &Cover, dcset: &Cover, exact_limit: usize) -> Cover {
    let n = onset.num_vars();
    if n <= exact_limit && n <= 16 {
        let table = TruthTable::from_fn(n, |m| {
            if onset.evaluate(m) {
                Some(true)
            } else if dcset.evaluate(m) {
                None
            } else {
                Some(false)
            }
        });
        minimize_exact(&table)
    } else {
        minimize_heuristic(onset, dcset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_picks_exact_for_narrow() {
        let f = Cover::parse_pcn(2, &["11", "10"]).unwrap();
        let r = minimize_auto(&f, &Cover::empty(2), 12);
        assert_eq!(r.len(), 1);
        assert_eq!(r.literal_count(), 1);
    }

    #[test]
    fn auto_heuristic_for_wide() {
        // 20 variables forces the heuristic path (limit 12).
        let f = Cover::parse_pcn(20, &["11------------------", "10------------------"]).unwrap();
        let r = minimize_auto(&f, &Cover::empty(20), 12);
        assert_eq!(r.len(), 1);
        assert_eq!(r.literal_count(), 1);
    }
}
