//! Exact two-level minimization: Quine–McCluskey prime generation followed
//! by unate covering (essential extraction + branch-and-bound with a greedy
//! fallback for large instances).

use crate::cover::Cover;
use crate::cube::Cube;
use crate::truth::{Tri, TruthTable};
use std::collections::HashSet;

/// Upper bound on `primes.len() * onset.len()` beyond which the covering
/// step falls back from branch-and-bound to the greedy heuristic.
const EXACT_COVER_BUDGET: usize = 200_000;

/// Minimizes an incompletely-specified function to a (near-)minimum
/// sum-of-products cover.
///
/// Prime implicants are generated exactly by iterative adjacency merging
/// over the on-set ∪ dc-set. The covering problem is then solved exactly by
/// branch-and-bound when small, or greedily otherwise; in both cases every
/// returned cube is a prime implicant and the cover implements the function.
///
/// # Examples
///
/// ```
/// use tauhls_logic::{minimize_exact, TruthTable};
/// // f = majority of 3 inputs
/// let t = TruthTable::from_fn(3, |m| Some(m.count_ones() >= 2));
/// let c = minimize_exact(&t);
/// assert_eq!(c.len(), 3); // ab + bc + ac
/// assert!(t.is_implemented_by(&c));
/// ```
pub fn minimize_exact(table: &TruthTable) -> Cover {
    let n = table.num_vars();
    let onset = table.onset();
    if onset.is_empty() {
        return Cover::empty(n);
    }
    let care_or_dc: Vec<u64> = (0..1u64 << n)
        .filter(|&m| table.get(m) != Tri::Off)
        .collect();
    if care_or_dc.len() == 1 << n {
        return Cover::tautology_cover(n);
    }

    let primes = prime_implicants(n, &care_or_dc);
    select_cover(n, &primes, &onset)
}

/// Generates all prime implicants of the function whose on∪dc set is
/// `minterms`, via classic iterative merging.
pub fn prime_implicants(n: usize, minterms: &[u64]) -> Vec<Cube> {
    let mut current: HashSet<Cube> = minterms.iter().map(|&m| Cube::minterm(n, m)).collect();
    let mut primes: Vec<Cube> = Vec::new();

    while !current.is_empty() {
        let cubes: Vec<Cube> = current.iter().copied().collect();
        let mut merged_flag = vec![false; cubes.len()];
        let mut next: HashSet<Cube> = HashSet::new();

        // Group by (mask, popcount of val) so only plausible partners meet.
        for i in 0..cubes.len() {
            for j in (i + 1)..cubes.len() {
                if cubes[i].mask() != cubes[j].mask() {
                    continue;
                }
                if let Some(m) = cubes[i].merge_adjacent(&cubes[j]) {
                    merged_flag[i] = true;
                    merged_flag[j] = true;
                    next.insert(m);
                }
            }
        }
        for (i, c) in cubes.iter().enumerate() {
            if !merged_flag[i] {
                primes.push(*c);
            }
        }
        current = next;
    }
    // Merging can produce duplicates of earlier primes via different paths.
    primes.sort_unstable();
    primes.dedup();
    // Remove non-maximal cubes (a cube unmerged at one level may still be
    // contained in a wider prime produced later).
    let snapshot = primes.clone();
    primes.retain(|c| !snapshot.iter().any(|d| d != c && d.covers(c)));
    primes
}

/// Solves the prime-implicant covering problem for `onset`.
fn select_cover(n: usize, primes: &[Cube], onset: &[u64]) -> Cover {
    // Build the coverage matrix.
    let mut covering: Vec<Vec<usize>> = Vec::with_capacity(onset.len()); // minterm -> prime indices
    for &m in onset {
        let rows: Vec<usize> = primes
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.covers_minterm(m).then_some(i))
            .collect();
        debug_assert!(!rows.is_empty(), "minterm {m} uncovered by any prime");
        covering.push(rows);
    }

    let mut chosen: Vec<usize> = Vec::new();
    let mut covered = vec![false; onset.len()];

    // Essential primes: sole cover of some minterm.
    loop {
        let mut changed = false;
        for (mi, rows) in covering.iter().enumerate() {
            if covered[mi] {
                continue;
            }
            let alive: Vec<usize> = rows
                .iter()
                .copied()
                .filter(|p| !chosen.contains(p))
                .collect();
            if alive.len() == 1 {
                let p = alive[0];
                chosen.push(p);
                for (mj, v) in covered.iter_mut().enumerate() {
                    if primes[p].covers_minterm(onset[mj]) {
                        *v = true;
                    }
                }
                changed = true;
            } else if rows.iter().any(|p| chosen.contains(p)) {
                covered[mi] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let remaining: Vec<usize> = (0..onset.len()).filter(|&i| !covered[i]).collect();
    if !remaining.is_empty() {
        let extra = if primes.len() * remaining.len() <= EXACT_COVER_BUDGET && primes.len() <= 64 {
            cover_branch_bound(primes, onset, &remaining)
        } else {
            cover_greedy(primes, onset, &remaining)
        };
        chosen.extend(extra);
    }

    chosen.sort_unstable();
    chosen.dedup();
    Cover::from_cubes(n, chosen.into_iter().map(|i| primes[i]))
}

/// Greedy covering: repeatedly pick the prime covering the most uncovered
/// minterms (ties broken toward fewer literals).
fn cover_greedy(primes: &[Cube], onset: &[u64], remaining: &[usize]) -> Vec<usize> {
    let mut need: HashSet<usize> = remaining.iter().copied().collect();
    let mut out = Vec::new();
    while !need.is_empty() {
        let best = primes
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let gain = need
                    .iter()
                    .filter(|&&mi| p.covers_minterm(onset[mi]))
                    .count();
                (gain, std::cmp::Reverse(p.literal_count()), i)
            })
            .max()
            .map(|(_, _, i)| i)
            .expect("nonempty primes");
        let gain: Vec<usize> = need
            .iter()
            .copied()
            .filter(|&mi| primes[best].covers_minterm(onset[mi]))
            .collect();
        assert!(!gain.is_empty(), "greedy covering stalled");
        for mi in gain {
            need.remove(&mi);
        }
        out.push(best);
    }
    out
}

/// Exact minimum-cardinality covering by branch-and-bound (cost = cube
/// count, tie-broken by literal count through the search order).
fn cover_branch_bound(primes: &[Cube], onset: &[u64], remaining: &[usize]) -> Vec<usize> {
    struct Ctx<'a> {
        primes: &'a [Cube],
        onset: &'a [u64],
        best: Vec<usize>,
    }
    fn recurse(ctx: &mut Ctx<'_>, need: &[usize], chosen: &mut Vec<usize>) {
        if chosen.len() + 1 >= ctx.best.len() && !ctx.best.is_empty() && !need.is_empty() {
            return; // cannot beat the incumbent
        }
        if need.is_empty() {
            if ctx.best.is_empty() || chosen.len() < ctx.best.len() {
                ctx.best = chosen.clone();
            }
            return;
        }
        // Branch on the hardest minterm (fewest candidate primes).
        let &target = need
            .iter()
            .min_by_key(|&&mi| {
                ctx.primes
                    .iter()
                    .filter(|p| p.covers_minterm(ctx.onset[mi]))
                    .count()
            })
            .expect("nonempty need");
        let mut candidates: Vec<usize> = ctx
            .primes
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.covers_minterm(ctx.onset[target]).then_some(i))
            .collect();
        // Prefer primes covering more of the needed minterms.
        candidates.sort_by_key(|&i| {
            std::cmp::Reverse(
                need.iter()
                    .filter(|&&mi| ctx.primes[i].covers_minterm(ctx.onset[mi]))
                    .count(),
            )
        });
        for i in candidates {
            let rest: Vec<usize> = need
                .iter()
                .copied()
                .filter(|&mi| !ctx.primes[i].covers_minterm(ctx.onset[mi]))
                .collect();
            chosen.push(i);
            recurse(ctx, &rest, chosen);
            chosen.pop();
        }
    }

    let greedy = cover_greedy(primes, onset, remaining);
    let mut ctx = Ctx {
        primes,
        onset,
        best: greedy,
    };
    let mut chosen = Vec::new();
    recurse(&mut ctx, remaining, &mut chosen);
    ctx.best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimize_constant_functions() {
        let f0 = TruthTable::from_fn(3, |_| Some(false));
        assert!(minimize_exact(&f0).is_empty());
        let f1 = TruthTable::from_fn(3, |_| Some(true));
        let c = minimize_exact(&f1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.literal_count(), 0);
    }

    #[test]
    fn minimize_xor_stays_two_cubes() {
        let t = TruthTable::from_fn(2, |m| Some(m.count_ones() == 1));
        let c = minimize_exact(&t);
        assert_eq!(c.len(), 2);
        assert_eq!(c.literal_count(), 4);
        assert!(t.is_implemented_by(&c));
    }

    #[test]
    fn minimize_majority3() {
        let t = TruthTable::from_fn(3, |m| Some(m.count_ones() >= 2));
        let c = minimize_exact(&t);
        assert_eq!(c.len(), 3);
        assert_eq!(c.literal_count(), 6);
        assert!(t.is_implemented_by(&c));
    }

    #[test]
    fn dontcares_reduce_cost() {
        // f(abc): on = {7}, dc = {3,5,6} -> picking dc as 1 lets two-literal
        // or even single-literal cubes... primes over {3,5,6,7}:
        // 3=011,5=101,6=110,7=111 -> merges: 3-7 => -11, 5-7 => 1-1, 6-7 => 11-
        let t = TruthTable::from_sets(3, &[7], &[3, 5, 6]);
        let c = minimize_exact(&t);
        assert_eq!(c.len(), 1);
        assert_eq!(c.literal_count(), 2);
        assert!(t.is_implemented_by(&c));
    }

    #[test]
    fn classic_qm_example() {
        // Standard textbook instance: on = {4,8,10,11,12,15}, dc = {9,14}
        // (variables x3 x2 x1 x0 with x3 = MSB = bit 3).
        let t = TruthTable::from_sets(4, &[4, 8, 10, 11, 12, 15], &[9, 14]);
        let c = minimize_exact(&t);
        assert!(t.is_implemented_by(&c));
        // Known minimum: 3 cubes, e.g. x3x1' + x2x1'x0' + x3x1x0 variants
        // wait — canonical answer is BD' + AB' + AC (3 cubes, 7 literals)
        // under MSB-first labelling; we assert cost only.
        assert_eq!(c.len(), 3);
        assert!(c.literal_count() <= 8);
    }

    #[test]
    fn prime_generation_finds_maximal_cubes() {
        // f = x0 (on every odd minterm of 3 vars)
        let primes = prime_implicants(3, &[1, 3, 5, 7]);
        assert_eq!(primes, vec![Cube::from_literals(&[(0, true)])]);
    }

    #[test]
    fn every_prime_is_maximal() {
        let minterms = [0u64, 1, 2, 5, 6, 7, 8, 9, 10, 14];
        let primes = prime_implicants(4, &minterms);
        for (i, p) in primes.iter().enumerate() {
            for (j, q) in primes.iter().enumerate() {
                if i != j {
                    assert!(!q.covers(p), "{p:?} not maximal (inside {q:?})");
                }
            }
            // Every prime stays within on ∪ dc.
            for m in p.minterms(4) {
                assert!(minterms.contains(&m));
            }
        }
    }
}
