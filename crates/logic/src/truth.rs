//! Incompletely-specified single-output functions as explicit truth tables.

use crate::cover::Cover;

/// Value of a truth-table entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Tri {
    /// The function is 0 at this minterm.
    Off,
    /// The function is 1 at this minterm.
    On,
    /// The function value is unspecified (don't-care).
    Dc,
}

/// An explicit truth table over `n <= 24` variables, supporting don't-cares.
///
/// # Examples
///
/// ```
/// use tauhls_logic::{TruthTable, Tri};
/// let t = TruthTable::from_fn(2, |m| Some(m.count_ones() == 1)); // XOR
/// assert_eq!(t.get(0b01), Tri::On);
/// assert_eq!(t.get(0b11), Tri::Off);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TruthTable {
    num_vars: usize,
    entries: Vec<Tri>,
}

impl TruthTable {
    /// Creates an all-`Off` table over `n` variables.
    ///
    /// # Panics
    ///
    /// Panics if `n > 24` (the table would exceed 16M entries).
    pub fn new(n: usize) -> Self {
        assert!(n <= 24, "explicit truth tables limited to 24 variables");
        TruthTable {
            num_vars: n,
            entries: vec![Tri::Off; 1 << n],
        }
    }

    /// Builds a table from a predicate; `None` marks a don't-care minterm.
    pub fn from_fn(n: usize, mut f: impl FnMut(u64) -> Option<bool>) -> Self {
        let mut t = TruthTable::new(n);
        for m in 0..1u64 << n {
            t.set(
                m,
                match f(m) {
                    Some(true) => Tri::On,
                    Some(false) => Tri::Off,
                    None => Tri::Dc,
                },
            );
        }
        t
    }

    /// Builds a table from explicit on-set and dc-set minterm lists.
    ///
    /// # Panics
    ///
    /// Panics if a minterm appears in both sets or is out of range.
    pub fn from_sets(n: usize, on: &[u64], dc: &[u64]) -> Self {
        let mut t = TruthTable::new(n);
        for &m in on {
            assert!(m < 1 << n, "on-set minterm out of range");
            t.set(m, Tri::On);
        }
        for &m in dc {
            assert!(m < 1 << n, "dc-set minterm out of range");
            assert!(t.get(m) != Tri::On, "minterm {m} in both on- and dc-set");
            t.set(m, Tri::Dc);
        }
        t
    }

    /// Number of input variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The value at minterm `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn get(&self, m: u64) -> Tri {
        self.entries[m as usize]
    }

    /// Sets the value at minterm `m`.
    pub fn set(&mut self, m: u64, v: Tri) {
        self.entries[m as usize] = v;
    }

    /// Minterms where the function is 1.
    pub fn onset(&self) -> Vec<u64> {
        self.collect(Tri::On)
    }

    /// Minterms where the function is unspecified.
    pub fn dcset(&self) -> Vec<u64> {
        self.collect(Tri::Dc)
    }

    /// Minterms where the function is 0.
    pub fn offset(&self) -> Vec<u64> {
        self.collect(Tri::Off)
    }

    fn collect(&self, want: Tri) -> Vec<u64> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(m, &v)| (v == want).then_some(m as u64))
            .collect()
    }

    /// True iff `cover` is a correct implementation: it covers every on-set
    /// minterm and avoids every off-set minterm (don't-cares are free).
    pub fn is_implemented_by(&self, cover: &Cover) -> bool {
        assert_eq!(cover.num_vars(), self.num_vars);
        (0..1u64 << self.num_vars).all(|m| match self.get(m) {
            Tri::On => cover.evaluate(m),
            Tri::Off => !cover.evaluate(m),
            Tri::Dc => true,
        })
    }

    /// The canonical (one cube per on-set minterm) cover.
    pub fn canonical_cover(&self) -> Cover {
        Cover::from_cubes(
            self.num_vars,
            self.onset()
                .into_iter()
                .map(|m| crate::Cube::minterm(self.num_vars, m)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_sets_agree() {
        let a = TruthTable::from_fn(3, |m| if m == 5 { None } else { Some(m % 2 == 1) });
        let b = TruthTable::from_sets(3, &[1, 3, 7], &[5]);
        assert_eq!(a, b);
        assert_eq!(a.onset(), vec![1, 3, 7]);
        assert_eq!(a.dcset(), vec![5]);
        assert_eq!(a.offset(), vec![0, 2, 4, 6]);
    }

    #[test]
    fn canonical_cover_implements() {
        let t = TruthTable::from_sets(4, &[0, 3, 9, 14], &[7]);
        let c = t.canonical_cover();
        assert!(t.is_implemented_by(&c));
    }

    #[test]
    fn implementation_check_rejects_wrong_cover() {
        let t = TruthTable::from_sets(2, &[1], &[]);
        // "1-" means x0 = 1 -> covers minterms 1 and 3, but 3 is off-set.
        let wrong = Cover::parse_pcn(2, &["1-"]).unwrap();
        assert!(!t.is_implemented_by(&wrong));
        let right = Cover::parse_pcn(2, &["10"]).unwrap();
        assert!(t.is_implemented_by(&right));
    }

    #[test]
    #[should_panic(expected = "both")]
    fn overlapping_sets_panic() {
        let _ = TruthTable::from_sets(2, &[1], &[1]);
    }
}
