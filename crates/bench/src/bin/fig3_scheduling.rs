//! Regenerates Fig 3: dependency graph, clique cover, schedule arcs.
fn main() {
    print!("{}", tauhls_core::figures::fig3_report());
}
