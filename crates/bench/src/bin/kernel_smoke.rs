//! Bench-smoke for the unified cycle kernel: runs every paper benchmark
//! through all four scalar controller engines (DIST, CENT, CENT-SYNC,
//! ELASTIC) *and* their bit-sliced counterparts (64 Monte-Carlo lanes per
//! word) for a small fixed trial count, and records simulated cycles per
//! wall-clock second — plus heap-allocation counts from a bin-level
//! counting allocator — in `BENCH_kernel.json`. CI runs this in short
//! mode as a throughput regression canary and `bench_gate` compares the
//! numbers against the committed baseline; it is a smoke check, not a
//! calibrated benchmark — use `cargo bench -p tauhls-bench --bench
//! latency_sim` for per-style latency numbers.
//!
//! Two self-checks run inline: the sliced engines must allocate less per
//! trial than the scalar ones (the scratch-reuse contract), and a second
//! sliced pass over a reused `SlicedSim` must reproduce the first pass's
//! cycle totals exactly.
//!
//! Usage: `kernel_smoke [trials-per-benchmark]` (default 300).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use tauhls_core::experiments::paper_benchmarks;
use tauhls_core::jobspec::{Endpoint, JobSpec};
use tauhls_fsm::DistributedControlUnit;
use tauhls_json::{Json, JsonRef};
use tauhls_sched::BoundDfg;
use tauhls_sim::{
    elastic_trial_skew_seed, simulate_cent, simulate_cent_sync, simulate_distributed,
    simulate_elastic, trial_rng, CentControlUnit, CompletionModel, ElasticSpec, LaneConfigs,
    LaneModels, LaneOutcome, SimConfig, SlicedSim, LANES,
};

/// Counts every heap allocation so the smoke can assert the sliced
/// engine's scratch reuse actually sticks. Bin-level only: the simulation
/// library itself stays `forbid(unsafe_code)`.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to the system allocator; the counter has no
// effect on layout or pointers.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

const P_SHORT: f64 = 0.7;
const SEED: u64 = 2003;

struct EngineRow {
    engine: &'static str,
    benchmark: String,
    trials: u64,
    total_cycles: u64,
    elapsed_ns: u64,
    allocs: u64,
}

impl EngineRow {
    fn cycles_per_sec(&self) -> f64 {
        self.total_cycles as f64 / (self.elapsed_ns as f64 / 1e9)
    }

    fn to_json(&self) -> Json {
        Json::object([
            ("engine", Json::from(self.engine)),
            ("benchmark", Json::from(self.benchmark.as_str())),
            ("trials", Json::from(self.trials)),
            ("total_cycles", Json::from(self.total_cycles)),
            ("elapsed_ns", Json::from(self.elapsed_ns)),
            ("cycles_per_sec", Json::from(self.cycles_per_sec())),
            ("allocs", Json::from(self.allocs)),
        ])
    }
}

/// Times `trials` fault-free runs of one scalar engine closure, returning
/// the simulated-cycle total, the wall-clock spent, and the heap
/// allocations made.
fn measure(trials: u64, mut run: impl FnMut(&mut StdRng) -> u64) -> (u64, u64, u64) {
    let mut rng = StdRng::seed_from_u64(SEED);
    // One warm-up pass so lazily-faulted caches don't bill the first row.
    run(&mut rng);
    let mut total_cycles = 0u64;
    let allocs_before = alloc_count();
    let start = Instant::now();
    for _ in 0..trials {
        total_cycles += run(&mut rng);
    }
    (
        total_cycles,
        start.elapsed().as_nanos() as u64,
        alloc_count() - allocs_before,
    )
}

/// Times `trials` fault-free trials through a sliced engine closure that
/// consumes one slab of per-trial RNGs (up to [`LANES`] lanes) per call.
fn measure_sliced(trials: u64, mut run: impl FnMut(&mut [StdRng]) -> u64) -> (u64, u64, u64) {
    let fill = |rngs: &mut Vec<StdRng>, start: u64, end: u64| {
        rngs.clear();
        for t in start..end {
            rngs.push(trial_rng(SEED, 0, t));
        }
    };
    let mut rngs: Vec<StdRng> = Vec::with_capacity(LANES);
    // Warm-up slab, mirroring the scalar warm-up pass.
    fill(&mut rngs, 0, (LANES as u64).min(trials));
    run(&mut rngs);
    let mut total_cycles = 0u64;
    let allocs_before = alloc_count();
    let start = Instant::now();
    let mut t = 0u64;
    while t < trials {
        let end = (t + LANES as u64).min(trials);
        fill(&mut rngs, t, end);
        total_cycles += run(&mut rngs);
        t = end;
    }
    (
        total_cycles,
        start.elapsed().as_nanos() as u64,
        alloc_count() - allocs_before,
    )
}

fn slab_cycles(out: Vec<LaneOutcome>) -> u64 {
    out.iter()
        .map(|lane| match lane {
            LaneOutcome::Done(r) => r.cycles as u64,
            LaneOutcome::Fallback => panic!("fault-free sliced lane fell back"),
        })
        .sum()
}

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("trials must be an integer"))
        .unwrap_or(300);
    let model = CompletionModel::Bernoulli { p: P_SHORT };
    let fault_free = SimConfig::default();
    let mut rows = Vec::new();
    for (dfg, alloc, _) in paper_benchmarks() {
        let name = dfg.name().to_string();
        let bound = BoundDfg::bind(&dfg, &alloc);
        let cu = DistributedControlUnit::generate(&bound);
        let cent_cu = CentControlUnit::without_product(&bound);
        let mut push = |engine, (cycles, ns, allocs)| {
            rows.push(EngineRow {
                engine,
                benchmark: name.clone(),
                trials,
                total_cycles: cycles,
                elapsed_ns: ns,
                allocs,
            });
        };

        push(
            "dist",
            measure(trials, |rng| {
                simulate_distributed(&bound, &cu, &model, None, rng)
                    .expect("fault-free simulation")
                    .cycles as u64
            }),
        );
        push(
            "cent",
            measure(trials, |rng| {
                simulate_cent(&bound, &cent_cu, &model, None, rng)
                    .expect("fault-free simulation")
                    .cycles as u64
            }),
        );
        push(
            "cent_sync",
            measure(trials, |rng| {
                simulate_cent_sync(&bound, &model, None, rng)
                    .expect("fault-free simulation")
                    .cycles as u64
            }),
        );
        // Elastic (GALS) clocking at the default spec. One fixed skew
        // schedule per benchmark keeps the row a pure throughput probe;
        // trial-to-trial variation still comes from the Bernoulli draws.
        let spec = ElasticSpec::default();
        let skew_seed = elastic_trial_skew_seed(SEED, 0, 0);
        push(
            "elastic",
            measure(trials, |rng| {
                simulate_elastic(&bound, &cu, &model, None, rng, spec, skew_seed)
                    .expect("fault-free simulation")
                    .cycles as u64
            }),
        );

        let models = LaneModels::Shared(&model);
        let cfgs = LaneConfigs::Shared(&fault_free);
        let mut dist_sim = SlicedSim::distributed(&bound, &cu, None);
        let first = measure_sliced(trials, |rngs| {
            slab_cycles(dist_sim.run(&models, &cfgs, rngs))
        });
        // Scratch-reuse self-check: a second pass over the same SlicedSim
        // must reproduce the first pass's totals exactly.
        let second = measure_sliced(trials, |rngs| {
            slab_cycles(dist_sim.run(&models, &cfgs, rngs))
        });
        assert_eq!(
            first.0, second.0,
            "{name}: sliced scratch reuse changed results"
        );
        push("dist_sliced", first);

        let mut cent_sim = SlicedSim::distributed(&bound, cent_cu.components(), None);
        push(
            "cent_sliced",
            measure_sliced(trials, |rngs| {
                slab_cycles(cent_sim.run(&models, &cfgs, rngs))
            }),
        );
        let mut sync_sim = SlicedSim::cent_sync(&bound, None);
        push(
            "cent_sync_sliced",
            measure_sliced(trials, |rngs| {
                slab_cycles(sync_sim.run(&models, &cfgs, rngs))
            }),
        );
        let skew_seeds: Vec<u64> = (0..LANES as u64)
            .map(|t| elastic_trial_skew_seed(SEED, 0, t))
            .collect();
        let mut elastic_sim = SlicedSim::distributed(&bound, &cu, None);
        push(
            "elastic_sliced",
            measure_sliced(trials, |rngs| {
                let lanes = rngs.len();
                slab_cycles(elastic_sim.run_elastic(
                    spec,
                    &skew_seeds[..lanes],
                    &models,
                    &cfgs,
                    rngs,
                ))
            }),
        );
    }

    for row in &rows {
        println!(
            "{:<18} {:<14} {:>12.0} cycles/sec  ({} trials, {} cycles, {} allocs)",
            row.engine,
            row.benchmark,
            row.cycles_per_sec(),
            row.trials,
            row.total_cycles,
            row.allocs
        );
    }
    // Allocation self-check: slicing must cut per-trial allocations, or
    // the scratch/arena reuse has regressed.
    for (scalar, sliced) in [
        ("dist", "dist_sliced"),
        ("cent", "cent_sliced"),
        ("cent_sync", "cent_sync_sliced"),
        ("elastic", "elastic_sliced"),
    ] {
        let total = |engine: &str| -> u64 {
            rows.iter()
                .filter(|r| r.engine == engine)
                .map(|r| r.allocs)
                .sum()
        };
        let (a, b) = (total(scalar), total(sliced));
        assert!(
            b < a,
            "{sliced} allocated {b} times, not less than {scalar}'s {a}"
        );
        println!("allocs: {sliced} {b} vs {scalar} {a}");
    }

    // Zero-copy spec-parse self-check: the borrowed `JsonRef` path the
    // service uses on request bodies must allocate strictly less than
    // the owned `Json` parse it replaced (the borrowed tree keeps keys
    // and strings as slices of the request buffer).
    let (borrowed_allocs, owned_allocs) = spec_parse_allocs();
    assert!(
        borrowed_allocs < owned_allocs,
        "borrowed spec parse allocated {borrowed_allocs} times, \
         not less than the owned path's {owned_allocs}"
    );
    println!("allocs per spec parse: borrowed {borrowed_allocs} vs owned {owned_allocs}");

    let report = Json::object([
        ("mode", Json::from("short")),
        ("p", Json::from(P_SHORT)),
        ("seed", Json::from(SEED)),
        ("trials_per_benchmark", Json::from(trials)),
        ("engines", Json::array(rows.iter().map(EngineRow::to_json))),
        (
            "spec_parse",
            Json::object([
                ("borrowed_allocs", Json::from(borrowed_allocs)),
                ("owned_allocs", Json::from(owned_allocs)),
            ]),
        ),
    ]);
    std::fs::write("BENCH_kernel.json", report.to_pretty()).expect("write BENCH_kernel.json");
    println!("BENCH_kernel.json: {} rows", rows.len());
}

/// Allocation counts for one borrowed-vs-owned parse of a representative
/// request body, averaged over a fixed number of passes (after a warm-up
/// each). The borrowed tree keeps keys and strings as slices of the
/// request buffer, so only container nodes hit the heap; the owned tree
/// copies every key and string. Downstream [`JobSpec`] construction is
/// validated once outside the counted loops — its built-in-DFG
/// resolution allocates identically on both paths and would drown the
/// parse numbers.
fn spec_parse_allocs() -> (u64, u64) {
    const BODY: &str = r#"{"dfg":"ewf","trials":2000,"p":[0.9,0.7,0.5],"seed":2003}"#;
    const PASSES: u64 = 64;
    let endpoint = Endpoint::parse("simulate").expect("simulate endpoint");
    let borrowed_tree = JsonRef::parse(BODY).expect("borrowed parse");
    let owned_tree = Json::parse(BODY).expect("owned parse");
    assert_eq!(
        JobSpec::from_json_ref(endpoint, &borrowed_tree)
            .expect("borrowed spec")
            .cache_key(),
        JobSpec::from_json(endpoint, &owned_tree)
            .expect("owned spec")
            .cache_key(),
        "borrowed and owned parses disagree on the canonical spec"
    );
    let count = |parse: &dyn Fn()| -> u64 {
        parse();
        let before = alloc_count();
        for _ in 0..PASSES {
            parse();
        }
        (alloc_count() - before) / PASSES
    };
    let borrowed = count(&|| {
        std::hint::black_box(JsonRef::parse(BODY).expect("borrowed parse"));
    });
    let owned = count(&|| {
        std::hint::black_box(Json::parse(BODY).expect("owned parse"));
    });
    (borrowed, owned)
}
