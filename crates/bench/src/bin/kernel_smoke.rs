//! Bench-smoke for the unified cycle kernel: runs every paper benchmark
//! through all three controller engines (DIST, CENT, CENT-SYNC) for a
//! small fixed trial count and records simulated cycles per wall-clock
//! second in `BENCH_kernel.json`. CI runs this in short mode as a
//! throughput regression canary; it is a smoke check, not a calibrated
//! benchmark — use `cargo bench -p tauhls-bench --bench latency_sim` for
//! per-style latency numbers.
//!
//! Usage: `kernel_smoke [trials-per-benchmark]` (default 300).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use tauhls_core::experiments::paper_benchmarks;
use tauhls_fsm::DistributedControlUnit;
use tauhls_json::Json;
use tauhls_sched::BoundDfg;
use tauhls_sim::{
    simulate_cent, simulate_cent_sync, simulate_distributed, CentControlUnit, CompletionModel,
};

const P_SHORT: f64 = 0.7;
const SEED: u64 = 2003;

struct EngineRow {
    engine: &'static str,
    benchmark: String,
    trials: u64,
    total_cycles: u64,
    elapsed_ns: u64,
}

impl EngineRow {
    fn cycles_per_sec(&self) -> f64 {
        self.total_cycles as f64 / (self.elapsed_ns as f64 / 1e9)
    }

    fn to_json(&self) -> Json {
        Json::object([
            ("engine", Json::from(self.engine)),
            ("benchmark", Json::from(self.benchmark.as_str())),
            ("trials", Json::from(self.trials)),
            ("total_cycles", Json::from(self.total_cycles)),
            ("elapsed_ns", Json::from(self.elapsed_ns)),
            ("cycles_per_sec", Json::from(self.cycles_per_sec())),
        ])
    }
}

/// Times `trials` fault-free runs of one engine closure, returning the
/// simulated-cycle total and the wall-clock spent.
fn measure(trials: u64, mut run: impl FnMut(&mut StdRng) -> u64) -> (u64, u64) {
    let mut rng = StdRng::seed_from_u64(SEED);
    // One warm-up pass so lazily-faulted caches don't bill the first row.
    run(&mut rng);
    let mut total_cycles = 0u64;
    let start = Instant::now();
    for _ in 0..trials {
        total_cycles += run(&mut rng);
    }
    (total_cycles, start.elapsed().as_nanos() as u64)
}

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("trials must be an integer"))
        .unwrap_or(300);
    let model = CompletionModel::Bernoulli { p: P_SHORT };
    let mut rows = Vec::new();
    for (dfg, alloc, _) in paper_benchmarks() {
        let name = dfg.name().to_string();
        let bound = BoundDfg::bind(&dfg, &alloc);
        let cu = DistributedControlUnit::generate(&bound);
        let cent_cu = CentControlUnit::without_product(&bound);

        let (cycles, ns) = measure(trials, |rng| {
            simulate_distributed(&bound, &cu, &model, None, rng)
                .expect("fault-free simulation")
                .cycles as u64
        });
        rows.push(EngineRow {
            engine: "dist",
            benchmark: name.clone(),
            trials,
            total_cycles: cycles,
            elapsed_ns: ns,
        });

        let (cycles, ns) = measure(trials, |rng| {
            simulate_cent(&bound, &cent_cu, &model, None, rng)
                .expect("fault-free simulation")
                .cycles as u64
        });
        rows.push(EngineRow {
            engine: "cent",
            benchmark: name.clone(),
            trials,
            total_cycles: cycles,
            elapsed_ns: ns,
        });

        let (cycles, ns) = measure(trials, |rng| {
            simulate_cent_sync(&bound, &model, None, rng)
                .expect("fault-free simulation")
                .cycles as u64
        });
        rows.push(EngineRow {
            engine: "cent_sync",
            benchmark: name.clone(),
            trials,
            total_cycles: cycles,
            elapsed_ns: ns,
        });
    }

    for row in &rows {
        println!(
            "{:<10} {:<14} {:>12.0} cycles/sec  ({} trials, {} cycles)",
            row.engine,
            row.benchmark,
            row.cycles_per_sec(),
            row.trials,
            row.total_cycles
        );
    }

    let report = Json::object([
        ("mode", Json::from("short")),
        ("p", Json::from(P_SHORT)),
        ("seed", Json::from(SEED)),
        ("trials_per_benchmark", Json::from(trials)),
        ("engines", Json::array(rows.iter().map(EngineRow::to_json))),
    ]);
    std::fs::write("BENCH_kernel.json", report.to_pretty()).expect("write BENCH_kernel.json");
    println!("BENCH_kernel.json: {} rows", rows.len());
}
