//! Smoke benchmark for the simulation service: the first perf-trajectory
//! datapoint for `tauhls serve`.
//!
//! With a path argument it spawns that `tauhls` binary as a real server
//! process, checks the `tauhls call` client round-trip, then measures
//! cold (cache-miss) and hot (cache-hit) request throughput with the
//! std-only HTTP client, scrapes `/metrics`, and writes the numbers to
//! `BENCH_serve.json`. Without an argument it runs the same measurement
//! against an in-process [`Server`] (handy for local iteration).
//!
//! CI runs this as the `serve-smoke` job; like `kernel_smoke` it is a
//! regression canary plus a trend artifact, not a calibrated benchmark.
//!
//! Usage: `serve_smoke [path/to/tauhls]`

use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::{Duration, Instant};

use tauhls_json::Json;
use tauhls_serve::{client, ServeConfig, Server};

const TIMEOUT: Duration = Duration::from_secs(120);
/// Distinct specs for the cold pass — every request simulates.
const COLD_JOBS: u64 = 16;
/// Replays of one spec for the sequential hot pass — every request hits.
const HIT_JOBS: u64 = 400;
/// Client threads hammering the cache concurrently.
const CONCURRENT_CLIENTS: u64 = 4;
const HITS_PER_CLIENT: u64 = 100;

fn spec(seed: u64) -> String {
    format!(r#"{{"dfg":"fir3","trials":200,"p":[0.5],"seed":{seed}}}"#)
}

enum Instance {
    Spawned(Child),
    InProcess(Server),
}

fn start(binary: Option<&str>) -> (Instance, String) {
    match binary {
        Some(bin) => {
            let mut child = Command::new(bin)
                .args(["serve", "--addr", "127.0.0.1:0", "--workers", "4"])
                .stdout(Stdio::piped())
                .spawn()
                .expect("spawn tauhls serve");
            let mut banner = String::new();
            std::io::BufReader::new(child.stdout.take().expect("stdout piped"))
                .read_line(&mut banner)
                .expect("read banner");
            let addr = banner
                .trim()
                .strip_prefix("listening on ")
                .expect("banner format")
                .to_string();
            (Instance::Spawned(child), addr)
        }
        None => {
            let server = Server::start(ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                ..ServeConfig::default()
            })
            .expect("bind ephemeral port");
            let addr = server.local_addr().to_string();
            (Instance::InProcess(server), addr)
        }
    }
}

fn stop(instance: Instance) {
    match instance {
        Instance::Spawned(mut child) => {
            let killed = Command::new("kill")
                .args(["-TERM", &child.id().to_string()])
                .status()
                .expect("send SIGTERM");
            assert!(killed.success(), "kill -TERM failed");
            let status = child.wait().expect("wait for server");
            assert!(status.success(), "server exited non-zero: {status:?}");
        }
        Instance::InProcess(server) => server.shutdown(),
    }
}

/// Exercises the scripting client once per endpoint kind — the smoke
/// half of the job: `tauhls call` must round-trip against a live server.
fn drive_with_cli(bin: &str, addr: &str) {
    let dir = std::env::temp_dir().join("tauhls-serve-smoke");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let spec_path = dir.join("spec.json");
    std::fs::write(&spec_path, spec(1)).expect("write spec file");
    let spec_arg = spec_path.to_str().expect("utf-8 temp path");
    for args in [
        vec!["call", "healthz", "--addr", addr],
        vec!["call", "simulate", spec_arg, "--addr", addr],
        vec!["call", "metrics", "--addr", addr],
    ] {
        let out = Command::new(bin)
            .args(&args)
            .output()
            .expect("run tauhls call");
        assert!(
            out.status.success(),
            "tauhls {args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    println!("tauhls call healthz/simulate/metrics: ok");
}

fn simulate(addr: &str, body: &str, want_cache: &str) {
    let r = client::request(addr, "POST", "/v1/simulate", Some(body), TIMEOUT)
        .expect("simulate response");
    assert_eq!(r.status, 200, "{}", r.body);
    assert_eq!(r.header("x-cache"), Some(want_cache), "for spec {body}");
}

/// Reads one un-labelled (or fully-labelled) sample value; `prefix` must
/// include everything up to the value, e.g. `"tauhls_serve_trials_total "`.
fn metric(text: &str, prefix: &str) -> f64 {
    text.lines()
        .find_map(|line| line.strip_prefix(prefix)?.trim().parse::<f64>().ok())
        .unwrap_or_else(|| panic!("metric {prefix:?} missing from /metrics"))
}

fn main() {
    let binary = std::env::args().nth(1);
    let (instance, addr) = start(binary.as_deref());
    println!("server at {addr}");
    if let Some(bin) = binary.as_deref() {
        drive_with_cli(bin, &addr);
    }

    // Cold pass: distinct seeds, so every request runs the simulation.
    let cold_start = Instant::now();
    for seed in 0..COLD_JOBS {
        simulate(&addr, &spec(100 + seed), "miss");
    }
    let cold_elapsed = cold_start.elapsed();

    // Hot pass: one warmed spec replayed sequentially — pure cache path.
    simulate(
        &addr,
        &spec(1),
        if binary.is_some() { "hit" } else { "miss" },
    );
    let hit_start = Instant::now();
    for _ in 0..HIT_JOBS {
        simulate(&addr, &spec(1), "hit");
    }
    let hit_elapsed = hit_start.elapsed();

    // Concurrent hot pass: the sharded cache under parallel clients.
    let concurrent_start = Instant::now();
    let clients: Vec<_> = (0..CONCURRENT_CLIENTS)
        .map(|_| {
            let addr = addr.clone();
            thread::spawn(move || {
                for _ in 0..HITS_PER_CLIENT {
                    simulate(&addr, &spec(1), "hit");
                }
            })
        })
        .collect();
    for handle in clients {
        handle.join().expect("client thread");
    }
    let concurrent_elapsed = concurrent_start.elapsed();

    let metrics = client::request(&addr, "GET", "/metrics", None, TIMEOUT).expect("scrape metrics");
    assert_eq!(metrics.status, 200);
    let hits = metric(&metrics.body, "tauhls_serve_cache_hits_total ");
    let misses = metric(&metrics.body, "tauhls_serve_cache_misses_total ");
    let trials = metric(&metrics.body, "tauhls_serve_trials_total ");
    let simulate_count = metric(
        &metrics.body,
        "tauhls_serve_requests_total{endpoint=\"simulate\"} ",
    );
    stop(instance);

    let cold_rps = COLD_JOBS as f64 / cold_elapsed.as_secs_f64();
    let hit_rps = HIT_JOBS as f64 / hit_elapsed.as_secs_f64();
    let concurrent_rps =
        (CONCURRENT_CLIENTS * HITS_PER_CLIENT) as f64 / concurrent_elapsed.as_secs_f64();
    println!("cold (simulating):  {cold_rps:>10.1} requests/sec");
    println!("hot (cache hit):    {hit_rps:>10.1} requests/sec");
    println!("hot ({CONCURRENT_CLIENTS} clients):    {concurrent_rps:>10.1} requests/sec");
    println!("cache hits {hits} / misses {misses}, {trials} trials simulated");

    let report = Json::object([
        (
            "mode",
            Json::from(if binary.is_some() {
                "subprocess"
            } else {
                "in_process"
            }),
        ),
        ("cold_jobs", Json::from(COLD_JOBS)),
        ("cold_requests_per_sec", Json::from(cold_rps)),
        ("hit_jobs", Json::from(HIT_JOBS)),
        ("hit_requests_per_sec", Json::from(hit_rps)),
        ("concurrent_clients", Json::from(CONCURRENT_CLIENTS)),
        (
            "concurrent_hit_requests_per_sec",
            Json::from(concurrent_rps),
        ),
        ("cache_hits", Json::from(hits)),
        ("cache_misses", Json::from(misses)),
        ("cache_hit_rate", Json::from(hits / (hits + misses))),
        ("trials_total", Json::from(trials)),
        ("simulate_requests_total", Json::from(simulate_count)),
    ]);
    std::fs::write("BENCH_serve.json", report.to_pretty()).expect("write BENCH_serve.json");
    println!("BENCH_serve.json written");
}
