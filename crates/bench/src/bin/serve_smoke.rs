//! Smoke benchmark for the simulation service: the first perf-trajectory
//! datapoint for `tauhls serve`.
//!
//! With a path argument it spawns that `tauhls` binary as a real server
//! process, checks the `tauhls call` client round-trip, then measures
//! cold (cache-miss) and hot (cache-hit) request throughput with the
//! std-only HTTP client, scrapes `/metrics`, and writes the numbers to
//! `BENCH_serve.json`. Without an argument it runs the same measurement
//! against an in-process [`Server`] (handy for local iteration).
//!
//! CI runs this as the `serve-smoke` job; like `kernel_smoke` it is a
//! regression canary plus a trend artifact, not a calibrated benchmark.
//!
//! Usage: `serve_smoke [path/to/tauhls]`

use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::{Duration, Instant};

use tauhls_json::Json;
use tauhls_serve::{client, ServeConfig, Server};

const TIMEOUT: Duration = Duration::from_secs(120);
/// Distinct specs for the cold pass — every request simulates.
const COLD_JOBS: u64 = 16;
/// Replays of one spec for the sequential hot pass — every request hits.
const HIT_JOBS: u64 = 400;
/// Client threads hammering the cache concurrently.
const CONCURRENT_CLIENTS: u64 = 4;
const HITS_PER_CLIENT: u64 = 100;
/// Distinct async jobs for the submit→poll→result pass.
const ASYNC_JOBS: u64 = 24;

fn spec(seed: u64) -> String {
    format!(r#"{{"dfg":"fir3","trials":200,"p":[0.5],"seed":{seed}}}"#)
}

enum Instance {
    Spawned(Child),
    InProcess(Server),
}

fn start(binary: Option<&str>, data_dir: &std::path::Path) -> (Instance, String) {
    let dir = data_dir.to_str().expect("utf-8 temp path");
    match binary {
        Some(bin) => {
            let mut child = Command::new(bin)
                .args([
                    "serve",
                    "--addr",
                    "127.0.0.1:0",
                    "--workers",
                    "4",
                    "--data-dir",
                    dir,
                ])
                .stdout(Stdio::piped())
                .spawn()
                .expect("spawn tauhls serve");
            let mut banner = String::new();
            std::io::BufReader::new(child.stdout.take().expect("stdout piped"))
                .read_line(&mut banner)
                .expect("read banner");
            let addr = banner
                .trim()
                .strip_prefix("listening on ")
                .expect("banner format")
                .to_string();
            (Instance::Spawned(child), addr)
        }
        None => {
            let server = Server::start(ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                data_dir: Some(data_dir.to_path_buf()),
                ..ServeConfig::default()
            })
            .expect("bind ephemeral port");
            let addr = server.local_addr().to_string();
            (Instance::InProcess(server), addr)
        }
    }
}

fn stop(instance: Instance) {
    match instance {
        Instance::Spawned(mut child) => {
            let killed = Command::new("kill")
                .args(["-TERM", &child.id().to_string()])
                .status()
                .expect("send SIGTERM");
            assert!(killed.success(), "kill -TERM failed");
            let status = child.wait().expect("wait for server");
            assert!(status.success(), "server exited non-zero: {status:?}");
        }
        Instance::InProcess(server) => server.shutdown(),
    }
}

/// Exercises the scripting client once per endpoint kind — the smoke
/// half of the job: `tauhls call` must round-trip against a live server.
fn drive_with_cli(bin: &str, addr: &str) {
    let dir = std::env::temp_dir().join("tauhls-serve-smoke");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let spec_path = dir.join("spec.json");
    std::fs::write(&spec_path, spec(1)).expect("write spec file");
    let spec_arg = spec_path.to_str().expect("utf-8 temp path");
    for args in [
        vec!["call", "healthz", "--addr", addr],
        vec!["call", "simulate", spec_arg, "--addr", addr],
        vec!["call", "metrics", "--addr", addr],
    ] {
        let out = Command::new(bin)
            .args(&args)
            .output()
            .expect("run tauhls call");
        assert!(
            out.status.success(),
            "tauhls {args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    println!("tauhls call healthz/simulate/metrics: ok");
}

fn simulate(addr: &str, body: &str, want_cache: &str) {
    let r = client::request(addr, "POST", "/v1/simulate", Some(body), TIMEOUT)
        .expect("simulate response");
    assert_eq!(r.status, 200, "{}", r.body);
    assert_eq!(r.header("x-cache"), Some(want_cache), "for spec {body}");
}

/// Reads one un-labelled (or fully-labelled) sample value; `prefix` must
/// include everything up to the value, e.g. `"tauhls_serve_trials_total "`.
fn metric(text: &str, prefix: &str) -> f64 {
    text.lines()
        .find_map(|line| line.strip_prefix(prefix)?.trim().parse::<f64>().ok())
        .unwrap_or_else(|| panic!("metric {prefix:?} missing from /metrics"))
}

/// Submits one async job, returning its id.
fn submit_job(addr: &str, spec: &str) -> String {
    let body = format!(r#"{{"endpoint":"simulate","spec":{spec}}}"#);
    let r =
        client::request(addr, "POST", "/v1/jobs", Some(&body), TIMEOUT).expect("submit response");
    assert!(
        r.status == 200 || r.status == 202,
        "{} {}",
        r.status,
        r.body
    );
    Json::parse(&r.body)
        .ok()
        .and_then(|j| j.get("job").and_then(|v| v.as_str().map(String::from)))
        .unwrap_or_else(|| panic!("submit body has no job id: {}", r.body))
}

/// Polls one job to `done` and returns its result body.
fn await_job(addr: &str, id: &str) -> String {
    let deadline = Instant::now() + TIMEOUT;
    loop {
        let r = client::request(addr, "GET", &format!("/v1/jobs/{id}/result"), None, TIMEOUT)
            .expect("result response");
        match r.status {
            200 => return r.body,
            202 => {
                assert!(Instant::now() < deadline, "job {id} never finished");
                thread::sleep(Duration::from_millis(5));
            }
            other => panic!("job {id}: HTTP {other}: {}", r.body),
        }
    }
}

/// Monte-Carlo batch sharded across the cluster pass — sized so a
/// single `--threads 1` worker takes a few seconds in release mode.
const CLUSTER_TRIALS: u64 = 60000;
const CLUSTER_P: &str = "[0.9,0.85,0.8,0.75,0.7,0.65,0.6,0.55,0.5,0.45,0.4,0.35]";

fn cluster_spec() -> String {
    format!(r#"{{"dfg":"ewf","trials":{CLUSTER_TRIALS},"p":{CLUSTER_P},"seed":77}}"#)
}

/// Starts one cluster node — a plain worker when `peers` is `None`, a
/// coordinator over the listed workers otherwise. Single-threaded
/// simulation so the 1-vs-3-worker comparison measures sharding, not
/// the in-process thread pool.
fn start_node(binary: Option<&str>, peers: Option<&std::path::Path>) -> (Instance, String) {
    match binary {
        Some(bin) => {
            let mut args = vec![
                "serve".to_string(),
                "--addr".to_string(),
                "127.0.0.1:0".to_string(),
                "--threads".to_string(),
                "1".to_string(),
            ];
            if let Some(path) = peers {
                args.push("--workers-file".to_string());
                args.push(path.to_str().expect("utf-8 peers path").to_string());
            }
            let mut child = Command::new(bin)
                .args(&args)
                .stdout(Stdio::piped())
                .spawn()
                .expect("spawn cluster node");
            let mut banner = String::new();
            std::io::BufReader::new(child.stdout.take().expect("stdout piped"))
                .read_line(&mut banner)
                .expect("read banner");
            let addr = banner
                .trim()
                .strip_prefix("listening on ")
                .expect("banner format")
                .to_string();
            (Instance::Spawned(child), addr)
        }
        None => {
            let server = Server::start(ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                sim_threads: Some(1),
                workers_file: peers.map(std::path::Path::to_path_buf),
                ..ServeConfig::default()
            })
            .expect("bind cluster node");
            let addr = server.local_addr().to_string();
            (Instance::InProcess(server), addr)
        }
    }
}

/// Runs the cluster batch through a fresh coordinator over `workers`
/// real worker addresses (plus optionally one dead address, to measure
/// requeue recovery); returns (elapsed, merged body).
fn cluster_batch(
    binary: Option<&str>,
    dir: &std::path::Path,
    worker_count: usize,
    with_dead_worker: bool,
) -> (Duration, String) {
    let nodes: Vec<(Instance, String)> = (0..worker_count)
        .map(|_| start_node(binary, None))
        .collect();
    let mut addrs: Vec<String> = nodes.iter().map(|(_, a)| a.clone()).collect();
    if with_dead_worker {
        // Port 9 (discard) answers nothing; localhost connects are
        // refused immediately, so this measures the requeue path, not
        // a connect timeout.
        addrs.push("127.0.0.1:9".to_string());
    }
    let peers = dir.join(format!("peers-{worker_count}-{with_dead_worker}.json"));
    let body = format!(
        "[{}]",
        addrs
            .iter()
            .map(|a| format!("{a:?}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    std::fs::write(&peers, body).expect("write peers file");
    let (coordinator, caddr) = start_node(binary, Some(&peers));
    let spec = cluster_spec();
    let start = Instant::now();
    let r = client::request(&caddr, "POST", "/v1/simulate", Some(&spec), TIMEOUT)
        .expect("clustered batch");
    let elapsed = start.elapsed();
    assert_eq!(r.status, 200, "{}", r.body);
    stop(coordinator);
    for (node, _) in nodes {
        stop(node);
    }
    (elapsed, r.body)
}

fn main() {
    let binary = std::env::args().nth(1);
    let data_dir = std::env::temp_dir().join(format!("tauhls-serve-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    std::fs::create_dir_all(&data_dir).expect("create data dir");
    let (instance, addr) = start(binary.as_deref(), &data_dir);
    println!("server at {addr}");
    if let Some(bin) = binary.as_deref() {
        drive_with_cli(bin, &addr);
    }

    // Cold pass: distinct seeds, so every request runs the simulation.
    let cold_start = Instant::now();
    for seed in 0..COLD_JOBS {
        simulate(&addr, &spec(100 + seed), "miss");
    }
    let cold_elapsed = cold_start.elapsed();

    // Hot pass: one warmed spec replayed sequentially — pure cache path.
    simulate(
        &addr,
        &spec(1),
        if binary.is_some() { "hit" } else { "miss" },
    );
    let hit_start = Instant::now();
    for _ in 0..HIT_JOBS {
        simulate(&addr, &spec(1), "hit");
    }
    let hit_elapsed = hit_start.elapsed();

    // Concurrent hot pass: the sharded cache under parallel clients.
    let concurrent_start = Instant::now();
    let clients: Vec<_> = (0..CONCURRENT_CLIENTS)
        .map(|_| {
            let addr = addr.clone();
            thread::spawn(move || {
                for _ in 0..HITS_PER_CLIENT {
                    simulate(&addr, &spec(1), "hit");
                }
            })
        })
        .collect();
    for handle in clients {
        handle.join().expect("client thread");
    }
    let concurrent_elapsed = concurrent_start.elapsed();

    // Async-jobs pass: submit→poll→result round trips through the
    // durable job manager, every spec distinct so each one executes and
    // journals.
    let jobs_start = Instant::now();
    let ids: Vec<String> = (0..ASYNC_JOBS)
        .map(|seed| submit_job(&addr, &spec(1000 + seed)))
        .collect();
    for id in &ids {
        let body = await_job(&addr, id);
        assert!(body.contains("\"spec\""), "result body for {id}: {body}");
    }
    let jobs_elapsed = jobs_start.elapsed();

    let metrics = client::request(&addr, "GET", "/metrics", None, TIMEOUT).expect("scrape metrics");
    assert_eq!(metrics.status, 200);
    let hits = metric(&metrics.body, "tauhls_serve_cache_hits_total ");
    let misses = metric(&metrics.body, "tauhls_serve_cache_misses_total ");
    let trials = metric(&metrics.body, "tauhls_serve_trials_total ");
    let simulate_count = metric(
        &metrics.body,
        "tauhls_serve_requests_total{endpoint=\"simulate\"} ",
    );
    let jobs_completed = metric(
        &metrics.body,
        "tauhls_serve_jobs_total{event=\"completed\"} ",
    );
    assert!(
        jobs_completed >= ASYNC_JOBS as f64,
        "only {jobs_completed} of {ASYNC_JOBS} async jobs completed"
    );
    stop(instance);

    // Recovery pass: restart on the same data dir and time the journal
    // replay plus artifact re-verification, then confirm a recovered
    // job's result is served from disk without recomputation.
    let replay_start = Instant::now();
    let (instance, addr) = start(binary.as_deref(), &data_dir);
    let replay_elapsed = replay_start.elapsed();
    let recovered = await_job(&addr, &ids[0]);
    assert!(recovered.contains("\"spec\""), "{recovered}");
    let metrics = client::request(&addr, "GET", "/metrics", None, TIMEOUT).expect("scrape metrics");
    let jobs_recovered = metric(
        &metrics.body,
        "tauhls_serve_jobs_total{event=\"recovered\"} ",
    );
    assert!(
        jobs_recovered >= ASYNC_JOBS as f64,
        "only {jobs_recovered} of {ASYNC_JOBS} jobs recovered after restart"
    );
    stop(instance);
    let _ = std::fs::remove_dir_all(&data_dir);

    // Cluster pass: the identical batch through a coordinator at 1 and
    // 3 workers (merges must be byte-identical), plus a requeue run
    // where one registered worker address is dead from the start — the
    // difference against the clean 1-worker run is the price of
    // detecting the loss and requeueing its partition.
    let cluster_dir =
        std::env::temp_dir().join(format!("tauhls-cluster-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cluster_dir);
    std::fs::create_dir_all(&cluster_dir).expect("create cluster dir");
    let (one_elapsed, one_body) = cluster_batch(binary.as_deref(), &cluster_dir, 1, false);
    let (three_elapsed, three_body) = cluster_batch(binary.as_deref(), &cluster_dir, 3, false);
    assert_eq!(
        one_body, three_body,
        "1-worker and 3-worker merges diverged"
    );
    let (requeue_elapsed, requeue_body) = cluster_batch(binary.as_deref(), &cluster_dir, 1, true);
    assert_eq!(requeue_body, one_body, "requeue changed the merged bytes");
    let requeue_recovery = (requeue_elapsed.as_secs_f64() - one_elapsed.as_secs_f64()).max(0.0);
    let _ = std::fs::remove_dir_all(&cluster_dir);
    let cluster_units = (CLUSTER_TRIALS * 12) as f64;
    let cluster_one_tps = cluster_units / one_elapsed.as_secs_f64();
    let cluster_three_tps = cluster_units / three_elapsed.as_secs_f64();

    let cold_rps = COLD_JOBS as f64 / cold_elapsed.as_secs_f64();
    let hit_rps = HIT_JOBS as f64 / hit_elapsed.as_secs_f64();
    let concurrent_rps =
        (CONCURRENT_CLIENTS * HITS_PER_CLIENT) as f64 / concurrent_elapsed.as_secs_f64();
    let job_rps = ASYNC_JOBS as f64 / jobs_elapsed.as_secs_f64();
    println!("cold (simulating):  {cold_rps:>10.1} requests/sec");
    println!("hot (cache hit):    {hit_rps:>10.1} requests/sec");
    println!("hot ({CONCURRENT_CLIENTS} clients):    {concurrent_rps:>10.1} requests/sec");
    println!("async jobs:         {job_rps:>10.1} round-trips/sec");
    println!(
        "recovery replay:    {:>10.1} ms ({ASYNC_JOBS} jobs)",
        replay_elapsed.as_secs_f64() * 1e3
    );
    println!("cache hits {hits} / misses {misses}, {trials} trials simulated");
    println!("cluster 1 worker:   {cluster_one_tps:>10.0} trials/sec");
    println!("cluster 3 workers:  {cluster_three_tps:>10.0} trials/sec");
    println!(
        "requeue recovery:   {:>10.1} ms (one dead worker)",
        requeue_recovery * 1e3
    );

    let report = Json::object([
        (
            "mode",
            Json::from(if binary.is_some() {
                "subprocess"
            } else {
                "in_process"
            }),
        ),
        ("cold_jobs", Json::from(COLD_JOBS)),
        ("cold_requests_per_sec", Json::from(cold_rps)),
        ("hit_jobs", Json::from(HIT_JOBS)),
        ("hit_requests_per_sec", Json::from(hit_rps)),
        ("concurrent_clients", Json::from(CONCURRENT_CLIENTS)),
        (
            "concurrent_hit_requests_per_sec",
            Json::from(concurrent_rps),
        ),
        ("async_jobs", Json::from(ASYNC_JOBS)),
        ("job_round_trips_per_sec", Json::from(job_rps)),
        (
            "recovery_replay_seconds",
            Json::from(replay_elapsed.as_secs_f64()),
        ),
        ("jobs_recovered", Json::from(jobs_recovered)),
        ("cache_hits", Json::from(hits)),
        ("cache_misses", Json::from(misses)),
        ("cache_hit_rate", Json::from(hits / (hits + misses))),
        ("trials_total", Json::from(trials)),
        ("simulate_requests_total", Json::from(simulate_count)),
        ("cluster_batch_trials", Json::from(CLUSTER_TRIALS * 12)),
        (
            "cluster_1worker_trials_per_sec",
            Json::from(cluster_one_tps),
        ),
        (
            "cluster_3workers_trials_per_sec",
            Json::from(cluster_three_tps),
        ),
        (
            "cluster_requeue_recovery_seconds",
            Json::from(requeue_recovery),
        ),
    ]);
    std::fs::write("BENCH_serve.json", report.to_pretty()).expect("write BENCH_serve.json");
    println!("BENCH_serve.json written");
}
