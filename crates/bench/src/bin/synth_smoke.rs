//! Smoke benchmark for the synthesis endpoints: the perf-trajectory
//! datapoint for `/v1/synth` and the staged pipeline behind it.
//!
//! With a path argument it spawns that `tauhls` binary as a real server
//! process and checks the `tauhls call synth` round-trip; without one it
//! runs against an in-process [`Server`]. Either way it measures four
//! regimes — cold synthesis (every stage executes), encoding sweeps
//! (the stage cache serves the front of the pipeline), response-cache
//! replays, and `/v1/explore` design-space sweeps — then scrapes
//! `/metrics` for the per-stage latency histograms and stage-cache
//! counters, and writes everything to `BENCH_synth.json`.
//!
//! CI runs this as the `synth-smoke` job; like `serve_smoke` it is a
//! regression canary plus a trend artifact, not a calibrated benchmark.
//!
//! Usage: `synth_smoke [path/to/tauhls]`

use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use tauhls_json::Json;
use tauhls_serve::{client, ServeConfig, Server};

const TIMEOUT: Duration = Duration::from_secs(120);
/// Benchmarks used for the cold pass — the cheap end of the paper suite,
/// so the job stays a smoke test even on a loaded CI runner.
const COLD_DFGS: [&str; 4] = ["fir3", "fir5", "iir2", "diffeq"];
/// Encodings swept per benchmark after warmup: only `logic`/`report`
/// rerun, everything earlier comes from the stage cache.
const SWEEP_ENCODINGS: [&str; 2] = ["gray", "onehot"];
/// Replays of one warmed spec — pure response-cache path.
const HIT_JOBS: u64 = 200;
/// Design-space sweeps via `/v1/explore`; distinct seeds keep each one
/// cold through the batch engine.
const EXPLORE_JOBS: u64 = 3;

fn spec(dfg: &str, encoding: &str) -> String {
    format!(r#"{{"dfg":"{dfg}","encoding":"{encoding}"}}"#)
}

fn explore_spec(seed: u64) -> String {
    format!(
        r#"{{"dfg":"fir3","max_muls":2,"max_adds":1,"trials":400,"p":[0.9,0.5],"sd_ld":[0.75,1.0],"seed":{seed}}}"#
    )
}

enum Instance {
    Spawned(Child),
    InProcess(Server),
}

fn start(binary: Option<&str>) -> (Instance, String) {
    match binary {
        Some(bin) => {
            let mut child = Command::new(bin)
                .args(["serve", "--addr", "127.0.0.1:0", "--workers", "4"])
                .stdout(Stdio::piped())
                .spawn()
                .expect("spawn tauhls serve");
            let mut banner = String::new();
            std::io::BufReader::new(child.stdout.take().expect("stdout piped"))
                .read_line(&mut banner)
                .expect("read banner");
            let addr = banner
                .trim()
                .strip_prefix("listening on ")
                .expect("banner format")
                .to_string();
            (Instance::Spawned(child), addr)
        }
        None => {
            let server = Server::start(ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                ..ServeConfig::default()
            })
            .expect("bind ephemeral port");
            let addr = server.local_addr().to_string();
            (Instance::InProcess(server), addr)
        }
    }
}

fn stop(instance: Instance) {
    match instance {
        Instance::Spawned(mut child) => {
            let killed = Command::new("kill")
                .args(["-TERM", &child.id().to_string()])
                .status()
                .expect("send SIGTERM");
            assert!(killed.success(), "kill -TERM failed");
            let status = child.wait().expect("wait for server");
            assert!(status.success(), "server exited non-zero: {status:?}");
        }
        Instance::InProcess(server) => server.shutdown(),
    }
}

/// The smoke half of the job: `tauhls call synth` (and `area`) must
/// round-trip against a live server.
fn drive_with_cli(bin: &str, addr: &str) {
    let dir = std::env::temp_dir().join("tauhls-synth-smoke");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let spec_path = dir.join("spec.json");
    std::fs::write(&spec_path, spec("fir3", "binary")).expect("write spec file");
    let spec_arg = spec_path.to_str().expect("utf-8 temp path");
    for args in [
        vec!["call", "synth", spec_arg, "--addr", addr],
        vec!["call", "area", spec_arg, "--addr", addr],
    ] {
        let out = Command::new(bin)
            .args(&args)
            .output()
            .expect("run tauhls call");
        assert!(
            out.status.success(),
            "tauhls {args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    println!("tauhls call synth/area: ok");
}

fn synth(addr: &str, body: &str, want_cache: &str) {
    let r =
        client::request(addr, "POST", "/v1/synth", Some(body), TIMEOUT).expect("synth response");
    assert_eq!(r.status, 200, "{}", r.body);
    assert_eq!(r.header("x-cache"), Some(want_cache), "for spec {body}");
}

/// Reads one sample value; `prefix` must include everything up to the
/// value, e.g. `"tauhls_serve_stage_cache_hits_total{stage=\"bind\"} "`.
fn metric(text: &str, prefix: &str) -> f64 {
    text.lines()
        .find_map(|line| line.strip_prefix(prefix)?.trim().parse::<f64>().ok())
        .unwrap_or_else(|| panic!("metric {prefix:?} missing from /metrics"))
}

fn main() {
    let binary = std::env::args().nth(1);
    let (instance, addr) = start(binary.as_deref());
    println!("server at {addr}");
    if let Some(bin) = binary.as_deref() {
        drive_with_cli(bin, &addr);
    }
    // The CLI warmup above already synthesized fir3/binary in subprocess
    // mode, so its replay below starts from a warm response cache.
    let warmed = binary.is_some();

    // Cold pass: distinct benchmarks under the default encoding — every
    // stage of the pipeline executes.
    let cold_start = Instant::now();
    for (i, dfg) in COLD_DFGS.iter().enumerate() {
        let expect = if warmed && i == 0 { "hit" } else { "miss" };
        synth(&addr, &spec(dfg, "binary"), expect);
    }
    let cold_elapsed = cold_start.elapsed();

    // Sweep pass: same benchmarks, new encodings. The encoding enters the
    // pipeline at the logic stage, so canonicalize/order/bind/controllers
    // are all stage-cache hits — this is the prefix-reuse path.
    let sweep_start = Instant::now();
    for dfg in COLD_DFGS {
        for encoding in SWEEP_ENCODINGS {
            synth(&addr, &spec(dfg, encoding), "miss");
        }
    }
    let sweep_elapsed = sweep_start.elapsed();

    // Hot pass: one warmed spec replayed — pure response-cache path.
    let hit_start = Instant::now();
    for _ in 0..HIT_JOBS {
        synth(&addr, &spec("fir3", "binary"), "hit");
    }
    let hit_elapsed = hit_start.elapsed();

    // Explore pass: the Pareto design-space sweep. Each request fans a
    // small allocation x encoding x (p, sd_ld) grid through the batch
    // engine, so this is the heaviest per-request path the server has.
    let explore_start = Instant::now();
    for seed in 0..EXPLORE_JOBS {
        let body = explore_spec(seed);
        let r = client::request(&addr, "POST", "/v1/explore", Some(&body), TIMEOUT)
            .expect("explore response");
        assert_eq!(r.status, 200, "{}", r.body);
        assert_eq!(r.header("x-cache"), Some("miss"), "for spec {body}");
        assert!(
            r.body.contains("frontier"),
            "explore body lacks a frontier: {}",
            r.body
        );
    }
    let explore_elapsed = explore_start.elapsed();

    let metrics = client::request(&addr, "GET", "/metrics", None, TIMEOUT).expect("scrape metrics");
    assert_eq!(metrics.status, 200);
    let stage_names = [
        "canonicalize",
        "order",
        "bind",
        "controllers",
        "logic",
        "report",
    ];
    let mut stage_hits = 0.0;
    let mut stage_misses = 0.0;
    let stages = Json::object(stage_names.map(|stage| {
        let hits = metric(
            &metrics.body,
            &format!("tauhls_serve_stage_cache_hits_total{{stage=\"{stage}\"}} "),
        );
        let misses = metric(
            &metrics.body,
            &format!("tauhls_serve_stage_cache_misses_total{{stage=\"{stage}\"}} "),
        );
        let sum = metric(
            &metrics.body,
            &format!("tauhls_serve_stage_seconds_sum{{stage=\"{stage}\"}} "),
        );
        let count = metric(
            &metrics.body,
            &format!("tauhls_serve_stage_seconds_count{{stage=\"{stage}\"}} "),
        );
        stage_hits += hits;
        stage_misses += misses;
        (
            stage,
            Json::object([
                ("cache_hits", Json::from(hits)),
                ("cache_misses", Json::from(misses)),
                ("runs", Json::from(count)),
                (
                    "mean_us",
                    Json::from(if count > 0.0 { 1e6 * sum / count } else { 0.0 }),
                ),
            ]),
        )
    }));
    let synth_requests = metric(
        &metrics.body,
        "tauhls_serve_requests_total{endpoint=\"synth\"} ",
    );
    stop(instance);

    let cold_sps = COLD_DFGS.len() as f64 / cold_elapsed.as_secs_f64();
    let sweep_jobs = (COLD_DFGS.len() * SWEEP_ENCODINGS.len()) as f64;
    let sweep_sps = sweep_jobs / sweep_elapsed.as_secs_f64();
    let hit_rps = HIT_JOBS as f64 / hit_elapsed.as_secs_f64();
    let explore_sps = EXPLORE_JOBS as f64 / explore_elapsed.as_secs_f64();
    println!("cold (full pipeline):   {cold_sps:>10.1} synth/sec");
    println!("sweep (prefix reuse):   {sweep_sps:>10.1} synth/sec");
    println!("hot (response cache):   {hit_rps:>10.1} requests/sec");
    println!("explore (design space): {explore_sps:>10.1} sweeps/sec");
    println!("stage cache: {stage_hits} hits / {stage_misses} misses");

    let report = Json::object([
        (
            "mode",
            Json::from(if binary.is_some() {
                "subprocess"
            } else {
                "in_process"
            }),
        ),
        ("cold_jobs", Json::from(COLD_DFGS.len())),
        ("cold_synth_per_sec", Json::from(cold_sps)),
        ("sweep_jobs", Json::from(sweep_jobs)),
        ("sweep_synth_per_sec", Json::from(sweep_sps)),
        ("hit_jobs", Json::from(HIT_JOBS)),
        ("hit_requests_per_sec", Json::from(hit_rps)),
        ("explore_jobs", Json::from(EXPLORE_JOBS)),
        ("explore_per_sec", Json::from(explore_sps)),
        ("stage_cache_hits", Json::from(stage_hits)),
        ("stage_cache_misses", Json::from(stage_misses)),
        ("synth_requests_total", Json::from(synth_requests)),
        ("stages", stages),
    ]);
    std::fs::write("BENCH_synth.json", report.to_pretty()).expect("write BENCH_synth.json");
    println!("BENCH_synth.json written");
}
