//! Regenerates the paper's Table 1 (area analysis for Diff.Eq). Also
//! writes `table1.json` to the invocation directory for the golden-file
//! snapshot tests.
use tauhls_json::ToJson;

fn main() {
    let t = tauhls_core::experiments::table1(
        tauhls_fsm::Encoding::Binary,
        &tauhls_logic::AreaModel::default(),
    );
    println!("{t}");
    std::fs::write("table1.json", t.to_json().to_pretty()).ok();
    eprintln!("(machine-readable copy written to table1.json)");
}
