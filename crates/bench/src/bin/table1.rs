//! Regenerates the paper's Table 1 (area analysis for Diff.Eq).
fn main() {
    let t = tauhls_core::experiments::table1(
        tauhls_fsm::Encoding::Binary,
        &tauhls_logic::AreaModel::default(),
    );
    println!("{t}");
}
