//! Regenerates Fig 1: the structure and characterization of a TAU.
fn main() {
    print!("{}", tauhls_core::figures::fig1_report());
}
