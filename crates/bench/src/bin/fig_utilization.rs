//! Quantifies the paper's "minimize idle time of each component arithmetic
//! unit" claim: busy fraction per controller style across the benchmarks.
//!
//! Usage: `fig_utilization [p] [trials] [threads]` (defaults: 0.6, 2000,
//! all available cores; output is thread-count invariant).
use tauhls_sim::BatchRunner;

fn main() {
    let mut args = std::env::args().skip(1);
    let p: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.6);
    let trials: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2000);
    let runner = match args.next().and_then(|a| a.parse().ok()) {
        Some(threads) => BatchRunner::new(threads),
        None => BatchRunner::available(),
    };
    print!(
        "{}",
        tauhls_core::utilization::utilization_table(p, trials, 2003, &runner)
    );
}
