//! Regenerates the paper's Table 2 (latency comparison, six benchmarks).
//!
//! Usage: `table2 [trials] [seed] [threads]` (defaults: 4000 trials, seed
//! 2003, all available cores). Output is bit-identical for any thread
//! count. Also writes `table2.json` next to the invocation directory.
use tauhls_json::ToJson;
use tauhls_sim::BatchRunner;

fn main() {
    let mut args = std::env::args().skip(1);
    let trials: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4000);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2003);
    let runner = match args.next().and_then(|a| a.parse().ok()) {
        Some(threads) => BatchRunner::new(threads),
        None => BatchRunner::available(),
    };
    let t = tauhls_core::experiments::table2(trials, seed, &runner).expect("fault-free table2");
    println!("{t}");
    std::fs::write("table2.json", t.to_json().to_pretty()).ok();
    eprintln!("(machine-readable copy written to table2.json)");
}
