//! Regenerates the paper's Table 2 (latency comparison, six benchmarks).
//!
//! Usage: `table2 [trials] [seed]` (defaults: 4000 trials, seed 2003).
//! Also writes `table2.json` next to the invocation directory.
fn main() {
    let mut args = std::env::args().skip(1);
    let trials: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(4000);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2003);
    let t = tauhls_core::experiments::table2(trials, seed);
    println!("{t}");
    let json = serde_json::to_string_pretty(&t).expect("serializable");
    std::fs::write("table2.json", json).ok();
    println!("(machine-readable copy written to table2.json)");
}
