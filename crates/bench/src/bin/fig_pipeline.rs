//! Beyond the paper: pipelined (overlapped-iteration) throughput of the
//! wrap-around distributed controllers — steady-state initiation interval
//! vs single-iteration latency, plus write-after-read hazard counts that
//! quantify the result-buffering a pipelined datapath would need.
use rand::SeedableRng;
use tauhls_core::experiments::paper_benchmarks;
use tauhls_fsm::DistributedControlUnit;
use tauhls_sched::BoundDfg;
use tauhls_sim::{simulate_distributed, simulate_pipelined, CompletionModel};

fn main() {
    let p = 0.7;
    let iters = 24;
    println!("Pipelined distributed control (P = {p}, {iters} iterations)");
    println!(
        "{:<12} {:>9} {:>10} {:>12}",
        "DFG", "latency", "II", "WAR hazards"
    );
    for (dfg, alloc, _) in paper_benchmarks() {
        let name = dfg.name().to_string();
        let bound = BoundDfg::bind(&dfg, &alloc);
        let cu = DistributedControlUnit::generate(&bound);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let single = simulate_distributed(
            &bound,
            &cu,
            &CompletionModel::Bernoulli { p },
            None,
            &mut rng,
        )
        .expect("fault-free simulation");
        let piped = simulate_pipelined(
            &bound,
            &cu,
            &CompletionModel::Bernoulli { p },
            iters,
            &mut rng,
        )
        .expect("fault-free simulation");
        println!(
            "{:<12} {:>9} {:>10.2} {:>12}",
            name,
            single.cycles,
            piped.initiation_interval(),
            piped.war_hazards.len()
        );
    }
    println!("\nII < latency: iterations overlap on idle units. Nonzero WAR counts");
    println!("show where a pipelined datapath needs double-buffered result registers.");
}
