//! Regenerates Fig 6: the arithmetic unit controller for TAU multiplier M1.
fn main() {
    print!("{}", tauhls_core::figures::fig6_report());
}
