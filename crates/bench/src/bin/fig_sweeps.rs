//! Extended sweeps beyond the paper's fixed grid: the full latency-vs-P
//! curve for FIR5 and the enhancement-vs-TAU-count series for the
//! AR lattice. Trials run on the batch engine over all available cores;
//! the output does not depend on the core count.
use tauhls_core::sweeps::{allocation_series, latency_curve};
use tauhls_dfg::benchmarks::{ar_lattice4, fir5};
use tauhls_sched::{Allocation, BoundDfg};
use tauhls_sim::BatchRunner;

fn main() {
    let runner = BatchRunner::available();
    let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
    println!("FIR5 latency vs P (cycles, 2000 trials):");
    println!("{:>6} {:>10} {:>10} {:>8}", "P", "sync", "dist", "gain");
    for pt in latency_curve(&bound, 11, 2000, 42, &runner) {
        println!(
            "{:>6.2} {:>10.2} {:>10.2} {:>7.1}%",
            pt.p, pt.sync_cycles, pt.dist_cycles, pt.enhancement
        );
    }
    println!("\nAR-lattice enhancement vs TAU multipliers (P = 0.7):");
    println!(
        "{:>5} {:>10} {:>8} {:>6}",
        "muls", "dist cyc", "gain", "arcs"
    );
    for pt in allocation_series(&ar_lattice4(), 2, 0, 1..=6, 0.7, 2000, 42, &runner) {
        println!(
            "{:>5} {:>10.2} {:>7.1}% {:>6}",
            pt.muls, pt.dist_cycles, pt.enhancement, pt.schedule_arcs
        );
    }
}
