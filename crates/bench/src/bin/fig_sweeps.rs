//! Extended sweeps beyond the paper's fixed grid: the full latency-vs-P
//! curve for FIR5 and the enhancement-vs-TAU-count series for the
//! AR lattice.
use tauhls_core::sweeps::{allocation_series, latency_curve};
use tauhls_dfg::benchmarks::{ar_lattice4, fir5};
use tauhls_sched::{Allocation, BoundDfg};

fn main() {
    let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
    println!("FIR5 latency vs P (cycles, 2000 trials):");
    println!("{:>6} {:>10} {:>10} {:>8}", "P", "sync", "dist", "gain");
    for pt in latency_curve(&bound, 11, 2000, 42) {
        println!(
            "{:>6.2} {:>10.2} {:>10.2} {:>7.1}%",
            pt.p, pt.sync_cycles, pt.dist_cycles, pt.enhancement
        );
    }
    println!("\nAR-lattice enhancement vs TAU multipliers (P = 0.7):");
    println!("{:>5} {:>10} {:>8} {:>6}", "muls", "dist cyc", "gain", "arcs");
    for pt in allocation_series(&ar_lattice4(), 2, 0, 1..=6, 0.7, 2000, 42) {
        println!(
            "{:>5} {:>10.2} {:>7.1}% {:>6}",
            pt.muls, pt.dist_cycles, pt.enhancement, pt.schedule_arcs
        );
    }
}
