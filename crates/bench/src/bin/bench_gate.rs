//! Perf-regression gate over the committed `BENCH_*.json` baselines.
//!
//! Compares a freshly generated bench report (`kernel_smoke`,
//! `serve_smoke`, or `synth_smoke` output) against the baseline committed
//! under `results/bench_baseline/` and fails when any throughput metric
//! regresses by more than the tolerance (10% by default). Individual
//! metrics can be waived with `--allow <metric>` when a regression is
//! understood and accepted — the waiver is printed, never silent.
//!
//! For the kernel report the gate also enforces the bit-sliced engine's
//! reason to exist: aggregate `dist_sliced` throughput must be at least
//! 10x aggregate scalar `dist` throughput *within the fresh file*. That
//! ratio compares two numbers from the same run on the same machine, so
//! it holds regardless of how fast the CI runner is; the absolute
//! baseline comparison is the noisier cross-run check the tolerance and
//! allowlist exist for.
//!
//! Usage:
//!   bench_gate <kernel|serve|synth> <fresh.json> <baseline.json>
//!              [--tolerance 0.10] [--allow <metric>]...
//!
//! Exit codes: 0 = pass, 1 = regression, 2 = usage/parse error.

use std::process::ExitCode;
use tauhls_json::Json;

/// Relative throughput drop (0.10 = 10%) tolerated before failing.
const DEFAULT_TOLERANCE: f64 = 0.10;

/// The sliced distributed engine must clear this speedup over the scalar
/// one within a single kernel report.
const MIN_SLICED_DIST_SPEEDUP: f64 = 10.0;

/// Named throughput metrics extracted from one bench report. Higher is
/// always better for every metric the gate tracks.
fn metrics(kind: &str, report: &Json) -> Result<Vec<(String, f64)>, String> {
    match kind {
        "kernel" => {
            let rows = report
                .get("engines")
                .and_then(Json::as_array)
                .ok_or("kernel report has no engines[] array")?;
            rows.iter()
                .map(|row| {
                    let engine = row
                        .get("engine")
                        .and_then(Json::as_str)
                        .ok_or("engine row missing engine name")?;
                    let benchmark = row
                        .get("benchmark")
                        .and_then(Json::as_str)
                        .ok_or("engine row missing benchmark name")?;
                    let cps = row
                        .get("cycles_per_sec")
                        .and_then(Json::as_f64)
                        .ok_or("engine row missing cycles_per_sec")?;
                    Ok((format!("kernel/{engine}/{benchmark}"), cps))
                })
                .collect()
        }
        "serve" | "synth" => {
            let fields = report.as_object().ok_or("report is not a JSON object")?;
            let found: Vec<_> = fields
                .iter()
                .filter(|(key, _)| key.ends_with("_per_sec"))
                .map(|(key, value)| {
                    let v = value
                        .as_f64()
                        .ok_or_else(|| format!("{key} is not a number"))?;
                    Ok((format!("{kind}/{key}"), v))
                })
                .collect::<Result<_, String>>()?;
            if found.is_empty() {
                return Err(format!("{kind} report has no *_per_sec metrics"));
            }
            Ok(found)
        }
        other => Err(format!("unknown report kind {other:?}")),
    }
}

/// One metric that fell more than the tolerance below its baseline.
#[derive(Debug, PartialEq)]
struct Regression {
    metric: String,
    baseline: f64,
    fresh: f64,
    waived: bool,
}

impl Regression {
    fn drop_pct(&self) -> f64 {
        (1.0 - self.fresh / self.baseline) * 100.0
    }
}

/// Compares fresh metrics against the baseline. Metrics present only on
/// one side are ignored (new benchmarks don't fail the gate; the next
/// baseline refresh picks them up), but a regressed metric is reported
/// even when waived.
fn compare(
    baseline: &[(String, f64)],
    fresh: &[(String, f64)],
    tolerance: f64,
    allow: &[String],
) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for (metric, base) in baseline {
        let Some((_, new)) = fresh.iter().find(|(m, _)| m == metric) else {
            continue;
        };
        if *base > 0.0 && *new < *base * (1.0 - tolerance) {
            regressions.push(Regression {
                metric: metric.clone(),
                baseline: *base,
                fresh: *new,
                waived: allow.iter().any(|a| a == metric),
            });
        }
    }
    regressions
}

/// Aggregate cycles-per-second for one engine across every benchmark row
/// of a kernel report: total simulated cycles over total wall-clock.
fn aggregate_cycles_per_sec(report: &Json, engine: &str) -> Result<f64, String> {
    let rows = report
        .get("engines")
        .and_then(Json::as_array)
        .ok_or("kernel report has no engines[] array")?;
    let mut cycles = 0u64;
    let mut ns = 0u64;
    for row in rows {
        if row.get("engine").and_then(Json::as_str) == Some(engine) {
            cycles += row
                .get("total_cycles")
                .and_then(Json::as_u64)
                .ok_or("engine row missing total_cycles")?;
            ns += row
                .get("elapsed_ns")
                .and_then(Json::as_u64)
                .ok_or("engine row missing elapsed_ns")?;
        }
    }
    if ns == 0 {
        return Err(format!("kernel report has no {engine} rows"));
    }
    Ok(cycles as f64 / (ns as f64 / 1e9))
}

/// The machine-independent check: within one kernel report, the sliced
/// distributed engine must be at least [`MIN_SLICED_DIST_SPEEDUP`] times
/// the scalar one.
fn sliced_dist_speedup(report: &Json) -> Result<f64, String> {
    let scalar = aggregate_cycles_per_sec(report, "dist")?;
    let sliced = aggregate_cycles_per_sec(report, "dist_sliced")?;
    Ok(sliced / scalar)
}

fn usage() -> String {
    "usage: bench_gate <kernel|serve|synth> <fresh.json> <baseline.json> \
     [--tolerance 0.10] [--allow <metric>]..."
        .to_string()
}

fn run(args: &[String]) -> Result<bool, String> {
    let mut positional = Vec::new();
    let mut allow = Vec::new();
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--allow" => allow.push(it.next().ok_or("--allow needs a metric name")?.clone()),
            "--tolerance" => {
                tolerance = it
                    .next()
                    .ok_or("--tolerance needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --tolerance: {e}"))?;
            }
            _ => positional.push(arg.clone()),
        }
    }
    let [kind, fresh_path, baseline_path] = positional.as_slice() else {
        return Err(usage());
    };
    let load = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Json::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
    };
    let fresh = load(fresh_path)?;
    let baseline = load(baseline_path)?;

    let fresh_metrics = metrics(kind, &fresh)?;
    let baseline_metrics = metrics(kind, &baseline)?;
    let regressions = compare(&baseline_metrics, &fresh_metrics, tolerance, &allow);

    let mut pass = true;
    for r in &regressions {
        let tag = if r.waived { "WAIVED" } else { "FAIL" };
        println!(
            "{tag}: {} dropped {:.1}% ({:.0} -> {:.0})",
            r.metric,
            r.drop_pct(),
            r.baseline,
            r.fresh
        );
        pass &= r.waived;
    }
    let checked = baseline_metrics
        .iter()
        .filter(|(m, _)| fresh_metrics.iter().any(|(f, _)| f == m))
        .count();
    println!(
        "{kind}: {checked} metrics within {:.0}% of baseline ({} regressed, {} waived)",
        tolerance * 100.0,
        regressions.len(),
        regressions.iter().filter(|r| r.waived).count()
    );

    if *kind == "kernel" {
        let speedup = sliced_dist_speedup(&fresh)?;
        if speedup < MIN_SLICED_DIST_SPEEDUP {
            println!(
                "FAIL: sliced dist speedup {speedup:.2}x below required \
                 {MIN_SLICED_DIST_SPEEDUP:.0}x"
            );
            pass = false;
        } else {
            println!(
                "kernel: sliced dist speedup {speedup:.2}x (>= {MIN_SLICED_DIST_SPEEDUP:.0}x)"
            );
        }
    }
    Ok(pass)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("bench_gate: {msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel_report(rows: &[(&str, &str, u64, u64)]) -> Json {
        Json::object([(
            "engines",
            Json::array(rows.iter().map(|(engine, benchmark, cycles, ns)| {
                Json::object([
                    ("engine", Json::from(*engine)),
                    ("benchmark", Json::from(*benchmark)),
                    ("total_cycles", Json::from(*cycles)),
                    ("elapsed_ns", Json::from(*ns)),
                    (
                        "cycles_per_sec",
                        Json::from(*cycles as f64 / (*ns as f64 / 1e9)),
                    ),
                ])
            })),
        )])
    }

    #[test]
    fn kernel_metrics_are_per_engine_per_benchmark() {
        let report = kernel_report(&[("dist", "fir3", 1000, 1_000_000)]);
        let m = metrics("kernel", &report).unwrap();
        assert_eq!(m, vec![("kernel/dist/fir3".to_string(), 1_000_000.0)]);
    }

    #[test]
    fn serve_metrics_pick_per_sec_keys_only() {
        let report = Json::object([
            ("mode", Json::from("subprocess")),
            ("hit_requests_per_sec", Json::from(200.0)),
            ("cache_hits", Json::from(17.0)),
        ]);
        let m = metrics("serve", &report).unwrap();
        assert_eq!(m, vec![("serve/hit_requests_per_sec".to_string(), 200.0)]);
    }

    #[test]
    fn compare_flags_only_drops_beyond_tolerance() {
        let baseline = vec![
            ("a".to_string(), 100.0),
            ("b".to_string(), 100.0),
            ("gone".to_string(), 100.0),
        ];
        let fresh = vec![
            ("a".to_string(), 91.0),  // -9%: inside tolerance
            ("b".to_string(), 80.0),  // -20%: regression
            ("new".to_string(), 1.0), // not in baseline: ignored
        ];
        let out = compare(&baseline, &fresh, 0.10, &[]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].metric, "b");
        assert!(!out[0].waived);
        assert!((out[0].drop_pct() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn allowlist_waives_but_still_reports() {
        let baseline = vec![("b".to_string(), 100.0)];
        let fresh = vec![("b".to_string(), 50.0)];
        let out = compare(&baseline, &fresh, 0.10, &["b".to_string()]);
        assert_eq!(out.len(), 1);
        assert!(out[0].waived);
    }

    #[test]
    fn sliced_speedup_aggregates_across_benchmarks() {
        // dist: 2000 cycles in 2ms = 1M cps; sliced: 2000 in 0.1ms = 20M.
        let report = kernel_report(&[
            ("dist", "fir3", 1000, 1_000_000),
            ("dist", "fir5", 1000, 1_000_000),
            ("dist_sliced", "fir3", 1000, 50_000),
            ("dist_sliced", "fir5", 1000, 50_000),
        ]);
        let speedup = sliced_dist_speedup(&report).unwrap();
        assert!((speedup - 20.0).abs() < 1e-9);
    }

    #[test]
    fn missing_engine_rows_are_an_error_not_a_pass() {
        let report = kernel_report(&[("dist", "fir3", 1000, 1_000_000)]);
        assert!(sliced_dist_speedup(&report).is_err());
    }
}
