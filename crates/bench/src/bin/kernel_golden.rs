//! Regenerates `kernel_golden.json`: the engine-equivalence fingerprint
//! corpus (benchmark × seed × fault plan for every simulation engine).
//! `tests/golden.rs` byte-compares the checked-in copy against the
//! current engines, so any behavioral drift in the cycle kernel shows up
//! as a diff.

use tauhls_core::conformance::kernel_conformance;

fn main() {
    let rendered = kernel_conformance().to_pretty();
    std::fs::write("kernel_golden.json", &rendered).expect("write kernel_golden.json");
    let entries = rendered.matches("\"bench\"").count();
    println!("kernel_golden.json: {entries} corpus entries");
}
