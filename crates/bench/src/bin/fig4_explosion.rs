//! Regenerates Fig 4: exponential centralized state growth vs linear
//! distributed growth over the number of concurrently active TAUs.
fn main() {
    println!("Fig 4. Controller size vs number of concurrent TAUs");
    println!(
        "{:>3} {:>12} {:>15} {:>12} {:>12}",
        "n", "CENT states", "CENT branching", "DIST states", "SYNC states"
    );
    for p in tauhls_core::experiments::fig4_explosion(8) {
        println!(
            "{:>3} {:>12} {:>15} {:>12} {:>12}",
            p.n, p.cent_states, p.cent_branching, p.dist_states, p.sync_states
        );
    }
}
