//! Regenerates Fig 7: the distributed global control unit and its wiring.
fn main() {
    print!("{}", tauhls_core::figures::fig7_report());
}
