//! Regenerates Fig 2: original DFG -> TAUBM DFG -> TAUBM FSM.
fn main() {
    print!("{}", tauhls_core::figures::fig2_report());
}
