//! Regenerates `synth_golden.json`: the staged-pipeline conformance
//! corpus (paper benchmark × state encoding, fingerprinting the
//! artifact-hash chain and every synthesized controller).
//! `tests/golden.rs` byte-compares the checked-in copy against the
//! current pipeline, so any drift in scheduling, binding, controller
//! generation, logic synthesis, or the hashing discipline shows up as a
//! diff.

use tauhls_core::conformance::synth_conformance;

fn main() {
    let rendered = synth_conformance().to_pretty();
    std::fs::write("synth_golden.json", &rendered).expect("write synth_golden.json");
    let entries = rendered.matches("\"bench\"").count();
    println!("synth_golden.json: {entries} corpus entries");
}
