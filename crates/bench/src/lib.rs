//! placeholder
