//! Minimal std-only micro-benchmark harness (offline stand-in for
//! criterion), shared by the `benches/` targets.
//!
//! Usage inside a `harness = false` bench target:
//!
//! ```no_run
//! use tauhls_bench::{black_box, Bench};
//!
//! fn main() {
//!     let bench = Bench::from_args();
//!     bench.run("group/function", || {
//!         black_box(2u64.pow(20));
//!     });
//! }
//! ```
//!
//! `cargo bench -p tauhls-bench` runs every target; an optional positional
//! argument (as criterion accepted) filters benchmark names by substring.
//! Each benchmark is auto-calibrated to a fixed batch duration, sampled
//! several times, and reported as `min / median` nanoseconds per
//! iteration. The harness favours robustness over rigor: it is meant to
//! catch order-of-magnitude regressions, not single-percent drifts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock duration of one measured batch.
const BATCH_TARGET: Duration = Duration::from_millis(10);

/// Benchmark runner configured from the command line.
#[derive(Clone, Debug)]
pub struct Bench {
    filter: Option<String>,
    samples: usize,
}

impl Default for Bench {
    fn default() -> Self {
        Bench {
            filter: None,
            samples: 7,
        }
    }
}

impl Bench {
    /// Builds a runner from `std::env::args`: the first non-flag argument
    /// becomes a substring filter on benchmark names (flags that cargo's
    /// bench protocol forwards, like `--bench`, are ignored).
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Bench {
            filter,
            ..Bench::default()
        }
    }

    /// Overrides the number of measured batches per benchmark.
    pub fn sample_size(mut self, samples: usize) -> Self {
        assert!(samples > 0);
        self.samples = samples;
        self
    }

    /// Times `f`, printing `min / median` ns-per-iteration, unless the
    /// name does not match the filter.
    pub fn run(&self, name: &str, mut f: impl FnMut()) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Calibrate: grow the iteration count until one batch reaches the
        // target duration (also serves as warm-up).
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            let took = start.elapsed();
            if took >= BATCH_TARGET || iters >= 1 << 24 {
                break;
            }
            iters = if took.is_zero() {
                iters * 16
            } else {
                (iters * 2)
                    .max((iters as u128 * BATCH_TARGET.as_nanos() / took.as_nanos().max(1)) as u64)
            };
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    f();
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        println!(
            "{name:<44} {:>12} / {:>12}  ({iters} iters x {} samples)",
            format_ns(min),
            format_ns(median),
            self.samples
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_filters() {
        let mut calls = 0u32;
        Bench {
            filter: Some("match".into()),
            samples: 1,
        }
        .run("no", || calls += 1);
        assert_eq!(calls, 0);
        Bench {
            filter: Some("yes".into()),
            samples: 1,
        }
        .run("yes/really", || calls += 1);
        assert!(calls > 0);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(format_ns(12.0), "12 ns");
        assert_eq!(format_ns(4_500.0), "4.50 µs");
        assert_eq!(format_ns(7_000_000.0), "7.00 ms");
        assert_eq!(format_ns(2_100_000_000.0), "2.10 s");
    }
}
