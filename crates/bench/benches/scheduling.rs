//! Scheduling ablation bench (DESIGN.md decision 3): exact
//! (Dilworth/matching) vs greedy clique covers, and full binding cost, on
//! the paper benchmarks and on growing random DFGs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tauhls_bench::{black_box, Bench};
use tauhls_dfg::{random_dfg, RandomDfgParams, ResourceClass};
use tauhls_sched::{reachability, Allocation, BoundDfg, DependencyGraph, ListSchedule};

fn main() {
    let bench = Bench::from_args().sample_size(5);

    for ops in [20usize, 40, 80] {
        let mut rng = StdRng::seed_from_u64(ops as u64);
        let dfg = random_dfg(
            &mut rng,
            &RandomDfgParams {
                num_ops: ops,
                kind_weights: [2, 1, 3, 0],
                ..Default::default()
            },
        );
        let reach = reachability(&dfg);
        let dep = DependencyGraph::for_class(&dfg, ResourceClass::Multiplier, &reach);
        eprintln!(
            "cliques ops={ops}: exact {} vs greedy {}",
            dep.min_clique_cover().len(),
            dep.greedy_clique_cover().len()
        );
        bench.run(&format!("sched/cliques/exact_matching/{ops}"), || {
            black_box(black_box(&dep).min_clique_cover());
        });
        bench.run(&format!("sched/cliques/greedy/{ops}"), || {
            black_box(black_box(&dep).greedy_clique_cover());
        });
    }

    for (dfg, alloc, _) in tauhls_core::experiments::paper_benchmarks() {
        let name = dfg.name().to_string();
        bench.run(&format!("sched/bind/list_schedule/{name}"), || {
            black_box(ListSchedule::run(black_box(&dfg), &alloc));
        });
        bench.run(&format!("sched/bind/bind/{name}"), || {
            black_box(BoundDfg::bind(black_box(&dfg), &alloc));
        });
    }
    // Scaling on random graphs.
    for ops in [50usize, 100] {
        let mut rng = StdRng::seed_from_u64(7);
        let dfg = random_dfg(
            &mut rng,
            &RandomDfgParams {
                num_ops: ops,
                kind_weights: [2, 1, 3, 1],
                ..Default::default()
            },
        );
        let alloc = Allocation::paper(3, 2, 1);
        bench.run(&format!("sched/bind/bind_random/{ops}"), || {
            black_box(BoundDfg::bind(black_box(&dfg), &alloc));
        });
    }
}
