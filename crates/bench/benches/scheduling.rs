//! Scheduling ablation bench (DESIGN.md decision 3): exact
//! (Dilworth/matching) vs greedy clique covers, and full binding cost, on
//! the paper benchmarks and on growing random DFGs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use tauhls_dfg::{random_dfg, RandomDfgParams, ResourceClass};
use tauhls_sched::{reachability, Allocation, BoundDfg, DependencyGraph, ListSchedule};

fn bench_clique_covers(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched/cliques");
    for ops in [20usize, 40, 80] {
        let mut rng = StdRng::seed_from_u64(ops as u64);
        let dfg = random_dfg(
            &mut rng,
            &RandomDfgParams {
                num_ops: ops,
                kind_weights: [2, 1, 3, 0],
                ..Default::default()
            },
        );
        let reach = reachability(&dfg);
        let dep = DependencyGraph::for_class(&dfg, ResourceClass::Multiplier, &reach);
        eprintln!(
            "cliques ops={ops}: exact {} vs greedy {}",
            dep.min_clique_cover().len(),
            dep.greedy_clique_cover().len()
        );
        g.bench_with_input(BenchmarkId::new("exact_matching", ops), &dep, |b, d| {
            b.iter(|| black_box(d).min_clique_cover())
        });
        g.bench_with_input(BenchmarkId::new("greedy", ops), &dep, |b, d| {
            b.iter(|| black_box(d).greedy_clique_cover())
        });
    }
    g.finish();
}

fn bench_full_binding(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched/bind");
    for (dfg, alloc, _) in tauhls_core::experiments::paper_benchmarks() {
        let name = dfg.name().to_string();
        g.bench_function(format!("list_schedule/{name}"), |b| {
            b.iter(|| ListSchedule::run(black_box(&dfg), &alloc))
        });
        g.bench_function(format!("bind/{name}"), |b| {
            b.iter(|| BoundDfg::bind(black_box(&dfg), &alloc))
        });
    }
    // Scaling on random graphs.
    for ops in [50usize, 100] {
        let mut rng = StdRng::seed_from_u64(7);
        let dfg = random_dfg(
            &mut rng,
            &RandomDfgParams {
                num_ops: ops,
                kind_weights: [2, 1, 3, 1],
                ..Default::default()
            },
        );
        let alloc = Allocation::paper(3, 2, 1);
        g.bench_with_input(BenchmarkId::new("bind_random", ops), &dfg, |b, d| {
            b.iter(|| BoundDfg::bind(black_box(d), &alloc))
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_clique_covers, bench_full_binding
);
criterion_main!(benches);
