//! Table 1 companion bench: controller generation and synthesis cost per
//! style (distributed Algorithm 1 vs synchronized vs centralized product)
//! on the Diff.Eq benchmark, plus per-encoding synthesis of the D-FSMs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tauhls_dfg::benchmarks::diffeq;
use tauhls_fsm::{
    cent_sync_fsm, synthesize, unit_controller, DistributedControlUnit, Encoding,
};
use tauhls_logic::AreaModel;
use tauhls_sched::{Allocation, BoundDfg, UnitId};

fn bench_generation(c: &mut Criterion) {
    let bound = BoundDfg::bind(&diffeq(), &Allocation::paper(2, 1, 1));
    let mut g = c.benchmark_group("table1/generation");
    g.bench_function("distributed_control_unit", |b| {
        b.iter(|| DistributedControlUnit::generate(black_box(&bound)))
    });
    g.bench_function("cent_sync_fsm", |b| {
        b.iter(|| cent_sync_fsm(black_box(&bound)))
    });
    g.bench_function("single_unit_controller", |b| {
        b.iter(|| unit_controller(black_box(&bound), UnitId(0)))
    });
    g.bench_function("centralized_product_minimized", |b| {
        b.iter(|| {
            tauhls_core::Synthesis::new(diffeq())
                .allocation(Allocation::paper(2, 1, 1))
                .with_centralized()
                .run()
                .unwrap()
        })
    });
    g.finish();
}

fn bench_synthesis(c: &mut Criterion) {
    let bound = BoundDfg::bind(&diffeq(), &Allocation::paper(2, 1, 1));
    let fsm = unit_controller(&bound, UnitId(0));
    let model = AreaModel::default();
    let mut g = c.benchmark_group("table1/synthesis");
    for enc in [Encoding::Binary, Encoding::Gray, Encoding::OneHot] {
        g.bench_function(format!("dfsm_m1_{enc:?}"), |b| {
            b.iter(|| synthesize(black_box(&fsm), enc, &model))
        });
    }
    g.bench_function("full_table1", |b| {
        b.iter(|| tauhls_core::experiments::table1(Encoding::Binary, &model))
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_generation, bench_synthesis
);
criterion_main!(benches);
