//! Table 1 companion bench: controller generation and synthesis cost per
//! style (distributed Algorithm 1 vs synchronized vs centralized product)
//! on the Diff.Eq benchmark, plus per-encoding synthesis of the D-FSMs.

use tauhls_bench::{black_box, Bench};
use tauhls_dfg::benchmarks::diffeq;
use tauhls_fsm::{cent_sync_fsm, synthesize, unit_controller, DistributedControlUnit, Encoding};
use tauhls_logic::AreaModel;
use tauhls_sched::{Allocation, BoundDfg, UnitId};

fn main() {
    let bench = Bench::from_args().sample_size(5);
    let bound = BoundDfg::bind(&diffeq(), &Allocation::paper(2, 1, 1));

    bench.run("table1/generation/distributed_control_unit", || {
        black_box(DistributedControlUnit::generate(black_box(&bound)));
    });
    bench.run("table1/generation/cent_sync_fsm", || {
        black_box(cent_sync_fsm(black_box(&bound)));
    });
    bench.run("table1/generation/single_unit_controller", || {
        black_box(unit_controller(black_box(&bound), UnitId(0)));
    });
    bench.run("table1/generation/centralized_product_minimized", || {
        black_box(
            tauhls_core::Synthesis::new(diffeq())
                .allocation(Allocation::paper(2, 1, 1))
                .with_centralized()
                .run()
                .unwrap(),
        );
    });

    let fsm = unit_controller(&bound, UnitId(0));
    let model = AreaModel::default();
    for enc in [Encoding::Binary, Encoding::Gray, Encoding::OneHot] {
        bench.run(&format!("table1/synthesis/dfsm_m1_{enc:?}"), || {
            black_box(synthesize(black_box(&fsm), enc, &model));
        });
    }
    bench.run("table1/synthesis/full_table1", || {
        black_box(tauhls_core::experiments::table1(Encoding::Binary, &model));
    });
}
