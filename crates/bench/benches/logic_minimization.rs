//! Ablation bench (DESIGN.md decision 4): exact Quine–McCluskey vs the
//! espresso-style heuristic, in runtime and result quality, on functions
//! shaped like controller next-state logic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use tauhls_logic::{minimize_exact, minimize_heuristic, Cover, TruthTable};

fn random_table(n: usize, density: f64, seed: u64) -> TruthTable {
    let mut rng = StdRng::seed_from_u64(seed);
    TruthTable::from_fn(n, |_| Some(rng.random_bool(density)))
}

fn bench_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("logic/engines");
    for n in [6usize, 8, 10] {
        let t = random_table(n, 0.3, n as u64);
        let canon = t.canonical_cover();
        g.bench_with_input(BenchmarkId::new("qm_exact", n), &t, |b, t| {
            b.iter(|| minimize_exact(black_box(t)))
        });
        g.bench_with_input(BenchmarkId::new("heuristic", n), &canon, |b, f| {
            b.iter(|| minimize_heuristic(black_box(f), &Cover::empty(f.num_vars())))
        });
    }
    g.finish();
}

fn bench_quality(c: &mut Criterion) {
    // Not a timing bench per se: report literal-count quality in the
    // bench output once, then time the combined auto engine.
    for n in [6usize, 8] {
        let t = random_table(n, 0.3, 100 + n as u64);
        let exact = minimize_exact(&t);
        let heur = minimize_heuristic(&t.canonical_cover(), &Cover::empty(n));
        eprintln!(
            "quality n={n}: exact {} cubes/{} literals, heuristic {} cubes/{} literals",
            exact.len(),
            exact.literal_count(),
            heur.len(),
            heur.literal_count()
        );
    }
    let mut g = c.benchmark_group("logic/auto");
    let t = random_table(9, 0.25, 9);
    let canon = t.canonical_cover();
    g.bench_function("minimize_auto_9vars", |b| {
        b.iter(|| tauhls_logic::minimize_auto(black_box(&canon), &Cover::empty(9), 11))
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engines, bench_quality
);
criterion_main!(benches);
