//! Ablation bench (DESIGN.md decision 4): exact Quine–McCluskey vs the
//! espresso-style heuristic, in runtime and result quality, on functions
//! shaped like controller next-state logic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tauhls_bench::{black_box, Bench};
use tauhls_logic::{minimize_exact, minimize_heuristic, Cover, TruthTable};

fn random_table(n: usize, density: f64, seed: u64) -> TruthTable {
    let mut rng = StdRng::seed_from_u64(seed);
    TruthTable::from_fn(n, |_| Some(rng.random_bool(density)))
}

fn main() {
    let bench = Bench::from_args().sample_size(5);

    for n in [6usize, 8, 10] {
        let t = random_table(n, 0.3, n as u64);
        let canon = t.canonical_cover();
        bench.run(&format!("logic/engines/qm_exact/{n}"), || {
            black_box(minimize_exact(black_box(&t)));
        });
        bench.run(&format!("logic/engines/heuristic/{n}"), || {
            black_box(minimize_heuristic(
                black_box(&canon),
                &Cover::empty(canon.num_vars()),
            ));
        });
    }

    // Not a timing bench per se: report literal-count quality once, then
    // time the combined auto engine.
    for n in [6usize, 8] {
        let t = random_table(n, 0.3, 100 + n as u64);
        let exact = minimize_exact(&t);
        let heur = minimize_heuristic(&t.canonical_cover(), &Cover::empty(n));
        eprintln!(
            "quality n={n}: exact {} cubes/{} literals, heuristic {} cubes/{} literals",
            exact.len(),
            exact.literal_count(),
            heur.len(),
            heur.literal_count()
        );
    }
    let t = random_table(9, 0.25, 9);
    let canon = t.canonical_cover();
    bench.run("logic/auto/minimize_auto_9vars", || {
        black_box(tauhls_logic::minimize_auto(
            black_box(&canon),
            &Cover::empty(9),
            11,
        ));
    });
}
