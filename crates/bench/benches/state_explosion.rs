//! Fig 4 companion bench: cost of building the centralized product as the
//! number of concurrent TAUs grows (exponential), vs generating the
//! distributed controllers (linear). Also covers the ablation between the
//! raw wrap-around product and the minimized single-shot product.

use tauhls_bench::{black_box, Bench};
use tauhls_dfg::DfgBuilder;
use tauhls_fsm::{
    minimize_states, synchronous_product, unit_controller, unit_controller_opts,
    DistributedControlUnit, Fsm,
};
use tauhls_sched::{Allocation, BoundDfg, UnitId};

fn independent(n: usize) -> BoundDfg {
    let mut b = DfgBuilder::new(format!("ind{n}"));
    let x = b.input("x");
    let mut seqs = Vec::new();
    for i in 0..n {
        let m = b.mul(x.into(), x.into());
        b.output(format!("y{i}"), m);
        seqs.push(vec![m]);
    }
    BoundDfg::bind_explicit(&b.build().unwrap(), &Allocation::paper(n, 0, 0), seqs).unwrap()
}

fn main() {
    let bench = Bench::from_args().sample_size(5);

    for n in [2usize, 4, 6] {
        let bound = independent(n);
        bench.run(&format!("fig4/growth/distributed/{n}"), || {
            black_box(DistributedControlUnit::generate(black_box(&bound)));
        });
        bench.run(&format!("fig4/growth/cent_product/{n}"), || {
            let fsms: Vec<Fsm> = (0..n)
                .map(|u| unit_controller(black_box(&bound), UnitId(u)))
                .collect();
            let refs: Vec<&Fsm> = fsms.iter().collect();
            black_box(synchronous_product("CENT", &refs));
        });
    }

    let bound = independent(4);
    let wrap: Vec<Fsm> = (0..4).map(|u| unit_controller(&bound, UnitId(u))).collect();
    let shot: Vec<Fsm> = (0..4)
        .map(|u| unit_controller_opts(&bound, UnitId(u), true))
        .collect();
    let wrap_refs: Vec<&Fsm> = wrap.iter().collect();
    let shot_refs: Vec<&Fsm> = shot.iter().collect();
    let wrap_product = synchronous_product("CENT-wrap", &wrap_refs);
    let shot_product = synchronous_product("CENT-shot", &shot_refs);
    eprintln!(
        "ablation n=4: wrap product {} states, single-shot product {} states, minimized {} states",
        wrap_product.num_states(),
        shot_product.num_states(),
        minimize_states(&shot_product).num_states()
    );
    bench.run("fig4/minimize_ablation/minimize_singleshot_product", || {
        black_box(minimize_states(black_box(&shot_product)));
    });
}
