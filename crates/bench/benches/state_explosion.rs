//! Fig 4 companion bench: cost of building the centralized product as the
//! number of concurrent TAUs grows (exponential), vs generating the
//! distributed controllers (linear). Also covers the ablation between the
//! raw wrap-around product and the minimized single-shot product.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tauhls_dfg::DfgBuilder;
use tauhls_fsm::{
    minimize_states, synchronous_product, unit_controller, unit_controller_opts,
    DistributedControlUnit, Fsm,
};
use tauhls_sched::{Allocation, BoundDfg, UnitId};

fn independent(n: usize) -> BoundDfg {
    let mut b = DfgBuilder::new(format!("ind{n}"));
    let x = b.input("x");
    let mut seqs = Vec::new();
    for i in 0..n {
        let m = b.mul(x.into(), x.into());
        b.output(format!("y{i}"), m);
        seqs.push(vec![m]);
    }
    BoundDfg::bind_explicit(&b.build().unwrap(), &Allocation::paper(n, 0, 0), seqs).unwrap()
}

fn bench_growth(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4/growth");
    g.sample_size(10);
    for n in [2usize, 4, 6] {
        let bound = independent(n);
        g.bench_with_input(BenchmarkId::new("distributed", n), &bound, |b, bd| {
            b.iter(|| DistributedControlUnit::generate(black_box(bd)))
        });
        g.bench_with_input(BenchmarkId::new("cent_product", n), &bound, |b, bd| {
            b.iter(|| {
                let fsms: Vec<Fsm> = (0..n).map(|u| unit_controller(bd, UnitId(u))).collect();
                let refs: Vec<&Fsm> = fsms.iter().collect();
                synchronous_product("CENT", &refs)
            })
        });
    }
    g.finish();
}

fn bench_minimization_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4/minimize_ablation");
    g.sample_size(10);
    let bound = independent(4);
    let wrap: Vec<Fsm> = (0..4).map(|u| unit_controller(&bound, UnitId(u))).collect();
    let shot: Vec<Fsm> = (0..4)
        .map(|u| unit_controller_opts(&bound, UnitId(u), true))
        .collect();
    let wrap_refs: Vec<&Fsm> = wrap.iter().collect();
    let shot_refs: Vec<&Fsm> = shot.iter().collect();
    let wrap_product = synchronous_product("CENT-wrap", &wrap_refs);
    let shot_product = synchronous_product("CENT-shot", &shot_refs);
    eprintln!(
        "ablation n=4: wrap product {} states, single-shot product {} states, minimized {} states",
        wrap_product.num_states(),
        shot_product.num_states(),
        minimize_states(&shot_product).num_states()
    );
    g.bench_function("minimize_singleshot_product", |b| {
        b.iter(|| minimize_states(black_box(&shot_product)))
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_growth, bench_minimization_ablation
);
criterion_main!(benches);
