//! Table 2 companion bench: cycle-accurate simulation throughput per
//! benchmark and per controller style, the coupled pair measurement that
//! generates the table's average cells, and the batch engine's thread
//! scaling (results stay bit-identical while wall clock shrinks).

use rand::rngs::StdRng;
use rand::SeedableRng;
use tauhls_bench::{black_box, Bench};
use tauhls_core::experiments::paper_benchmarks;
use tauhls_fsm::DistributedControlUnit;
use tauhls_sched::BoundDfg;
use tauhls_sim::{
    latency_pair, latency_pair_batch, simulate_cent, simulate_cent_sync, simulate_distributed,
    BatchRunner, CentControlUnit, CompletionModel,
};

fn main() {
    let bench = Bench::from_args().sample_size(5);

    for (dfg, alloc, _) in paper_benchmarks() {
        let name = dfg.name().to_string();
        let bound = BoundDfg::bind(&dfg, &alloc);
        let cu = DistributedControlUnit::generate(&bound);
        let mut rng = StdRng::seed_from_u64(1);
        bench.run(&format!("table2/simulate/dist/{name}"), || {
            black_box(
                simulate_distributed(
                    black_box(&bound),
                    &cu,
                    &CompletionModel::Bernoulli { p: 0.7 },
                    None,
                    &mut rng,
                )
                .expect("fault-free simulation"),
            );
        });
        let cent_cu = CentControlUnit::without_product(&bound);
        let mut rng = StdRng::seed_from_u64(1);
        bench.run(&format!("table2/simulate/cent/{name}"), || {
            black_box(
                simulate_cent(
                    black_box(&bound),
                    &cent_cu,
                    &CompletionModel::Bernoulli { p: 0.7 },
                    None,
                    &mut rng,
                )
                .expect("fault-free simulation"),
            );
        });
        let mut rng = StdRng::seed_from_u64(1);
        bench.run(&format!("table2/simulate/sync/{name}"), || {
            black_box(
                simulate_cent_sync(
                    black_box(&bound),
                    &CompletionModel::Bernoulli { p: 0.7 },
                    None,
                    &mut rng,
                )
                .expect("fault-free simulation"),
            );
        });
    }

    let (dfg, alloc, _) = paper_benchmarks().swap_remove(4); // diffeq
    let bound = BoundDfg::bind(&dfg, &alloc);
    let mut rng = StdRng::seed_from_u64(2);
    bench.run("table2/cells/diffeq_pair_100_trials", || {
        black_box(
            latency_pair(black_box(&bound), &[0.9, 0.7, 0.5], 100, &mut rng)
                .expect("fault-free simulation"),
        );
    });

    // Batch engine thread scaling: same result, less wall clock.
    for threads in [1usize, 2, 4, 8] {
        let runner = BatchRunner::new(threads);
        bench.run(
            &format!("table2/batch/diffeq_pair_1k_trials/t{threads}"),
            || {
                black_box(
                    latency_pair_batch(black_box(&bound), &[0.9, 0.7, 0.5], 1000, 2, &runner)
                        .expect("fault-free simulation"),
                );
            },
        );
    }
}
