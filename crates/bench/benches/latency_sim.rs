//! Table 2 companion bench: cycle-accurate simulation throughput per
//! benchmark and per controller style, plus the coupled pair measurement
//! that generates the table's average cells.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use tauhls_core::experiments::paper_benchmarks;
use tauhls_fsm::DistributedControlUnit;
use tauhls_sched::BoundDfg;
use tauhls_sim::{latency_pair, simulate_cent_sync, simulate_distributed, CompletionModel};

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2/simulate");
    for (dfg, alloc, _) in paper_benchmarks() {
        let name = dfg.name().to_string();
        let bound = BoundDfg::bind(&dfg, &alloc);
        let cu = DistributedControlUnit::generate(&bound);
        g.bench_function(format!("dist/{name}"), |b| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                simulate_distributed(
                    black_box(&bound),
                    &cu,
                    &CompletionModel::Bernoulli { p: 0.7 },
                    None,
                    &mut rng,
                )
            })
        });
        g.bench_function(format!("sync/{name}"), |b| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                simulate_cent_sync(
                    black_box(&bound),
                    &CompletionModel::Bernoulli { p: 0.7 },
                    None,
                    &mut rng,
                )
            })
        });
    }
    g.finish();
}

fn bench_table_cells(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2/cells");
    g.sample_size(10);
    let (dfg, alloc, _) = paper_benchmarks().swap_remove(4); // diffeq
    let bound = BoundDfg::bind(&dfg, &alloc);
    g.bench_function("diffeq_pair_100_trials", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| latency_pair(black_box(&bound), &[0.9, 0.7, 0.5], 100, &mut rng))
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_simulation, bench_table_cells
);
criterion_main!(benches);
