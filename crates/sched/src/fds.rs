//! Force-directed scheduling (Paulin & Knight) — the classic
//! *time-constrained* companion to the resource-constrained list
//! scheduler, covering the paper's §6 future work ("development or
//! modification of new or existing high-level synthesis algorithms in
//! scheduling, resource allocation").
//!
//! Given a latency budget in time steps, FDS assigns each operation a step
//! inside its ASAP/ALAP frame so as to *balance* the per-class operation
//! distribution — minimizing the number of units the schedule implies,
//! which is exactly the allocation the binder then instantiates.

use std::collections::HashMap;
use tauhls_dfg::{Dfg, LevelAnalysis, OpId, ResourceClass};

/// A time-constrained schedule produced by [`fds_schedule`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FdsSchedule {
    step_of: Vec<usize>,
    latency: usize,
}

impl FdsSchedule {
    /// The time step of each operation, indexed by [`OpId`].
    pub fn step_of(&self) -> &[usize] {
        &self.step_of
    }

    /// The step of one operation.
    pub fn step(&self, v: OpId) -> usize {
        self.step_of[v.0]
    }

    /// The latency budget the schedule satisfies.
    pub fn latency(&self) -> usize {
        self.latency
    }

    /// The allocation this schedule implies: per class, the maximum number
    /// of concurrent operations in any step.
    pub fn implied_allocation(&self, dfg: &Dfg) -> HashMap<ResourceClass, usize> {
        let mut per_step: HashMap<(ResourceClass, usize), usize> = HashMap::new();
        for v in dfg.op_ids() {
            *per_step
                .entry((dfg.op(v).kind.resource_class(), self.step_of[v.0]))
                .or_insert(0) += 1;
        }
        let mut out = HashMap::new();
        for ((class, _), n) in per_step {
            let e = out.entry(class).or_insert(0);
            *e = (*e).max(n);
        }
        out
    }

    /// Checks precedence and the latency budget.
    pub fn verify(&self, dfg: &Dfg) -> bool {
        self.step_of.iter().all(|&s| s < self.latency)
            && dfg.op_ids().all(|v| {
                dfg.preds(v)
                    .iter()
                    .all(|p| self.step_of[p.0] < self.step_of[v.0])
            })
    }
}

/// Frames (mobility windows) under a latency budget.
fn frames(dfg: &Dfg, latency: usize) -> (Vec<usize>, Vec<usize>) {
    let la = LevelAnalysis::new(dfg);
    let depth = la.depth();
    assert!(latency >= depth, "latency budget below the critical path");
    let slack = latency - depth;
    let asap: Vec<usize> = dfg.op_ids().map(|v| la.asap(v)).collect();
    let alap: Vec<usize> = dfg.op_ids().map(|v| la.alap(v) + slack).collect();
    (asap, alap)
}

/// Runs force-directed scheduling with a latency budget of `latency` time
/// steps.
///
/// # Panics
///
/// Panics if `latency` is below the graph's critical-path depth.
pub fn fds_schedule(dfg: &Dfg, latency: usize) -> FdsSchedule {
    let n = dfg.num_ops();
    let (mut lo, mut hi) = frames(dfg, latency);
    let mut fixed = vec![false; n];

    // Distribution graph for one class under current frames.
    let distribution = |lo: &[usize], hi: &[usize], class: ResourceClass| -> Vec<f64> {
        let mut dg = vec![0.0f64; latency];
        for v in dfg.op_ids() {
            if dfg.op(v).kind.resource_class() != class {
                continue;
            }
            let w = (hi[v.0] - lo[v.0] + 1) as f64;
            for slot in dg.iter_mut().take(hi[v.0] + 1).skip(lo[v.0]) {
                *slot += 1.0 / w;
            }
        }
        dg
    };

    // Tighten frames transitively after fixing an op.
    fn propagate(dfg: &Dfg, lo: &mut [usize], hi: &mut [usize]) {
        // Forward: lo[v] >= max(lo[p] + 1).
        for v in dfg.topo_order() {
            for p in dfg.preds(v) {
                lo[v.0] = lo[v.0].max(lo[p.0] + 1);
            }
        }
        // Backward: hi[p] <= min(hi[s] - 1).
        for v in dfg.topo_order().into_iter().rev() {
            for s in dfg.succs(v) {
                hi[v.0] = hi[v.0].min(hi[s.0] - 1);
            }
        }
    }

    for _round in 0..n {
        // Pick the (op, step) assignment with minimum force.
        let mut best: Option<(f64, OpId, usize)> = None;
        for v in dfg.op_ids() {
            if fixed[v.0] {
                continue;
            }
            let class = dfg.op(v).kind.resource_class();
            let dg = distribution(&lo, &hi, class);
            let w = (hi[v.0] - lo[v.0] + 1) as f64;
            let mean: f64 = (lo[v.0]..=hi[v.0]).map(|t| dg[t]).sum::<f64>() / w;
            for t in lo[v.0]..=hi[v.0] {
                // Self force plus a light neighbourhood term: fixing v at t
                // squeezes predecessor frames below t and successor frames
                // above it; approximate with the DG values at the squeezed
                // boundary steps.
                let mut force = dg[t] - mean;
                for p in dfg.preds(v) {
                    if !fixed[p.0] && hi[p.0] >= t {
                        let pdg = distribution(&lo, &hi, dfg.op(p).kind.resource_class());
                        force += pdg[t.saturating_sub(1).max(lo[p.0])] * 0.5;
                    }
                }
                for s in dfg.succs(v) {
                    if !fixed[s.0] && lo[s.0] <= t {
                        let sdg = distribution(&lo, &hi, dfg.op(s).kind.resource_class());
                        force += sdg[(t + 1).min(hi[s.0])] * 0.5;
                    }
                }
                if best.is_none_or(|(bf, _, _)| force < bf - 1e-12) {
                    best = Some((force, v, t));
                }
            }
        }
        let Some((_, v, t)) = best else { break };
        lo[v.0] = t;
        hi[v.0] = t;
        fixed[v.0] = true;
        propagate(dfg, &mut lo, &mut hi);
    }

    debug_assert!(fixed.iter().all(|&f| f));
    FdsSchedule {
        step_of: lo,
        latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tauhls_dfg::benchmarks::{diffeq, fir5, iir2};

    #[test]
    fn diffeq_fds_balances_multipliers() {
        // The classic FDS demonstration: HAL at 4 steps. ASAP packs four
        // multiplications into step 0; FDS balances to at most 3 and
        // usually the textbook 2.
        let g = diffeq();
        let s = fds_schedule(&g, 4);
        assert!(s.verify(&g));
        let alloc = s.implied_allocation(&g);
        let asap_mults = {
            let la = tauhls_dfg::LevelAnalysis::new(&g);
            g.ops_of_class(ResourceClass::Multiplier)
                .iter()
                .filter(|&&v| la.asap(v) == 0)
                .count()
        };
        assert_eq!(asap_mults, 4);
        let fds_mults = alloc[&ResourceClass::Multiplier];
        assert!(fds_mults <= 3, "FDS gave {fds_mults} multipliers");
    }

    #[test]
    fn latency_slack_reduces_allocation() {
        let g = fir5();
        let tight = fds_schedule(&g, 5);
        let loose = fds_schedule(&g, 8);
        assert!(tight.verify(&g) && loose.verify(&g));
        let m_tight = tight.implied_allocation(&g)[&ResourceClass::Multiplier];
        let m_loose = loose.implied_allocation(&g)[&ResourceClass::Multiplier];
        assert!(m_loose <= m_tight);
        assert!(m_loose <= 2, "8 steps should need at most 2 multipliers");
    }

    #[test]
    #[should_panic(expected = "critical path")]
    fn budget_below_depth_rejected() {
        let _ = fds_schedule(&iir2(), 2);
    }

    #[test]
    fn fds_schedules_random_graphs_validly() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use tauhls_dfg::{random_dfg, LevelAnalysis, RandomDfgParams};
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..10 {
            let g = random_dfg(
                &mut rng,
                &RandomDfgParams {
                    num_ops: 18,
                    kind_weights: [2, 1, 3, 1],
                    ..Default::default()
                },
            );
            let depth = LevelAnalysis::new(&g).depth();
            for extra in [0, 2] {
                let s = fds_schedule(&g, depth + extra);
                assert!(s.verify(&g));
            }
        }
    }
}
