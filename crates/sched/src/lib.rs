//! # tauhls-sched — scheduling and binding under TAU allocation
//!
//! The scheduling substrate of the `tauhls` workspace, implementing the
//! paper's §3:
//!
//! * [`Allocation`] — unit counts per resource class, telescopic flags;
//! * [`ListSchedule`] — resource-constrained time-step scheduling (the
//!   basis for the centralized TAUBM controller styles);
//! * [`DependencyGraph`] — per-class dependency graphs with exact
//!   (Dilworth/matching) and greedy clique covers (Fig 3b);
//! * [`BoundDfg`] — operations bound to unit instances with **schedule
//!   arcs** inserted wherever consecutive same-unit operations are not
//!   already data-ordered (Fig 3c). This is the input to controller
//!   generation.
//!
//! # Examples
//!
//! Reproduce the paper's Fig 3 flow on its 9-operation example:
//!
//! ```
//! use tauhls_sched::{Allocation, BoundDfg, DependencyGraph, reachability};
//! use tauhls_dfg::{benchmarks::fig3_dfg, ResourceClass};
//!
//! let g = fig3_dfg();
//! let reach = reachability(&g);
//! let dep = DependencyGraph::for_class(&g, ResourceClass::Multiplier, &reach);
//! assert_eq!(dep.min_clique_cover().len(), 3); // > 2 allocated units
//!
//! let bound = BoundDfg::bind(&g, &Allocation::paper(2, 2, 0));
//! assert!(!bound.schedule_arcs().is_empty()); // arcs were inserted
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod allocation;
mod binding;
mod depgraph;
mod fds;
mod listsched;
mod regalloc;

pub use allocation::{Allocation, Unit, UnitId};
pub use binding::{chain_sequences, left_edge_sequences, BindError, BoundDfg};
pub use depgraph::{reachability, DependencyGraph};
pub use fds::{fds_schedule, FdsSchedule};
pub use listsched::ListSchedule;
pub use regalloc::{allocate_registers, lifetimes, min_registers, Lifetime, RegisterAllocation};
