//! Binding operations to unit instances and inserting schedule arcs
//! (paper §3, Fig 3c).
//!
//! The paper's ordering-based scheduling does not pin operations to time
//! steps; it only fixes, per unit, the *execution order* of the operations
//! bound to it. Where consecutive operations on a unit are not already
//! ordered by data dependence, a **schedule arc** is inserted so the number
//! of concurrently live operations never exceeds the allocation.

use crate::allocation::{Allocation, UnitId};
use crate::depgraph::reachability;
use crate::listsched::ListSchedule;
use std::fmt;
use tauhls_dfg::{Dfg, OpId};

/// Errors from explicit binding construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BindError {
    /// The sequences do not form a partition of the graph's operations.
    NotAPartition,
    /// An operation was bound to a unit of the wrong class.
    WrongClass(OpId),
    /// A unit sequence contradicts data dependences (a successor ordered
    /// before its producer on the same unit).
    OrderViolation(OpId, OpId),
    /// The combined precedence relation (data + schedule arcs) is cyclic.
    CyclicPrecedence,
    /// More sequences than allocated units.
    TooManySequences,
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindError::NotAPartition => write!(f, "sequences must partition the operations"),
            BindError::WrongClass(o) => write!(f, "operation {o} bound to wrong unit class"),
            BindError::OrderViolation(a, b) => {
                write!(f, "sequence orders {a} before its producer {b}")
            }
            BindError::CyclicPrecedence => write!(f, "schedule arcs create a precedence cycle"),
            BindError::TooManySequences => write!(f, "more sequences than allocated units"),
        }
    }
}

impl std::error::Error for BindError {}

/// Computes the **left-edge** per-unit operation sequences for `dfg` under
/// `alloc` without materialising a [`BoundDfg`]: list scheduling fixes the
/// reference order, then each operation goes to the unit minimising
/// `(step conflict, needs new arc, last step, unit index)`.
///
/// This is the pure *ordering* half of [`BoundDfg::bind`]; feeding the
/// result to [`BoundDfg::bind_explicit`] reproduces `bind` bit-for-bit.
/// Sequences are indexed by [`Allocation::units`] order.
pub fn left_edge_sequences(dfg: &Dfg, alloc: &Allocation) -> Vec<Vec<OpId>> {
    let schedule = ListSchedule::run(dfg, alloc);
    let reach = reachability(dfg);
    let units = alloc.units();
    let mut sequences: Vec<Vec<OpId>> = vec![Vec::new(); units.len()];

    for class in tauhls_dfg::ResourceClass::ALL {
        let unit_ids = alloc.units_of_class(class);
        if unit_ids.is_empty() {
            continue;
        }
        let mut ops = dfg.ops_of_class(class);
        ops.sort_by_key(|&o| (schedule.step(o), o.0));
        for o in ops {
            // Left-edge with arc-avoiding preference.
            let best = unit_ids
                .iter()
                .copied()
                .min_by_key(|&u| {
                    let seq = &sequences[u.0];
                    let last_step = seq.last().map_or(-1i64, |&l| schedule.step(l) as i64);
                    let needs_arc = match seq.last() {
                        Some(&l) => !reach[l.0][o.0],
                        None => false,
                    };
                    // Must not double-book a step; prefer no new arc,
                    // then earliest-finishing unit, then index.
                    let conflict = last_step == schedule.step(o) as i64;
                    (conflict, needs_arc, last_step, u.0)
                })
                .expect("at least one unit of the class");
            sequences[best.0].push(o);
        }
    }
    sequences
}

/// Computes the **chain-decomposition** per-unit sequences for `dfg` under
/// `alloc`: each class's minimum chain cover (Dilworth) is bound one chain
/// per unit, surplus chains merge onto the least-loaded unit, and merged
/// sequences are re-ordered by list-schedule step.
///
/// The pure ordering half of [`BoundDfg::bind_chains`]; feeding the result
/// to [`BoundDfg::bind_explicit`] reproduces `bind_chains` bit-for-bit.
pub fn chain_sequences(dfg: &Dfg, alloc: &Allocation) -> Vec<Vec<OpId>> {
    let schedule = ListSchedule::run(dfg, alloc);
    let reach = reachability(dfg);
    let units = alloc.units();
    let mut sequences: Vec<Vec<OpId>> = vec![Vec::new(); units.len()];

    for class in tauhls_dfg::ResourceClass::ALL {
        let unit_ids = alloc.units_of_class(class);
        if unit_ids.is_empty() {
            continue;
        }
        let dep = crate::depgraph::DependencyGraph::for_class(dfg, class, &reach);
        if dep.nodes().is_empty() {
            continue;
        }
        let mut chains = dep.min_clique_cover();
        // Deterministic order: by the earliest scheduled op.
        chains.sort_by_key(|c| {
            c.iter()
                .map(|&o| (schedule.step(o), o.0))
                .min()
                .expect("chains are nonempty")
        });
        // Longest chains get dedicated units first; the rest merge onto
        // the unit with the fewest ops.
        let mut order: Vec<usize> = (0..chains.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(chains[i].len()));
        let mut loads: Vec<(usize, UnitId)> = unit_ids.iter().map(|&u| (0usize, u)).collect();
        for &ci in &order {
            loads.sort();
            let (load, unit) = loads[0];
            sequences[unit.0].extend(chains[ci].iter().copied());
            loads[0] = (load + chains[ci].len(), unit);
        }
        // Re-order merged sequences by (list step, id): consistent with
        // data order because producers are always scheduled earlier.
        for &u in &unit_ids {
            sequences[u.0].sort_by_key(|&o| (schedule.step(o), o.0));
        }
    }
    sequences
}

/// A scheduled-and-bound DFG: the input to controller generation.
#[derive(Clone, Debug)]
pub struct BoundDfg {
    dfg: Dfg,
    alloc: Allocation,
    schedule: ListSchedule,
    unit_of: Vec<UnitId>,
    sequences: Vec<Vec<OpId>>,
    schedule_arcs: Vec<(OpId, OpId)>,
    /// Reachability over data dependences ∪ schedule arcs.
    combined_reach: Vec<Vec<bool>>,
}

impl BoundDfg {
    /// Schedules and binds `dfg` under `alloc`: list scheduling fixes the
    /// operation order, a left-edge pass assigns unit instances (preferring
    /// a unit whose previous operation already precedes the candidate, so
    /// fewer schedule arcs are needed), and schedule arcs serialize the
    /// remaining same-unit neighbours.
    ///
    /// # Panics
    ///
    /// Panics if the allocation lacks units for a used class.
    pub fn bind(dfg: &Dfg, alloc: &Allocation) -> Self {
        Self::bind_explicit(dfg, alloc, left_edge_sequences(dfg, alloc))
            .expect("left-edge binding is always consistent")
    }

    /// Schedules and binds using **chain decomposition**: each class's
    /// exact minimum chain cover (Dilworth, via bipartite matching) is
    /// computed first; chains are dependence-ordered, so binding one chain
    /// per unit needs *no* schedule arcs. When fewer units are allocated
    /// than chains, surplus chains are merged onto the least-loaded unit
    /// and the merged sequence is re-ordered by list-schedule step, which
    /// is where the arcs appear. The ablation partner of [`BoundDfg::bind`]
    /// (DESIGN.md decision 3).
    ///
    /// Chain bindings are ordering-based: a merged unit may hold two
    /// operations from the same list-schedule step (they simply serialize
    /// at run time), so they are meant for the *distributed* controllers,
    /// not for the time-step-synchronized CENT styles.
    ///
    /// # Panics
    ///
    /// Panics if the allocation lacks units for a used class.
    pub fn bind_chains(dfg: &Dfg, alloc: &Allocation) -> Self {
        Self::bind_explicit(dfg, alloc, chain_sequences(dfg, alloc))
            .expect("chain binding is always consistent")
    }

    /// Builds a binding from explicit per-unit operation sequences (used to
    /// reproduce the paper's hand bindings, e.g. Fig 3c's
    /// `(O0,O1) → M1, (O6,O4,O8) → M2`).
    ///
    /// `sequences[u]` lists the operations of unit `u` (in the order of
    /// [`Allocation::units`]) in execution order.
    ///
    /// # Errors
    ///
    /// Returns a [`BindError`] if the sequences are not a class-respecting
    /// partition or contradict the data dependences.
    pub fn bind_explicit(
        dfg: &Dfg,
        alloc: &Allocation,
        sequences: Vec<Vec<OpId>>,
    ) -> Result<Self, BindError> {
        let units = alloc.units();
        if sequences.len() > units.len() {
            return Err(BindError::TooManySequences);
        }
        let mut sequences = sequences;
        sequences.resize(units.len(), Vec::new());
        // Partition check.
        let mut seen = vec![false; dfg.num_ops()];
        let mut unit_of = vec![UnitId(usize::MAX); dfg.num_ops()];
        for (ui, seq) in sequences.iter().enumerate() {
            for &o in seq {
                if o.0 >= dfg.num_ops() || seen[o.0] {
                    return Err(BindError::NotAPartition);
                }
                seen[o.0] = true;
                if dfg.op(o).kind.resource_class() != units[ui].class {
                    return Err(BindError::WrongClass(o));
                }
                unit_of[o.0] = UnitId(ui);
            }
        }
        if seen.iter().any(|&s| !s) {
            return Err(BindError::NotAPartition);
        }
        let reach = reachability(dfg);
        // Order consistency: no later sequence element may precede an
        // earlier one in the data order.
        for seq in &sequences {
            for i in 0..seq.len() {
                for j in (i + 1)..seq.len() {
                    if reach[seq[j].0][seq[i].0] {
                        return Err(BindError::OrderViolation(seq[i], seq[j]));
                    }
                }
            }
        }
        let schedule = ListSchedule::run(dfg, alloc);
        Self::finish(
            dfg.clone(),
            alloc.clone(),
            schedule,
            unit_of,
            sequences,
            reach,
        )
    }

    fn finish(
        dfg: Dfg,
        alloc: Allocation,
        schedule: ListSchedule,
        unit_of: Vec<UnitId>,
        sequences: Vec<Vec<OpId>>,
        reach: Vec<Vec<bool>>,
    ) -> Result<Self, BindError> {
        // Schedule arcs: consecutive same-unit operations not already
        // ordered by data dependence.
        let mut arcs = Vec::new();
        for seq in &sequences {
            for w in seq.windows(2) {
                if !reach[w[0].0][w[1].0] {
                    arcs.push((w[0], w[1]));
                }
            }
        }
        // Combined reachability (data + arcs) and acyclicity check.
        let n = dfg.num_ops();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for v in dfg.op_ids() {
            for p in dfg.preds(v) {
                adj[p.0].push(v.0);
            }
        }
        for &(a, b) in &arcs {
            adj[a.0].push(b.0);
        }
        // Kahn toposort for cycle detection + closure in reverse topo order.
        let mut indeg = vec![0usize; n];
        for out in &adj {
            for &t in out {
                indeg[t] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(v) = queue.pop() {
            topo.push(v);
            for &t in &adj[v] {
                indeg[t] -= 1;
                if indeg[t] == 0 {
                    queue.push(t);
                }
            }
        }
        if topo.len() != n {
            return Err(BindError::CyclicPrecedence);
        }
        let mut combined = vec![vec![false; n]; n];
        for &v in topo.iter().rev() {
            let targets = adj[v].clone();
            for t in targets {
                combined[v][t] = true;
                let row = combined[t].clone();
                for (i, r) in row.into_iter().enumerate() {
                    combined[v][i] |= r;
                }
            }
        }
        Ok(BoundDfg {
            dfg,
            alloc,
            schedule,
            unit_of,
            sequences,
            schedule_arcs: arcs,
            combined_reach: combined,
        })
    }

    /// The underlying dataflow graph.
    pub fn dfg(&self) -> &Dfg {
        &self.dfg
    }

    /// The allocation used for binding.
    pub fn allocation(&self) -> &Allocation {
        &self.alloc
    }

    /// The list schedule fixing the time-step reference order.
    pub fn schedule(&self) -> &ListSchedule {
        &self.schedule
    }

    /// The unit executing the given operation.
    pub fn unit_of(&self, v: OpId) -> UnitId {
        self.unit_of[v.0]
    }

    /// Execution order of the operations bound to `unit`.
    pub fn sequence(&self, unit: UnitId) -> &[OpId] {
        &self.sequences[unit.0]
    }

    /// All per-unit sequences, indexed by [`UnitId`].
    pub fn sequences(&self) -> &[Vec<OpId>] {
        &self.sequences
    }

    /// The inserted schedule arcs.
    pub fn schedule_arcs(&self) -> &[(OpId, OpId)] {
        &self.schedule_arcs
    }

    /// True iff `a` precedes `b` under data dependences plus schedule arcs.
    pub fn precedes(&self, a: OpId, b: OpId) -> bool {
        self.combined_reach[a.0][b.0]
    }

    /// The *cross-unit* direct predecessors of `v`: data-dependence
    /// producers executed on a different unit. These are exactly the
    /// operations whose completion signals (`C_PO`) the controller of `v`'s
    /// unit must wait for (paper §4.2 — same-unit order is automatic).
    pub fn cross_unit_preds(&self, v: OpId) -> Vec<OpId> {
        self.dfg
            .preds(v)
            .into_iter()
            .filter(|&p| self.unit_of[p.0] != self.unit_of[v.0])
            .collect()
    }

    /// The cross-unit direct successors of `v` (consumers of its completion
    /// signal `C_CO`).
    pub fn cross_unit_succs(&self, v: OpId) -> Vec<OpId> {
        self.dfg
            .succs(v)
            .into_iter()
            .filter(|&s| self.unit_of[s.0] != self.unit_of[v.0])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tauhls_dfg::benchmarks::{diffeq, fig3_dfg, fir5};
    use tauhls_dfg::ResourceClass;

    fn fig3_paper_binding() -> BoundDfg {
        // (O0,O1)→M1, (O6,O4,O8)→M2, (O3,O2)→A1, (O7,O5)→A2
        let g = fig3_dfg();
        let alloc = Allocation::paper(2, 2, 0);
        BoundDfg::bind_explicit(
            &g,
            &alloc,
            vec![
                vec![OpId(0), OpId(1)],
                vec![OpId(6), OpId(4), OpId(8)],
                vec![OpId(3), OpId(2)],
                vec![OpId(7), OpId(5)],
            ],
        )
        .expect("paper binding is valid")
    }

    #[test]
    fn paper_binding_arcs() {
        let b = fig3_paper_binding();
        // M2's sequence (O6, O4, O8) needs arcs O6→O4 and O4→O8; the adder
        // sequences (O3,O2) and (O7,O5) are already data-ordered.
        assert_eq!(b.schedule_arcs(), &[(OpId(6), OpId(4)), (OpId(4), OpId(8))]);
        assert!(b.precedes(OpId(6), OpId(8)));
        assert!(b.precedes(OpId(6), OpId(4))); // via the arc
        assert!(!b.precedes(OpId(1), OpId(4)));
    }

    #[test]
    fn paper_binding_cross_unit_signals() {
        let b = fig3_paper_binding();
        // O1 (on M1) waits for C_PO(3) from A1 — the paper's Fig 6 example.
        assert_eq!(b.cross_unit_preds(OpId(1)), vec![OpId(3)]);
        // O0 has no predecessors at all.
        assert!(b.cross_unit_preds(OpId(0)).is_empty());
        // O4 on M2 depends on O3 on A1.
        assert_eq!(b.cross_unit_preds(OpId(4)), vec![OpId(3)]);
        // O3's completion is consumed by O1 (M1) and O4 (M2).
        let succs = b.cross_unit_succs(OpId(3));
        assert!(succs.contains(&OpId(1)) && succs.contains(&OpId(4)));
    }

    #[test]
    fn automatic_binding_fig3_is_legal_and_lean() {
        let g = fig3_dfg();
        let alloc = Allocation::paper(2, 2, 0);
        let b = BoundDfg::bind(&g, &alloc);
        // Every op bound to a unit of its class.
        let units = alloc.units();
        for v in g.op_ids() {
            assert_eq!(units[b.unit_of(v).0].class, g.op(v).kind.resource_class());
        }
        // Multiplications need at least 2 arcs (3 chains onto 2 units);
        // the arc-avoiding left edge should not need more than 3 overall.
        assert!(b.schedule_arcs().len() >= 2);
        assert!(b.schedule_arcs().len() <= 3, "{:?}", b.schedule_arcs());
    }

    #[test]
    fn explicit_binding_rejects_bad_inputs() {
        let g = fig3_dfg();
        let alloc = Allocation::paper(2, 2, 0);
        // Wrong class: an add on a multiplier.
        let e = BoundDfg::bind_explicit(
            &g,
            &alloc,
            vec![
                vec![OpId(3)],
                vec![OpId(0), OpId(1), OpId(4), OpId(6), OpId(8)],
                vec![OpId(2)],
                vec![OpId(7), OpId(5)],
            ],
        );
        assert_eq!(e.unwrap_err(), BindError::WrongClass(OpId(3)));
        // Order violation: O1 before O0 on one unit.
        let e = BoundDfg::bind_explicit(
            &g,
            &alloc,
            vec![
                vec![OpId(1), OpId(0)],
                vec![OpId(6), OpId(4), OpId(8)],
                vec![OpId(3), OpId(2)],
                vec![OpId(7), OpId(5)],
            ],
        );
        assert_eq!(e.unwrap_err(), BindError::OrderViolation(OpId(1), OpId(0)));
        // Missing an operation.
        let e = BoundDfg::bind_explicit(
            &g,
            &alloc,
            vec![
                vec![OpId(0), OpId(1)],
                vec![OpId(6), OpId(4)],
                vec![OpId(3), OpId(2)],
                vec![OpId(7), OpId(5)],
            ],
        );
        assert_eq!(e.unwrap_err(), BindError::NotAPartition);
    }

    #[test]
    fn diffeq_binding_matches_allocation() {
        let g = diffeq();
        let alloc = Allocation::paper(2, 1, 1);
        let b = BoundDfg::bind(&g, &alloc);
        // 6 muls over 2 units, 2 adds on 1, 3 sub-class ops on 1.
        assert_eq!(b.sequence(UnitId(0)).len() + b.sequence(UnitId(1)).len(), 6);
        assert_eq!(b.sequence(UnitId(2)).len(), 2);
        assert_eq!(b.sequence(UnitId(3)).len(), 3);
        // No same-unit sequence may violate data order.
        for seq in b.sequences() {
            for i in 0..seq.len() {
                for j in (i + 1)..seq.len() {
                    assert!(!b.precedes(seq[j], seq[i]));
                }
            }
        }
    }

    #[test]
    fn chain_binding_fig3_beats_paper_merge() {
        // 3 multiplication chains onto 2 units: one merge. Folding the
        // singleton chain (O4) after the (O0, O1) chain costs a single
        // schedule arc O1->O4 — one fewer than the paper's (O6, O4, O8)
        // merge, which needs O6->O4 and O4->O8.
        let g = fig3_dfg();
        let b = BoundDfg::bind_chains(&g, &Allocation::paper(2, 2, 0));
        let mult_arcs: Vec<_> = b
            .schedule_arcs()
            .iter()
            .filter(|(a, _)| g.op(*a).kind == tauhls_dfg::OpKind::Mul)
            .collect();
        let add_arcs = b.schedule_arcs().len() - mult_arcs.len();
        assert_eq!(add_arcs, 0, "{:?}", b.schedule_arcs());
        assert_eq!(mult_arcs, vec![&(OpId(1), OpId(4))]);
        // Strictly fewer arcs than the left-edge binder on this example.
        let le = BoundDfg::bind(&g, &Allocation::paper(2, 2, 0));
        assert!(b.schedule_arcs().len() < le.schedule_arcs().len());
    }

    #[test]
    fn chain_binding_legal_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use tauhls_dfg::{random_dfg, RandomDfgParams};
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let g = random_dfg(
                &mut rng,
                &RandomDfgParams {
                    num_ops: 24,
                    kind_weights: [2, 1, 3, 1],
                    ..Default::default()
                },
            );
            let alloc = Allocation::paper(2, 2, 1);
            let b = BoundDfg::bind_chains(&g, &alloc);
            // Partition + order legality.
            let total: usize = b.sequences().iter().map(Vec::len).sum();
            assert_eq!(total, g.num_ops());
            for seq in b.sequences() {
                for i in 0..seq.len() {
                    for j in (i + 1)..seq.len() {
                        assert!(!b.precedes(seq[j], seq[i]));
                    }
                }
            }
            // When every class has enough units for its chain cover, the
            // chain binding needs no arcs at all.
            let reach = crate::depgraph::reachability(&g);
            let enough = tauhls_dfg::ResourceClass::ALL.iter().all(|&c| {
                let dep = crate::depgraph::DependencyGraph::for_class(&g, c, &reach);
                dep.nodes().is_empty() || dep.min_clique_cover().len() <= alloc.count(c)
            });
            if enough {
                assert!(b.schedule_arcs().is_empty());
            }
        }
    }

    #[test]
    fn fir5_binding_on_two_multipliers() {
        let g = fir5();
        let b = BoundDfg::bind(&g, &Allocation::paper(2, 1, 0));
        // 5 independent products over 2 units: 3 arcs inserted.
        let mult_arcs = b
            .schedule_arcs()
            .iter()
            .filter(|(a, _)| g.op(*a).kind == tauhls_dfg::OpKind::Mul)
            .count();
        assert_eq!(mult_arcs, 3);
        // Adder chain needs no arcs (linear accumulation is data-ordered).
        let h = g.class_histogram();
        assert_eq!(h[&ResourceClass::Adder], 4);
        assert_eq!(b.schedule_arcs().len(), 3);
    }
}
