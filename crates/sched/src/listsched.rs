//! Resource-constrained list scheduling on abstract time steps.
//!
//! This produces the *time-step* schedule that the centralized controller
//! styles (TAUBM / CENT-SYNC) are built on, and fixes the deterministic
//! operation order that binding uses. Priority is classic ALAP urgency
//! (smaller ALAP = less mobility = scheduled first).

use crate::allocation::Allocation;
use tauhls_dfg::{Dfg, LevelAnalysis, OpId};

/// A time-step schedule: `step_of[op]` is the operation's time step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ListSchedule {
    step_of: Vec<usize>,
    num_steps: usize,
}

impl ListSchedule {
    /// Runs list scheduling of `dfg` under `alloc`.
    ///
    /// # Panics
    ///
    /// Panics if some operation class used by the graph has no allocated
    /// unit (check [`Allocation::covers`] first).
    pub fn run(dfg: &Dfg, alloc: &Allocation) -> Self {
        assert!(
            alloc.covers(dfg),
            "allocation must provide at least one unit per used class"
        );
        let levels = LevelAnalysis::new(dfg);
        let n = dfg.num_ops();
        let mut step_of = vec![usize::MAX; n];
        let mut scheduled = vec![false; n];
        let mut remaining = n;
        let mut step = 0usize;
        while remaining > 0 {
            // Ready = all predecessors scheduled strictly earlier.
            let mut ready: Vec<OpId> = dfg
                .op_ids()
                .filter(|&v| {
                    !scheduled[v.0]
                        && dfg
                            .preds(v)
                            .iter()
                            .all(|p| scheduled[p.0] && step_of[p.0] < step)
                })
                .collect();
            // ALAP urgency, then id, for a deterministic priority order.
            ready.sort_by_key(|&v| (levels.alap(v), v.0));
            let mut used: std::collections::HashMap<tauhls_dfg::ResourceClass, usize> =
                std::collections::HashMap::new();
            for v in ready {
                let class = dfg.op(v).kind.resource_class();
                let u = used.entry(class).or_insert(0);
                if *u < alloc.count(class) {
                    *u += 1;
                    step_of[v.0] = step;
                    scheduled[v.0] = true;
                    remaining -= 1;
                }
            }
            step += 1;
            assert!(step <= 2 * n + 1, "list scheduling failed to make progress");
        }
        ListSchedule {
            step_of,
            num_steps: step,
        }
    }

    /// The time step of an operation.
    pub fn step(&self, v: OpId) -> usize {
        self.step_of[v.0]
    }

    /// The step assignment indexed by operation id.
    pub fn step_of(&self) -> &[usize] {
        &self.step_of
    }

    /// Total number of time steps.
    pub fn num_steps(&self) -> usize {
        self.num_steps
    }

    /// Operations in each time step, ordered by id.
    pub fn steps(&self) -> Vec<Vec<OpId>> {
        let mut out = vec![Vec::new(); self.num_steps];
        for (i, &s) in self.step_of.iter().enumerate() {
            out[s].push(OpId(i));
        }
        out
    }

    /// Checks the schedule against the graph and allocation: dependences
    /// strictly ordered and per-class concurrency within bounds. Used by
    /// property tests.
    pub fn verify(&self, dfg: &Dfg, alloc: &Allocation) -> bool {
        for v in dfg.op_ids() {
            for p in dfg.preds(v) {
                if self.step(p) >= self.step(v) {
                    return false;
                }
            }
        }
        for ops in self.steps() {
            let mut counts: std::collections::HashMap<tauhls_dfg::ResourceClass, usize> =
                std::collections::HashMap::new();
            for v in ops {
                *counts.entry(dfg.op(v).kind.resource_class()).or_insert(0) += 1;
            }
            for (class, n) in counts {
                if n > alloc.count(class) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::Allocation;
    use tauhls_dfg::benchmarks::{diffeq, fig3_dfg, fir3, fir5};
    use tauhls_dfg::{random_dfg, RandomDfgParams};

    #[test]
    fn fig3_schedule_matches_paper_steps() {
        let g = fig3_dfg();
        let s = ListSchedule::run(&g, &Allocation::paper(2, 2, 0));
        assert!(s.verify(&g, &Allocation::paper(2, 2, 0)));
        // T0 = {O0, O3, O6}, T1 = {O1, O4, O7}, T2 = {O2, O8}, T3 = {O5}
        assert_eq!(s.num_steps(), 4);
        assert_eq!(s.step(OpId(0)), 0);
        assert_eq!(s.step(OpId(3)), 0);
        assert_eq!(s.step(OpId(6)), 0);
        assert_eq!(s.step(OpId(1)), 1);
        assert_eq!(s.step(OpId(4)), 1);
        assert_eq!(s.step(OpId(5)), 3);
    }

    #[test]
    fn fir_schedule_lengths() {
        // FIR3 under ×:2, +:1 -> 3 steps (m0m1 | m2,a1 | a2).
        let s3 = ListSchedule::run(&fir3(), &Allocation::paper(2, 1, 0));
        assert_eq!(s3.num_steps(), 3);
        // FIR5 under ×:2, +:1 -> 5 steps.
        let s5 = ListSchedule::run(&fir5(), &Allocation::paper(2, 1, 0));
        assert_eq!(s5.num_steps(), 5);
    }

    #[test]
    fn diffeq_schedule_valid() {
        let alloc = Allocation::paper(2, 1, 1);
        let g = diffeq();
        let s = ListSchedule::run(&g, &alloc);
        assert!(s.verify(&g, &alloc));
        assert_eq!(s.num_steps(), 4); // HAL under ×:2 fits the ASAP depth
    }

    #[test]
    fn scarce_resources_stretch_schedule() {
        let g = fir5();
        let one = ListSchedule::run(&g, &Allocation::paper(1, 1, 0));
        let two = ListSchedule::run(&g, &Allocation::paper(2, 1, 0));
        assert!(one.num_steps() > two.num_steps());
        assert!(one.verify(&g, &Allocation::paper(1, 1, 0)));
    }

    #[test]
    fn random_graphs_schedule_validly() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..25 {
            let g = random_dfg(
                &mut rng,
                &RandomDfgParams {
                    num_ops: 30,
                    kind_weights: [2, 1, 3, 1],
                    ..Default::default()
                },
            );
            let alloc = Allocation::paper(2, 2, 1);
            let s = ListSchedule::run(&g, &alloc);
            assert!(s.verify(&g, &alloc));
        }
    }
}
