//! Register lifetime analysis and allocation for bound DFGs.
//!
//! The controllers' `RE` outputs latch every operation result into a
//! register that must survive until the last consumer has fetched its
//! operands (`OF`). This module computes value lifetimes over the
//! reference order (list-schedule steps) and packs them into a minimal
//! register file with the classic left-edge algorithm — giving the
//! datapath-storage side of the area story that the paper's Table 1 leaves
//! to the controllers.

use crate::binding::BoundDfg;
use tauhls_dfg::OpId;

/// The lifetime of one operation's result value, in list-schedule steps:
/// the value is written at the end of `def_step` and must remain readable
/// through `last_use_step`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Lifetime {
    /// The producing operation.
    pub op: OpId,
    /// Step in which the value is produced.
    pub def_step: usize,
    /// Last step in which a consumer (or primary output) reads it.
    pub last_use_step: usize,
}

impl Lifetime {
    /// True iff two lifetimes overlap (cannot share a register).
    ///
    /// A value written at the end of `def_step` and a value whose last use
    /// is in `def_step` do *not* conflict (write-after-read in the same
    /// step is safe with edge-triggered registers).
    pub fn overlaps(&self, other: &Lifetime) -> bool {
        self.def_step < other.last_use_step && other.def_step < self.last_use_step
    }
}

/// A register assignment: one register index per operation result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegisterAllocation {
    lifetimes: Vec<Lifetime>,
    register_of: Vec<usize>,
    num_registers: usize,
}

impl RegisterAllocation {
    /// Number of registers used.
    pub fn num_registers(&self) -> usize {
        self.num_registers
    }

    /// The register holding the result of `op`.
    pub fn register_of(&self, op: OpId) -> usize {
        self.register_of[op.0]
    }

    /// The analysed lifetimes, in def-step order.
    pub fn lifetimes(&self) -> &[Lifetime] {
        &self.lifetimes
    }

    /// Checks that no two values sharing a register have overlapping
    /// lifetimes (used by property tests).
    pub fn verify(&self) -> bool {
        for (i, a) in self.lifetimes.iter().enumerate() {
            for b in self.lifetimes.iter().skip(i + 1) {
                if self.register_of[a.op.0] == self.register_of[b.op.0] && a.overlaps(b) {
                    return false;
                }
            }
        }
        true
    }
}

/// Computes value lifetimes over the binding's list schedule.
///
/// Results consumed by a primary output live to the end of the schedule.
pub fn lifetimes(bound: &BoundDfg) -> Vec<Lifetime> {
    let dfg = bound.dfg();
    let sched = bound.schedule();
    let last_step = sched.num_steps().saturating_sub(1);
    let mut out = Vec::with_capacity(dfg.num_ops());
    for v in dfg.op_ids() {
        let def_step = sched.step(v);
        let mut last_use = dfg
            .succs(v)
            .iter()
            .map(|s| sched.step(*s))
            .max()
            .unwrap_or(def_step);
        if dfg.outputs().iter().any(|(_, o)| *o == v) {
            last_use = last_step.max(def_step);
        }
        out.push(Lifetime {
            op: v,
            def_step,
            last_use_step: last_use,
        });
    }
    out.sort_by_key(|l| (l.def_step, l.op.0));
    out
}

/// Allocates registers by the left-edge algorithm: lifetimes sorted by
/// definition step, each assigned to the lowest-numbered register whose
/// previous occupant's lifetime has ended.
pub fn allocate_registers(bound: &BoundDfg) -> RegisterAllocation {
    let lts = lifetimes(bound);
    let mut register_of = vec![usize::MAX; bound.dfg().num_ops()];
    // Per register: the lifetime currently occupying it (last assigned).
    let mut occupancy: Vec<Lifetime> = Vec::new();
    for lt in &lts {
        let slot = (0..occupancy.len())
            .find(|&r| !occupancy[r].overlaps(lt))
            .unwrap_or_else(|| {
                occupancy.push(*lt);
                occupancy.len() - 1
            });
        occupancy[slot] = *lt;
        register_of[lt.op.0] = slot;
    }
    RegisterAllocation {
        num_registers: occupancy.len(),
        register_of,
        lifetimes: lts,
    }
}

/// The minimum register count: the maximum number of simultaneously live
/// values over the schedule (left-edge is optimal for interval graphs, so
/// [`allocate_registers`] achieves this bound; exposed separately for
/// verification).
pub fn min_registers(bound: &BoundDfg) -> usize {
    let lts = lifetimes(bound);
    let steps = bound.schedule().num_steps();
    (0..steps)
        .map(|t| {
            lts.iter()
                .filter(|l| l.def_step < l.last_use_step) // zero-length values need no reg slot across steps... keep conservative: live over (def, last_use]
                .filter(|l| l.def_step <= t && t < l.last_use_step)
                .count()
        })
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::Allocation;
    use tauhls_dfg::benchmarks::{diffeq, fir5};

    #[test]
    fn fir5_lifetimes_and_registers() {
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let alloc = allocate_registers(&bound);
        assert!(alloc.verify());
        // 5 products + 4 partial sums; the linear accumulation keeps few
        // values alive at once, far below one register per op.
        assert!(alloc.num_registers() < fir5().num_ops());
        assert!(alloc.num_registers() >= 2);
    }

    #[test]
    fn left_edge_matches_max_overlap_bound() {
        for (g, a) in [
            (fir5(), Allocation::paper(2, 1, 0)),
            (diffeq(), Allocation::paper(2, 1, 1)),
        ] {
            let bound = BoundDfg::bind(&g, &a);
            let alloc = allocate_registers(&bound);
            // Left-edge is optimal on interval graphs: register count can
            // exceed the max-overlap bound only via the zero-length-value
            // convention, by at most the number of such values.
            assert!(alloc.verify());
            assert!(alloc.num_registers() >= min_registers(&bound));
        }
    }

    #[test]
    fn overlap_semantics() {
        let a = Lifetime {
            op: OpId(0),
            def_step: 0,
            last_use_step: 2,
        };
        let b = Lifetime {
            op: OpId(1),
            def_step: 2,
            last_use_step: 4,
        };
        // b defined exactly when a dies: no conflict.
        assert!(!a.overlaps(&b));
        let c = Lifetime {
            op: OpId(2),
            def_step: 1,
            last_use_step: 3,
        };
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&a));
    }

    #[test]
    fn random_allocations_always_verify() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use tauhls_dfg::{random_dfg, RandomDfgParams};
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..20 {
            let g = random_dfg(
                &mut rng,
                &RandomDfgParams {
                    num_ops: 24,
                    kind_weights: [2, 1, 3, 1],
                    ..Default::default()
                },
            );
            let bound = BoundDfg::bind(&g, &Allocation::paper(2, 2, 1));
            let alloc = allocate_registers(&bound);
            assert!(alloc.verify());
            assert!(alloc.num_registers() <= g.num_ops());
        }
    }
}
