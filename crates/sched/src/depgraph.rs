//! Per-resource-class dependency graphs and their clique (chain) covers
//! (paper §3, Fig 3b).
//!
//! For the operations of one resource class, draw an edge between two
//! operations iff one depends (transitively) on the other. A clique in this
//! graph is a set of pairwise-ordered operations — a *chain* — which one
//! unit can execute sequentially without any added synchronization. The
//! minimum clique cover therefore equals the minimum number of units that
//! can run the class at full concurrency; by Dilworth's theorem it is
//! computed exactly as a minimum chain cover of the dependence partial
//! order via bipartite matching. When fewer units are allocated, the
//! scheduler must insert *schedule arcs* to merge chains.

use tauhls_dfg::{Dfg, OpId, ResourceClass};

/// Transitive reachability over the data-dependence relation:
/// `reach[a][b] == true` iff there is a (non-empty) dependence path from
/// operation `a` to operation `b`.
pub fn reachability(dfg: &Dfg) -> Vec<Vec<bool>> {
    let n = dfg.num_ops();
    let mut reach = vec![vec![false; n]; n];
    // Process in reverse topological order: succ closure union.
    let topo = dfg.topo_order();
    for &v in topo.iter().rev() {
        for s in dfg.succs(v) {
            reach[v.0][s.0] = true;
            let (head, tail) = {
                // split_at_mut to read row s while writing row v
                if v.0 < s.0 {
                    let (a, b) = reach.split_at_mut(s.0);
                    (&mut a[v.0], &b[0])
                } else {
                    let (a, b) = reach.split_at_mut(v.0);
                    (&mut b[0], &a[s.0])
                }
            };
            for i in 0..n {
                head[i] |= tail[i];
            }
        }
    }
    reach
}

/// The dependency graph over the operations of one resource class.
#[derive(Clone, Debug)]
pub struct DependencyGraph {
    class: ResourceClass,
    nodes: Vec<OpId>,
    /// `ordered[i][j]` iff `nodes[i]` precedes `nodes[j]` in the dependence
    /// partial order.
    ordered: Vec<Vec<bool>>,
}

impl DependencyGraph {
    /// Builds the dependency graph of `class` from a full-graph
    /// reachability matrix (from [`reachability`]).
    pub fn for_class(dfg: &Dfg, class: ResourceClass, reach: &[Vec<bool>]) -> Self {
        let nodes = dfg.ops_of_class(class);
        let k = nodes.len();
        let mut ordered = vec![vec![false; k]; k];
        for i in 0..k {
            for j in 0..k {
                if i != j {
                    ordered[i][j] = reach[nodes[i].0][nodes[j].0];
                }
            }
        }
        DependencyGraph {
            class,
            nodes,
            ordered,
        }
    }

    /// The resource class this graph describes.
    pub fn class(&self) -> ResourceClass {
        self.class
    }

    /// The operations (graph nodes).
    pub fn nodes(&self) -> &[OpId] {
        &self.nodes
    }

    /// True iff the two operations are dependent (adjacent in the paper's
    /// dependency graph — an edge means they *can* share a unit freely).
    pub fn dependent(&self, a: OpId, b: OpId) -> bool {
        let i = self.index_of(a);
        let j = self.index_of(b);
        self.ordered[i][j] || self.ordered[j][i]
    }

    fn index_of(&self, v: OpId) -> usize {
        self.nodes
            .iter()
            .position(|&n| n == v)
            .expect("operation not in this class")
    }

    /// Exact minimum clique cover (= minimum chain cover of the dependence
    /// partial order), via König/Dilworth: maximum bipartite matching on
    /// the strict order relation. Returns the chains, each sorted in
    /// dependence order.
    ///
    /// The number of returned chains is the minimum number of units of this
    /// class that preserves all original concurrency.
    pub fn min_clique_cover(&self) -> Vec<Vec<OpId>> {
        let k = self.nodes.len();
        // Kuhn's algorithm: match each left node to a right node along
        // edges i -> j (i strictly precedes j).
        let mut match_right: Vec<Option<usize>> = vec![None; k]; // right j -> left i
        let mut match_left: Vec<Option<usize>> = vec![None; k]; // left i -> right j

        fn try_augment(
            i: usize,
            ordered: &[Vec<bool>],
            match_right: &mut [Option<usize>],
            match_left: &mut [Option<usize>],
            visited: &mut [bool],
        ) -> bool {
            for j in 0..ordered.len() {
                if ordered[i][j] && !visited[j] {
                    visited[j] = true;
                    let freed = match match_right[j] {
                        None => true,
                        Some(m) => try_augment(m, ordered, match_right, match_left, visited),
                    };
                    if freed {
                        match_right[j] = Some(i);
                        match_left[i] = Some(j);
                        return true;
                    }
                }
            }
            false
        }

        for i in 0..k {
            let mut visited = vec![false; k];
            try_augment(
                i,
                &self.ordered,
                &mut match_right,
                &mut match_left,
                &mut visited,
            );
        }

        // Chains: start at nodes that are not anyone's successor.
        let mut is_succ = vec![false; k];
        for (j, m) in match_right.iter().enumerate() {
            if m.is_some() {
                is_succ[j] = true;
            }
        }
        let mut chains = Vec::new();
        #[allow(clippy::needless_range_loop)] // index drives the chain walk
        for start in 0..k {
            if !is_succ[start] {
                let mut chain = vec![self.nodes[start]];
                let mut cur = start;
                while let Some(next) = match_left[cur] {
                    chain.push(self.nodes[next]);
                    cur = next;
                }
                chains.push(chain);
            }
        }
        debug_assert_eq!(
            chains.iter().map(Vec::len).sum::<usize>(),
            k,
            "chains must partition the nodes"
        );
        chains
    }

    /// Greedy chain partition (the heuristic baseline for the ablation
    /// bench): scan operations in id order, appending each to the first
    /// chain whose last element precedes it.
    pub fn greedy_clique_cover(&self) -> Vec<Vec<OpId>> {
        let mut chains: Vec<Vec<usize>> = Vec::new();
        for i in 0..self.nodes.len() {
            let mut placed = false;
            for chain in &mut chains {
                let last = *chain.last().expect("chains are nonempty");
                if self.ordered[last][i] {
                    chain.push(i);
                    placed = true;
                    break;
                }
            }
            if !placed {
                chains.push(vec![i]);
            }
        }
        chains
            .into_iter()
            .map(|c| c.into_iter().map(|i| self.nodes[i]).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tauhls_dfg::benchmarks::{fig3_dfg, fir5};

    #[test]
    fn reachability_transitive() {
        let g = fig3_dfg();
        let r = reachability(&g);
        // O6 -> O7 -> O8: transitive edge O6 -> O8.
        assert!(r[6][7]);
        assert!(r[7][8]);
        assert!(r[6][8]);
        // No reverse reachability.
        assert!(!r[8][6]);
        // O4 unreachable from O0.
        assert!(!r[0][4]);
        assert!(!r[4][0]);
    }

    #[test]
    fn fig3b_clique_cover_is_three() {
        // The paper: minimal cliques {(O0,O1), (O4), (O6,O8)} -> 3 units
        // would be needed without schedule arcs.
        let g = fig3_dfg();
        let r = reachability(&g);
        let dep = DependencyGraph::for_class(&g, ResourceClass::Multiplier, &r);
        assert_eq!(dep.nodes(), &[OpId(0), OpId(1), OpId(4), OpId(6), OpId(8)]);
        assert!(dep.dependent(OpId(0), OpId(1)));
        assert!(dep.dependent(OpId(6), OpId(8)));
        assert!(!dep.dependent(OpId(4), OpId(0)));
        let cover = dep.min_clique_cover();
        assert_eq!(cover.len(), 3);
        // Each chain is internally ordered.
        for chain in &cover {
            for w in chain.windows(2) {
                assert!(dep.dependent(w[0], w[1]));
            }
        }
        // The adder side needs only 2 chains: (O3, O2), (O7, O5).
        let depa = DependencyGraph::for_class(&g, ResourceClass::Adder, &r);
        assert_eq!(depa.min_clique_cover().len(), 2);
    }

    #[test]
    fn fir5_multiplications_are_an_antichain() {
        // All 5 products are independent: cover needs 5 chains.
        let g = fir5();
        let r = reachability(&g);
        let dep = DependencyGraph::for_class(&g, ResourceClass::Multiplier, &r);
        assert_eq!(dep.min_clique_cover().len(), 5);
        assert_eq!(dep.greedy_clique_cover().len(), 5);
    }

    #[test]
    fn greedy_never_beats_exact() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use tauhls_dfg::{random_dfg, RandomDfgParams};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let g = random_dfg(
                &mut rng,
                &RandomDfgParams {
                    num_ops: 25,
                    ..Default::default()
                },
            );
            let r = reachability(&g);
            for class in ResourceClass::ALL {
                let dep = DependencyGraph::for_class(&g, class, &r);
                if dep.nodes().is_empty() {
                    continue;
                }
                let exact = dep.min_clique_cover();
                let greedy = dep.greedy_clique_cover();
                assert!(exact.len() <= greedy.len());
                // Both are partitions.
                assert_eq!(exact.iter().map(Vec::len).sum::<usize>(), dep.nodes().len());
                assert_eq!(
                    greedy.iter().map(Vec::len).sum::<usize>(),
                    dep.nodes().len()
                );
            }
        }
    }
}
