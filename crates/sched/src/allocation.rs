//! Resource allocations: how many units of each class, and which classes
//! are telescopic.

use std::collections::{HashMap, HashSet};
use std::fmt;
use tauhls_dfg::ResourceClass;

/// Identifier of a concrete functional-unit instance.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UnitId(pub usize);

impl fmt::Debug for UnitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U{}", self.0)
    }
}

/// A concrete functional-unit instance within an allocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Unit {
    /// The unit's class.
    pub class: ResourceClass,
    /// Index among units of the same class (0-based).
    pub index: usize,
    /// True iff the unit is telescopic (variable computation time).
    pub telescopic: bool,
}

impl Unit {
    /// Display name in the paper's style: `M1`, `M2`, `A1`, `S1`, ...
    pub fn display_name(&self) -> String {
        let letter = match self.class {
            ResourceClass::Multiplier => 'M',
            ResourceClass::Adder => 'A',
            ResourceClass::Subtractor => 'S',
        };
        format!("{letter}{}", self.index + 1)
    }
}

/// A resource allocation: per-class unit counts plus the set of classes
/// implemented telescopically.
///
/// # Examples
///
/// ```
/// use tauhls_sched::Allocation;
/// use tauhls_dfg::ResourceClass;
/// // The paper's Diff.Eq allocation: ×:2 (TAU), +:1, −:1.
/// let alloc = Allocation::new()
///     .with_units(ResourceClass::Multiplier, 2)
///     .with_units(ResourceClass::Adder, 1)
///     .with_units(ResourceClass::Subtractor, 1)
///     .telescopic(ResourceClass::Multiplier);
/// assert_eq!(alloc.units().len(), 4);
/// assert_eq!(alloc.units()[0].display_name(), "M1");
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Allocation {
    counts: HashMap<ResourceClass, usize>,
    tau_classes: HashSet<ResourceClass>,
}

impl Allocation {
    /// An empty allocation.
    pub fn new() -> Self {
        Allocation::default()
    }

    /// Sets the number of units of `class` (builder style).
    pub fn with_units(mut self, class: ResourceClass, count: usize) -> Self {
        self.counts.insert(class, count);
        self
    }

    /// Marks `class` as telescopic (builder style).
    pub fn telescopic(mut self, class: ResourceClass) -> Self {
        self.tau_classes.insert(class);
        self
    }

    /// The paper's standard configuration: multipliers telescopic,
    /// adders/subtractors fixed-delay, with the given counts
    /// `(muls, adds, subs)`.
    pub fn paper(muls: usize, adds: usize, subs: usize) -> Self {
        Allocation::new()
            .with_units(ResourceClass::Multiplier, muls)
            .with_units(ResourceClass::Adder, adds)
            .with_units(ResourceClass::Subtractor, subs)
            .telescopic(ResourceClass::Multiplier)
    }

    /// Number of units of the given class.
    pub fn count(&self, class: ResourceClass) -> usize {
        self.counts.get(&class).copied().unwrap_or(0)
    }

    /// True iff the class is implemented telescopically.
    pub fn is_telescopic(&self, class: ResourceClass) -> bool {
        self.tau_classes.contains(&class)
    }

    /// The telescopic classes.
    pub fn tau_classes(&self) -> &HashSet<ResourceClass> {
        &self.tau_classes
    }

    /// All unit instances in deterministic order (class order of
    /// [`ResourceClass::ALL`], then index). [`UnitId`]s index this list.
    pub fn units(&self) -> Vec<Unit> {
        let mut out = Vec::new();
        for class in ResourceClass::ALL {
            for index in 0..self.count(class) {
                out.push(Unit {
                    class,
                    index,
                    telescopic: self.is_telescopic(class),
                });
            }
        }
        out
    }

    /// Ids of the units of a given class.
    pub fn units_of_class(&self, class: ResourceClass) -> Vec<UnitId> {
        self.units()
            .iter()
            .enumerate()
            .filter_map(|(i, u)| (u.class == class).then_some(UnitId(i)))
            .collect()
    }

    /// True iff every operation class used by `dfg` has at least one unit.
    pub fn covers(&self, dfg: &tauhls_dfg::Dfg) -> bool {
        dfg.class_histogram()
            .iter()
            .all(|(class, &n)| n == 0 || self.count(*class) > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tauhls_dfg::benchmarks::diffeq;

    #[test]
    fn paper_allocation_layout() {
        let a = Allocation::paper(2, 1, 1);
        let units = a.units();
        let names: Vec<String> = units.iter().map(Unit::display_name).collect();
        assert_eq!(names, vec!["M1", "M2", "A1", "S1"]);
        assert!(units[0].telescopic);
        assert!(!units[2].telescopic);
        assert!(a.covers(&diffeq()));
    }

    #[test]
    fn units_of_class_indices() {
        let a = Allocation::paper(2, 1, 1);
        assert_eq!(
            a.units_of_class(ResourceClass::Multiplier),
            vec![UnitId(0), UnitId(1)]
        );
        assert_eq!(a.units_of_class(ResourceClass::Adder), vec![UnitId(2)]);
        assert_eq!(a.units_of_class(ResourceClass::Subtractor), vec![UnitId(3)]);
    }

    #[test]
    fn missing_class_not_covered() {
        let a = Allocation::paper(2, 1, 0);
        assert!(!a.covers(&diffeq())); // diffeq needs subtractors
        assert_eq!(a.count(ResourceClass::Subtractor), 0);
    }
}
