//! Service configuration, mirrored one-to-one by the `tauhls serve`
//! flags.

use std::time::Duration;

/// Everything the server needs to start.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7203` (`:0` picks an ephemeral
    /// port; the bound address is reported back).
    pub addr: String,
    /// Worker threads executing jobs. `0` is a diagnostic mode: requests
    /// queue but never execute, so backpressure paths can be tested
    /// deterministically.
    pub workers: usize,
    /// Bounded job-queue capacity; a full queue answers `503`.
    pub queue_capacity: usize,
    /// Response-cache budget in bytes (key + body payload).
    pub cache_bytes: usize,
    /// Synthesis stage-cache capacity in artifacts (`0` disables stage
    /// caching; each entry is one pipeline-stage output shared across
    /// `/v1/synth` and `/v1/area` requests with a common prefix).
    pub stage_cache_entries: usize,
    /// Simulation threads per job (`None` → all cores). Worker-level
    /// concurrency times this is the peak core demand.
    pub sim_threads: Option<usize>,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// How long a graceful shutdown waits for in-flight jobs before
    /// cancelling them through the batch engine's
    /// [`CancelToken`](tauhls_sim::CancelToken).
    pub drain_timeout: Duration,
    /// Durable state directory for the async job manager: the write-ahead
    /// job journal plus hash-keyed result artifacts live here and are
    /// replayed on startup. `None` keeps job state in memory only (jobs
    /// still work, but do not survive a restart).
    pub data_dir: Option<std::path::PathBuf>,
    /// Dedicated threads executing async jobs (separate from the
    /// connection workers so a backlog of sweeps cannot starve
    /// synchronous requests). `0` is a diagnostic mode: jobs queue and
    /// journal but never execute.
    pub job_workers: usize,
    /// Bounded async-job queue capacity; a full queue answers `503`.
    pub job_queue_capacity: usize,
    /// Attempts per job before it is marked failed (the first run plus
    /// retries); watchdog-cancelled attempts count.
    pub job_max_attempts: u32,
    /// Base delay of the exponential retry backoff (doubled per attempt,
    /// plus deterministic seed-derived jitter, capped at 32x the base).
    pub job_backoff_base: Duration,
    /// Per-client token-bucket refill rate for job submissions, in
    /// requests per second.
    pub admission_rate: f64,
    /// Per-client token-bucket burst capacity.
    pub admission_burst: f64,
    /// Per-client cap on jobs that are queued or running at once; beyond
    /// it submissions answer `429` with `Retry-After`.
    pub max_pending_per_client: usize,
    /// Run as a cluster coordinator: partition batch jobs across the
    /// registered workers and merge the partials (bit-identically) into
    /// the final body. Implied by `workers_file`.
    pub coordinator: bool,
    /// A JSON array of worker addresses (`["host:port", ...]`) to
    /// pre-register at startup; the same addresses `POST
    /// /v1/cluster/register` would add at runtime.
    pub workers_file: Option<std::path::PathBuf>,
    /// Run as a cluster worker of this coordinator address: register at
    /// startup and heartbeat every `heartbeat_interval`.
    pub worker_of: Option<String>,
    /// How often a worker heartbeats its coordinator, and how often a
    /// coordinator health-probes its workers.
    pub heartbeat_interval: Duration,
    /// Per-partition dispatch timeout: a worker that has not answered a
    /// `POST /v1/cluster/partition` within this window is marked failed
    /// and the partition is requeued onto the next live worker.
    pub partition_timeout: Duration,
    /// Remote dispatch attempts per partition before the coordinator
    /// falls back to computing the slice locally (so a job converges
    /// even if every worker dies).
    pub cluster_max_attempts: u32,
    /// Partitions per divisible job. `0` (the default) plans one
    /// partition per live worker; the planner clamps to the job's unit
    /// count either way.
    pub cluster_partitions: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7203".to_string(),
            workers: 4,
            queue_capacity: 64,
            cache_bytes: 32 * 1024 * 1024,
            stage_cache_entries: 1024,
            sim_threads: None,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            drain_timeout: Duration::from_secs(30),
            data_dir: None,
            job_workers: 2,
            job_queue_capacity: 256,
            job_max_attempts: 3,
            job_backoff_base: Duration::from_millis(250),
            admission_rate: 20.0,
            admission_burst: 40.0,
            max_pending_per_client: 64,
            coordinator: false,
            workers_file: None,
            worker_of: None,
            heartbeat_interval: Duration::from_millis(1000),
            partition_timeout: Duration::from_secs(60),
            cluster_max_attempts: 3,
            cluster_partitions: 0,
        }
    }
}
