//! Service configuration, mirrored one-to-one by the `tauhls serve`
//! flags.

use std::time::Duration;

/// Everything the server needs to start.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7203` (`:0` picks an ephemeral
    /// port; the bound address is reported back).
    pub addr: String,
    /// Worker threads executing jobs. `0` is a diagnostic mode: requests
    /// queue but never execute, so backpressure paths can be tested
    /// deterministically.
    pub workers: usize,
    /// Bounded job-queue capacity; a full queue answers `503`.
    pub queue_capacity: usize,
    /// Response-cache budget in bytes (key + body payload).
    pub cache_bytes: usize,
    /// Synthesis stage-cache capacity in artifacts (`0` disables stage
    /// caching; each entry is one pipeline-stage output shared across
    /// `/v1/synth` and `/v1/area` requests with a common prefix).
    pub stage_cache_entries: usize,
    /// Simulation threads per job (`None` → all cores). Worker-level
    /// concurrency times this is the peak core demand.
    pub sim_threads: Option<usize>,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// How long a graceful shutdown waits for in-flight jobs before
    /// cancelling them through the batch engine's
    /// [`CancelToken`](tauhls_sim::CancelToken).
    pub drain_timeout: Duration,
    /// Durable state directory for the async job manager: the write-ahead
    /// job journal plus hash-keyed result artifacts live here and are
    /// replayed on startup. `None` keeps job state in memory only (jobs
    /// still work, but do not survive a restart).
    pub data_dir: Option<std::path::PathBuf>,
    /// Dedicated threads executing async jobs (separate from the
    /// connection workers so a backlog of sweeps cannot starve
    /// synchronous requests). `0` is a diagnostic mode: jobs queue and
    /// journal but never execute.
    pub job_workers: usize,
    /// Bounded async-job queue capacity; a full queue answers `503`.
    pub job_queue_capacity: usize,
    /// Attempts per job before it is marked failed (the first run plus
    /// retries); watchdog-cancelled attempts count.
    pub job_max_attempts: u32,
    /// Base delay of the exponential retry backoff (doubled per attempt,
    /// plus deterministic seed-derived jitter, capped at 32x the base).
    pub job_backoff_base: Duration,
    /// Per-client token-bucket refill rate for job submissions, in
    /// requests per second.
    pub admission_rate: f64,
    /// Per-client token-bucket burst capacity.
    pub admission_burst: f64,
    /// Per-client cap on jobs that are queued or running at once; beyond
    /// it submissions answer `429` with `Retry-After`.
    pub max_pending_per_client: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7203".to_string(),
            workers: 4,
            queue_capacity: 64,
            cache_bytes: 32 * 1024 * 1024,
            stage_cache_entries: 1024,
            sim_threads: None,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            drain_timeout: Duration::from_secs(30),
            data_dir: None,
            job_workers: 2,
            job_queue_capacity: 256,
            job_max_attempts: 3,
            job_backoff_base: Duration::from_millis(250),
            admission_rate: 20.0,
            admission_burst: 40.0,
            max_pending_per_client: 64,
        }
    }
}
