//! Service configuration, mirrored one-to-one by the `tauhls serve`
//! flags.

use std::time::Duration;

/// Everything the server needs to start.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7203` (`:0` picks an ephemeral
    /// port; the bound address is reported back).
    pub addr: String,
    /// Worker threads executing jobs. `0` is a diagnostic mode: requests
    /// queue but never execute, so backpressure paths can be tested
    /// deterministically.
    pub workers: usize,
    /// Bounded job-queue capacity; a full queue answers `503`.
    pub queue_capacity: usize,
    /// Response-cache budget in bytes (key + body payload).
    pub cache_bytes: usize,
    /// Synthesis stage-cache capacity in artifacts (`0` disables stage
    /// caching; each entry is one pipeline-stage output shared across
    /// `/v1/synth` and `/v1/area` requests with a common prefix).
    pub stage_cache_entries: usize,
    /// Simulation threads per job (`None` → all cores). Worker-level
    /// concurrency times this is the peak core demand.
    pub sim_threads: Option<usize>,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// How long a graceful shutdown waits for in-flight jobs before
    /// cancelling them through the batch engine's
    /// [`CancelToken`](tauhls_sim::CancelToken).
    pub drain_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7203".to_string(),
            workers: 4,
            queue_capacity: 64,
            cache_bytes: 32 * 1024 * 1024,
            stage_cache_entries: 1024,
            sim_threads: None,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            drain_timeout: Duration::from_secs(30),
        }
    }
}
