//! A tiny blocking HTTP/1.1 client for `tauhls call`, the integration
//! tests, and the smoke benchmark. One request per connection, matching
//! the server's `Connection: close` framing.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One parsed response.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Headers as received, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Body bytes, as a string (all service bodies are UTF-8).
    pub body: String,
}

impl Response {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Issues one request and reads the full response.
///
/// `method` is `GET` or `POST`; a `POST` carries `body` as
/// `application/json`. All socket phases share the one `timeout`.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> Result<Response, String> {
    request_with(addr, method, path, &[], body, timeout)
}

/// [`request`] plus extra request headers — how callers attach the
/// `X-Client` identity and `X-Priority` class the async-jobs admission
/// control reads.
pub fn request_with(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&str>,
    timeout: Duration,
) -> Result<Response, String> {
    request_timeouts(addr, method, path, headers, body, timeout, timeout)
}

/// [`request_with`] with the connect phase timed separately from the
/// read/write phases — how the cluster coordinator bounds its dispatch
/// calls: a dead worker fails the cheap connect quickly instead of
/// consuming the whole per-partition budget.
pub fn request_timeouts(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&str>,
    connect_timeout: Duration,
    io_timeout: Duration,
) -> Result<Response, String> {
    let targets = addr
        .to_socket_addrs()
        .map_err(|e| format!("resolve {addr}: {e}"))?;
    let mut stream = None;
    let mut last_err = format!("resolve {addr}: no addresses");
    for target in targets {
        match TcpStream::connect_timeout(&target, connect_timeout) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(e) => last_err = format!("connect {addr}: {e}"),
        }
    }
    let stream = stream.ok_or(last_err)?;
    stream
        .set_read_timeout(Some(io_timeout))
        .and_then(|()| stream.set_write_timeout(Some(io_timeout)))
        .map_err(|e| format!("socket setup: {e}"))?;
    let mut stream = stream;
    let payload = body.unwrap_or("");
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        payload.len()
    );
    for (name, value) in headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(payload.as_bytes()))
        .map_err(|e| format!("send: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("receive: {e}"))?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> Result<Response, String> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or("response has no header terminator")?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| "response head is not UTF-8")?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    // "HTTP/1.1 200 OK" — the code is the second token.
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("malformed header {line:?}"))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value.parse().ok();
        }
        headers.push((name, value));
    }
    let body_bytes = &raw[head_end + 4..];
    let body_bytes = match content_length {
        Some(n) if n <= body_bytes.len() => &body_bytes[..n],
        _ => body_bytes, // Connection: close framing — body runs to EOF.
    };
    let body = String::from_utf8(body_bytes.to_vec())
        .map_err(|_| "response body is not UTF-8".to_string())?;
    Ok(Response {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_response() {
        let raw = b"HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\nRetry-After: 1\r\nContent-Length: 2\r\n\r\n{}extra";
        let r = parse_response(raw).expect("parses");
        assert_eq!(r.status, 503);
        assert_eq!(r.header("retry-after"), Some("1"));
        assert_eq!(r.body, "{}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 banana\r\n\r\n").is_err());
    }
}
