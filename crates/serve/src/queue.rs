//! A bounded multi-producer/multi-consumer priority job queue.
//!
//! The acceptor pushes with [`Queue::try_push`], which **never blocks**:
//! when the queue is at capacity (or closed) the item comes straight back
//! and the caller answers `503` — that is the whole backpressure story.
//! Workers block in [`Queue::pop`] until an item arrives or the queue is
//! closed *and* empty, so closing the queue drains everything already
//! accepted before the workers exit.
//!
//! Ordering: items pop lowest [`Queue::try_push_at`] class first, and
//! FIFO within a class (a monotonic sequence number breaks ties), so a
//! burst of small interactive jobs overtakes a backlog of giant sweeps
//! without ever reordering equals. [`Queue::try_push`] enqueues at
//! [`DEFAULT_PRIORITY`], preserving pure FIFO for callers that never use
//! classes — the connection queue — while the async job queue maps
//! client priority and job cost onto classes.

use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex, PoisonError};

/// The class [`Queue::try_push`] enqueues at.
pub const DEFAULT_PRIORITY: u8 = 128;

/// Bounded priority queue handing accepted work to the worker pool.
#[derive(Debug)]
pub struct Queue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct State<T> {
    items: BinaryHeap<Entry<T>>,
    seq: u64,
    closed: bool,
}

/// Heap entry ordered so the `BinaryHeap` max is the item that must pop
/// first: lowest priority class, then lowest (earliest) sequence number.
#[derive(Debug)]
struct Entry<T> {
    priority: u8,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed on both fields: the heap's max = smallest (class, seq).
        (other.priority, other.seq).cmp(&(self.priority, self.seq))
    }
}

impl<T> Queue<T> {
    /// A queue holding at most `capacity` items (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        Queue {
            state: Mutex::new(State {
                items: BinaryHeap::new(),
                seq: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        // A worker that panicked mid-`handle` has already released the
        // lock; the queue state itself is always consistent.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues at [`DEFAULT_PRIORITY`] without blocking. Returns the
    /// item when the queue is full or closed so the caller can answer it
    /// directly.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        self.try_push_at(DEFAULT_PRIORITY, item)
    }

    /// Enqueues into a priority class (lower pops sooner) without
    /// blocking. Returns the item when the queue is full or closed.
    pub fn try_push_at(&self, priority: u8, item: T) -> Result<(), T> {
        let mut st = self.lock();
        if st.closed || st.items.len() >= self.capacity {
            return Err(item);
        }
        let seq = st.seq;
        st.seq += 1;
        st.items.push(Entry {
            priority,
            seq,
            item,
        });
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available. Returns `None` once the queue
    /// is closed **and** drained — the worker-pool exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.lock();
        loop {
            if let Some(entry) = st.items.pop() {
                return Some(entry.item);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: pushes start failing, and `pop` returns `None`
    /// once the backlog is drained.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Removes and returns everything still queued, in pop order (used
    /// to flush a closed queue when no workers exist to drain it).
    pub fn drain(&self) -> Vec<T> {
        let mut st = self.lock();
        let mut out = Vec::with_capacity(st.items.len());
        while let Some(entry) = st.items.pop() {
            out.push(entry.item);
        }
        out
    }

    /// Items currently waiting (the `/metrics` gauge).
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bounded_push_then_fifo_pop() {
        let q = Queue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_backlog_then_releases_blocked_poppers() {
        let q = Arc::new(Queue::new(4));
        q.try_push(7).ok();
        q.close();
        assert_eq!(q.try_push(8), Err(8));
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
        // A popper blocked before close() wakes up with None.
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        assert_eq!(h.join().expect("popper"), None);
    }

    #[test]
    fn drain_flushes_a_closed_queue() {
        let q = Queue::new(3);
        q.try_push(1).ok();
        q.try_push(2).ok();
        q.close();
        assert_eq!(q.drain(), vec![1, 2]);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_zero_clamps_to_one() {
        let q = Queue::new(0);
        assert!(q.try_push(1).is_ok());
        assert_eq!(q.try_push(2), Err(2));
    }

    #[test]
    fn lower_classes_overtake_but_equals_stay_fifo() {
        let q = Queue::new(8);
        q.try_push_at(5, "sweep-a").ok();
        q.try_push_at(5, "sweep-b").ok();
        q.try_push_at(1, "interactive-a").ok();
        q.try_push_at(1, "interactive-b").ok();
        q.try_push_at(3, "medium").ok();
        assert_eq!(q.pop(), Some("interactive-a"));
        assert_eq!(q.pop(), Some("interactive-b"));
        assert_eq!(q.pop(), Some("medium"));
        // An interactive arrival mid-backlog still jumps the line.
        q.try_push_at(1, "late-interactive").ok();
        assert_eq!(q.pop(), Some("late-interactive"));
        assert_eq!(q.pop(), Some("sweep-a"));
        assert_eq!(q.pop(), Some("sweep-b"));
    }

    #[test]
    fn drain_returns_pop_order_across_classes() {
        let q = Queue::new(8);
        q.try_push_at(9, 1).ok();
        q.try_push_at(0, 2).ok();
        q.try_push_at(9, 3).ok();
        q.close();
        assert_eq!(q.drain(), vec![2, 1, 3]);
    }
}
