//! A bounded multi-producer/multi-consumer job queue.
//!
//! The acceptor pushes with [`Queue::try_push`], which **never blocks**:
//! when the queue is at capacity (or closed) the item comes straight back
//! and the caller answers `503` — that is the whole backpressure story.
//! Workers block in [`Queue::pop`] until an item arrives or the queue is
//! closed *and* empty, so closing the queue drains everything already
//! accepted before the workers exit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// Bounded FIFO handing accepted work to the worker pool.
#[derive(Debug)]
pub struct Queue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> Queue<T> {
    /// A queue holding at most `capacity` items (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        Queue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        // A worker that panicked mid-`handle` has already released the
        // lock; the queue state itself is always consistent.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues without blocking. Returns the item when the queue is full
    /// or closed so the caller can answer it directly.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut st = self.lock();
        if st.closed || st.items.len() >= self.capacity {
            return Err(item);
        }
        st.items.push_back(item);
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available. Returns `None` once the queue
    /// is closed **and** drained — the worker-pool exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: pushes start failing, and `pop` returns `None`
    /// once the backlog is drained.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Removes and returns everything still queued (used to flush a
    /// closed queue when no workers exist to drain it).
    pub fn drain(&self) -> Vec<T> {
        self.lock().items.drain(..).collect()
    }

    /// Items currently waiting (the `/metrics` gauge).
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bounded_push_then_fifo_pop() {
        let q = Queue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_backlog_then_releases_blocked_poppers() {
        let q = Arc::new(Queue::new(4));
        q.try_push(7).ok();
        q.close();
        assert_eq!(q.try_push(8), Err(8));
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
        // A popper blocked before close() wakes up with None.
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        assert_eq!(h.join().expect("popper"), None);
    }

    #[test]
    fn drain_flushes_a_closed_queue() {
        let q = Queue::new(3);
        q.try_push(1).ok();
        q.try_push(2).ok();
        q.close();
        assert_eq!(q.drain(), vec![1, 2]);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_zero_clamps_to_one() {
        let q = Queue::new(0);
        assert!(q.try_push(1).is_ok());
        assert_eq!(q.try_push(2), Err(2));
    }
}
