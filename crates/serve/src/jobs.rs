//! Durable async job manager: crash-recoverable job store, retry with
//! deterministic backoff, and per-client admission control.
//!
//! Jobs are addressed by content: the job ID is the FNV-1a hash of the
//! spec's canonical rendering ([`JobSpec::job_id`]), so resubmitting an
//! identical spec reconnects to the same job — submission is idempotent
//! by construction, across retries *and* across restarts.
//!
//! Durability is a write-ahead journal plus hash-keyed artifacts under
//! the configured `data_dir`:
//!
//! ```text
//! data_dir/
//!   jobs.journal          append-only JSON lines, fsync'd per event
//!   artifacts/<fnv64>.json  one result body per content hash
//!   quarantine/             artifacts that failed their integrity check
//! ```
//!
//! Every state transition is journalled *before* it is answered, so a
//! `kill -9` at any instant loses at most the work of the in-flight
//! attempt, never the job: startup replays the journal, re-verifies each
//! completed artifact against its recorded FNV-1a hash (corrupt or
//! missing files are quarantined and the job recomputed), requeues
//! whatever was queued, running, or backing off at crash time, and
//! compacts the journal to one `submit` (plus terminal) event per job.
//! Because the batch engine is bit-deterministic in the canonical spec,
//! a crash/restart cycle converges to byte-identical results.
//!
//! Failures retry with exponential backoff — base doubles per attempt,
//! capped at 32x, plus a deterministic jitter derived from the job ID
//! and attempt number (no wall-clock entropy: two replicas replaying the
//! same journal schedule identical retries). Watchdog-cancelled attempts
//! count as failures; a client `DELETE` is terminal.
//!
//! Admission control is per client (the `X-Client` header): a token
//! bucket bounds submission rate and a pending-jobs quota bounds queued
//! work, both answering `429` with a `Retry-After` derived from the
//! bucket deficit — one hostile client cannot starve the rest.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rand::splitmix64_mix;
use tauhls_core::jobspec::{JobError, JobSpec};
use tauhls_core::stages::Fnv64;
use tauhls_core::{StageCache, StageRecord};
use tauhls_json::Json;
use tauhls_sim::{BatchRunner, CancelToken};

use crate::cache::Cache;
use crate::config::ServeConfig;
use crate::metrics::Metrics;
use crate::queue::Queue;
use crate::stagewarm::StageWarmer;

/// Lifecycle of one job. `Backoff` is `Queued` with a scheduled wake-up;
/// both replay as `Queued`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and waiting for a job worker.
    Queued,
    /// An attempt is executing right now.
    Running,
    /// A failed attempt is waiting out its retry delay.
    Backoff,
    /// Completed; the result body is durable and servable.
    Done,
    /// Exhausted its attempts (or the spec is invalid); terminal.
    Failed,
    /// Cancelled by the client; terminal.
    Cancelled,
}

impl JobState {
    /// The wire name used in status bodies and the journal.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Backoff => "backoff",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the job can never run again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// Why a submission was not accepted.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The client's token bucket is empty; retry after the given seconds.
    RateLimited(u64),
    /// The client already has its quota of pending jobs.
    QuotaExceeded(u64),
    /// The shared job queue is at capacity (or the server is draining).
    QueueFull,
}

/// A successful submission: the content-derived ID and the state the job
/// was in when the call returned (an idempotent resubmit of a completed
/// job answers `Done` immediately).
#[derive(Debug)]
pub struct SubmitOutcome {
    /// The job's content address (16 lowercase hex digits).
    pub id: String,
    /// State at submit time.
    pub state: JobState,
}

/// What `GET /v1/jobs/<id>/result` should answer.
#[derive(Debug)]
pub enum JobResult {
    /// No such job.
    Unknown,
    /// Completed: the exact (durable) response body.
    Ready(Arc<str>),
    /// Still queued / running / backing off; poll again.
    Pending(&'static str),
    /// Exhausted its attempts; the last error.
    Failed(String),
    /// Cancelled by the client.
    Cancelled,
}

/// A job body (or partition partial) plus its stage-latency records.
pub(crate) type ExecResult = Result<(Json, Vec<StageRecord>), JobError>;
/// How a job's spec becomes its body: single-node servers call
/// [`JobSpec::run_with`] directly, coordinators route through the
/// cluster dispatcher. Injected via [`JobManager::start_with`].
pub(crate) type Executor =
    Arc<dyn Fn(&JobSpec, &BatchRunner, Option<&StageCache>) -> ExecResult + Send + Sync>;

#[derive(Debug)]
struct JobRecord {
    spec: JobSpec,
    client: String,
    priority: u8,
    attempts: u32,
    state: JobState,
    error: Option<String>,
    artifact: Option<u64>,
    result: Option<Arc<str>>,
    cancel: Option<CancelToken>,
}

/// Per-client token bucket state.
#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last: Instant,
}

/// Token-bucket admission control, keyed by client identity. The map is
/// pruned of long-idle buckets so unique hostile client names cannot
/// balloon memory.
#[derive(Debug)]
struct Admission {
    rate: f64,
    burst: f64,
    buckets: Mutex<HashMap<String, Bucket>>,
}

/// Buckets idle this long are reclaimed (their refill has long since
/// topped out, so dropping one never penalizes a legitimate client).
const BUCKET_IDLE: Duration = Duration::from_secs(60);
const BUCKET_PRUNE_LEN: usize = 4096;

impl Admission {
    fn new(rate: f64, burst: f64) -> Admission {
        Admission {
            rate,
            burst: burst.max(1.0),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Takes one token for `client`, or answers the seconds until one
    /// will be available.
    fn try_take(&self, client: &str) -> Result<(), u64> {
        if self.rate <= 0.0 {
            return Ok(()); // rate limiting disabled
        }
        let mut buckets = self.buckets.lock().unwrap_or_else(PoisonError::into_inner);
        let now = Instant::now();
        if buckets.len() >= BUCKET_PRUNE_LEN && !buckets.contains_key(client) {
            buckets.retain(|_, b| now.duration_since(b.last) < BUCKET_IDLE);
        }
        let bucket = buckets.entry(client.to_string()).or_insert(Bucket {
            tokens: self.burst,
            last: now,
        });
        let refill = now.duration_since(bucket.last).as_secs_f64() * self.rate;
        bucket.tokens = (bucket.tokens + refill).min(self.burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - bucket.tokens;
            Err(((deficit / self.rate).ceil() as u64).max(1))
        }
    }
}

struct Inner {
    data_dir: Option<PathBuf>,
    journal: Mutex<Option<File>>,
    table: Mutex<HashMap<String, JobRecord>>,
    pending: Queue<String>,
    backoff: Mutex<Vec<(Instant, String)>>,
    backoff_wake: Condvar,
    admission: Admission,
    max_pending_per_client: usize,
    max_attempts: u32,
    backoff_base: Duration,
    sim_threads: Option<usize>,
    cancel: CancelToken,
    shutting_down: AtomicBool,
    metrics: Arc<Metrics>,
    cache: Arc<Cache>,
    stages: Arc<StageCache>,
    warmer: Arc<StageWarmer>,
    executor: Executor,
}

/// The async job manager: owns the job table, the durable journal, the
/// retry scheduler, and the dedicated job-worker pool.
pub struct JobManager {
    inner: Arc<Inner>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl JobManager {
    /// Starts the manager: replays the journal under `config.data_dir`
    /// (if any), requeues interrupted jobs, compacts the journal, and
    /// spawns `config.job_workers` workers plus the retry scheduler.
    pub fn start(
        config: &ServeConfig,
        metrics: Arc<Metrics>,
        cache: Arc<Cache>,
        stages: Arc<StageCache>,
        warmer: Arc<StageWarmer>,
        cancel: CancelToken,
    ) -> std::io::Result<JobManager> {
        let executor: Executor = Arc::new(|spec, runner, stages| spec.run_with(runner, stages));
        JobManager::start_with(config, metrics, cache, stages, warmer, cancel, executor)
    }

    /// [`JobManager::start`] with an injected execution strategy — how
    /// coordinator-mode servers route async jobs through the cluster
    /// dispatcher while keeping every journal/retry/artifact behavior.
    pub(crate) fn start_with(
        config: &ServeConfig,
        metrics: Arc<Metrics>,
        cache: Arc<Cache>,
        stages: Arc<StageCache>,
        warmer: Arc<StageWarmer>,
        cancel: CancelToken,
        executor: Executor,
    ) -> std::io::Result<JobManager> {
        let pending = Queue::new(config.job_queue_capacity);
        let mut table = HashMap::new();
        let mut journal = None;
        if let Some(dir) = &config.data_dir {
            fs::create_dir_all(dir.join("artifacts"))?;
            fs::create_dir_all(dir.join("quarantine"))?;
            let journal_path = dir.join("jobs.journal");
            let replay = replay_journal(&journal_path);
            for diagnostic in &replay.diagnostics {
                eprintln!("tauhls-serve: {diagnostic}");
            }
            for (id, rj) in replay.jobs {
                if let Some((id, rec)) = revive_job(dir, &metrics, &cache, id, rj) {
                    table.insert(id, rec);
                }
            }
            for (id, rec) in &table {
                if rec.state == JobState::Queued {
                    metrics.add_jobs_pending(1);
                    if pending
                        .try_push_at(class_of(rec.priority, &rec.spec), id.clone())
                        .is_err()
                    {
                        eprintln!(
                            "tauhls-serve: recovered job {id} exceeds the job queue \
                             capacity; it stays journalled but unscheduled"
                        );
                    }
                }
            }
            journal = Some(compact_journal(&journal_path, &table)?);
            metrics.log_event(&format!(
                "job journal replayed: {} jobs recovered, {} requeued",
                table.len(),
                table
                    .values()
                    .filter(|r| r.state == JobState::Queued)
                    .count()
            ));
        }
        let inner = Arc::new(Inner {
            data_dir: config.data_dir.clone(),
            journal: Mutex::new(journal),
            table: Mutex::new(table),
            pending,
            backoff: Mutex::new(Vec::new()),
            backoff_wake: Condvar::new(),
            admission: Admission::new(config.admission_rate, config.admission_burst),
            max_pending_per_client: config.max_pending_per_client.max(1),
            max_attempts: config.job_max_attempts.max(1),
            backoff_base: config.job_backoff_base,
            sim_threads: config.sim_threads,
            cancel,
            shutting_down: AtomicBool::new(false),
            metrics,
            cache,
            stages,
            warmer,
            executor,
        });
        let mut threads = Vec::with_capacity(config.job_workers + 1);
        for i in 0..config.job_workers {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("tauhls-serve-job-{i}"))
                    .spawn(move || runner_loop(&inner))?,
            );
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name("tauhls-serve-job-scheduler".to_string())
                    .spawn(move || scheduler_loop(&inner))?,
            );
        }
        Ok(JobManager {
            inner,
            threads: Mutex::new(threads),
        })
    }

    /// Submits a job for `client` at `priority` (0 soonest .. 9 latest).
    /// Idempotent: a spec already known answers its current state.
    pub fn submit(
        &self,
        spec: JobSpec,
        client: &str,
        priority: u8,
    ) -> Result<SubmitOutcome, SubmitError> {
        let inner = &self.inner;
        if inner.shutting_down.load(Ordering::SeqCst) {
            return Err(SubmitError::QueueFull);
        }
        if let Err(retry_after) = inner.admission.try_take(client) {
            inner.metrics.count_job("rejected");
            return Err(SubmitError::RateLimited(retry_after));
        }
        let id = spec.job_id();
        let class = class_of(priority, &spec);
        let mut table = inner.lock_table();
        if let Some(rec) = table.get_mut(&id) {
            match rec.state {
                JobState::Failed | JobState::Cancelled => {
                    // Resubmitting a dead job restarts it with a fresh
                    // attempt budget (content address unchanged).
                    if inner.pending.try_push_at(class, id.clone()).is_err() {
                        return Err(SubmitError::QueueFull);
                    }
                    rec.attempts = 0;
                    rec.error = None;
                    rec.state = JobState::Queued;
                    rec.client = client.to_string();
                    rec.priority = priority;
                    let line = submit_line(&id, rec);
                    inner.journal_line(&line);
                    inner.metrics.count_job("submitted");
                    inner.metrics.add_jobs_pending(1);
                    return Ok(SubmitOutcome {
                        id,
                        state: JobState::Queued,
                    });
                }
                state => {
                    return Ok(SubmitOutcome { id, state });
                }
            }
        }
        let pending_for_client = table
            .values()
            .filter(|r| r.client == client && !r.state.is_terminal())
            .count();
        if pending_for_client >= inner.max_pending_per_client {
            drop(table);
            inner.metrics.count_job("rejected");
            let retry_after = (pending_for_client as u64).clamp(1, 60);
            return Err(SubmitError::QuotaExceeded(retry_after));
        }
        if inner.pending.try_push_at(class, id.clone()).is_err() {
            return Err(SubmitError::QueueFull);
        }
        let rec = JobRecord {
            spec,
            client: client.to_string(),
            priority,
            attempts: 0,
            state: JobState::Queued,
            error: None,
            artifact: None,
            result: None,
            cancel: None,
        };
        let line = submit_line(&id, &rec);
        inner.journal_line(&line);
        table.insert(id.clone(), rec);
        drop(table);
        inner.metrics.count_job("submitted");
        inner.metrics.add_jobs_pending(1);
        Ok(SubmitOutcome {
            id,
            state: JobState::Queued,
        })
    }

    /// The job's status body (compact JSON plus trailing newline).
    pub fn status(&self, id: &str) -> Option<String> {
        let table = self.inner.lock_table();
        table.get(id).map(|rec| render_status(id, rec))
    }

    /// The job's current state.
    pub fn state(&self, id: &str) -> Option<JobState> {
        let table = self.inner.lock_table();
        table.get(id).map(|rec| rec.state)
    }

    /// The job's result, by lifecycle.
    pub fn result(&self, id: &str) -> JobResult {
        let table = self.inner.lock_table();
        let Some(rec) = table.get(id) else {
            return JobResult::Unknown;
        };
        match rec.state {
            JobState::Done => match &rec.result {
                Some(body) => JobResult::Ready(Arc::clone(body)),
                None => JobResult::Pending("done"),
            },
            JobState::Failed => {
                JobResult::Failed(rec.error.clone().unwrap_or_else(|| "failed".to_string()))
            }
            JobState::Cancelled => JobResult::Cancelled,
            state => JobResult::Pending(state.as_str()),
        }
    }

    /// Cancels a job: queued/backing-off jobs become terminal
    /// immediately; a running attempt is cancelled through its token
    /// (the batch engine observes it between trial chunks). Answers the
    /// post-cancel status body, or `None` for an unknown ID.
    pub fn cancel(&self, id: &str) -> Option<String> {
        let inner = &self.inner;
        let mut table = inner.lock_table();
        let rec = table.get_mut(id)?;
        match rec.state {
            JobState::Queued | JobState::Backoff => {
                rec.state = JobState::Cancelled;
                rec.error = Some("cancelled by client".to_string());
                inner.journal_event(id, "cancelled", Vec::new());
                inner.metrics.count_job("cancelled");
                inner.metrics.add_jobs_pending(-1);
            }
            JobState::Running => {
                if let Some(token) = &rec.cancel {
                    token.cancel();
                }
                rec.error = Some("cancellation requested".to_string());
            }
            _ => {} // already terminal; idempotent
        }
        Some(render_status(id, rec))
    }

    /// Jobs currently waiting in the shared queue.
    pub fn depth(&self) -> usize {
        self.inner.pending.depth()
    }

    /// A handle onto this manager's durable journal for the cluster
    /// coordinator's partition lifecycle events (`dispatch`,
    /// `part_done`, `part_requeue`). They share the job journal so one
    /// replay reconstructs the whole story; the replayer treats them as
    /// informational (job state lives in the job-level events).
    pub(crate) fn journal_sink(&self) -> crate::cluster::JournalSink {
        let inner = Arc::clone(&self.inner);
        Arc::new(move |id: &str, event: &str, extra: Vec<(&str, Json)>| {
            inner.journal_event(id, event, extra);
        })
    }

    /// A count per lifecycle state over the whole job table, in the
    /// fixed order queued/running/backoff/done/failed/cancelled (states
    /// with zero jobs included) — the `jobs` block of `GET /v1/status`.
    pub fn state_counts(&self) -> [(&'static str, u64); 6] {
        const STATES: [JobState; 6] = [
            JobState::Queued,
            JobState::Running,
            JobState::Backoff,
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
        ];
        let table = self.inner.lock_table();
        let mut counts = STATES.map(|s| (s.as_str(), 0u64));
        for rec in table.values() {
            if let Some(slot) = STATES.iter().position(|s| *s == rec.state) {
                counts[slot].1 += 1;
            }
        }
        counts
    }

    /// Stops accepting and scheduling work. Queued jobs stay journalled
    /// (`submit`/`retry` is their most recent event), so a restart
    /// requeues them; running attempts finish or are cancelled by the
    /// server's drain watchdog and journal a `requeue` event.
    pub fn begin_shutdown(&self) {
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        self.inner.pending.close();
        self.inner.pending.drain();
        self.inner.backoff_wake.notify_all();
    }

    /// Joins the worker and scheduler threads (call after
    /// [`JobManager::begin_shutdown`]).
    pub fn join(&self) {
        let handles: Vec<_> = {
            let mut threads = self.threads.lock().unwrap_or_else(PoisonError::into_inner);
            threads.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Inner {
    fn lock_table(&self) -> MutexGuard<'_, HashMap<String, JobRecord>> {
        self.table.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Appends one event line to the journal and fsyncs it. A write
    /// failure downgrades to in-memory operation with a diagnostic —
    /// durability degrades, correctness does not.
    fn journal_line(&self, line: &Json) {
        let mut guard = self.journal.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(file) = guard.as_mut() {
            let mut text = line.to_compact();
            text.push('\n');
            let wrote = file
                .write_all(text.as_bytes())
                .and_then(|()| file.sync_data());
            if let Err(e) = wrote {
                eprintln!("tauhls-serve: job journal write failed ({e}); continuing in-memory");
                *guard = None;
            }
        }
    }

    fn journal_event(&self, id: &str, event: &str, extra: Vec<(&str, Json)>) {
        let mut pairs = vec![("event", Json::from(event)), ("job", Json::from(id))];
        pairs.extend(extra);
        self.journal_line(&Json::object(pairs));
    }

    /// Persists one result body under its content hash (atomic via a
    /// temp file and rename; content-addressed, so an existing file is
    /// already correct).
    fn write_artifact(&self, hash: u64, body: &[u8]) {
        let Some(dir) = &self.data_dir else { return };
        let path = artifact_path(dir, hash);
        if path.exists() {
            return;
        }
        let tmp = dir.join("artifacts").join(format!(".tmp-{hash:016x}"));
        let wrote = (|| -> std::io::Result<()> {
            let mut file = File::create(&tmp)?;
            file.write_all(body)?;
            file.sync_all()?;
            fs::rename(&tmp, &path)
        })();
        if let Err(e) = wrote {
            eprintln!("tauhls-serve: artifact {hash:016x} not persisted ({e})");
        }
    }
}

/// Maps (client priority 0..=9, job cost) onto a queue class: priority
/// dominates, and within a priority small interactive jobs overtake
/// giant sweeps.
fn class_of(priority: u8, spec: &JobSpec) -> u8 {
    let cost = match spec.trials() {
        0..=10_000 => 0,
        10_001..=100_000 => 1,
        _ => 2,
    };
    priority.min(9) * 3 + cost
}

/// The retry delay before attempt `attempt + 1`: exponential in the
/// attempt number (capped at 32x base) plus a jitter below one base
/// period derived from the job ID — deterministic, no clock entropy.
pub(crate) fn backoff_delay(base: Duration, id: &str, attempt: u32) -> Duration {
    let base_ms = (base.as_millis() as u64).max(1);
    let factor = 1u64 << attempt.saturating_sub(1).min(5);
    let mut h = Fnv64::new();
    h.write_str(id);
    let jitter = splitmix64_mix(h.finish() ^ u64::from(attempt)) % base_ms;
    Duration::from_millis(base_ms * factor + jitter)
}

fn fnv_of(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

fn artifact_path(dir: &Path, hash: u64) -> PathBuf {
    dir.join("artifacts").join(format!("{hash:016x}.json"))
}

fn render_status(id: &str, rec: &JobRecord) -> String {
    let mut pairs = vec![
        ("job", Json::from(id)),
        ("endpoint", Json::from(rec.spec.endpoint().as_str())),
        ("state", Json::from(rec.state.as_str())),
        ("attempts", Json::from(u64::from(rec.attempts))),
        ("priority", Json::from(u64::from(rec.priority))),
        ("client", Json::from(rec.client.as_str())),
    ];
    if let Some(error) = &rec.error {
        pairs.push(("error", Json::from(error.as_str())));
    }
    if let Some(artifact) = rec.artifact {
        pairs.push(("artifact", Json::from(format!("{artifact:016x}"))));
    }
    if let Some(result) = &rec.result {
        pairs.push(("result_bytes", Json::from(result.len())));
    }
    let mut body = Json::object(pairs).to_compact();
    body.push('\n');
    body
}

fn submit_line(id: &str, rec: &JobRecord) -> Json {
    Json::object([
        ("event", Json::from("submit")),
        ("job", Json::from(id)),
        ("client", Json::from(rec.client.as_str())),
        ("priority", Json::from(u64::from(rec.priority))),
        ("attempts", Json::from(u64::from(rec.attempts))),
        ("spec", rec.spec.canonical()),
    ])
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

fn runner_loop(inner: &Arc<Inner>) {
    while let Some(id) = inner.pending.pop() {
        run_one(inner, &id);
    }
}

fn run_one(inner: &Arc<Inner>, id: &str) {
    let (spec, token, attempt) = {
        let mut table = inner.lock_table();
        let Some(rec) = table.get_mut(id) else { return };
        if rec.state != JobState::Queued && rec.state != JobState::Backoff {
            return; // cancelled (or duplicate queue entry) while waiting
        }
        rec.attempts += 1;
        rec.state = JobState::Running;
        let token = inner.cancel.child();
        rec.cancel = Some(token.clone());
        (rec.spec.clone(), token, rec.attempts)
    };
    inner.metrics.add_jobs_pending(-1);
    inner.metrics.add_jobs_running(1);
    inner.journal_event(
        id,
        "start",
        vec![("attempt", Json::from(u64::from(attempt)))],
    );
    let started = Instant::now();
    let runner = BatchRunner::sized(inner.sim_threads).with_cancel(token.clone());
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        (inner.executor)(&spec, &runner, Some(&inner.stages))
    }))
    .unwrap_or_else(|_| {
        inner.metrics.count_panic();
        Err(JobError::Failed("job attempt panicked".to_string()))
    });
    match outcome {
        Ok((json, records)) => complete(inner, id, &spec, &json, &records, started),
        Err(JobError::Cancelled) => {
            if token.is_self_cancelled() {
                // Client DELETE: terminal.
                inner.journal_event(id, "cancelled", Vec::new());
                let mut table = inner.lock_table();
                if let Some(rec) = table.get_mut(id) {
                    rec.state = JobState::Cancelled;
                    rec.error = Some("cancelled by client".to_string());
                    rec.cancel = None;
                }
                drop(table);
                inner.metrics.count_job("cancelled");
                inner.metrics.add_jobs_running(-1);
            } else {
                // Shutdown watchdog: journal the interruption so the
                // next start requeues the job.
                inner.journal_event(id, "requeue", Vec::new());
                let mut table = inner.lock_table();
                if let Some(rec) = table.get_mut(id) {
                    rec.state = JobState::Queued;
                    rec.cancel = None;
                }
                drop(table);
                inner.metrics.count_job("requeued");
                inner.metrics.add_jobs_running(-1);
                inner.metrics.add_jobs_pending(1);
            }
        }
        // An invalid spec can never succeed on retry.
        Err(JobError::Invalid(m)) => fail(inner, id, format!("invalid job spec: {m}")),
        Err(JobError::Failed(m)) => retry_or_fail(inner, id, attempt, m),
    }
}

fn complete(
    inner: &Arc<Inner>,
    id: &str,
    spec: &JobSpec,
    json: &Json,
    records: &[StageRecord],
    started: Instant,
) {
    let body: Arc<str> = Arc::from(json.to_pretty());
    let hash = fnv_of(body.as_bytes());
    // Durability order: artifact first, then the journal entry that
    // points at it — a crash between the two replays as "still running"
    // and recomputes, never as "done with a missing artifact".
    inner.write_artifact(hash, body.as_bytes());
    inner.journal_event(
        id,
        "done",
        vec![
            ("artifact", Json::from(format!("{hash:016x}"))),
            ("bytes", Json::from(body.len())),
        ],
    );
    for record in records {
        inner.metrics.observe_stage(record);
    }
    inner.metrics.count_trials(spec.trials());
    inner.metrics.observe_latency("jobs", started.elapsed());
    inner.cache.insert(spec.cache_key(), Arc::clone(&body));
    inner.warmer.record(spec);
    let mut table = inner.lock_table();
    if let Some(rec) = table.get_mut(id) {
        rec.state = JobState::Done;
        rec.artifact = Some(hash);
        rec.result = Some(body);
        rec.error = None;
        rec.cancel = None;
    }
    drop(table);
    inner.metrics.count_job("completed");
    inner.metrics.add_jobs_running(-1);
}

fn fail(inner: &Arc<Inner>, id: &str, error: String) {
    inner.journal_event(id, "failed", vec![("error", Json::from(error.as_str()))]);
    let mut table = inner.lock_table();
    if let Some(rec) = table.get_mut(id) {
        rec.state = JobState::Failed;
        rec.error = Some(error);
        rec.cancel = None;
    }
    drop(table);
    inner.metrics.count_job("failed");
    inner.metrics.add_jobs_running(-1);
}

fn retry_or_fail(inner: &Arc<Inner>, id: &str, attempt: u32, error: String) {
    if attempt >= inner.max_attempts {
        fail(inner, id, error);
        return;
    }
    let delay = backoff_delay(inner.backoff_base, id, attempt);
    inner.journal_event(
        id,
        "retry",
        vec![
            ("attempt", Json::from(u64::from(attempt))),
            ("delay_ms", Json::from(delay.as_millis() as u64)),
            ("error", Json::from(error.as_str())),
        ],
    );
    {
        let mut table = inner.lock_table();
        if let Some(rec) = table.get_mut(id) {
            rec.state = JobState::Backoff;
            rec.error = Some(error);
            rec.cancel = None;
        }
    }
    {
        let mut backoff = inner.backoff.lock().unwrap_or_else(PoisonError::into_inner);
        backoff.push((Instant::now() + delay, id.to_string()));
    }
    inner.backoff_wake.notify_all();
    inner.metrics.count_job("retried");
    inner.metrics.add_jobs_running(-1);
    inner.metrics.add_jobs_pending(1);
}

/// Wakes jobs whose backoff expired and feeds them back to the queue.
fn scheduler_loop(inner: &Arc<Inner>) {
    let mut guard = inner.backoff.lock().unwrap_or_else(PoisonError::into_inner);
    loop {
        if inner.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let now = Instant::now();
        let mut due = Vec::new();
        let mut i = 0;
        while i < guard.len() {
            if guard[i].0 <= now {
                due.push(guard.swap_remove(i).1);
            } else {
                i += 1;
            }
        }
        if !due.is_empty() {
            drop(guard);
            for id in due {
                enqueue_ready(inner, &id);
            }
            guard = inner.backoff.lock().unwrap_or_else(PoisonError::into_inner);
            continue;
        }
        let wait = guard
            .iter()
            .map(|(t, _)| t.saturating_duration_since(now))
            .min()
            .unwrap_or(Duration::from_millis(200))
            .clamp(Duration::from_millis(1), Duration::from_millis(200));
        guard = inner
            .backoff_wake
            .wait_timeout(guard, wait)
            .unwrap_or_else(PoisonError::into_inner)
            .0;
    }
}

fn enqueue_ready(inner: &Arc<Inner>, id: &str) {
    let class = {
        let table = inner.lock_table();
        let Some(rec) = table.get(id) else { return };
        if rec.state != JobState::Backoff {
            return; // cancelled while waiting out the delay
        }
        class_of(rec.priority, &rec.spec)
    };
    if inner.pending.try_push_at(class, id.to_string()).is_err()
        && !inner.shutting_down.load(Ordering::SeqCst)
    {
        // Queue momentarily full: park again briefly. (On shutdown the
        // journalled `retry` event requeues the job after restart.)
        let mut backoff = inner.backoff.lock().unwrap_or_else(PoisonError::into_inner);
        backoff.push((Instant::now() + Duration::from_millis(250), id.to_string()));
    }
}

// ---------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------

#[derive(Debug)]
struct ReplayJob {
    canonical: Json,
    client: String,
    priority: u8,
    attempts: u32,
    state: JobState,
    artifact: Option<u64>,
    error: Option<String>,
}

#[derive(Debug, Default)]
struct Replay {
    jobs: Vec<(String, ReplayJob)>,
    diagnostics: Vec<String>,
}

/// Replays the journal into per-job end states. Hostile input is
/// answered with diagnostics, never a panic: an unparseable line stops
/// the replay there (append-only journals corrupt from the tail), and a
/// semantically malformed line is skipped.
fn replay_journal(path: &Path) -> Replay {
    let mut out = Replay::default();
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return out,
        Err(e) => {
            out.diagnostics
                .push(format!("job journal unreadable ({e}); starting empty"));
            return out;
        }
    };
    let text = String::from_utf8_lossy(&bytes);
    let mut index: HashMap<String, usize> = HashMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.trim().is_empty() {
            continue;
        }
        let parsed = match Json::parse(line) {
            Ok(j) => j,
            Err(e) => {
                out.diagnostics.push(format!(
                    "job journal line {n}: unreadable ({e}); stopping replay at torn tail"
                ));
                break;
            }
        };
        let event = parsed.get("event").and_then(|j| j.as_str());
        let job = parsed.get("job").and_then(|j| j.as_str());
        let (Some(event), Some(job)) = (event, job) else {
            out.diagnostics
                .push(format!("job journal line {n}: missing event/job; skipped"));
            continue;
        };
        if event == "submit" {
            let Some(spec) = parsed.get("spec") else {
                out.diagnostics.push(format!(
                    "job journal line {n}: submit without spec; skipped"
                ));
                continue;
            };
            let rj = ReplayJob {
                canonical: spec.clone(),
                client: parsed
                    .get("client")
                    .and_then(|j| j.as_str())
                    .unwrap_or("anonymous")
                    .to_string(),
                priority: parsed
                    .get("priority")
                    .and_then(|j| j.as_u64())
                    .unwrap_or(5)
                    .min(9) as u8,
                attempts: parsed.get("attempts").and_then(|j| j.as_u64()).unwrap_or(0) as u32,
                state: JobState::Queued,
                artifact: None,
                error: None,
            };
            match index.get(job) {
                Some(&i) => out.jobs[i].1 = rj,
                None => {
                    index.insert(job.to_string(), out.jobs.len());
                    out.jobs.push((job.to_string(), rj));
                }
            }
            continue;
        }
        // Cluster partition events are informational: job state lives in
        // the job-level events, and synchronous cluster jobs journal
        // partition traffic without ever being submitted — so these must
        // not trip the unknown-job diagnostic either.
        if matches!(event, "dispatch" | "part_done" | "part_requeue") {
            continue;
        }
        let Some(&i) = index.get(job) else {
            out.diagnostics.push(format!(
                "job journal line {n}: {event} for unknown job {job}; skipped"
            ));
            continue;
        };
        let rj = &mut out.jobs[i].1;
        match event {
            "start" => {
                if let Some(a) = parsed.get("attempt").and_then(|j| j.as_u64()) {
                    rj.attempts = a as u32;
                }
                rj.state = JobState::Running;
            }
            "retry" => {
                if let Some(a) = parsed.get("attempt").and_then(|j| j.as_u64()) {
                    rj.attempts = a as u32;
                }
                rj.error = parsed
                    .get("error")
                    .and_then(|j| j.as_str())
                    .map(str::to_string);
                rj.state = JobState::Queued;
            }
            "done" => {
                let hash = parsed
                    .get("artifact")
                    .and_then(|j| j.as_str())
                    .and_then(|h| u64::from_str_radix(h, 16).ok());
                match hash {
                    Some(h) => {
                        rj.artifact = Some(h);
                        rj.state = JobState::Done;
                    }
                    None => out.diagnostics.push(format!(
                        "job journal line {n}: done without a valid artifact hash; skipped"
                    )),
                }
            }
            "failed" => {
                rj.error = parsed
                    .get("error")
                    .and_then(|j| j.as_str())
                    .map(str::to_string);
                rj.state = JobState::Failed;
            }
            "cancelled" => rj.state = JobState::Cancelled,
            "requeue" => rj.state = JobState::Queued,
            other => out.diagnostics.push(format!(
                "job journal line {n}: unknown event {other:?}; skipped"
            )),
        }
    }
    out
}

/// Turns one replayed job into a live record: parses the canonical spec,
/// re-verifies its ID, and for completed jobs re-verifies the artifact
/// (quarantining and recomputing on any mismatch).
fn revive_job(
    dir: &Path,
    metrics: &Metrics,
    cache: &Cache,
    id: String,
    rj: ReplayJob,
) -> Option<(String, JobRecord)> {
    let spec = match JobSpec::from_canonical(&rj.canonical) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tauhls-serve: job {id}: journalled spec unusable ({e}); dropped");
            return None;
        }
    };
    if spec.job_id() != id {
        eprintln!("tauhls-serve: job {id}: journalled spec hashes to a different ID; dropped");
        return None;
    }
    let mut rec = JobRecord {
        spec,
        client: rj.client,
        priority: rj.priority,
        attempts: rj.attempts,
        state: rj.state,
        error: rj.error,
        artifact: None,
        result: None,
        cancel: None,
    };
    match rj.state {
        JobState::Done => match verify_artifact(dir, rj.artifact) {
            Ok((hash, body)) => {
                let body: Arc<str> = Arc::from(body);
                cache.insert(rec.spec.cache_key(), Arc::clone(&body));
                rec.artifact = Some(hash);
                rec.result = Some(body);
                metrics.count_job("recovered");
            }
            Err(why) => {
                eprintln!("tauhls-serve: job {id}: artifact {why}; quarantined, recomputing");
                if let Some(hash) = rj.artifact {
                    quarantine_artifact(dir, hash);
                }
                metrics.count_job("quarantined");
                rec.state = JobState::Queued;
                rec.attempts = 0;
                rec.error = None;
            }
        },
        JobState::Failed | JobState::Cancelled => metrics.count_job("recovered"),
        JobState::Running | JobState::Backoff => {
            // Interrupted mid-flight by the crash: back to the queue.
            rec.state = JobState::Queued;
            metrics.count_job("requeued");
        }
        JobState::Queued => metrics.count_job("recovered"),
    }
    Some((id, rec))
}

/// Loads one artifact and checks its FNV-1a content hash.
fn verify_artifact(dir: &Path, hash: Option<u64>) -> Result<(u64, String), String> {
    let hash = hash.ok_or_else(|| "hash missing from journal".to_string())?;
    let path = artifact_path(dir, hash);
    let bytes = fs::read(&path).map_err(|e| format!("{hash:016x} unreadable ({e})"))?;
    if fnv_of(&bytes) != hash {
        return Err(format!("{hash:016x} failed its integrity check"));
    }
    String::from_utf8(bytes)
        .map(|body| (hash, body))
        .map_err(|_| format!("{hash:016x} is not UTF-8"))
}

fn quarantine_artifact(dir: &Path, hash: u64) {
    let from = artifact_path(dir, hash);
    let to = dir.join("quarantine").join(format!("{hash:016x}.json"));
    if let Err(e) = fs::rename(&from, &to) {
        if e.kind() != std::io::ErrorKind::NotFound {
            eprintln!("tauhls-serve: artifact {hash:016x} not quarantined ({e})");
        }
    }
}

/// Rewrites the journal to its minimal equivalent — one `submit` (plus
/// terminal event) per live job — atomically, then reopens it for
/// appending. Bounds journal growth across restarts.
fn compact_journal(path: &Path, table: &HashMap<String, JobRecord>) -> std::io::Result<File> {
    let tmp = path.with_file_name("jobs.journal.tmp");
    {
        let mut file = File::create(&tmp)?;
        for (id, rec) in table {
            let mut line = submit_line(id, rec).to_compact();
            line.push('\n');
            file.write_all(line.as_bytes())?;
            let terminal = match rec.state {
                JobState::Done => rec.artifact.map(|hash| {
                    Json::object([
                        ("event", Json::from("done")),
                        ("job", Json::from(id.as_str())),
                        ("artifact", Json::from(format!("{hash:016x}"))),
                        (
                            "bytes",
                            Json::from(rec.result.as_ref().map_or(0, |r| r.len())),
                        ),
                    ])
                }),
                JobState::Failed => Some(Json::object([
                    ("event", Json::from("failed")),
                    ("job", Json::from(id.as_str())),
                    (
                        "error",
                        Json::from(rec.error.as_deref().unwrap_or("failed")),
                    ),
                ])),
                JobState::Cancelled => Some(Json::object([
                    ("event", Json::from("cancelled")),
                    ("job", Json::from(id.as_str())),
                ])),
                _ => None,
            };
            if let Some(event) = terminal {
                let mut line = event.to_compact();
                line.push('\n');
                file.write_all(line.as_bytes())?;
            }
        }
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    OpenOptions::new().append(true).create(true).open(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use tauhls_core::jobspec::Endpoint;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tauhls-jobs-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("tempdir");
        dir
    }

    fn config(data_dir: Option<PathBuf>) -> ServeConfig {
        ServeConfig {
            data_dir,
            job_workers: 2,
            job_max_attempts: 3,
            job_backoff_base: Duration::from_millis(5),
            sim_threads: Some(1),
            ..ServeConfig::default()
        }
    }

    fn manager(config: &ServeConfig) -> JobManager {
        JobManager::start(
            config,
            Arc::new(Metrics::new()),
            Arc::new(Cache::new(1 << 20)),
            Arc::new(StageCache::new(64)),
            Arc::new(StageWarmer::open(None)),
            CancelToken::new(),
        )
        .expect("manager")
    }

    fn manager_with(config: &ServeConfig, executor: Executor) -> JobManager {
        JobManager::start_with(
            config,
            Arc::new(Metrics::new()),
            Arc::new(Cache::new(1 << 20)),
            Arc::new(StageCache::new(64)),
            Arc::new(StageWarmer::open(None)),
            CancelToken::new(),
            executor,
        )
        .expect("manager")
    }

    fn spec(trials: u64) -> JobSpec {
        let doc = Json::parse(&format!(r#"{{"dfg":"fir3","trials":{trials},"seed":7}}"#))
            .expect("spec json");
        JobSpec::from_json(Endpoint::Simulate, &doc).expect("spec")
    }

    fn wait_until(what: &str, f: impl Fn() -> bool) {
        let start = Instant::now();
        while start.elapsed() < Duration::from_secs(20) {
            if f() {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("timed out waiting for {what}");
    }

    #[test]
    fn submit_executes_and_result_round_trips() {
        let m = manager(&config(None));
        let s = spec(50);
        let id = s.job_id();
        let out = m.submit(s, "alice", 5).expect("submit");
        assert_eq!(out.id, id);
        wait_until("job done", || m.state(&id) == Some(JobState::Done));
        let JobResult::Ready(body) = m.result(&id) else {
            panic!("result not ready: {:?}", m.result(&id));
        };
        let parsed = Json::parse(&body).expect("result json");
        assert!(parsed.get("spec").is_some(), "result echoes its spec");
        // Idempotent resubmit: same ID, answered done, no second run.
        let again = m.submit(spec(50), "bob", 5).expect("resubmit");
        assert_eq!(again.id, id);
        assert_eq!(again.state, JobState::Done);
        let status = m.status(&id).expect("status");
        assert!(status.contains("\"state\":\"done\""), "{status}");
        m.begin_shutdown();
        m.join();
    }

    #[test]
    fn retries_back_off_then_fail_permanently() {
        let attempts = Arc::new(AtomicU32::new(0));
        let seen = Arc::clone(&attempts);
        let executor: Executor = Arc::new(move |_, _, _| {
            seen.fetch_add(1, Ordering::SeqCst);
            Err(JobError::Failed("flaky backend".to_string()))
        });
        let m = manager_with(&config(None), executor);
        let id = m.submit(spec(10), "alice", 5).expect("submit").id;
        wait_until("job failed", || m.state(&id) == Some(JobState::Failed));
        assert_eq!(attempts.load(Ordering::SeqCst), 3);
        let JobResult::Failed(error) = m.result(&id) else {
            panic!("expected failed result");
        };
        assert!(error.contains("flaky backend"), "{error}");
        m.begin_shutdown();
        m.join();
    }

    #[test]
    fn a_transient_failure_recovers_on_retry() {
        let attempts = Arc::new(AtomicU32::new(0));
        let seen = Arc::clone(&attempts);
        let executor: Executor = Arc::new(move |_, _, _| {
            if seen.fetch_add(1, Ordering::SeqCst) == 0 {
                Err(JobError::Failed("first attempt flakes".to_string()))
            } else {
                Ok((Json::object([("ok", Json::from(true))]), Vec::new()))
            }
        });
        let m = manager_with(&config(None), executor);
        let id = m.submit(spec(10), "alice", 5).expect("submit").id;
        wait_until("job done", || m.state(&id) == Some(JobState::Done));
        assert_eq!(attempts.load(Ordering::SeqCst), 2);
        let status = m.status(&id).expect("status");
        assert!(status.contains("\"attempts\":2"), "{status}");
        m.begin_shutdown();
        m.join();
    }

    #[test]
    fn a_panicking_attempt_counts_as_a_failure_not_a_crash() {
        let executor: Executor = Arc::new(|_, _, _| panic!("executor exploded"));
        let m = manager_with(&config(None), executor);
        let id = m.submit(spec(10), "alice", 5).expect("submit").id;
        wait_until("job failed", || m.state(&id) == Some(JobState::Failed));
        let JobResult::Failed(error) = m.result(&id) else {
            panic!("expected failed result");
        };
        assert!(error.contains("panicked"), "{error}");
        m.begin_shutdown();
        m.join();
    }

    #[test]
    fn cancel_is_terminal_for_queued_jobs() {
        let cfg = ServeConfig {
            job_workers: 0, // diagnostic mode: nothing executes
            ..config(None)
        };
        let m = manager(&cfg);
        let id = m.submit(spec(10), "alice", 5).expect("submit").id;
        assert_eq!(m.state(&id), Some(JobState::Queued));
        let status = m.cancel(&id).expect("cancel");
        assert!(status.contains("\"state\":\"cancelled\""), "{status}");
        assert!(matches!(m.result(&id), JobResult::Cancelled));
        // Cancelling again is idempotent; cancelling nonsense is None.
        assert!(m.cancel(&id).is_some());
        assert!(m.cancel("0000000000000000").is_none());
        // A resubmit restarts the cancelled job.
        let again = m.submit(spec(10), "alice", 5).expect("resubmit");
        assert_eq!(again.state, JobState::Queued);
        m.begin_shutdown();
        m.join();
    }

    #[test]
    fn rate_limit_and_quota_answer_retry_after_per_client() {
        let cfg = ServeConfig {
            job_workers: 0,
            admission_rate: 100.0,
            admission_burst: 100.0,
            max_pending_per_client: 2,
            ..config(None)
        };
        let m = manager(&cfg);
        m.submit(spec(11), "alice", 5).expect("first");
        m.submit(spec(12), "alice", 5).expect("second");
        let err = m.submit(spec(13), "alice", 5).expect_err("quota");
        assert!(
            matches!(err, SubmitError::QuotaExceeded(s) if s >= 1),
            "{err:?}"
        );
        // Another client is unaffected by alice's quota.
        m.submit(spec(13), "bob", 5).expect("bob proceeds");
        m.begin_shutdown();
        m.join();
    }

    #[test]
    fn token_bucket_exhausts_then_refills() {
        let a = Admission::new(10.0, 2.0);
        assert_eq!(a.try_take("c"), Ok(()));
        assert_eq!(a.try_take("c"), Ok(()));
        let retry = a.try_take("c").expect_err("bucket empty");
        assert!(retry >= 1);
        assert_eq!(a.try_take("other"), Ok(()), "buckets are per client");
        std::thread::sleep(Duration::from_millis(150));
        assert_eq!(a.try_take("c"), Ok(()), "bucket refills with time");
    }

    #[test]
    fn backoff_delay_is_deterministic_exponential_and_capped() {
        let base = Duration::from_millis(100);
        let d1 = backoff_delay(base, "deadbeefdeadbeef", 1);
        let d2 = backoff_delay(base, "deadbeefdeadbeef", 2);
        let d9 = backoff_delay(base, "deadbeefdeadbeef", 9);
        assert_eq!(d1, backoff_delay(base, "deadbeefdeadbeef", 1));
        assert!(d1 >= base && d1 < base * 2, "{d1:?}");
        assert!(d2 >= base * 2 && d2 < base * 3, "{d2:?}");
        assert!(d9 >= base * 32 && d9 < base * 33, "capped at 32x: {d9:?}");
        assert_ne!(
            backoff_delay(base, "deadbeefdeadbeef", 1),
            backoff_delay(base, "0123456789abcdef", 1),
            "jitter differs per job"
        );
    }

    #[test]
    fn journal_replays_done_jobs_across_restart() {
        let dir = tempdir("replay");
        let cfg = config(Some(dir.clone()));
        let id;
        let body;
        {
            let m = manager(&cfg);
            id = m.submit(spec(40), "alice", 5).expect("submit").id;
            wait_until("job done", || m.state(&id) == Some(JobState::Done));
            let JobResult::Ready(b) = m.result(&id) else {
                panic!("result not ready");
            };
            body = b.to_string();
            m.begin_shutdown();
            m.join();
        }
        let m = manager(&cfg);
        assert_eq!(m.state(&id), Some(JobState::Done), "recovered from journal");
        let JobResult::Ready(recovered) = m.result(&id) else {
            panic!("recovered result not ready");
        };
        assert_eq!(
            recovered.as_ref(),
            body,
            "byte-identical across the restart"
        );
        m.begin_shutdown();
        m.join();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_jobs_requeue_and_finish_after_restart() {
        let dir = tempdir("requeue");
        let cfg = ServeConfig {
            job_workers: 0, // accepted but never started: simulates a crash mid-queue
            ..config(Some(dir.clone()))
        };
        let id;
        {
            let m = manager(&cfg);
            id = m.submit(spec(40), "alice", 5).expect("submit").id;
            assert_eq!(m.state(&id), Some(JobState::Queued));
            m.begin_shutdown();
            m.join();
        }
        let cfg = config(Some(dir.clone()));
        let m = manager(&cfg);
        wait_until("requeued job done", || m.state(&id) == Some(JobState::Done));
        assert!(matches!(m.result(&id), JobResult::Ready(_)));
        m.begin_shutdown();
        m.join();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_artifacts_are_quarantined_and_recomputed() {
        let dir = tempdir("quarantine");
        let cfg = config(Some(dir.clone()));
        let id;
        let body;
        {
            let m = manager(&cfg);
            id = m.submit(spec(40), "alice", 5).expect("submit").id;
            wait_until("job done", || m.state(&id) == Some(JobState::Done));
            let JobResult::Ready(b) = m.result(&id) else {
                panic!("result not ready");
            };
            body = b.to_string();
            m.begin_shutdown();
            m.join();
        }
        // Flip one byte in the (only) artifact on disk.
        let artifacts = dir.join("artifacts");
        let entry = fs::read_dir(&artifacts)
            .expect("artifacts dir")
            .next()
            .expect("one artifact")
            .expect("entry");
        let mut bytes = fs::read(entry.path()).expect("artifact bytes");
        bytes[0] ^= 0x40;
        fs::write(entry.path(), &bytes).expect("corrupt artifact");
        let m = manager(&cfg);
        // The corrupt artifact was moved aside and the job requeued...
        assert!(
            fs::read_dir(dir.join("quarantine"))
                .expect("quarantine dir")
                .next()
                .is_some(),
            "artifact quarantined"
        );
        // ...and determinism recomputes the identical body.
        wait_until("recomputed", || m.state(&id) == Some(JobState::Done));
        let JobResult::Ready(recomputed) = m.result(&id) else {
            panic!("recomputed result not ready");
        };
        assert_eq!(recomputed.as_ref(), body);
        m.begin_shutdown();
        m.join();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_journal_tails_never_panic_and_keep_the_prefix() {
        let dir = tempdir("torn");
        let cfg = config(Some(dir.clone()));
        let id;
        {
            let m = manager(&cfg);
            id = m.submit(spec(40), "alice", 5).expect("submit").id;
            wait_until("job done", || m.state(&id) == Some(JobState::Done));
            m.begin_shutdown();
            m.join();
        }
        // Append a torn half-line, as a crash mid-append would leave.
        let journal = dir.join("jobs.journal");
        let mut text = fs::read_to_string(&journal).expect("journal");
        text.push_str("{\"event\":\"submit\",\"job\":\"012");
        fs::write(&journal, &text).expect("torn journal");
        let m = manager(&cfg);
        assert_eq!(m.state(&id), Some(JobState::Done), "prefix survives");
        m.begin_shutdown();
        m.join();
        // The compacted journal replays clean a second time.
        let m = manager(&cfg);
        assert_eq!(m.state(&id), Some(JobState::Done));
        m.begin_shutdown();
        m.join();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_skips_semantic_garbage_without_panicking() {
        let dir = tempdir("garbage");
        let journal = dir.join("jobs.journal");
        fs::write(
            &journal,
            concat!(
                "{\"no_event\":true}\n",
                "{\"event\":\"start\",\"job\":\"ffffffffffffffff\",\"attempt\":1}\n",
                "{\"event\":\"submit\",\"job\":\"not-the-real-id\",\"spec\":{\"endpoint\":\"table2\",\"trials\":10,\"seed\":1}}\n",
                "{\"event\":\"submit\",\"job\":\"aaaaaaaaaaaaaaaa\",\"spec\":{\"endpoint\":\"nonsense\"}}\n",
                "{\"event\":\"wat\",\"job\":\"bbbbbbbbbbbbbbbb\"}\n",
            ),
        )
        .expect("journal");
        let m = manager(&ServeConfig {
            job_workers: 0,
            ..config(Some(dir.clone()))
        });
        // Every line was diagnosed and dropped; nothing revived, no panic.
        assert_eq!(m.depth(), 0);
        m.begin_shutdown();
        m.join();
        let _ = fs::remove_dir_all(&dir);
    }
}
