//! The service itself: acceptor, bounded queue, worker pool, cache.
//!
//! Invariants the tests pin down:
//!
//! * **The acceptor never blocks on a client.** It accepts, stamps socket
//!   timeouts, and either enqueues the connection or answers `503` with
//!   `Retry-After` on a full queue. Request parsing happens in workers.
//! * **Cache hits are byte-identical to cold runs.** The cache stores the
//!   exact response body keyed by the spec's content address; only the
//!   `X-Cache` header distinguishes a hit from a miss.
//! * **Graceful shutdown drains in-flight jobs.** [`Server::shutdown`]
//!   stops the acceptor, closes the queue, answers anything still queued
//!   with `503`, and waits for running jobs to finish — cancelling them
//!   through the batch engine's [`CancelToken`] only if the drain
//!   exceeds its timeout (a cancelled job answers `503`, never a partial
//!   result).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tauhls_core::jobspec::{Endpoint, JobError, JobSpec};
use tauhls_core::{partition, StageCache};
use tauhls_dfg::{canonical_wire, parse_wire_dfg, wire_hash};
use tauhls_json::{Json, JsonRef};
use tauhls_sim::{BatchRunner, CancelToken};

use crate::cache::Cache;
use crate::client;
use crate::cluster::{Cluster, Coordinator, Role, WorkerRegistry};
use crate::config::ServeConfig;
use crate::http::{read_request, write_response, HttpError, Request};
use crate::jobs::{Executor, JobManager, JobResult, JobState, SubmitError};
use crate::metrics::Metrics;
use crate::queue::Queue;
use crate::stagewarm::StageWarmer;

/// How often the acceptor polls between accepts and stop checks.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

struct Shared {
    config: ServeConfig,
    queue: Queue<TcpStream>,
    cache: Arc<Cache>,
    stages: Arc<StageCache>,
    metrics: Arc<Metrics>,
    cancel: CancelToken,
    stop: AtomicBool,
    jobs: JobManager,
    warmer: Arc<StageWarmer>,
    cluster: Arc<Cluster>,
}

/// A running service instance.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    cluster_threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr` and starts the acceptor and worker threads.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let cache = Arc::new(Cache::new(config.cache_bytes));
        let stages = Arc::new(StageCache::new(config.stage_cache_entries));
        let metrics = Arc::new(Metrics::new());
        let cancel = CancelToken::new();
        metrics.log_event(&format!("server starting on {addr}"));
        // Warm the stage cache from the persisted spec journal before the
        // job manager replays its own journal, so recovered synthesis
        // jobs immediately land on warm stages.
        let warmer = Arc::new(StageWarmer::open(config.data_dir.as_deref()));
        if config.data_dir.is_some() {
            let warm = warmer.warm(&stages);
            metrics.log_event(&format!(
                "stage cache warmed: {} specs replayed, {} journal lines dropped",
                warm.replayed, warm.dropped
            ));
        }
        let cluster = build_cluster(&config, addr, &metrics)?;
        let jobs = match &cluster.coordinator {
            Some(_) => {
                // Coordinator mode: async jobs execute through the cluster
                // dispatcher. The closure falls back to a local run only if
                // the coordinator somehow vanished (it cannot).
                let cluster = Arc::clone(&cluster);
                let executor: Executor =
                    Arc::new(
                        move |spec, runner, stages| match cluster.coordinator.as_ref() {
                            Some(c) => c.execute(spec, runner, stages),
                            None => spec.run_with(runner, stages),
                        },
                    );
                JobManager::start_with(
                    &config,
                    Arc::clone(&metrics),
                    Arc::clone(&cache),
                    Arc::clone(&stages),
                    Arc::clone(&warmer),
                    cancel.clone(),
                    executor,
                )?
            }
            None => JobManager::start(
                &config,
                Arc::clone(&metrics),
                Arc::clone(&cache),
                Arc::clone(&stages),
                Arc::clone(&warmer),
                cancel.clone(),
            )?,
        };
        if let Some(coordinator) = &cluster.coordinator {
            // Wired after construction: the coordinator must exist before
            // the job manager (to build its executor), but journals through
            // the manager's sink.
            coordinator.set_journal(jobs.journal_sink());
        }
        let shared = Arc::new(Shared {
            queue: Queue::new(config.queue_capacity),
            cache,
            stages,
            metrics,
            cancel,
            stop: AtomicBool::new(false),
            jobs,
            warmer,
            cluster,
            config,
        });
        let workers = (0..shared.config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tauhls-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tauhls-serve-acceptor".to_string())
                .spawn(move || acceptor_loop(&listener, &shared))?
        };
        let cluster_threads = spawn_cluster_threads(&shared, addr)?;
        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
            cluster_threads,
        })
    }

    /// The bound address (resolves `:0` to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Gracefully shuts down: stop accepting, flush the queue backlog
    /// with `503`, wait for in-flight jobs (cancelling them only after
    /// the drain timeout), and join every thread.
    pub fn shutdown(mut self) {
        self.shared.metrics.log_event("shutdown requested");
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        self.shared.queue.close();
        // Whatever is still queued was never started; in the `workers: 0`
        // diagnostic mode this is the only way those clients get answered.
        for stream in self.shared.queue.drain() {
            bounce(stream, &self.shared, "server shutting down");
        }
        // Async jobs stop being scheduled; whatever is journalled as
        // queued or retrying requeues on the next start. Running attempts
        // get the rest of the drain window before the watchdog cancels
        // them (journalling a requeue).
        self.shared.jobs.begin_shutdown();
        let drained = Arc::new(AtomicBool::new(false));
        let watchdog = {
            let drained = Arc::clone(&drained);
            let cancel = self.shared.cancel.clone();
            let timeout = self.shared.config.drain_timeout;
            std::thread::spawn(move || {
                let start = Instant::now();
                while !drained.load(Ordering::SeqCst) {
                    if start.elapsed() >= timeout {
                        cancel.cancel();
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            })
        };
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.shared.jobs.join();
        drained.store(true, Ordering::SeqCst);
        let _ = watchdog.join();
        for handle in self.cluster_threads.drain(..) {
            let _ = handle.join();
        }
        self.shared.metrics.log_event("shutdown complete");
    }
}

/// Derives this server's cluster role from its configuration, validates
/// the workers file (coordinator mode), and records the bound address as
/// the self-address registrations must not equal.
fn build_cluster(
    config: &ServeConfig,
    addr: SocketAddr,
    metrics: &Arc<Metrics>,
) -> std::io::Result<Arc<Cluster>> {
    let coordinates = config.coordinator || config.workers_file.is_some();
    if coordinates && config.worker_of.is_some() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "a server cannot be both a coordinator and a worker \
             (drop either --worker-of or --coordinator/--workers-file)",
        ));
    }
    let registry = Arc::new(WorkerRegistry::new());
    registry.set_self_addr(&addr.to_string());
    let role = if coordinates {
        if let Some(path) = &config.workers_file {
            let text = std::fs::read_to_string(path)?;
            let doc = Json::parse(&text).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("{}: not valid JSON: {e}", path.display()),
                )
            })?;
            let entries = doc.as_array().ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("{}: expected a JSON array of \"host:port\"", path.display()),
                )
            })?;
            for entry in entries {
                let worker = entry.as_str().ok_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("{}: workers must be strings", path.display()),
                    )
                })?;
                registry.register(worker).map_err(|e| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("{}: {worker:?}: {e}", path.display()),
                    )
                })?;
            }
            metrics.log_event(&format!(
                "cluster: coordinator with {} configured workers",
                entries.len()
            ));
        } else {
            metrics.log_event("cluster: coordinator awaiting worker registrations");
        }
        Role::Coordinator
    } else if let Some(coordinator) = &config.worker_of {
        metrics.log_event(&format!("cluster: worker of {coordinator}"));
        Role::Worker
    } else {
        Role::Single
    };
    let coordinator = (role == Role::Coordinator)
        .then(|| Coordinator::new(Arc::clone(&registry), Arc::clone(metrics), config));
    Ok(Arc::new(Cluster {
        role,
        registry,
        coordinator,
    }))
}

/// Sleeps `total` in short slices so the thread notices `stop` quickly.
fn sliced_sleep(stop: &AtomicBool, total: Duration) {
    let deadline = Instant::now() + total;
    while !stop.load(Ordering::SeqCst) {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return;
        }
        std::thread::sleep(left.min(Duration::from_millis(25)));
    }
}

/// Starts the role's background loop: coordinators probe every
/// registered worker's `/healthz` each `heartbeat_interval` (a probe
/// success revives a dead worker, a failure counts toward
/// [`crate::cluster::FAILURE_LIMIT`]); workers register with their
/// coordinator and keep heartbeating it (the heartbeat re-registers
/// after a coordinator restart). Single-role servers start nothing.
fn spawn_cluster_threads(
    shared: &Arc<Shared>,
    addr: SocketAddr,
) -> std::io::Result<Vec<JoinHandle<()>>> {
    let mut threads = Vec::new();
    match shared.cluster.role {
        Role::Single => {}
        Role::Coordinator => {
            let shared = Arc::clone(shared);
            threads.push(
                std::thread::Builder::new()
                    .name("tauhls-serve-cluster-probe".to_string())
                    .spawn(move || {
                        while !shared.stop.load(Ordering::SeqCst) {
                            sliced_sleep(&shared.stop, shared.config.heartbeat_interval);
                            if shared.stop.load(Ordering::SeqCst) {
                                return;
                            }
                            for worker in shared.cluster.registry.all_workers() {
                                let probe = client::request_timeouts(
                                    &worker,
                                    "GET",
                                    "/healthz",
                                    &[],
                                    None,
                                    shared.config.heartbeat_interval,
                                    shared.config.heartbeat_interval,
                                );
                                let was_live =
                                    shared.cluster.registry.live_workers().contains(&worker);
                                match probe {
                                    Ok(r) if r.status == 200 => {
                                        let _ = shared.cluster.registry.heartbeat(&worker);
                                        if !was_live {
                                            shared.metrics.log_event(&format!(
                                                "cluster: worker {worker} revived by probe"
                                            ));
                                        }
                                    }
                                    _ => {
                                        shared.cluster.registry.mark_failure(&worker);
                                        if was_live
                                            && !shared
                                                .cluster
                                                .registry
                                                .live_workers()
                                                .contains(&worker)
                                        {
                                            shared.metrics.log_event(&format!(
                                                "cluster: worker {worker} marked dead"
                                            ));
                                        }
                                    }
                                }
                            }
                        }
                    })?,
            );
        }
        Role::Worker => {
            let shared = Arc::clone(shared);
            // Advertise the actually-bound address — the configured one
            // may be `host:0`.
            let self_addr = addr.to_string();
            threads.push(
                std::thread::Builder::new()
                    .name("tauhls-serve-cluster-heartbeat".to_string())
                    .spawn(move || worker_heartbeat_loop(&shared, &self_addr))?,
            );
        }
    }
    Ok(threads)
}

/// The worker's side of the cluster: one registration attempt at
/// startup, then a heartbeat every `heartbeat_interval`. Errors are
/// tolerated (the coordinator may simply not be up yet — heartbeats
/// auto-register on its side), but transitions are logged.
fn worker_heartbeat_loop(shared: &Shared, self_addr: &str) {
    let Some(coordinator) = shared.config.worker_of.clone() else {
        return;
    };
    let mut body = Json::object([("addr", Json::from(self_addr))]).to_compact();
    body.push('\n');
    let send = |path: &str| {
        client::request_timeouts(
            &coordinator,
            "POST",
            path,
            &[],
            Some(&body),
            shared.config.heartbeat_interval,
            shared.config.heartbeat_interval,
        )
    };
    let mut reachable = match send("/v1/cluster/register") {
        Ok(r) if r.status == 200 => {
            shared
                .metrics
                .log_event(&format!("cluster: registered with {coordinator}"));
            true
        }
        // 400 covers "already registered" after a worker restart; the
        // heartbeat below keeps the entry fresh either way.
        Ok(_) => true,
        Err(_) => false,
    };
    while !shared.stop.load(Ordering::SeqCst) {
        sliced_sleep(&shared.stop, shared.config.heartbeat_interval);
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let ok = matches!(send("/v1/cluster/heartbeat"), Ok(r) if r.status == 200);
        if ok != reachable {
            reachable = ok;
            shared.metrics.log_event(&format!(
                "cluster: coordinator {coordinator} {}",
                if ok { "reachable" } else { "unreachable" }
            ));
        }
    }
}

fn acceptor_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Accepted sockets must not inherit the listener's
                // non-blocking mode; workers use plain timed I/O.
                let ready = stream
                    .set_nonblocking(false)
                    .and_then(|()| stream.set_read_timeout(Some(shared.config.read_timeout)))
                    .and_then(|()| stream.set_write_timeout(Some(shared.config.write_timeout)));
                if ready.is_err() {
                    continue; // peer already gone; nothing to answer
                }
                if let Err(rejected) = shared.queue.try_push(stream) {
                    // Backpressure: answer right here. The write is a few
                    // hundred bytes into a fresh socket buffer and carries
                    // a write timeout, so the acceptor cannot hang.
                    bounce(rejected, shared, "job queue is full");
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(mut stream) = shared.queue.pop() {
        shared.metrics.add_inflight(1);
        let outcome = catch_unwind(AssertUnwindSafe(|| handle_connection(shared, &mut stream)));
        if outcome.is_err() {
            shared.metrics.count_panic();
            let _ = respond_json(
                &mut stream,
                &shared.metrics,
                500,
                &[],
                &error_body("internal error"),
            );
        }
        shared.metrics.add_inflight(-1);
    }
}

/// Answers a connection whose request was never read with a `503`,
/// carrying a `Retry-After` derived from the current queue depth and
/// the measured drain rate (never the hard-coded guess it used to be).
///
/// Closing a socket that still holds unread received bytes makes the
/// kernel send RST, which can discard the response in flight — so after
/// writing we half-close our side and briefly sink the client's request
/// bytes until it hangs up (or a short timeout fires).
fn bounce(mut stream: TcpStream, shared: &Shared, message: &str) {
    let hint = shared
        .metrics
        .retry_after_hint(shared.queue.depth(), shared.config.workers)
        .to_string();
    let _ = respond_json(
        &mut stream,
        &shared.metrics,
        503,
        &[("Retry-After", &hint)],
        &error_body(message),
    );
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut sink = [0u8; 4096];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

fn error_body(message: &str) -> String {
    let mut body = Json::object([("error", Json::from(message))]).to_compact();
    body.push('\n');
    body
}

fn respond_json<S: Write>(
    stream: &mut S,
    metrics: &Metrics,
    status: u16,
    extra: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    metrics.count_response(status);
    write_response(stream, status, "application/json", extra, body.as_bytes())
}

/// Reads, routes, and answers one connection. Generic over the stream so
/// the routing table is unit-testable without sockets.
fn handle_connection<S: Read + Write>(shared: &Shared, stream: &mut S) {
    let request = match read_request(stream) {
        Ok(r) => r,
        Err(err) => {
            let (status, msg) = match &err {
                HttpError::BadRequest(m) => (400, m.as_str()),
                HttpError::TooLarge => (413, "request too large"),
                HttpError::Io(_) => (408, "timed out reading request"),
            };
            let _ = respond_json(stream, &shared.metrics, status, &[], &error_body(msg));
            return;
        }
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            shared.metrics.count_request("healthz");
            let mut body = Json::object([
                ("status", Json::from("ok")),
                ("inflight", Json::from(shared.metrics.inflight())),
                ("queue_depth", Json::from(shared.queue.depth())),
            ])
            .to_compact();
            body.push('\n');
            let _ = respond_json(stream, &shared.metrics, 200, &[], &body);
        }
        ("GET", "/metrics") => {
            shared.metrics.count_request("metrics");
            let mut body =
                shared
                    .metrics
                    .render(&shared.cache, &shared.stages, shared.queue.depth());
            body.push_str(&shared.cluster.render_metrics());
            shared.metrics.count_response(200);
            let _ = write_response(
                stream,
                200,
                "text/plain; version=0.0.4",
                &[],
                body.as_bytes(),
            );
        }
        ("GET", "/v1/status") => handle_status(shared, stream),
        ("POST", "/v1/dfg/validate") => handle_dfg_validate(shared, stream, &request.body),
        // `/v1/dfg/explore` is the explorer's spelled-out address; it is
        // the same handler as `POST /v1/explore`.
        ("POST", "/v1/dfg/explore") => {
            handle_job(shared, stream, Endpoint::Explore, &request.body);
        }
        ("POST", "/v1/cluster/partition") => {
            handle_cluster_partition(shared, stream, &request.body);
        }
        ("POST", "/v1/cluster/register") => {
            handle_cluster_membership(shared, stream, &request.body, false);
        }
        ("POST", "/v1/cluster/heartbeat") => {
            handle_cluster_membership(shared, stream, &request.body, true);
        }
        (_, "/v1/cluster/partition" | "/v1/cluster/register" | "/v1/cluster/heartbeat") => {
            let _ = respond_json(
                stream,
                &shared.metrics,
                405,
                &[("Allow", "POST")],
                &error_body("use POST with a JSON body"),
            );
        }
        ("POST", "/v1/jobs") => handle_job_submit(shared, stream, &request),
        ("GET", "/v1/jobs") | ("DELETE", "/v1/jobs") => {
            let _ = respond_json(
                stream,
                &shared.metrics,
                405,
                &[("Allow", "POST")],
                &error_body("use POST with {\"endpoint\":...,\"spec\":{...}}"),
            );
        }
        (method, path) if path.starts_with("/v1/jobs/") => {
            handle_job_entity(shared, stream, method, path);
        }
        ("POST", path) => match path.strip_prefix("/v1/").and_then(Endpoint::parse) {
            Some(endpoint) => handle_job(shared, stream, endpoint, &request.body),
            None => {
                let _ = respond_json(
                    stream,
                    &shared.metrics,
                    404,
                    &[],
                    &error_body("unknown endpoint"),
                );
            }
        },
        ("GET", path)
            if path
                .strip_prefix("/v1/")
                .and_then(Endpoint::parse)
                .is_some() =>
        {
            let _ = respond_json(
                stream,
                &shared.metrics,
                405,
                &[("Allow", "POST")],
                &error_body("use POST with a JSON job spec"),
            );
        }
        (_, "/healthz") | (_, "/metrics") => {
            let _ = respond_json(
                stream,
                &shared.metrics,
                405,
                &[("Allow", "GET")],
                &error_body("use GET"),
            );
        }
        _ => {
            shared.metrics.count_request("other");
            let _ = respond_json(
                stream,
                &shared.metrics,
                404,
                &[],
                &error_body("unknown endpoint"),
            );
        }
    }
}

fn handle_job<S: Read + Write>(
    shared: &Shared,
    stream: &mut S,
    endpoint: Endpoint,
    raw_body: &[u8],
) {
    shared.metrics.count_request(endpoint.as_str());
    let text = match std::str::from_utf8(raw_body) {
        Ok(t) if t.trim().is_empty() => "{}",
        Ok(t) => t,
        Err(_) => {
            let _ = respond_json(
                stream,
                &shared.metrics,
                400,
                &[],
                &error_body("request body is not UTF-8"),
            );
            return;
        }
    };
    // Zero-copy parse: escape-free strings (DFG names, binding modes —
    // the common case) borrow straight from the request buffer instead
    // of allocating copies.
    let parsed = match JsonRef::parse(text) {
        Ok(j) => j,
        Err(e) => {
            let _ = respond_json(
                stream,
                &shared.metrics,
                400,
                &[],
                &error_body(&format!("body is not valid JSON: {e}")),
            );
            return;
        }
    };
    let spec = match JobSpec::from_json_ref(endpoint, &parsed) {
        Ok(s) => s,
        Err(e) => {
            let _ = respond_json(
                stream,
                &shared.metrics,
                400,
                &[],
                &error_body(&e.to_string()),
            );
            return;
        }
    };
    let key = spec.cache_key();
    if let Some(body) = shared.cache.get(&key) {
        let _ = respond_json(stream, &shared.metrics, 200, &[("X-Cache", "hit")], &body);
        return;
    }
    let started = Instant::now();
    let runner = BatchRunner::sized(shared.config.sim_threads).with_cancel(shared.cancel.clone());
    // Coordinator-mode servers shard the work across their workers; the
    // merged body is byte-identical to the local run either way.
    let outcome = match &shared.cluster.coordinator {
        Some(coordinator) => coordinator.execute(&spec, &runner, Some(&shared.stages)),
        None => spec.run_with(&runner, Some(&shared.stages)),
    };
    match outcome {
        Ok((json, records)) => {
            let body: Arc<str> = Arc::from(json.to_pretty());
            shared.metrics.count_trials(spec.trials());
            shared
                .metrics
                .observe_latency(endpoint.as_str(), started.elapsed());
            for record in &records {
                shared.metrics.observe_stage(record);
            }
            shared.cache.insert(key, Arc::clone(&body));
            shared.warmer.record(&spec);
            let _ = respond_json(stream, &shared.metrics, 200, &[("X-Cache", "miss")], &body);
        }
        Err(JobError::Cancelled) => {
            let hint = shared
                .metrics
                .retry_after_hint(shared.queue.depth(), shared.config.workers)
                .to_string();
            let _ = respond_json(
                stream,
                &shared.metrics,
                503,
                &[("Retry-After", &hint)],
                &error_body("job cancelled during shutdown"),
            );
        }
        Err(JobError::Invalid(m)) => {
            let _ = respond_json(
                stream,
                &shared.metrics,
                400,
                &[],
                &error_body(&format!("invalid job spec: {m}")),
            );
        }
        Err(JobError::Failed(m)) => {
            let _ = respond_json(
                stream,
                &shared.metrics,
                500,
                &[],
                &error_body(&format!("simulation failed: {m}")),
            );
        }
    }
}

/// `POST /v1/cluster/partition`: runs one partition of a job on this
/// node — `{"spec": <canonical spec>, "part": K, "of": N}` answers the
/// partial payload [`tauhls_core::partition::run_part`] produces for
/// global unit range `K` of `N`. Every server answers this regardless
/// of role, so any plain `tauhls serve` process is a valid worker.
/// Partials are content-addressed in the response cache under the spec
/// key *plus* the partition coordinates: a requeued partition re-served
/// by the same worker is a byte-identical cache hit.
fn handle_cluster_partition<S: Read + Write>(shared: &Shared, stream: &mut S, raw_body: &[u8]) {
    shared.metrics.count_request("cluster");
    let bad = |stream: &mut S, message: &str| {
        shared.metrics.count_cluster("rejected");
        let _ = respond_json(stream, &shared.metrics, 400, &[], &error_body(message));
    };
    let text = match std::str::from_utf8(raw_body) {
        Ok(t) if !t.trim().is_empty() => t,
        Ok(_) => {
            bad(
                stream,
                "partition body required: {\"spec\":{...},\"part\":K,\"of\":N}",
            );
            return;
        }
        Err(_) => {
            bad(stream, "request body is not UTF-8");
            return;
        }
    };
    let parsed = match Json::parse(text) {
        Ok(j) => j,
        Err(e) => {
            bad(stream, &format!("body is not valid JSON: {e}"));
            return;
        }
    };
    let Some(pairs) = parsed.as_object() else {
        bad(stream, "partition request must be a JSON object");
        return;
    };
    let (mut spec_field, mut part_field, mut of_field) = (None, None, None);
    for (key, value) in pairs {
        match key.as_str() {
            "spec" => spec_field = Some(value),
            "part" => part_field = Some(value),
            "of" => of_field = Some(value),
            other => {
                bad(
                    stream,
                    &format!("unknown field {other:?} (expected spec, part, of)"),
                );
                return;
            }
        }
    }
    let Some(spec_doc) = spec_field else {
        bad(stream, "spec (object) is required");
        return;
    };
    let spec = match JobSpec::from_canonical(spec_doc) {
        Ok(s) => s,
        Err(e) => {
            bad(stream, &e.to_string());
            return;
        }
    };
    let (Some(index), Some(total)) = (
        part_field.and_then(Json::as_u64),
        of_field.and_then(Json::as_u64),
    ) else {
        bad(stream, "part and of (integers) are required");
        return;
    };
    let part = match partition::part_for(&spec, index as usize, total as usize) {
        Ok(p) => p,
        Err(e) => {
            bad(stream, &e.to_string());
            return;
        }
    };
    let key = format!("part:{}/{}:{}", part.index, part.total, spec.cache_key());
    if let Some(body) = shared.cache.get(&key) {
        shared.metrics.count_cluster("served");
        let _ = respond_json(stream, &shared.metrics, 200, &[("X-Cache", "hit")], &body);
        return;
    }
    let started = Instant::now();
    let runner = BatchRunner::sized(shared.config.sim_threads).with_cancel(shared.cancel.clone());
    match partition::run_part(&spec, part, &runner, Some(&shared.stages)) {
        Ok((json, records)) => {
            let mut body = json.to_compact();
            body.push('\n');
            let body: Arc<str> = Arc::from(body);
            shared.metrics.count_cluster("served");
            shared.metrics.observe_latency("cluster", started.elapsed());
            for record in &records {
                shared.metrics.observe_stage(record);
            }
            shared.cache.insert(key, Arc::clone(&body));
            let _ = respond_json(stream, &shared.metrics, 200, &[("X-Cache", "miss")], &body);
        }
        Err(JobError::Cancelled) => {
            let _ = respond_json(
                stream,
                &shared.metrics,
                503,
                &[("Retry-After", "1")],
                &error_body("partition cancelled during shutdown"),
            );
        }
        Err(JobError::Invalid(m)) => bad(stream, &format!("invalid partition: {m}")),
        Err(JobError::Failed(m)) => {
            let _ = respond_json(
                stream,
                &shared.metrics,
                500,
                &[],
                &error_body(&format!("partition failed: {m}")),
            );
        }
    }
}

/// `POST /v1/cluster/register` and `POST /v1/cluster/heartbeat`:
/// membership, `{"addr": "host:port"}`. Registration is strict —
/// malformed, duplicate, and self-referential addresses each answer
/// `400` with a distinct diagnostic. A heartbeat refreshes liveness and
/// auto-registers an unknown worker (the re-join path after a
/// coordinator restart), but rejects the same malformed addresses.
fn handle_cluster_membership<S: Read + Write>(
    shared: &Shared,
    stream: &mut S,
    raw_body: &[u8],
    heartbeat: bool,
) {
    shared.metrics.count_request("cluster");
    let bad = |stream: &mut S, message: &str| {
        shared.metrics.count_cluster("rejected");
        let _ = respond_json(stream, &shared.metrics, 400, &[], &error_body(message));
    };
    let text = match std::str::from_utf8(raw_body) {
        Ok(t) if !t.trim().is_empty() => t,
        Ok(_) => {
            bad(stream, "body required: {\"addr\":\"host:port\"}");
            return;
        }
        Err(_) => {
            bad(stream, "request body is not UTF-8");
            return;
        }
    };
    // Strict parse with byte-offset diagnostics, same as the job
    // endpoints: a malformed worker announcement is answered with where
    // it broke, not silently tolerated.
    let parsed = match Json::parse(text) {
        Ok(j) => j,
        Err(e) => {
            bad(stream, &format!("body is not valid JSON: {e}"));
            return;
        }
    };
    let Some(pairs) = parsed.as_object() else {
        bad(stream, "membership request must be a JSON object");
        return;
    };
    let mut addr_field = None;
    for (key, value) in pairs {
        match key.as_str() {
            "addr" => addr_field = value.as_str(),
            other => {
                bad(stream, &format!("unknown field {other:?} (expected addr)"));
                return;
            }
        }
    }
    let Some(addr) = addr_field else {
        bad(stream, "addr (string) is required");
        return;
    };
    let result = if heartbeat {
        shared.cluster.registry.heartbeat(addr)
    } else {
        shared.cluster.registry.register(addr)
    };
    match result {
        Ok(()) => {
            if !heartbeat {
                shared
                    .metrics
                    .log_event(&format!("cluster: worker {addr} registered"));
            }
            let mut body = Json::object([
                ("ok", Json::from(true)),
                ("addr", Json::from(addr)),
                (
                    "workers",
                    Json::from(shared.cluster.registry.all_workers().len()),
                ),
            ])
            .to_compact();
            body.push('\n');
            let _ = respond_json(stream, &shared.metrics, 200, &[], &body);
        }
        Err(e) => bad(stream, &e.to_string()),
    }
}

/// `GET /v1/status`: one compact JSON snapshot of the live service —
/// uptime, queue/inflight gauges, the job table by lifecycle state,
/// both cache populations, and the most recent operational events.
/// Unlike `/metrics` this is meant for humans and scripts (`jq`), not
/// scrapers, so it answers `application/json` and nests.
fn handle_status<S: Read + Write>(shared: &Shared, stream: &mut S) {
    shared.metrics.count_request("status");
    let jobs = Json::object(
        shared
            .jobs
            .state_counts()
            .into_iter()
            .map(|(state, n)| (state, Json::from(n)))
            .collect::<Vec<_>>(),
    );
    let caches = Json::object([
        (
            "response",
            Json::object([
                ("entries", Json::from(shared.cache.entries())),
                ("bytes", Json::from(shared.cache.bytes())),
                ("hits", Json::from(shared.cache.hit_count())),
                ("misses", Json::from(shared.cache.miss_count())),
                ("evictions", Json::from(shared.cache.eviction_count())),
            ]),
        ),
        (
            "stages",
            Json::object([
                ("entries", Json::from(shared.stages.entries())),
                ("hits", Json::from(shared.stages.hit_count())),
                ("misses", Json::from(shared.stages.miss_count())),
            ]),
        ),
    ]);
    let events = Json::Array(
        shared
            .metrics
            .events()
            .into_iter()
            .map(|event| {
                Json::object([
                    ("seq", Json::from(event.seq)),
                    ("uptime_seconds", Json::from(event.uptime_seconds)),
                    ("message", Json::from(event.message)),
                ])
            })
            .collect(),
    );
    let mut body = Json::object([
        ("status", Json::from("ok")),
        (
            "uptime_seconds",
            Json::from(shared.metrics.uptime_seconds()),
        ),
        ("inflight", Json::from(shared.metrics.inflight())),
        ("queue_depth", Json::from(shared.queue.depth())),
        ("job_queue_depth", Json::from(shared.jobs.depth())),
        ("jobs", jobs),
        ("caches", caches),
        ("cluster", shared.cluster.status_json(&shared.metrics)),
        ("events_total", Json::from(shared.metrics.event_count())),
        ("events", events),
    ])
    .to_pretty();
    body.push('\n');
    let _ = respond_json(stream, &shared.metrics, 200, &[], &body);
}

/// `POST /v1/dfg/validate`: the request body *is* a DFG wire document.
/// A valid graph answers its summary, content hash, and canonical
/// rendering; an invalid one answers `400` with the parser's
/// byte-offset diagnostic — the same diagnostic an inline `"dfg"`
/// object would produce on any job endpoint, so clients can lint a
/// graph before submitting work against it.
fn handle_dfg_validate<S: Read + Write>(shared: &Shared, stream: &mut S, raw_body: &[u8]) {
    shared.metrics.count_request("dfg_validate");
    let invalid = |stream: &mut S, message: &str| {
        let mut body =
            Json::object([("ok", Json::from(false)), ("error", Json::from(message))]).to_compact();
        body.push('\n');
        let _ = respond_json(stream, &shared.metrics, 400, &[], &body);
    };
    let text = match std::str::from_utf8(raw_body) {
        Ok(t) if !t.trim().is_empty() => t,
        Ok(_) => {
            invalid(stream, "request body must be a DFG wire document");
            return;
        }
        Err(_) => {
            invalid(stream, "request body is not UTF-8");
            return;
        }
    };
    match parse_wire_dfg(text) {
        Ok(dfg) => {
            let canonical = canonical_wire(&dfg);
            let hash = format!("{:016x}", wire_hash(&canonical));
            let canonical_doc =
                Json::parse(&canonical).unwrap_or_else(|_| Json::from(canonical.as_str()));
            let mut body = Json::object([
                ("ok", Json::from(true)),
                ("name", Json::from(dfg.name())),
                ("ops", Json::from(dfg.num_ops())),
                ("inputs", Json::from(dfg.input_names().len())),
                ("outputs", Json::from(dfg.outputs().len())),
                ("hash", Json::from(hash)),
                ("canonical", canonical_doc),
            ])
            .to_pretty();
            body.push('\n');
            let _ = respond_json(stream, &shared.metrics, 200, &[], &body);
        }
        Err(e) => invalid(stream, &e.to_string()),
    }
}

/// `POST /v1/jobs`: validates `{"endpoint":..., "spec":{...},
/// "priority":N}` strictly, reads client identity from `X-Client`, and
/// submits through the job manager's admission control.
fn handle_job_submit<S: Read + Write>(shared: &Shared, stream: &mut S, request: &Request) {
    shared.metrics.count_request("jobs");
    let bad = |stream: &mut S, message: &str| {
        let _ = respond_json(stream, &shared.metrics, 400, &[], &error_body(message));
    };
    let text = match std::str::from_utf8(&request.body) {
        Ok(t) if !t.trim().is_empty() => t,
        Ok(_) => {
            bad(
                stream,
                "submission body required: {\"endpoint\":...,\"spec\":{...}}",
            );
            return;
        }
        Err(_) => {
            bad(stream, "request body is not UTF-8");
            return;
        }
    };
    // Zero-copy: the spec's strings borrow from the request buffer.
    let parsed = match JsonRef::parse(text) {
        Ok(j) => j,
        Err(e) => {
            bad(stream, &format!("body is not valid JSON: {e}"));
            return;
        }
    };
    let Some(pairs) = parsed.as_object() else {
        bad(stream, "submission must be a JSON object");
        return;
    };
    let (mut endpoint_field, mut spec_field, mut priority_field) = (None, None, None);
    for (key, value) in pairs {
        match key.as_ref() {
            "endpoint" => endpoint_field = Some(value),
            "spec" => spec_field = Some(value),
            "priority" => priority_field = Some(value),
            other => {
                bad(
                    stream,
                    &format!("unknown field {other:?} (expected endpoint, spec, priority)"),
                );
                return;
            }
        }
    }
    let Some(endpoint_name) = endpoint_field.and_then(JsonRef::as_str) else {
        bad(stream, "endpoint (string) is required");
        return;
    };
    let Some(endpoint) = Endpoint::parse(endpoint_name) else {
        bad(stream, &format!("unknown endpoint {endpoint_name:?}"));
        return;
    };
    let empty_spec = JsonRef::Object(Vec::new());
    let spec = match JobSpec::from_json_ref(endpoint, spec_field.unwrap_or(&empty_spec)) {
        Ok(s) => s,
        Err(e) => {
            bad(stream, &e.to_string());
            return;
        }
    };
    // Priority 0 runs soonest, 9 last; the body field overrides the
    // X-Priority header; default 5.
    let priority = match priority_field {
        Some(value) => match value.as_u64().filter(|p| *p <= 9) {
            Some(p) => p as u8,
            None => {
                bad(stream, "priority must be an integer 0..=9");
                return;
            }
        },
        None => match request.header("x-priority") {
            Some(h) => match h.parse::<u8>().ok().filter(|p| *p <= 9) {
                Some(p) => p,
                None => {
                    bad(stream, "x-priority must be an integer 0..=9");
                    return;
                }
            },
            None => 5,
        },
    };
    let client = request.header("x-client").unwrap_or("anonymous");
    match shared.jobs.submit(spec, client, priority) {
        Ok(outcome) => {
            let status = if outcome.state == JobState::Done {
                200
            } else {
                202
            };
            let body = shared
                .jobs
                .status(&outcome.id)
                .unwrap_or_else(|| error_body("job state unavailable"));
            let location = format!("/v1/jobs/{}", outcome.id);
            let _ = respond_json(
                stream,
                &shared.metrics,
                status,
                &[("Location", &location)],
                &body,
            );
        }
        Err(SubmitError::RateLimited(secs)) => {
            let secs = secs.to_string();
            let _ = respond_json(
                stream,
                &shared.metrics,
                429,
                &[("Retry-After", &secs)],
                &error_body("submission rate limit exceeded"),
            );
        }
        Err(SubmitError::QuotaExceeded(secs)) => {
            let secs = secs.to_string();
            let _ = respond_json(
                stream,
                &shared.metrics,
                429,
                &[("Retry-After", &secs)],
                &error_body("pending-job quota reached; wait for jobs to finish"),
            );
        }
        Err(SubmitError::QueueFull) => {
            let hint = shared
                .metrics
                .retry_after_hint(shared.jobs.depth(), shared.config.job_workers)
                .to_string();
            let _ = respond_json(
                stream,
                &shared.metrics,
                503,
                &[("Retry-After", &hint)],
                &error_body("job queue is full"),
            );
        }
    }
}

/// `GET /v1/jobs/<id>` (status), `GET /v1/jobs/<id>/result` (the
/// durable body once done), `DELETE /v1/jobs/<id>` (cancel).
fn handle_job_entity<S: Read + Write>(shared: &Shared, stream: &mut S, method: &str, path: &str) {
    shared.metrics.count_request("jobs");
    let rest = path.strip_prefix("/v1/jobs/").unwrap_or("");
    let (id, want_result) = match rest.strip_suffix("/result") {
        Some(id) => (id, true),
        None => (rest, false),
    };
    if id.is_empty() || id.contains('/') {
        let _ = respond_json(
            stream,
            &shared.metrics,
            404,
            &[],
            &error_body("unknown endpoint"),
        );
        return;
    }
    match (method, want_result) {
        ("GET", false) => match shared.jobs.status(id) {
            Some(body) => {
                let _ = respond_json(stream, &shared.metrics, 200, &[], &body);
            }
            None => {
                let _ = respond_json(
                    stream,
                    &shared.metrics,
                    404,
                    &[],
                    &error_body("unknown job"),
                );
            }
        },
        ("GET", true) => match shared.jobs.result(id) {
            JobResult::Unknown => {
                let _ = respond_json(
                    stream,
                    &shared.metrics,
                    404,
                    &[],
                    &error_body("unknown job"),
                );
            }
            JobResult::Ready(body) => {
                let _ = respond_json(
                    stream,
                    &shared.metrics,
                    200,
                    &[("X-Job-State", "done")],
                    &body,
                );
            }
            JobResult::Pending(state) => {
                let body = shared
                    .jobs
                    .status(id)
                    .unwrap_or_else(|| error_body("job state unavailable"));
                let _ = respond_json(
                    stream,
                    &shared.metrics,
                    202,
                    &[("Retry-After", "1"), ("X-Job-State", state)],
                    &body,
                );
            }
            JobResult::Failed(error) => {
                let _ = respond_json(
                    stream,
                    &shared.metrics,
                    500,
                    &[],
                    &error_body(&format!("job failed: {error}")),
                );
            }
            JobResult::Cancelled => {
                let _ = respond_json(
                    stream,
                    &shared.metrics,
                    409,
                    &[],
                    &error_body("job was cancelled"),
                );
            }
        },
        ("DELETE", false) => match shared.jobs.cancel(id) {
            Some(body) => {
                let _ = respond_json(stream, &shared.metrics, 200, &[], &body);
            }
            None => {
                let _ = respond_json(
                    stream,
                    &shared.metrics,
                    404,
                    &[],
                    &error_body("unknown job"),
                );
            }
        },
        _ => {
            let _ = respond_json(
                stream,
                &shared.metrics,
                405,
                &[("Allow", "GET, DELETE")],
                &error_body("use GET for status/result, DELETE to cancel"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An in-memory duplex: reads from a canned request, captures writes.
    struct FakeStream {
        input: std::io::Cursor<Vec<u8>>,
        output: Vec<u8>,
    }

    impl FakeStream {
        fn new(raw: &str) -> Self {
            FakeStream {
                input: std::io::Cursor::new(raw.as_bytes().to_vec()),
                output: Vec::new(),
            }
        }

        fn response(&self) -> String {
            String::from_utf8(self.output.clone()).expect("UTF-8 response")
        }
    }

    impl Read for FakeStream {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.input.read(buf)
        }
    }

    impl Write for FakeStream {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.output.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn shared_with(config: ServeConfig) -> Shared {
        let cache = Arc::new(Cache::new(1 << 20));
        let stages = Arc::new(StageCache::new(64));
        let metrics = Arc::new(Metrics::new());
        let cancel = CancelToken::new();
        let warmer = Arc::new(StageWarmer::open(None));
        let jobs = JobManager::start(
            &config,
            Arc::clone(&metrics),
            Arc::clone(&cache),
            Arc::clone(&stages),
            Arc::clone(&warmer),
            cancel.clone(),
        )
        .expect("job manager");
        let registry = Arc::new(WorkerRegistry::new());
        registry.set_self_addr("127.0.0.1:7203");
        Shared {
            config,
            queue: Queue::new(4),
            cache,
            stages,
            metrics,
            cancel,
            stop: AtomicBool::new(false),
            jobs,
            warmer,
            cluster: Arc::new(Cluster {
                role: Role::Single,
                registry,
                coordinator: None,
            }),
        }
    }

    fn shared() -> Shared {
        shared_with(ServeConfig {
            sim_threads: Some(1),
            job_workers: 1,
            job_backoff_base: std::time::Duration::from_millis(5),
            ..ServeConfig::default()
        })
    }

    fn drive(shared: &Shared, raw: &str) -> String {
        let mut stream = FakeStream::new(raw);
        handle_connection(shared, &mut stream);
        stream.response()
    }

    fn post(path: &str, body: &str) -> String {
        format!(
            "POST {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
    }

    #[test]
    fn routes_health_metrics_and_errors() {
        let sh = shared();
        assert!(drive(&sh, "GET /healthz HTTP/1.1\r\n\r\n").contains("\"status\":\"ok\""));
        assert!(drive(&sh, "GET /metrics HTTP/1.1\r\n\r\n")
            .contains("tauhls_serve_requests_total{endpoint=\"healthz\"} 1"));
        assert!(drive(&sh, "GET /nope HTTP/1.1\r\n\r\n").starts_with("HTTP/1.1 404"));
        assert!(drive(&sh, "DELETE /healthz HTTP/1.1\r\n\r\n").starts_with("HTTP/1.1 405"));
        assert!(drive(&sh, "GET /v1/simulate HTTP/1.1\r\n\r\n").starts_with("HTTP/1.1 405"));
        assert!(drive(&sh, &post("/v1/unknown", "{}")).starts_with("HTTP/1.1 404"));
        assert!(drive(&sh, "garbage\r\n\r\n").starts_with("HTTP/1.1 400"));
    }

    #[test]
    fn job_requests_answer_parse_spec_and_simulation_errors() {
        let sh = shared();
        let bad_json = drive(&sh, &post("/v1/simulate", "{not json"));
        assert!(bad_json.starts_with("HTTP/1.1 400"), "{bad_json}");
        assert!(bad_json.contains("byte "), "offset missing: {bad_json}");
        let bad_spec = drive(&sh, &post("/v1/simulate", r#"{"trials":0}"#));
        assert!(bad_spec.starts_with("HTTP/1.1 400"), "{bad_spec}");
    }

    #[test]
    fn cold_then_hot_bodies_are_byte_identical() {
        let sh = shared();
        let spec = r#"{"dfg":"fir3","trials":30,"p":[0.5],"seed":11}"#;
        let cold = drive(&sh, &post("/v1/simulate", spec));
        let hot = drive(&sh, &post("/v1/simulate", spec));
        assert!(cold.contains("X-Cache: miss"), "{cold}");
        assert!(hot.contains("X-Cache: hit"), "{hot}");
        let body = |r: &str| r.split("\r\n\r\n").nth(1).map(String::from);
        assert_eq!(
            body(&cold).expect("cold body"),
            body(&hot).expect("hot body")
        );
        // Equivalent spelling of the same spec also hits.
        let same = drive(
            &sh,
            &post(
                "/v1/simulate",
                r#"{"seed":11,"p":[0.5],"trials":30,"dfg":"fir3"}"#,
            ),
        );
        assert!(same.contains("X-Cache: hit"), "{same}");
        assert_eq!(body(&cold), body(&same));
    }

    #[test]
    fn synth_requests_share_the_stage_cache_across_encodings() {
        let sh = shared();
        let cold = drive(&sh, &post("/v1/synth", r#"{"dfg":"fir3"}"#));
        assert!(cold.contains("X-Cache: miss"), "{cold}");
        assert!(cold.contains("\"controllers\""), "{cold}");
        assert_eq!(sh.metrics.stage_hit_count("bind"), 0);
        // Different encoding: the response cache misses, but the graph /
        // order / bind / controller stages are served from the stage cache.
        let gray = drive(
            &sh,
            &post("/v1/synth", r#"{"dfg":"fir3","encoding":"gray"}"#),
        );
        assert!(gray.contains("X-Cache: miss"), "{gray}");
        for stage in ["canonicalize", "order", "bind", "controllers"] {
            assert_eq!(sh.metrics.stage_hit_count(stage), 1, "{stage}");
        }
        assert_eq!(sh.metrics.stage_hit_count("logic"), 0);
        // An area request over the same design reuses the whole front too.
        let area = drive(&sh, &post("/v1/area", r#"{"dfg":"fir3","width":32}"#));
        assert!(area.contains("\"system\""), "{area}");
        assert_eq!(sh.metrics.stage_hit_count("bind"), 2);
        let metrics = drive(&sh, "GET /metrics HTTP/1.1\r\n\r\n");
        assert!(
            metrics.contains("tauhls_serve_stage_cache_hits_total{stage=\"bind\"} 2"),
            "{metrics}"
        );
        assert!(
            metrics.contains("tauhls_serve_request_seconds_count{endpoint=\"synth\"} 2"),
            "{metrics}"
        );
    }

    /// A small valid wire document shared by the route tests below.
    const TINY_WIRE: &str = r#"{"nodes":[{"id":"a","op":"input"},{"id":"b","op":"input"},{"id":"s","op":"add"}],"edges":[{"from":"a","to":"s","port":0},{"from":"b","to":"s","port":1}],"outputs":{"y":"s"},"params":{"name":"tiny"}}"#;

    #[test]
    fn status_endpoint_reports_jobs_caches_and_events() {
        let sh = shared();
        sh.metrics.log_event("test event one");
        let status = drive(&sh, "GET /v1/status HTTP/1.1\r\n\r\n");
        assert!(status.starts_with("HTTP/1.1 200"), "{status}");
        for needle in [
            "\"uptime_seconds\"",
            "\"queued\"",
            "\"running\"",
            "\"caches\"",
            "\"stages\"",
            "test event one",
        ] {
            assert!(status.contains(needle), "missing {needle}: {status}");
        }
        assert!(drive(&sh, &post("/v1/status", "{}")).starts_with("HTTP/1.1 404"));
    }

    #[test]
    fn dfg_validate_answers_summary_or_byte_offset_diagnostics() {
        let sh = shared();
        let ok = drive(&sh, &post("/v1/dfg/validate", TINY_WIRE));
        assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
        for needle in ["\"ok\"", "tiny", "\"hash\"", "\"canonical\""] {
            assert!(ok.contains(needle), "missing {needle}: {ok}");
        }
        let bad = drive(
            &sh,
            &post("/v1/dfg/validate", r#"{"nodes":[{"id":"a","op":"bogus"}]}"#),
        );
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
        assert!(bad.contains("byte "), "offset missing: {bad}");
        let empty = drive(&sh, &post("/v1/dfg/validate", ""));
        assert!(empty.starts_with("HTTP/1.1 400"), "{empty}");
    }

    #[test]
    fn inline_dfg_explore_routes_answer_a_frontier() {
        let sh = shared();
        let body =
            format!(r#"{{"dfg":{TINY_WIRE},"max_muls":1,"max_adds":1,"trials":20,"p":[0.5]}}"#);
        let spelled = drive(&sh, &post("/v1/dfg/explore", &body));
        assert!(spelled.starts_with("HTTP/1.1 200"), "{spelled}");
        assert!(spelled.contains("\"frontier\""), "{spelled}");
        assert!(spelled.contains("X-Cache: miss"), "{spelled}");
        // The short spelling is the same handler and therefore the same
        // cache entry: this second request is a byte-identical hit.
        let short = drive(&sh, &post("/v1/explore", &body));
        assert!(short.contains("X-Cache: hit"), "{short}");
    }

    #[test]
    fn async_jobs_submit_poll_result_cancel_round_trip() {
        let sh = shared();
        // Hostile submissions are diagnosed, never panicked on.
        assert!(drive(&sh, &post("/v1/jobs", "{not json")).starts_with("HTTP/1.1 400"));
        assert!(drive(&sh, &post("/v1/jobs", r#"{"bogus":1}"#)).starts_with("HTTP/1.1 400"));
        assert!(drive(&sh, &post("/v1/jobs", r#"{"endpoint":"nope"}"#)).starts_with("HTTP/1.1 400"));
        assert!(drive(
            &sh,
            &post("/v1/jobs", r#"{"endpoint":"simulate","priority":99}"#)
        )
        .starts_with("HTTP/1.1 400"));
        assert!(drive(&sh, "GET /v1/jobs HTTP/1.1\r\n\r\n").starts_with("HTTP/1.1 405"));
        assert!(drive(&sh, "PUT /v1/jobs/abc HTTP/1.1\r\n\r\n").starts_with("HTTP/1.1 405"));
        // Unknown IDs answer 404 on every verb.
        for raw in [
            "GET /v1/jobs/ffffffffffffffff HTTP/1.1\r\n\r\n",
            "GET /v1/jobs/ffffffffffffffff/result HTTP/1.1\r\n\r\n",
            "DELETE /v1/jobs/ffffffffffffffff HTTP/1.1\r\n\r\n",
        ] {
            assert!(drive(&sh, raw).starts_with("HTTP/1.1 404"), "{raw}");
        }
        // Submit, poll to done, fetch the result.
        let spec = r#"{"endpoint":"simulate","spec":{"dfg":"fir3","trials":30,"seed":3}}"#;
        let submit = drive(&sh, &post("/v1/jobs", spec));
        assert!(submit.starts_with("HTTP/1.1 202"), "{submit}");
        let id = submit
            .lines()
            .find_map(|l| l.strip_prefix("Location: /v1/jobs/"))
            .expect("location header")
            .trim()
            .to_string();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        loop {
            let status = drive(&sh, &format!("GET /v1/jobs/{id} HTTP/1.1\r\n\r\n"));
            if status.contains("\"state\":\"done\"") {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "job never finished");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        // An identical resubmission answers 200 done immediately.
        let again = drive(&sh, &post("/v1/jobs", spec));
        assert!(again.starts_with("HTTP/1.1 200"), "{again}");
        let result = drive(&sh, &format!("GET /v1/jobs/{id}/result HTTP/1.1\r\n\r\n"));
        assert!(result.starts_with("HTTP/1.1 200"), "{result}");
        assert!(result.contains("X-Job-State: done"), "{result}");
        // The async result warmed the response cache: the synchronous
        // endpoint serves the byte-identical body as a hit.
        let sync = drive(
            &sh,
            &post("/v1/simulate", r#"{"dfg":"fir3","trials":30,"seed":3}"#),
        );
        assert!(sync.contains("X-Cache: hit"), "{sync}");
        let body = |r: &str| r.split("\r\n\r\n").nth(1).map(String::from);
        assert_eq!(
            body(&result).expect("job body"),
            body(&sync).expect("sync body")
        );
        sh.jobs.begin_shutdown();
        sh.jobs.join();
    }

    #[test]
    fn rate_limited_submissions_answer_429_with_retry_after() {
        let sh = shared_with(ServeConfig {
            sim_threads: Some(1),
            job_workers: 0, // diagnostic: jobs queue but never run
            admission_rate: 0.5,
            admission_burst: 1.0,
            ..ServeConfig::default()
        });
        let submit = |trials: u64, client: &str| {
            let body =
                format!(r#"{{"endpoint":"simulate","spec":{{"dfg":"fir3","trials":{trials}}}}}"#);
            drive(
                &sh,
                &format!(
                    "POST /v1/jobs HTTP/1.1\r\nX-Client: {client}\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                ),
            )
        };
        assert!(submit(10, "alice").starts_with("HTTP/1.1 202"));
        let limited = submit(11, "alice");
        assert!(limited.starts_with("HTTP/1.1 429"), "{limited}");
        let retry_after = limited
            .lines()
            .find_map(|l| l.strip_prefix("Retry-After: "))
            .expect("Retry-After header")
            .trim()
            .parse::<u64>()
            .expect("numeric Retry-After");
        assert!(retry_after >= 1);
        // Another client is admitted while alice is limited.
        assert!(submit(12, "bob").starts_with("HTTP/1.1 202"));
        // Cancelling a queued job is terminal and visible in the result.
        let submit_body = submit(13, "carol");
        let id = submit_body
            .lines()
            .find_map(|l| l.strip_prefix("Location: /v1/jobs/"))
            .expect("location")
            .trim()
            .to_string();
        let cancelled = drive(&sh, &format!("DELETE /v1/jobs/{id} HTTP/1.1\r\n\r\n"));
        assert!(cancelled.contains("\"state\":\"cancelled\""), "{cancelled}");
        let result = drive(&sh, &format!("GET /v1/jobs/{id}/result HTTP/1.1\r\n\r\n"));
        assert!(result.starts_with("HTTP/1.1 409"), "{result}");
        sh.jobs.begin_shutdown();
        sh.jobs.join();
    }

    #[test]
    fn cluster_membership_is_strict_and_status_reports_workers() {
        let sh = shared();
        // Well-formed registrations land in the registry...
        let ok = drive(
            &sh,
            &post("/v1/cluster/register", r#"{"addr":"127.0.0.1:7300"}"#),
        );
        assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
        // ...and each failure mode is a distinct 400: duplicate, the
        // coordinator's own address, a malformed pair, an unknown field,
        // and JSON that does not parse (with its byte offset).
        for body in [
            r#"{"addr":"127.0.0.1:7300"}"#,
            r#"{"addr":"localhost:7203"}"#,
            r#"{"addr":"no-port"}"#,
            r#"{"addr":"x:0","extra":1}"#,
            r#"{"addr":"#,
        ] {
            let r = drive(&sh, &post("/v1/cluster/register", body));
            assert!(r.starts_with("HTTP/1.1 400"), "{body}: {r}");
        }
        assert_eq!(sh.metrics.cluster_count("rejected"), 5);
        // Heartbeats tolerate duplicates but reject the same bad shapes.
        let hb = drive(
            &sh,
            &post("/v1/cluster/heartbeat", r#"{"addr":"127.0.0.1:7300"}"#),
        );
        assert!(hb.starts_with("HTTP/1.1 200"), "{hb}");
        let bad_hb = drive(&sh, &post("/v1/cluster/heartbeat", r#"{"addr":"x:0"}"#));
        assert!(bad_hb.starts_with("HTTP/1.1 400"), "{bad_hb}");
        assert!(drive(&sh, "GET /v1/cluster/register HTTP/1.1\r\n\r\n").starts_with("HTTP/1.1 405"));
        let status = drive(&sh, "GET /v1/status HTTP/1.1\r\n\r\n");
        for needle in [
            "\"cluster\"",
            "\"role\": \"single\"",
            "\"addr\": \"127.0.0.1:7300\"",
            "\"last_heartbeat_seconds_ago\"",
        ] {
            assert!(status.contains(needle), "missing {needle}: {status}");
        }
        let metrics = drive(&sh, "GET /metrics HTTP/1.1\r\n\r\n");
        for needle in [
            "tauhls_serve_cluster_partitions_total{event=\"rejected\"} 6",
            "tauhls_serve_cluster_workers 1",
            "tauhls_serve_cluster_worker_healthy{worker=\"127.0.0.1:7300\"} 1",
        ] {
            assert!(metrics.contains(needle), "missing {needle}: {metrics}");
        }
    }

    #[test]
    fn cluster_partition_endpoint_serves_cached_byte_identical_partials() {
        let sh = shared();
        let spec = JobSpec::from_json_ref(
            Endpoint::Simulate,
            &JsonRef::parse(r#"{"dfg":"fir3","trials":30,"p":[0.3,0.5,0.7],"seed":9}"#)
                .expect("json"),
        )
        .expect("spec");
        let body = Json::object([
            ("spec", spec.canonical()),
            ("part", Json::from(1u64)),
            ("of", Json::from(3u64)),
        ])
        .to_compact();
        let cold = drive(&sh, &post("/v1/cluster/partition", &body));
        assert!(cold.starts_with("HTTP/1.1 200"), "{cold}");
        assert!(cold.contains("X-Cache: miss"), "{cold}");
        assert!(cold.contains("\"part\""), "{cold}");
        let hot = drive(&sh, &post("/v1/cluster/partition", &body));
        assert!(hot.contains("X-Cache: hit"), "{hot}");
        let payload = |r: &str| r.split("\r\n\r\n").nth(1).map(String::from);
        assert_eq!(payload(&cold).expect("cold"), payload(&hot).expect("hot"));
        assert_eq!(sh.metrics.cluster_count("served"), 2);
        // Out-of-range coordinates and unknown fields are 400s.
        let oob = Json::object([
            ("spec", spec.canonical()),
            ("part", Json::from(7u64)),
            ("of", Json::from(3u64)),
        ])
        .to_compact();
        assert!(drive(&sh, &post("/v1/cluster/partition", &oob)).starts_with("HTTP/1.1 400"));
        assert!(drive(&sh, &post("/v1/cluster/partition", r#"{"bogus":1}"#))
            .starts_with("HTTP/1.1 400"));
    }

    #[test]
    fn cancelled_jobs_answer_503_and_do_not_poison_the_cache() {
        let sh = shared();
        sh.cancel.cancel();
        let spec = r#"{"dfg":"fir3","trials":30}"#;
        let r = drive(&sh, &post("/v1/simulate", spec));
        assert!(r.starts_with("HTTP/1.1 503"), "{r}");
        assert!(r.contains("Retry-After: 1"), "{r}");
        assert_eq!(sh.cache.entries(), 0);
    }

    #[test]
    fn cancellation_spares_earlier_cache_entries_but_caches_nothing_new() {
        let sh = shared();
        let spec = r#"{"dfg":"fir3","trials":30}"#;
        // A completed batch is cached as usual...
        let r = drive(&sh, &post("/v1/simulate", spec));
        assert!(r.starts_with("HTTP/1.1 200"), "{r}");
        assert!(r.contains("X-Cache: miss"), "{r}");
        assert_eq!(sh.cache.entries(), 1);
        // ...then shutdown begins: the cached result still serves (the
        // cache lookup precedes the batch run entirely)...
        sh.cancel.cancel();
        let r = drive(&sh, &post("/v1/simulate", spec));
        assert!(r.starts_with("HTTP/1.1 200"), "{r}");
        assert!(r.contains("X-Cache: hit"), "{r}");
        // ...but any batch that actually runs is cancelled mid-flight and
        // must never be cached, even partially.
        let other = r#"{"dfg":"fir5","trials":30}"#;
        let r = drive(&sh, &post("/v1/simulate", other));
        assert!(r.starts_with("HTTP/1.1 503"), "{r}");
        assert_eq!(sh.cache.entries(), 1);
    }
}
