//! The service itself: acceptor, bounded queue, worker pool, cache.
//!
//! Invariants the tests pin down:
//!
//! * **The acceptor never blocks on a client.** It accepts, stamps socket
//!   timeouts, and either enqueues the connection or answers `503` with
//!   `Retry-After` on a full queue. Request parsing happens in workers.
//! * **Cache hits are byte-identical to cold runs.** The cache stores the
//!   exact response body keyed by the spec's content address; only the
//!   `X-Cache` header distinguishes a hit from a miss.
//! * **Graceful shutdown drains in-flight jobs.** [`Server::shutdown`]
//!   stops the acceptor, closes the queue, answers anything still queued
//!   with `503`, and waits for running jobs to finish — cancelling them
//!   through the batch engine's [`CancelToken`] only if the drain
//!   exceeds its timeout (a cancelled job answers `503`, never a partial
//!   result).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tauhls_core::jobspec::{Endpoint, JobError, JobSpec};
use tauhls_core::StageCache;
use tauhls_json::Json;
use tauhls_sim::{BatchRunner, CancelToken};

use crate::cache::Cache;
use crate::config::ServeConfig;
use crate::http::{read_request, write_response, HttpError};
use crate::metrics::Metrics;
use crate::queue::Queue;

/// How often the acceptor polls between accepts and stop checks.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

struct Shared {
    config: ServeConfig,
    queue: Queue<TcpStream>,
    cache: Cache,
    stages: StageCache,
    metrics: Metrics,
    cancel: CancelToken,
    stop: AtomicBool,
}

/// A running service instance.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr` and starts the acceptor and worker threads.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: Queue::new(config.queue_capacity),
            cache: Cache::new(config.cache_bytes),
            stages: StageCache::new(config.stage_cache_entries),
            metrics: Metrics::new(),
            cancel: CancelToken::new(),
            stop: AtomicBool::new(false),
            config,
        });
        let workers = (0..shared.config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tauhls-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tauhls-serve-acceptor".to_string())
                .spawn(move || acceptor_loop(&listener, &shared))?
        };
        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves `:0` to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Gracefully shuts down: stop accepting, flush the queue backlog
    /// with `503`, wait for in-flight jobs (cancelling them only after
    /// the drain timeout), and join every thread.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        self.shared.queue.close();
        // Whatever is still queued was never started; in the `workers: 0`
        // diagnostic mode this is the only way those clients get answered.
        for stream in self.shared.queue.drain() {
            bounce(stream, &self.shared.metrics, "server shutting down");
        }
        let drained = Arc::new(AtomicBool::new(false));
        let watchdog = {
            let drained = Arc::clone(&drained);
            let cancel = self.shared.cancel.clone();
            let timeout = self.shared.config.drain_timeout;
            std::thread::spawn(move || {
                let start = Instant::now();
                while !drained.load(Ordering::SeqCst) {
                    if start.elapsed() >= timeout {
                        cancel.cancel();
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            })
        };
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        drained.store(true, Ordering::SeqCst);
        let _ = watchdog.join();
    }
}

fn acceptor_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Accepted sockets must not inherit the listener's
                // non-blocking mode; workers use plain timed I/O.
                let ready = stream
                    .set_nonblocking(false)
                    .and_then(|()| stream.set_read_timeout(Some(shared.config.read_timeout)))
                    .and_then(|()| stream.set_write_timeout(Some(shared.config.write_timeout)));
                if ready.is_err() {
                    continue; // peer already gone; nothing to answer
                }
                if let Err(rejected) = shared.queue.try_push(stream) {
                    // Backpressure: answer right here. The write is a few
                    // hundred bytes into a fresh socket buffer and carries
                    // a write timeout, so the acceptor cannot hang.
                    bounce(rejected, &shared.metrics, "job queue is full");
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(mut stream) = shared.queue.pop() {
        shared.metrics.add_inflight(1);
        let outcome = catch_unwind(AssertUnwindSafe(|| handle_connection(shared, &mut stream)));
        if outcome.is_err() {
            shared.metrics.count_panic();
            let _ = respond_json(
                &mut stream,
                &shared.metrics,
                500,
                &[],
                &error_body("internal error"),
            );
        }
        shared.metrics.add_inflight(-1);
    }
}

/// Answers a connection whose request was never read with a `503`.
///
/// Closing a socket that still holds unread received bytes makes the
/// kernel send RST, which can discard the response in flight — so after
/// writing we half-close our side and briefly sink the client's request
/// bytes until it hangs up (or a short timeout fires).
fn bounce(mut stream: TcpStream, metrics: &Metrics, message: &str) {
    let _ = respond_json(
        &mut stream,
        metrics,
        503,
        &[("Retry-After", "1")],
        &error_body(message),
    );
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut sink = [0u8; 4096];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

fn error_body(message: &str) -> String {
    let mut body = Json::object([("error", Json::from(message))]).to_compact();
    body.push('\n');
    body
}

fn respond_json<S: Write>(
    stream: &mut S,
    metrics: &Metrics,
    status: u16,
    extra: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    metrics.count_response(status);
    write_response(stream, status, "application/json", extra, body.as_bytes())
}

/// Reads, routes, and answers one connection. Generic over the stream so
/// the routing table is unit-testable without sockets.
fn handle_connection<S: Read + Write>(shared: &Shared, stream: &mut S) {
    let request = match read_request(stream) {
        Ok(r) => r,
        Err(err) => {
            let (status, msg) = match &err {
                HttpError::BadRequest(m) => (400, m.as_str()),
                HttpError::TooLarge => (413, "request too large"),
                HttpError::Io(_) => (408, "timed out reading request"),
            };
            let _ = respond_json(stream, &shared.metrics, status, &[], &error_body(msg));
            return;
        }
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            shared.metrics.count_request("healthz");
            let mut body = Json::object([
                ("status", Json::from("ok")),
                ("inflight", Json::from(shared.metrics.inflight())),
                ("queue_depth", Json::from(shared.queue.depth())),
            ])
            .to_compact();
            body.push('\n');
            let _ = respond_json(stream, &shared.metrics, 200, &[], &body);
        }
        ("GET", "/metrics") => {
            shared.metrics.count_request("metrics");
            let body = shared
                .metrics
                .render(&shared.cache, &shared.stages, shared.queue.depth());
            shared.metrics.count_response(200);
            let _ = write_response(
                stream,
                200,
                "text/plain; version=0.0.4",
                &[],
                body.as_bytes(),
            );
        }
        ("POST", path) => match path.strip_prefix("/v1/").and_then(Endpoint::parse) {
            Some(endpoint) => handle_job(shared, stream, endpoint, &request.body),
            None => {
                let _ = respond_json(
                    stream,
                    &shared.metrics,
                    404,
                    &[],
                    &error_body("unknown endpoint"),
                );
            }
        },
        ("GET", path)
            if path
                .strip_prefix("/v1/")
                .and_then(Endpoint::parse)
                .is_some() =>
        {
            let _ = respond_json(
                stream,
                &shared.metrics,
                405,
                &[("Allow", "POST")],
                &error_body("use POST with a JSON job spec"),
            );
        }
        (_, "/healthz") | (_, "/metrics") => {
            let _ = respond_json(
                stream,
                &shared.metrics,
                405,
                &[("Allow", "GET")],
                &error_body("use GET"),
            );
        }
        _ => {
            shared.metrics.count_request("other");
            let _ = respond_json(
                stream,
                &shared.metrics,
                404,
                &[],
                &error_body("unknown endpoint"),
            );
        }
    }
}

fn handle_job<S: Read + Write>(
    shared: &Shared,
    stream: &mut S,
    endpoint: Endpoint,
    raw_body: &[u8],
) {
    shared.metrics.count_request(endpoint.as_str());
    let text = match std::str::from_utf8(raw_body) {
        Ok(t) if t.trim().is_empty() => "{}",
        Ok(t) => t,
        Err(_) => {
            let _ = respond_json(
                stream,
                &shared.metrics,
                400,
                &[],
                &error_body("request body is not UTF-8"),
            );
            return;
        }
    };
    let parsed = match Json::parse(text) {
        Ok(j) => j,
        Err(e) => {
            let _ = respond_json(
                stream,
                &shared.metrics,
                400,
                &[],
                &error_body(&format!("body is not valid JSON: {e}")),
            );
            return;
        }
    };
    let spec = match JobSpec::from_json(endpoint, &parsed) {
        Ok(s) => s,
        Err(e) => {
            let _ = respond_json(
                stream,
                &shared.metrics,
                400,
                &[],
                &error_body(&e.to_string()),
            );
            return;
        }
    };
    let key = spec.cache_key();
    if let Some(body) = shared.cache.get(&key) {
        let _ = respond_json(stream, &shared.metrics, 200, &[("X-Cache", "hit")], &body);
        return;
    }
    let started = Instant::now();
    let runner = BatchRunner::sized(shared.config.sim_threads).with_cancel(shared.cancel.clone());
    match spec.run_with(&runner, Some(&shared.stages)) {
        Ok((json, records)) => {
            let body: Arc<str> = Arc::from(json.to_pretty());
            shared.metrics.count_trials(spec.trials());
            shared
                .metrics
                .observe_latency(endpoint.as_str(), started.elapsed());
            for record in &records {
                shared.metrics.observe_stage(record);
            }
            shared.cache.insert(key, Arc::clone(&body));
            let _ = respond_json(stream, &shared.metrics, 200, &[("X-Cache", "miss")], &body);
        }
        Err(JobError::Cancelled) => {
            let _ = respond_json(
                stream,
                &shared.metrics,
                503,
                &[("Retry-After", "1")],
                &error_body("job cancelled during shutdown"),
            );
        }
        Err(JobError::Invalid(m)) => {
            let _ = respond_json(
                stream,
                &shared.metrics,
                400,
                &[],
                &error_body(&format!("invalid job spec: {m}")),
            );
        }
        Err(JobError::Failed(m)) => {
            let _ = respond_json(
                stream,
                &shared.metrics,
                500,
                &[],
                &error_body(&format!("simulation failed: {m}")),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An in-memory duplex: reads from a canned request, captures writes.
    struct FakeStream {
        input: std::io::Cursor<Vec<u8>>,
        output: Vec<u8>,
    }

    impl FakeStream {
        fn new(raw: &str) -> Self {
            FakeStream {
                input: std::io::Cursor::new(raw.as_bytes().to_vec()),
                output: Vec::new(),
            }
        }

        fn response(&self) -> String {
            String::from_utf8(self.output.clone()).expect("UTF-8 response")
        }
    }

    impl Read for FakeStream {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.input.read(buf)
        }
    }

    impl Write for FakeStream {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.output.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn shared() -> Shared {
        Shared {
            config: ServeConfig {
                sim_threads: Some(1),
                ..ServeConfig::default()
            },
            queue: Queue::new(4),
            cache: Cache::new(1 << 20),
            stages: StageCache::new(64),
            metrics: Metrics::new(),
            cancel: CancelToken::new(),
            stop: AtomicBool::new(false),
        }
    }

    fn drive(shared: &Shared, raw: &str) -> String {
        let mut stream = FakeStream::new(raw);
        handle_connection(shared, &mut stream);
        stream.response()
    }

    fn post(path: &str, body: &str) -> String {
        format!(
            "POST {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
    }

    #[test]
    fn routes_health_metrics_and_errors() {
        let sh = shared();
        assert!(drive(&sh, "GET /healthz HTTP/1.1\r\n\r\n").contains("\"status\":\"ok\""));
        assert!(drive(&sh, "GET /metrics HTTP/1.1\r\n\r\n")
            .contains("tauhls_serve_requests_total{endpoint=\"healthz\"} 1"));
        assert!(drive(&sh, "GET /nope HTTP/1.1\r\n\r\n").starts_with("HTTP/1.1 404"));
        assert!(drive(&sh, "DELETE /healthz HTTP/1.1\r\n\r\n").starts_with("HTTP/1.1 405"));
        assert!(drive(&sh, "GET /v1/simulate HTTP/1.1\r\n\r\n").starts_with("HTTP/1.1 405"));
        assert!(drive(&sh, &post("/v1/unknown", "{}")).starts_with("HTTP/1.1 404"));
        assert!(drive(&sh, "garbage\r\n\r\n").starts_with("HTTP/1.1 400"));
    }

    #[test]
    fn job_requests_answer_parse_spec_and_simulation_errors() {
        let sh = shared();
        let bad_json = drive(&sh, &post("/v1/simulate", "{not json"));
        assert!(bad_json.starts_with("HTTP/1.1 400"), "{bad_json}");
        assert!(bad_json.contains("byte "), "offset missing: {bad_json}");
        let bad_spec = drive(&sh, &post("/v1/simulate", r#"{"trials":0}"#));
        assert!(bad_spec.starts_with("HTTP/1.1 400"), "{bad_spec}");
    }

    #[test]
    fn cold_then_hot_bodies_are_byte_identical() {
        let sh = shared();
        let spec = r#"{"dfg":"fir3","trials":30,"p":[0.5],"seed":11}"#;
        let cold = drive(&sh, &post("/v1/simulate", spec));
        let hot = drive(&sh, &post("/v1/simulate", spec));
        assert!(cold.contains("X-Cache: miss"), "{cold}");
        assert!(hot.contains("X-Cache: hit"), "{hot}");
        let body = |r: &str| r.split("\r\n\r\n").nth(1).map(String::from);
        assert_eq!(
            body(&cold).expect("cold body"),
            body(&hot).expect("hot body")
        );
        // Equivalent spelling of the same spec also hits.
        let same = drive(
            &sh,
            &post(
                "/v1/simulate",
                r#"{"seed":11,"p":[0.5],"trials":30,"dfg":"fir3"}"#,
            ),
        );
        assert!(same.contains("X-Cache: hit"), "{same}");
        assert_eq!(body(&cold), body(&same));
    }

    #[test]
    fn synth_requests_share_the_stage_cache_across_encodings() {
        let sh = shared();
        let cold = drive(&sh, &post("/v1/synth", r#"{"dfg":"fir3"}"#));
        assert!(cold.contains("X-Cache: miss"), "{cold}");
        assert!(cold.contains("\"controllers\""), "{cold}");
        assert_eq!(sh.metrics.stage_hit_count("bind"), 0);
        // Different encoding: the response cache misses, but the graph /
        // order / bind / controller stages are served from the stage cache.
        let gray = drive(
            &sh,
            &post("/v1/synth", r#"{"dfg":"fir3","encoding":"gray"}"#),
        );
        assert!(gray.contains("X-Cache: miss"), "{gray}");
        for stage in ["canonicalize", "order", "bind", "controllers"] {
            assert_eq!(sh.metrics.stage_hit_count(stage), 1, "{stage}");
        }
        assert_eq!(sh.metrics.stage_hit_count("logic"), 0);
        // An area request over the same design reuses the whole front too.
        let area = drive(&sh, &post("/v1/area", r#"{"dfg":"fir3","width":32}"#));
        assert!(area.contains("\"system\""), "{area}");
        assert_eq!(sh.metrics.stage_hit_count("bind"), 2);
        let metrics = drive(&sh, "GET /metrics HTTP/1.1\r\n\r\n");
        assert!(
            metrics.contains("tauhls_serve_stage_cache_hits_total{stage=\"bind\"} 2"),
            "{metrics}"
        );
        assert!(
            metrics.contains("tauhls_serve_request_seconds_count{endpoint=\"synth\"} 2"),
            "{metrics}"
        );
    }

    #[test]
    fn cancelled_jobs_answer_503_and_do_not_poison_the_cache() {
        let sh = shared();
        sh.cancel.cancel();
        let spec = r#"{"dfg":"fir3","trials":30}"#;
        let r = drive(&sh, &post("/v1/simulate", spec));
        assert!(r.starts_with("HTTP/1.1 503"), "{r}");
        assert!(r.contains("Retry-After: 1"), "{r}");
        assert_eq!(sh.cache.entries(), 0);
    }

    #[test]
    fn cancellation_spares_earlier_cache_entries_but_caches_nothing_new() {
        let sh = shared();
        let spec = r#"{"dfg":"fir3","trials":30}"#;
        // A completed batch is cached as usual...
        let r = drive(&sh, &post("/v1/simulate", spec));
        assert!(r.starts_with("HTTP/1.1 200"), "{r}");
        assert!(r.contains("X-Cache: miss"), "{r}");
        assert_eq!(sh.cache.entries(), 1);
        // ...then shutdown begins: the cached result still serves (the
        // cache lookup precedes the batch run entirely)...
        sh.cancel.cancel();
        let r = drive(&sh, &post("/v1/simulate", spec));
        assert!(r.starts_with("HTTP/1.1 200"), "{r}");
        assert!(r.contains("X-Cache: hit"), "{r}");
        // ...but any batch that actually runs is cancelled mid-flight and
        // must never be cached, even partially.
        let other = r#"{"dfg":"fir5","trials":30}"#;
        let r = drive(&sh, &post("/v1/simulate", other));
        assert!(r.starts_with("HTTP/1.1 503"), "{r}");
        assert_eq!(sh.cache.entries(), 1);
    }
}
