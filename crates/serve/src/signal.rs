//! SIGTERM / SIGINT → a process-wide shutdown flag, with no libc crate.
//!
//! std offers no signal API, so on Unix we declare the C `signal(2)`
//! entry point directly (the only unsafe code in the workspace). The
//! handler does the single async-signal-safe thing possible: store into
//! a static atomic. The serve loop polls [`shutdown_requested`] and runs
//! the orderly drain from normal thread context. On non-Unix targets the
//! installer is a no-op and ctrl-c falls back to default termination.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether SIGTERM/SIGINT (or [`request_shutdown`]) has fired.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Trips the shutdown flag from normal code (tests, embedders).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
// The crate denies `unsafe_code`; this module is the single, audited
// opt-out — one extern declaration and one call into `signal(2)`.
#[allow(unsafe_code)]
mod unix {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    type SigHandler = extern "C" fn(i32);

    extern "C" {
        // `sighandler_t signal(int signum, sighandler_t handler)` from the
        // platform C library, which is always linked.
        fn signal(signum: i32, handler: SigHandler) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe operation in the handler: one store.
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: `signal` is the C standard library function with the
        // declared signature; `on_signal` is an `extern "C" fn(i32)` that
        // performs only an atomic store, which is async-signal-safe.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

/// Installs SIGTERM/SIGINT handlers that trip the shutdown flag
/// (no-op off Unix). Idempotent.
pub fn install_handlers() {
    #[cfg(unix)]
    unix::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_shutdown_trips_the_flag() {
        // Static state: this test is the only writer in the crate's
        // test binary, so the observed transition is deterministic.
        install_handlers();
        request_shutdown();
        assert!(shutdown_requested());
    }
}
