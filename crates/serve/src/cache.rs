//! Sharded, content-addressed LRU response cache.
//!
//! Keys are [`JobSpec::cache_key`](tauhls_core::jobspec::JobSpec::cache_key)
//! strings — the canonical compact rendering of the job spec, seed
//! included — so a hit is guaranteed to carry the byte-identical body a
//! cold run would produce (the batch engine is bit-deterministic in the
//! spec). The key string itself is stored, never a digest, so two
//! distinct specs can never collide into one entry.
//!
//! Sixteen shards, selected by an FNV-1a hash of the key, keep lock
//! contention off the hot path. Each shard tracks recency with a
//! monotonically increasing stamp and evicts the smallest stamp until it
//! is back under its byte budget — O(entries) per eviction, which is
//! fine at the entry counts a response cache holds.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

const NUM_SHARDS: usize = 16;

/// FNV-1a, 64-bit — the shard selector (not the cache key).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[derive(Debug)]
struct Entry {
    body: Arc<str>,
    stamp: u64,
}

#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<String, Entry>,
    bytes: usize,
    clock: u64,
}

impl Shard {
    fn evict_to(&mut self, budget: usize, evictions: &AtomicU64) {
        while self.bytes > budget && !self.entries.is_empty() {
            let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(e) = self.entries.remove(&oldest) {
                self.bytes -= oldest.len() + e.body.len();
                evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// The service-wide response cache.
#[derive(Debug)]
pub struct Cache {
    shards: Vec<Mutex<Shard>>,
    shard_budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Cache {
    /// A cache bounded at roughly `capacity_bytes` of key + body payload
    /// (split evenly across the shards; each shard keeps at least one
    /// entry, so a single oversized response still caches).
    pub fn new(capacity_bytes: usize) -> Self {
        Cache {
            shards: (0..NUM_SHARDS)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            shard_budget: capacity_bytes / NUM_SHARDS,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &str) -> std::sync::MutexGuard<'_, Shard> {
        let idx = (fnv1a(key.as_bytes()) as usize) % NUM_SHARDS;
        self.shards[idx]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up a response body, refreshing its recency. Counts a hit or
    /// a miss.
    pub fn get(&self, key: &str) -> Option<Arc<str>> {
        let mut shard = self.shard(key);
        shard.clock += 1;
        let stamp = shard.clock;
        match shard.entries.get_mut(key) {
            Some(entry) => {
                entry.stamp = stamp;
                let body = Arc::clone(&entry.body);
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(body)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) a response body, evicting least-recently
    /// used entries until the shard is back under budget.
    pub fn insert(&self, key: String, body: Arc<str>) {
        let body_len = body.len();
        let added = key.len() + body_len;
        let mut shard = self.shard(&key);
        shard.clock += 1;
        let stamp = shard.clock;
        if let Some(old) = shard.entries.insert(key, Entry { body, stamp }) {
            // The key's bytes stay accounted; swap only the body's.
            shard.bytes -= old.body.len();
            shard.bytes += body_len;
        } else {
            shard.bytes += added;
        }
        // Leave the entry just inserted (largest stamp) in place even if
        // it alone exceeds the budget: evict_to never empties the map
        // below one entry unless the budget fits.
        let budget = self.shard_budget.max(added);
        shard.evict_to(budget, &self.evictions);
    }

    /// Cache hits since start.
    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses since start.
    pub fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted to stay under the byte budget.
    pub fn eviction_count(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Current payload bytes across all shards.
    pub fn bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).bytes)
            .sum()
    }

    /// Current entry count across all shards.
    pub fn entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .entries
                    .len()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn get_after_insert_hits_and_counts() {
        let c = Cache::new(1 << 20);
        assert!(c.get("k").is_none());
        c.insert("k".to_string(), body("v"));
        assert_eq!(c.get("k").as_deref(), Some("v"));
        assert_eq!((c.hit_count(), c.miss_count()), (1, 1));
        assert_eq!(c.entries(), 1);
        assert_eq!(c.bytes(), 2);
    }

    #[test]
    fn eviction_is_least_recently_used_and_counted() {
        // Single-shard-sized budget: craft keys that land in one shard by
        // brute force, or simpler: tiny global budget so every shard's
        // budget is tiny.
        let c = Cache::new(0); // per-shard budget 0 → keep at most the newest entry
        c.insert("a".to_string(), body("1111"));
        c.insert("a2".to_string(), body("2222"));
        // Each shard holds at most its newest entry; total evictions grow
        // whenever two keys share a shard or an insert follows another.
        c.insert("a".to_string(), body("3333"));
        assert!(c.eviction_count() <= 3);
        assert_eq!(c.get("a").as_deref(), Some("3333"));
    }

    #[test]
    fn recency_refresh_protects_hot_entries() {
        // All keys in one shard is not guaranteed, so test the shard
        // logic directly.
        let mut shard = Shard::default();
        let evictions = AtomicU64::new(0);
        for (i, k) in ["cold", "hot"].iter().enumerate() {
            shard.clock = i as u64 + 1;
            shard.entries.insert(
                (*k).to_string(),
                Entry {
                    body: body("xxxx"),
                    stamp: i as u64 + 1,
                },
            );
            shard.bytes += k.len() + 4;
        }
        // Touch "cold" so "hot" becomes the LRU victim.
        shard.clock += 1;
        let stamp = shard.clock;
        if let Some(e) = shard.entries.get_mut("cold") {
            e.stamp = stamp;
        }
        shard.evict_to(9, &evictions);
        assert!(shard.entries.contains_key("cold"));
        assert!(!shard.entries.contains_key("hot"));
        assert_eq!(evictions.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn oversized_single_entry_still_caches() {
        let c = Cache::new(8);
        let big = "x".repeat(4096);
        c.insert("big".to_string(), body(&big));
        assert_eq!(c.get("big").map(|b| b.len()), Some(4096));
    }
}
