//! Minimal HTTP/1.1 over raw byte streams — just enough protocol for the
//! service's five endpoints and its tiny client.
//!
//! Deliberate simplifications, all on the safe side of the spec:
//! every response carries `Connection: close` (one request per
//! connection, no keep-alive state machine), chunked request bodies are
//! rejected (the client always sends `Content-Length`), and header and
//! body sizes are hard-capped so a hostile peer cannot balloon memory.
//! Socket read/write timeouts are set by the caller; a stalled peer
//! surfaces as an [`HttpError::Io`] timeout, never a hung worker.

use std::fmt;
use std::io::{Read, Write};

/// Longest accepted request head (request line + headers), bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Longest accepted request body, bytes (comfortably above
/// [`tauhls_core::jobspec::MAX_DFG_TEXT`] plus JSON escaping overhead).
pub const MAX_BODY_BYTES: usize = 256 * 1024;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or framing; maps to `400`.
    BadRequest(String),
    /// The head or declared body exceeds the caps; maps to `413`.
    TooLarge,
    /// Socket-level failure (including read timeouts); maps to `408`.
    Io(std::io::Error),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::TooLarge => write!(f, "request too large"),
            HttpError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as sent (path only; no scheme/authority handling).
    pub path: String,
    /// Headers as `(lowercased-name, trimmed-value)` pairs, in arrival
    /// order — the admission-control layer reads client identity
    /// (`x-client`) and job priority (`x-priority`) from here.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header named `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads and parses one request from `stream`.
pub fn read_request<S: Read>(stream: &mut S) -> Result<Request, HttpError> {
    // Accumulate until the blank line; anything past it is body prefix.
    let mut buf = Vec::with_capacity(1024);
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge);
        }
        let mut chunk = [0u8; 1024];
        let n = stream.read(&mut chunk).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::BadRequest(
                "connection closed before end of headers".to_string(),
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::BadRequest("headers are not UTF-8".to_string()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::BadRequest(format!(
            "malformed request line {request_line:?}"
        )));
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "malformed request line {request_line:?}"
        )));
    }
    let mut content_length: usize = 0;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!("malformed header {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| HttpError::BadRequest(format!("bad content-length {value:?}")))?;
        } else if name == "transfer-encoding" {
            return Err(HttpError::BadRequest(
                "chunked transfer encoding is not supported".to_string(),
            ));
        }
        headers.push((name, value.to_string()));
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge);
    }
    let mut body = buf[head_end + 4..].to_vec();
    if body.len() > content_length {
        return Err(HttpError::BadRequest(
            "body longer than content-length".to_string(),
        ));
    }
    while body.len() < content_length {
        let mut chunk = vec![0u8; (content_length - body.len()).min(16 * 1024)];
        let n = stream.read(&mut chunk).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::BadRequest(
                "connection closed mid-body".to_string(),
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The reason phrase for each status the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one complete `Connection: close` response.
pub fn write_response<S: Write>(
    stream: &mut S,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut std::io::Cursor::new(raw.to_vec()))
    }

    #[test]
    fn parses_post_with_body() {
        let r = req(b"POST /v1/simulate HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}")
            .expect("parses");
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/v1/simulate");
        assert_eq!(r.body, b"{\"a\":1}");
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.header("content-length"), Some("7"));
        assert_eq!(r.header("x-client"), None);
    }

    #[test]
    fn headers_are_lowercased_and_order_preserving() {
        let r = req(b"POST /v1/jobs HTTP/1.1\r\nX-Client: alice\r\nX-Priority: 2\r\nContent-Length: 0\r\n\r\n")
            .expect("parses");
        assert_eq!(r.header("x-client"), Some("alice"));
        assert_eq!(r.header("x-priority"), Some("2"));
        assert_eq!(r.headers.len(), 3);
    }

    #[test]
    fn parses_get_without_body_and_case_insensitive_headers() {
        let r = req(b"GET /healthz HTTP/1.1\r\ncOnTeNt-LeNgTh: 0\r\n\r\n").expect("parses");
        assert_eq!((r.method.as_str(), r.body.len()), ("GET", 0));
    }

    #[test]
    fn rejects_malformed_and_oversized_requests() {
        assert!(matches!(
            req(b"nonsense\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            req(b"GET / HTTP/2\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            req(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            req(b"POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n"),
            Err(HttpError::TooLarge)
        ));
        assert!(matches!(
            req(b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nab"),
            Err(HttpError::BadRequest(_)) // truncated body
        ));
        let huge_head = [
            b"GET / HTTP/1.1\r\n".as_slice(),
            &vec![b'x'; MAX_HEAD_BYTES],
        ]
        .concat();
        assert!(matches!(req(&huge_head), Err(HttpError::TooLarge)));
    }

    #[test]
    fn response_framing_round_trips() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            503,
            "application/json",
            &[("Retry-After", "1")],
            b"{}",
        )
        .expect("write");
        let text = String::from_utf8(out).expect("utf-8");
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
