//! Service counters and their Prometheus text rendering.
//!
//! Everything is a relaxed atomic — the metrics path must never contend
//! with the simulation path. The `/metrics` endpoint renders the
//! [exposition text format](https://prometheus.io/docs/instrumenting/exposition_formats/):
//! counters for requests/responses/trials/cache activity, gauges for
//! queue depth and in-flight jobs, and one cumulative latency histogram
//! per simulation endpoint (`trials/sec` is the PromQL ratio
//! `rate(tauhls_serve_trials_total[1m])`).

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use tauhls_core::stages::STAGE_NAMES;
use tauhls_core::{StageCache, StageRecord};

use crate::cache::Cache;

/// The request-routing classes we count (job endpoints first — these are
/// the ones with latency histograms).
pub const ENDPOINTS: [&str; 12] = [
    "simulate",
    "table2",
    "resilience",
    "synth",
    "area",
    "explore",
    "jobs",
    "dfg_validate",
    "status",
    "healthz",
    "metrics",
    "cluster",
];

/// How many of [`ENDPOINTS`] carry a latency histogram (the job
/// endpoints plus async job execution; the cheap read-only endpoints
/// are not worth a histogram each).
const JOB_ENDPOINTS: usize = 7;

/// How many entries the in-memory event log retains; older entries are
/// dropped (and counted) so the log is bounded no matter the uptime.
pub const EVENT_LOG_CAPACITY: usize = 128;

/// Response status codes we count.
pub const STATUS_CODES: [u16; 11] = [200, 202, 400, 404, 405, 408, 409, 413, 429, 500, 503];

/// Async job lifecycle events counted under
/// `tauhls_serve_jobs_total{event=...}`.
pub const JOB_EVENTS: [&str; 9] = [
    "submitted",
    "completed",
    "failed",
    "cancelled",
    "retried",
    "requeued",
    "recovered",
    "quarantined",
    "rejected",
];

/// Cluster partition lifecycle events counted under
/// `tauhls_serve_cluster_partitions_total{event=...}`: partitions a
/// coordinator dispatched / saw complete / requeued off a failed
/// worker / computed locally as a fallback, partitions this node served
/// as a worker, and malformed cluster requests rejected.
pub const CLUSTER_EVENTS: [&str; 6] = [
    "dispatched",
    "completed",
    "requeued",
    "local",
    "served",
    "rejected",
];

/// Histogram bucket upper bounds, in seconds.
pub const BUCKETS_SECONDS: [f64; 8] = [0.001, 0.004, 0.016, 0.064, 0.25, 1.0, 4.0, 16.0];

/// One cumulative latency histogram (Prometheus semantics: each bucket
/// counts observations ≤ its bound, plus an implicit `+Inf`).
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS_SECONDS.len()],
    inf: AtomicU64,
    sum_micros: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, elapsed: Duration) {
        let secs = elapsed.as_secs_f64();
        for (bound, bucket) in BUCKETS_SECONDS.iter().zip(&self.buckets) {
            if secs <= *bound {
                bucket.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.inf.fetch_add(1, Ordering::Relaxed);
        self.sum_micros
            .fetch_add(elapsed.as_micros() as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

/// One retained service event: a monotone sequence number, seconds
/// since process start, and a single-line message.
#[derive(Clone, Debug)]
pub struct Event {
    /// Monotone event number (total events ever logged ends at the last
    /// entry's `seq`).
    pub seq: u64,
    /// Seconds since the service started.
    pub uptime_seconds: f64,
    /// Single-line description (newlines are replaced on entry).
    pub message: String,
}

/// A bounded in-memory log of service lifecycle events (startups,
/// recoveries, quarantines, shutdowns). Lifecycle moments are rare, so
/// one mutex is fine here — the per-request counters stay lock-free.
#[derive(Debug)]
struct EventLog {
    start: Instant,
    entries: Mutex<VecDeque<Event>>,
    seq: AtomicU64,
    dropped: AtomicU64,
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog {
            start: Instant::now(),
            entries: Mutex::new(VecDeque::new()),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }
}

/// All service counters, shared across acceptor and workers.
#[derive(Debug, Default)]
pub struct Metrics {
    requests: [AtomicU64; ENDPOINTS.len()],
    requests_other: AtomicU64,
    responses: [AtomicU64; STATUS_CODES.len()],
    trials: AtomicU64,
    inflight: AtomicU64,
    panics: AtomicU64,
    latency: [Histogram; JOB_ENDPOINTS],
    stage_seconds: [Histogram; STAGE_NAMES.len()],
    stage_hits: [AtomicU64; STAGE_NAMES.len()],
    stage_misses: [AtomicU64; STAGE_NAMES.len()],
    jobs: [AtomicU64; JOB_EVENTS.len()],
    jobs_pending: AtomicU64,
    jobs_running: AtomicU64,
    cluster: [AtomicU64; CLUSTER_EVENTS.len()],
    events: EventLog,
}

impl Metrics {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Metrics::default()
    }

    fn endpoint_index(endpoint: &str) -> Option<usize> {
        ENDPOINTS.iter().position(|e| *e == endpoint)
    }

    /// Counts a routed request (unknown paths land in `other`).
    pub fn count_request(&self, endpoint: &str) {
        match Metrics::endpoint_index(endpoint) {
            Some(i) => self.requests[i].fetch_add(1, Ordering::Relaxed),
            None => self.requests_other.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Counts a response by status code (uncounted codes are ignored —
    /// keep [`STATUS_CODES`] in sync with what the router emits).
    pub fn count_response(&self, status: u16) {
        if let Some(i) = STATUS_CODES.iter().position(|c| *c == status) {
            self.responses[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Adds completed Monte-Carlo trials (the numerator of trials/sec).
    pub fn count_trials(&self, trials: u64) {
        self.trials.fetch_add(trials, Ordering::Relaxed);
    }

    /// Total requests seen for one endpoint.
    pub fn request_count(&self, endpoint: &str) -> u64 {
        match Metrics::endpoint_index(endpoint) {
            Some(i) => self.requests[i].load(Ordering::Relaxed),
            None => self.requests_other.load(Ordering::Relaxed),
        }
    }

    /// Records one completed simulation job's wall-clock latency.
    /// Endpoints without a histogram (healthz/metrics) are ignored.
    pub fn observe_latency(&self, endpoint: &str, elapsed: Duration) {
        if let Some(i) = Metrics::endpoint_index(endpoint).filter(|i| *i < self.latency.len()) {
            self.latency[i].observe(elapsed);
        }
    }

    /// Folds one executed pipeline stage into the per-stage latency
    /// histograms (cache hits are recorded too — their near-zero wall
    /// times are exactly the point of the stage cache).
    pub fn observe_stage(&self, record: &StageRecord) {
        if let Some(i) = STAGE_NAMES.iter().position(|s| *s == record.stage) {
            self.stage_seconds[i].observe(record.wall);
            if record.cache_hit {
                self.stage_hits[i].fetch_add(1, Ordering::Relaxed);
            } else {
                self.stage_misses[i].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Stage-cache hits recorded for one stage (test hook; the rendered
    /// `tauhls_serve_stage_cache_hits_total` series carries the same
    /// values).
    pub fn stage_hit_count(&self, stage: &str) -> u64 {
        STAGE_NAMES
            .iter()
            .position(|s| *s == stage)
            .map_or(0, |i| self.stage_hits[i].load(Ordering::Relaxed))
    }

    /// Marks a job entering (`+1`) or leaving (`-1`) the worker pool.
    pub fn add_inflight(&self, delta: i64) {
        if delta >= 0 {
            self.inflight.fetch_add(delta as u64, Ordering::Relaxed);
        } else {
            self.inflight.fetch_sub((-delta) as u64, Ordering::Relaxed);
        }
    }

    /// Jobs currently being processed.
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Counts a worker surviving a job panic.
    pub fn count_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one async job lifecycle event (a name from
    /// [`JOB_EVENTS`]; unknown names are ignored — keep callers in
    /// sync).
    pub fn count_job(&self, event: &str) {
        if let Some(i) = JOB_EVENTS.iter().position(|e| *e == event) {
            self.jobs[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total events counted for one [`JOB_EVENTS`] name (test hook; the
    /// rendered `tauhls_serve_jobs_total` series carries the same
    /// values).
    pub fn job_count(&self, event: &str) -> u64 {
        JOB_EVENTS
            .iter()
            .position(|e| *e == event)
            .map_or(0, |i| self.jobs[i].load(Ordering::Relaxed))
    }

    /// Counts one cluster partition lifecycle event (a name from
    /// [`CLUSTER_EVENTS`]; unknown names are ignored — keep callers in
    /// sync).
    pub fn count_cluster(&self, event: &str) {
        if let Some(i) = CLUSTER_EVENTS.iter().position(|e| *e == event) {
            self.cluster[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total events counted for one [`CLUSTER_EVENTS`] name (the
    /// rendered `tauhls_serve_cluster_partitions_total` series carries
    /// the same values).
    pub fn cluster_count(&self, event: &str) -> u64 {
        CLUSTER_EVENTS
            .iter()
            .position(|e| *e == event)
            .map_or(0, |i| self.cluster[i].load(Ordering::Relaxed))
    }

    /// Moves the queued/backing-off async job gauge.
    pub fn add_jobs_pending(&self, delta: i64) {
        if delta >= 0 {
            self.jobs_pending.fetch_add(delta as u64, Ordering::Relaxed);
        } else {
            self.jobs_pending
                .fetch_sub((-delta) as u64, Ordering::Relaxed);
        }
    }

    /// Moves the running async job gauge.
    pub fn add_jobs_running(&self, delta: i64) {
        if delta >= 0 {
            self.jobs_running.fetch_add(delta as u64, Ordering::Relaxed);
        } else {
            self.jobs_running
                .fetch_sub((-delta) as u64, Ordering::Relaxed);
        }
    }

    /// Seconds since this `Metrics` (and so the service) was created.
    pub fn uptime_seconds(&self) -> f64 {
        self.events.start.elapsed().as_secs_f64()
    }

    /// Appends one single-line event to the bounded in-memory log.
    /// Newlines in `message` are flattened so the `/metrics` comment
    /// rendering cannot be broken out of.
    pub fn log_event(&self, message: &str) {
        let seq = self.events.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let event = Event {
            seq,
            uptime_seconds: self.uptime_seconds(),
            message: message.replace(['\n', '\r'], " "),
        };
        let Ok(mut entries) = self.events.entries.lock() else {
            return;
        };
        entries.push_back(event);
        while entries.len() > EVENT_LOG_CAPACITY {
            entries.pop_front();
            self.events.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .entries
            .lock()
            .map(|entries| entries.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Total events ever logged (retained or dropped).
    pub fn event_count(&self) -> u64 {
        self.events.seq.load(Ordering::Relaxed)
    }

    /// A `Retry-After` value (seconds) derived from the queue depth and
    /// the measured drain rate: average request latency across the job
    /// endpoints times the backlog ahead of a new arrival, divided by
    /// the worker count. Falls back to `1` before any request has
    /// completed, and clamps to `1..=60` so the hint is always sane.
    pub fn retry_after_hint(&self, queue_depth: usize, workers: usize) -> u64 {
        let mut count = 0u64;
        let mut sum_micros = 0u64;
        for h in &self.latency {
            count += h.count.load(Ordering::Relaxed);
            sum_micros += h.sum_micros.load(Ordering::Relaxed);
        }
        if count == 0 {
            return 1;
        }
        let avg_secs = (sum_micros as f64 / count as f64) / 1e6;
        let secs = ((queue_depth as f64 + 1.0) * avg_secs / workers.max(1) as f64).ceil();
        (secs as u64).clamp(1, 60)
    }

    /// Renders the Prometheus exposition text, folding in the response
    /// cache's and stage cache's own counters and the queue's current
    /// depth.
    pub fn render(&self, cache: &Cache, stages: &StageCache, queue_depth: usize) -> String {
        let mut out = String::with_capacity(4096);
        let put = |out: &mut String, line: std::fmt::Arguments<'_>| {
            // Writing to a String cannot fail.
            let _ = out.write_fmt(line);
            out.push('\n');
        };
        put(
            &mut out,
            format_args!("# TYPE tauhls_serve_requests_total counter"),
        );
        for (i, endpoint) in ENDPOINTS.iter().enumerate() {
            put(
                &mut out,
                format_args!(
                    "tauhls_serve_requests_total{{endpoint=\"{endpoint}\"}} {}",
                    self.requests[i].load(Ordering::Relaxed)
                ),
            );
        }
        put(
            &mut out,
            format_args!(
                "tauhls_serve_requests_total{{endpoint=\"other\"}} {}",
                self.requests_other.load(Ordering::Relaxed)
            ),
        );
        put(
            &mut out,
            format_args!("# TYPE tauhls_serve_responses_total counter"),
        );
        for (i, code) in STATUS_CODES.iter().enumerate() {
            put(
                &mut out,
                format_args!(
                    "tauhls_serve_responses_total{{code=\"{code}\"}} {}",
                    self.responses[i].load(Ordering::Relaxed)
                ),
            );
        }
        put(
            &mut out,
            format_args!("# TYPE tauhls_serve_trials_total counter"),
        );
        put(
            &mut out,
            format_args!(
                "tauhls_serve_trials_total {}",
                self.trials.load(Ordering::Relaxed)
            ),
        );
        put(
            &mut out,
            format_args!("# TYPE tauhls_serve_cache_hits_total counter"),
        );
        put(
            &mut out,
            format_args!("tauhls_serve_cache_hits_total {}", cache.hit_count()),
        );
        put(
            &mut out,
            format_args!("# TYPE tauhls_serve_cache_misses_total counter"),
        );
        put(
            &mut out,
            format_args!("tauhls_serve_cache_misses_total {}", cache.miss_count()),
        );
        put(
            &mut out,
            format_args!("# TYPE tauhls_serve_cache_evictions_total counter"),
        );
        put(
            &mut out,
            format_args!(
                "tauhls_serve_cache_evictions_total {}",
                cache.eviction_count()
            ),
        );
        put(
            &mut out,
            format_args!("# TYPE tauhls_serve_cache_bytes gauge"),
        );
        put(
            &mut out,
            format_args!("tauhls_serve_cache_bytes {}", cache.bytes()),
        );
        put(
            &mut out,
            format_args!("# TYPE tauhls_serve_cache_entries gauge"),
        );
        put(
            &mut out,
            format_args!("tauhls_serve_cache_entries {}", cache.entries()),
        );
        put(
            &mut out,
            format_args!("# TYPE tauhls_serve_stage_cache_hits_total counter"),
        );
        for (i, stage) in STAGE_NAMES.iter().enumerate() {
            put(
                &mut out,
                format_args!(
                    "tauhls_serve_stage_cache_hits_total{{stage=\"{stage}\"}} {}",
                    self.stage_hits[i].load(Ordering::Relaxed)
                ),
            );
        }
        put(
            &mut out,
            format_args!("# TYPE tauhls_serve_stage_cache_misses_total counter"),
        );
        for (i, stage) in STAGE_NAMES.iter().enumerate() {
            put(
                &mut out,
                format_args!(
                    "tauhls_serve_stage_cache_misses_total{{stage=\"{stage}\"}} {}",
                    self.stage_misses[i].load(Ordering::Relaxed)
                ),
            );
        }
        put(
            &mut out,
            format_args!("# TYPE tauhls_serve_stage_cache_entries gauge"),
        );
        put(
            &mut out,
            format_args!("tauhls_serve_stage_cache_entries {}", stages.entries()),
        );
        put(
            &mut out,
            format_args!("# TYPE tauhls_serve_queue_depth gauge"),
        );
        put(
            &mut out,
            format_args!("tauhls_serve_queue_depth {queue_depth}"),
        );
        put(
            &mut out,
            format_args!("# TYPE tauhls_serve_inflight_jobs gauge"),
        );
        put(
            &mut out,
            format_args!(
                "tauhls_serve_inflight_jobs {}",
                self.inflight.load(Ordering::Relaxed)
            ),
        );
        put(
            &mut out,
            format_args!("# TYPE tauhls_serve_worker_panics_total counter"),
        );
        put(
            &mut out,
            format_args!(
                "tauhls_serve_worker_panics_total {}",
                self.panics.load(Ordering::Relaxed)
            ),
        );
        put(
            &mut out,
            format_args!("# TYPE tauhls_serve_jobs_total counter"),
        );
        for (i, event) in JOB_EVENTS.iter().enumerate() {
            put(
                &mut out,
                format_args!(
                    "tauhls_serve_jobs_total{{event=\"{event}\"}} {}",
                    self.jobs[i].load(Ordering::Relaxed)
                ),
            );
        }
        put(
            &mut out,
            format_args!("# TYPE tauhls_serve_jobs_pending gauge"),
        );
        put(
            &mut out,
            format_args!(
                "tauhls_serve_jobs_pending {}",
                self.jobs_pending.load(Ordering::Relaxed)
            ),
        );
        put(
            &mut out,
            format_args!("# TYPE tauhls_serve_jobs_running gauge"),
        );
        put(
            &mut out,
            format_args!(
                "tauhls_serve_jobs_running {}",
                self.jobs_running.load(Ordering::Relaxed)
            ),
        );
        put(
            &mut out,
            format_args!("# TYPE tauhls_serve_cluster_partitions_total counter"),
        );
        for (i, event) in CLUSTER_EVENTS.iter().enumerate() {
            put(
                &mut out,
                format_args!(
                    "tauhls_serve_cluster_partitions_total{{event=\"{event}\"}} {}",
                    self.cluster[i].load(Ordering::Relaxed)
                ),
            );
        }
        put(
            &mut out,
            format_args!("# TYPE tauhls_serve_request_seconds histogram"),
        );
        for (i, endpoint) in ENDPOINTS.iter().take(self.latency.len()).enumerate() {
            let h = &self.latency[i];
            for (bound, bucket) in BUCKETS_SECONDS.iter().zip(&h.buckets) {
                put(
                    &mut out,
                    format_args!(
                        "tauhls_serve_request_seconds_bucket{{endpoint=\"{endpoint}\",le=\"{bound}\"}} {}",
                        bucket.load(Ordering::Relaxed)
                    ),
                );
            }
            put(
                &mut out,
                format_args!(
                    "tauhls_serve_request_seconds_bucket{{endpoint=\"{endpoint}\",le=\"+Inf\"}} {}",
                    h.inf.load(Ordering::Relaxed)
                ),
            );
            put(
                &mut out,
                format_args!(
                    "tauhls_serve_request_seconds_sum{{endpoint=\"{endpoint}\"}} {}",
                    h.sum_micros.load(Ordering::Relaxed) as f64 / 1e6
                ),
            );
            put(
                &mut out,
                format_args!(
                    "tauhls_serve_request_seconds_count{{endpoint=\"{endpoint}\"}} {}",
                    h.count.load(Ordering::Relaxed)
                ),
            );
        }
        put(
            &mut out,
            format_args!("# TYPE tauhls_serve_stage_seconds histogram"),
        );
        for (i, stage) in STAGE_NAMES.iter().enumerate() {
            let h = &self.stage_seconds[i];
            for (bound, bucket) in BUCKETS_SECONDS.iter().zip(&h.buckets) {
                put(
                    &mut out,
                    format_args!(
                        "tauhls_serve_stage_seconds_bucket{{stage=\"{stage}\",le=\"{bound}\"}} {}",
                        bucket.load(Ordering::Relaxed)
                    ),
                );
            }
            put(
                &mut out,
                format_args!(
                    "tauhls_serve_stage_seconds_bucket{{stage=\"{stage}\",le=\"+Inf\"}} {}",
                    h.inf.load(Ordering::Relaxed)
                ),
            );
            put(
                &mut out,
                format_args!(
                    "tauhls_serve_stage_seconds_sum{{stage=\"{stage}\"}} {}",
                    h.sum_micros.load(Ordering::Relaxed) as f64 / 1e6
                ),
            );
            put(
                &mut out,
                format_args!(
                    "tauhls_serve_stage_seconds_count{{stage=\"{stage}\"}} {}",
                    h.count.load(Ordering::Relaxed)
                ),
            );
        }
        put(
            &mut out,
            format_args!("# TYPE tauhls_serve_uptime_seconds gauge"),
        );
        put(
            &mut out,
            format_args!("tauhls_serve_uptime_seconds {:.3}", self.uptime_seconds()),
        );
        put(
            &mut out,
            format_args!("# TYPE tauhls_serve_events_total counter"),
        );
        put(
            &mut out,
            format_args!("tauhls_serve_events_total {}", self.event_count()),
        );
        put(
            &mut out,
            format_args!("# TYPE tauhls_serve_events_dropped_total counter"),
        );
        put(
            &mut out,
            format_args!(
                "tauhls_serve_events_dropped_total {}",
                self.events.dropped.load(Ordering::Relaxed)
            ),
        );
        // The retained event log rides along as exposition comments, so
        // one /metrics scrape carries the recent service history too.
        for event in self.events() {
            put(
                &mut out,
                format_args!(
                    "# event {} +{:.3}s {}",
                    event.seq, event.uptime_seconds, event.message
                ),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_exposes_every_family_with_values() {
        let m = Metrics::new();
        let cache = Cache::new(1024);
        let stages = StageCache::new(16);
        m.count_request("simulate");
        m.count_request("simulate");
        m.count_request("/weird");
        m.count_response(200);
        m.count_response(503);
        m.count_trials(500);
        m.add_inflight(1);
        m.observe_latency("simulate", Duration::from_millis(2));
        m.observe_stage(&StageRecord {
            stage: "bind",
            input_hash: 1,
            output_hash: 2,
            wall: Duration::from_millis(1),
            cache_hit: false,
        });
        m.observe_stage(&StageRecord {
            stage: "bind",
            input_hash: 1,
            output_hash: 2,
            wall: Duration::from_micros(5),
            cache_hit: true,
        });
        cache.insert("k".to_string(), "v".into());
        cache.get("k");
        cache.get("absent");
        m.count_job("submitted");
        m.count_job("submitted");
        m.count_job("completed");
        m.count_job("nonesuch"); // ignored
        m.add_jobs_pending(2);
        m.add_jobs_pending(-1);
        m.add_jobs_running(1);
        let text = m.render(&cache, &stages, 3);
        for needle in [
            "tauhls_serve_requests_total{endpoint=\"simulate\"} 2",
            "tauhls_serve_requests_total{endpoint=\"other\"} 1",
            "tauhls_serve_responses_total{code=\"200\"} 1",
            "tauhls_serve_responses_total{code=\"503\"} 1",
            "tauhls_serve_trials_total 500",
            "tauhls_serve_cache_hits_total 1",
            "tauhls_serve_cache_misses_total 1",
            "tauhls_serve_cache_evictions_total 0",
            "tauhls_serve_queue_depth 3",
            "tauhls_serve_inflight_jobs 1",
            "tauhls_serve_request_seconds_count{endpoint=\"simulate\"} 1",
            "tauhls_serve_request_seconds_bucket{endpoint=\"simulate\",le=\"+Inf\"} 1",
            "tauhls_serve_request_seconds_count{endpoint=\"area\"} 0",
            "tauhls_serve_requests_total{endpoint=\"explore\"} 0",
            "tauhls_serve_requests_total{endpoint=\"dfg_validate\"} 0",
            "tauhls_serve_requests_total{endpoint=\"status\"} 0",
            "tauhls_serve_request_seconds_count{endpoint=\"explore\"} 0",
            "tauhls_serve_request_seconds_count{endpoint=\"jobs\"} 0",
            "tauhls_serve_uptime_seconds ",
            "tauhls_serve_events_total 0",
            "tauhls_serve_events_dropped_total 0",
            "tauhls_serve_stage_cache_hits_total{stage=\"bind\"} 1",
            "tauhls_serve_stage_cache_misses_total{stage=\"bind\"} 1",
            "tauhls_serve_stage_cache_hits_total{stage=\"logic\"} 0",
            "tauhls_serve_stage_cache_entries 0",
            "tauhls_serve_stage_seconds_count{stage=\"bind\"} 2",
            "tauhls_serve_jobs_total{event=\"submitted\"} 2",
            "tauhls_serve_jobs_total{event=\"completed\"} 1",
            "tauhls_serve_jobs_total{event=\"rejected\"} 0",
            "tauhls_serve_jobs_pending 1",
            "tauhls_serve_jobs_running 1",
            "tauhls_serve_responses_total{code=\"429\"} 0",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // 2ms lands in every bucket from 4ms upward, not the 1ms one.
        assert!(text.contains("le=\"0.001\"} 0"));
        assert!(text.contains("{endpoint=\"simulate\",le=\"0.004\"} 1"));
        assert_eq!(m.stage_hit_count("bind"), 1);
        assert_eq!(m.stage_hit_count("nonesuch"), 0);
    }

    #[test]
    fn retry_after_hint_tracks_depth_and_drain_rate() {
        let m = Metrics::new();
        // No completions yet: the hint is the conservative fallback.
        assert_eq!(m.retry_after_hint(10, 4), 1);
        // 2s average latency, 4 workers, 7 queued ahead: (7+1)*2/4 = 4s.
        for _ in 0..5 {
            m.observe_latency("simulate", Duration::from_secs(2));
        }
        assert_eq!(m.retry_after_hint(7, 4), 4);
        // Sub-second drains still answer at least a second...
        assert_eq!(m.retry_after_hint(0, 4), 1);
        // ...and pathological backlogs clamp at a minute.
        assert_eq!(m.retry_after_hint(100_000, 1), 60);
    }

    #[test]
    fn event_log_is_bounded_sanitized_and_rendered() {
        let m = Metrics::new();
        assert_eq!(m.event_count(), 0);
        m.log_event("started\r\nwith sneaky\nnewlines");
        for i in 0..(EVENT_LOG_CAPACITY + 10) {
            m.log_event(&format!("event {i}"));
        }
        assert_eq!(m.event_count() as usize, EVENT_LOG_CAPACITY + 11);
        let events = m.events();
        assert_eq!(events.len(), EVENT_LOG_CAPACITY, "log is bounded");
        assert!(events.iter().all(|e| !e.message.contains('\n')));
        assert_eq!(
            events.last().map(|e| e.seq),
            Some((EVENT_LOG_CAPACITY + 11) as u64),
            "sequence numbers are monotone over drops"
        );
        let text = m.render(&Cache::new(1024), &StageCache::new(4), 0);
        assert!(text.contains(&format!(
            "tauhls_serve_events_total {}",
            EVENT_LOG_CAPACITY + 11
        )));
        assert!(text.contains("tauhls_serve_events_dropped_total 11"));
        assert!(text.contains(&format!("# event {} ", (EVENT_LOG_CAPACITY + 11))));
    }

    #[test]
    fn inflight_round_trips() {
        let m = Metrics::new();
        m.add_inflight(1);
        m.add_inflight(1);
        m.add_inflight(-1);
        assert_eq!(m.inflight(), 1);
    }
}
