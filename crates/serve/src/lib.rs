//! # tauhls-serve — a zero-dependency concurrent simulation service
//!
//! Turns the deterministic batch engine into an always-on evaluation
//! backend: minimal HTTP/1.1 over [`std::net::TcpListener`], a fixed
//! acceptor plus worker-thread pool, a bounded job queue with `503`
//! backpressure, and a sharded content-addressed LRU cache over response
//! bodies. Because every job is bit-deterministic in its canonical spec
//! (seed included), a cache hit is *byte-identical* to the cold run it
//! replaces — the cache can never change an answer, only its latency.
//!
//! ```text
//!  clients ──► acceptor ──► bounded queue ──► workers ──► BatchRunner
//!                 │ full?                        │  ▲
//!                 └──► 503 + Retry-After         ▼  │ miss
//!                                            content-addressed LRU
//! ```
//!
//! Endpoints: `POST /v1/simulate`, `POST /v1/table2`,
//! `POST /v1/resilience`, `POST /v1/synth`, and `POST /v1/area` (JSON
//! job specs, validated strictly by [`tauhls_core::jobspec`]), plus
//! `GET /healthz` and `GET /metrics` (Prometheus text). The same specs
//! also run asynchronously through the durable job manager —
//! `POST /v1/jobs` submits, `GET /v1/jobs/<id>[/result]` polls, and
//! `DELETE /v1/jobs/<id>` cancels — with a crash-recoverable journal,
//! retry/backoff, and per-client admission control (`429` +
//! `Retry-After`); see [`JobManager`]. The synthesis
//! endpoints run the staged pipeline of [`tauhls_core::stages`] against
//! a second, content-addressed **stage cache**: stage outputs are keyed
//! by their input-hash chain, so two requests differing only in state
//! `encoding` share every artifact up to the generated controllers, and
//! per-stage latency and hit/miss counters surface in `/metrics`.
//! Graceful shutdown (SIGTERM/ctrl-c via [`signal`],
//! or [`Server::shutdown`]) stops the acceptor, flushes the queue
//! backlog with `503`, and drains in-flight jobs — cancelling them
//! through [`tauhls_sim::CancelToken`] only past the drain timeout.
//!
//! Everything is `std`-only: no registry crates, per DESIGN §5. The only
//! `unsafe` in the workspace is the two-line `signal(2)` binding in
//! [`signal`].
//!
//! # Examples
//!
//! ```no_run
//! use tauhls_serve::{client, Server, ServeConfig};
//! use std::time::Duration;
//!
//! let server = Server::start(ServeConfig {
//!     addr: "127.0.0.1:0".to_string(),
//!     ..ServeConfig::default()
//! })?;
//! let addr = server.local_addr().to_string();
//! let r = client::request(
//!     &addr,
//!     "POST",
//!     "/v1/simulate",
//!     Some(r#"{"dfg":"fir5","trials":100}"#),
//!     Duration::from_secs(60),
//! ).expect("response");
//! assert_eq!(r.status, 200);
//! server.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![deny(unsafe_code)] // `signal` opts back in for its 2-line libc binding
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

mod cache;
mod config;
mod http;
mod jobs;
mod metrics;
mod queue;
mod server;
mod stagewarm;

pub mod client;
pub mod cluster;
pub mod signal;

pub use cache::Cache;
pub use config::ServeConfig;
pub use http::{HttpError, Request, MAX_BODY_BYTES, MAX_HEAD_BYTES};
pub use jobs::{JobManager, JobResult, JobState, SubmitError, SubmitOutcome};
pub use metrics::{
    Event, Histogram, Metrics, BUCKETS_SECONDS, CLUSTER_EVENTS, ENDPOINTS, EVENT_LOG_CAPACITY,
    JOB_EVENTS, STATUS_CODES,
};
pub use queue::Queue;
pub use server::Server;
pub use stagewarm::{StageWarmer, WarmSummary};
