//! Stage-cache persistence: a replayable journal of synthesis specs.
//!
//! The stage cache maps content-addressed stage keys to `Arc<dyn Any>`
//! stage outputs, which have no serialized form — so persistence is by
//! *replay*, not serialization. Every synth/area spec whose pipeline
//! run populated the cache is journalled here (one canonical JSON line,
//! deduped by content hash), and on startup each line is re-run through
//! the staged pipeline with a serial runner. Synthesis stages are pure
//! and trial-free, so replay reconstructs the cache in milliseconds and
//! the first client request after a restart lands on warm stages.
//!
//! The journal is self-healing: unparseable or no-longer-valid lines
//! (e.g. a benchmark renamed away) are dropped at compaction, and the
//! file is bounded to the most recent [`MAX_ENTRIES`] distinct specs.

use std::collections::HashSet;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, PoisonError};

use tauhls_core::jobspec::{Endpoint, JobSpec};
use tauhls_core::stages::Fnv64;
use tauhls_core::StageCache;
use tauhls_json::Json;
use tauhls_sim::BatchRunner;

/// Compaction keeps at most this many distinct spec lines (oldest are
/// dropped first); a hostile client cycling specs cannot grow the
/// journal without bound.
const MAX_ENTRIES: usize = 256;

/// What a warm-up replay did, for the startup event log.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct WarmSummary {
    /// Spec lines replayed successfully (stage cache now warm for them).
    pub replayed: usize,
    /// Lines dropped: parse failures, duplicates, or replay errors.
    pub dropped: usize,
}

/// The spec journal backing stage-cache warm-up. All methods are
/// no-ops when constructed without a data directory.
pub struct StageWarmer {
    path: Option<PathBuf>,
    file: Mutex<Option<File>>,
    seen: Mutex<HashSet<u64>>,
}

impl StageWarmer {
    /// Opens (or creates) `stage_warm.journal` under `data_dir`; pass
    /// `None` for a disabled warmer (in-memory servers, tests).
    pub fn open(data_dir: Option<&Path>) -> StageWarmer {
        StageWarmer {
            path: data_dir.map(|dir| dir.join("stage_warm.journal")),
            file: Mutex::new(None),
            seen: Mutex::new(HashSet::new()),
        }
    }

    /// Whether this spec's pipeline products belong in the journal:
    /// synth and area runs populate the stage cache deterministically
    /// and replay without Monte-Carlo cost.
    fn warmable(spec: &JobSpec) -> bool {
        matches!(spec.endpoint(), Endpoint::Synth | Endpoint::Area)
    }

    fn lock_seen(&self) -> MutexGuard<'_, HashSet<u64>> {
        self.seen.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Replays the journal into `stages`, compacts the file to the
    /// surviving lines, and leaves the journal open for appends.
    pub fn warm(&self, stages: &StageCache) -> WarmSummary {
        let Some(path) = &self.path else {
            return WarmSummary::default();
        };
        let text = fs::read_to_string(path).unwrap_or_default();
        let mut summary = WarmSummary::default();
        let mut kept: Vec<String> = Vec::new();
        let mut seen = self.lock_seen();
        let runner = BatchRunner::sized(Some(1));
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let replayed = Json::parse(line)
                .ok()
                .and_then(|doc| JobSpec::from_canonical(&doc).ok())
                .filter(StageWarmer::warmable)
                .filter(|spec| seen.insert(line_hash(&spec.cache_key())))
                .and_then(|spec| spec.run_with(&runner, Some(stages)).ok().map(|_| spec));
            match replayed {
                Some(spec) => {
                    summary.replayed += 1;
                    let mut entry = spec.cache_key();
                    entry.push('\n');
                    kept.push(entry);
                }
                None => summary.dropped += 1,
            }
        }
        if kept.len() > MAX_ENTRIES {
            let excess = kept.len() - MAX_ENTRIES;
            kept.drain(..excess);
        }
        let reopened = (|| -> std::io::Result<File> {
            let tmp = path.with_extension("journal.tmp");
            let mut file = File::create(&tmp)?;
            for entry in &kept {
                file.write_all(entry.as_bytes())?;
            }
            file.sync_all()?;
            fs::rename(&tmp, path)?;
            OpenOptions::new().append(true).open(path)
        })();
        match reopened {
            Ok(file) => {
                let mut guard = self.file.lock().unwrap_or_else(PoisonError::into_inner);
                *guard = Some(file);
            }
            Err(e) => {
                eprintln!("tauhls-serve: stage-warm journal unavailable ({e}); warm-up disabled");
            }
        }
        summary
    }

    /// Records one successfully-run spec. Non-warmable endpoints and
    /// specs already journalled are skipped; a write failure downgrades
    /// to in-memory operation with a diagnostic.
    pub fn record(&self, spec: &JobSpec) {
        if self.path.is_none() || !StageWarmer::warmable(spec) {
            return;
        }
        let line = spec.cache_key();
        if !self.lock_seen().insert(line_hash(&line)) {
            return;
        }
        let mut guard = self.file.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(file) = guard.as_mut() {
            let mut text = line;
            text.push('\n');
            let wrote = file
                .write_all(text.as_bytes())
                .and_then(|()| file.sync_data());
            if let Err(e) = wrote {
                eprintln!("tauhls-serve: stage-warm journal write failed ({e}); continuing");
                *guard = None;
            }
        }
    }
}

fn line_hash(line: &str) -> u64 {
    let mut h = Fnv64::new();
    h.write(line.as_bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let n = SEQ.fetch_add(1, Ordering::SeqCst);
            let dir = std::env::temp_dir()
                .join(format!("tauhls-stagewarm-{tag}-{}-{n}", std::process::id()));
            fs::create_dir_all(&dir).expect("create temp dir");
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn synth_spec(benchmark: &str) -> JobSpec {
        let doc = Json::parse(&format!(r#"{{"dfg":"{benchmark}"}}"#)).expect("spec json");
        JobSpec::from_json(Endpoint::Synth, &doc).expect("valid synth spec")
    }

    #[test]
    fn record_then_warm_replays_specs_into_a_fresh_cache() {
        let tmp = TempDir::new("roundtrip");
        let warmer = StageWarmer::open(Some(&tmp.0));
        assert_eq!(warmer.warm(&StageCache::new(64)), WarmSummary::default());
        let spec = synth_spec("fir3");
        warmer.record(&spec);
        warmer.record(&spec); // dedup: second record is a no-op
        warmer.record(&synth_spec("diffeq"));
        // Simulate-class specs never enter the journal.
        let sim_doc = Json::parse(r#"{"trials":10}"#).expect("spec json");
        let sim = JobSpec::from_json(Endpoint::Simulate, &sim_doc).expect("valid");
        warmer.record(&sim);

        let reopened = StageWarmer::open(Some(&tmp.0));
        let cache = StageCache::new(64);
        let summary = reopened.warm(&cache);
        assert_eq!(
            summary,
            WarmSummary {
                replayed: 2,
                dropped: 0
            }
        );
        // The cache is genuinely warm: re-running the spec hits every
        // stage instead of recomputing it.
        let runner = BatchRunner::sized(Some(1));
        let (_, records) = spec.run_with(&runner, Some(&cache)).expect("replay runs");
        assert!(!records.is_empty());
        assert!(
            records.iter().all(|r| r.cache_hit),
            "expected all stages warm, got {records:?}"
        );
    }

    #[test]
    fn corrupt_lines_are_dropped_and_compacted_away() {
        let tmp = TempDir::new("corrupt");
        let path = tmp.0.join("stage_warm.journal");
        let good = synth_spec("fir3").cache_key();
        let contents = format!("not json\n{good}\n{{\"endpoint\":\"simulate\"}}\n{good}\n");
        fs::write(&path, contents).expect("seed journal");
        let warmer = StageWarmer::open(Some(&tmp.0));
        let summary = warmer.warm(&StageCache::new(64));
        assert_eq!(summary.replayed, 1);
        assert_eq!(summary.dropped, 3); // junk, wrong endpoint, duplicate
        let compacted = fs::read_to_string(&path).expect("journal exists");
        assert_eq!(compacted, format!("{good}\n"));
    }

    #[test]
    fn disabled_warmer_is_inert() {
        let warmer = StageWarmer::open(None);
        warmer.record(&synth_spec("fir3"));
        assert_eq!(warmer.warm(&StageCache::new(4)), WarmSummary::default());
    }
}
