//! Master/worker clustering: shard one job's batch across nodes and
//! merge the partials bit-identically (DESIGN §5j).
//!
//! Three roles, selected by [`crate::ServeConfig`]:
//!
//! * **Single** (the default): no cluster threads; the `cluster`
//!   status section reports the role and nothing else. Every server —
//!   single included — serves `POST /v1/cluster/partition`, so any
//!   plain `tauhls serve` process is a valid worker.
//! * **Coordinator** (`coordinator` / `workers_file`): keeps a
//!   [`WorkerRegistry`], health-probes it, and executes jobs through
//!   the [`Coordinator`] — partition, dispatch, requeue-on-loss, merge.
//! * **Worker** (`worker_of`): registers with its coordinator at
//!   startup and heartbeats on `heartbeat_interval`.
//!
//! Determinism survives distribution because the partition math and the
//! merge are [`tauhls_core::partition`]: global unit coordinates on the
//! wire, exact values in partials, one body builder. The cluster layer
//! adds only transport and failure handling — nothing it does can
//! change a byte of the answer, only how long it takes.

mod coordinator;
mod registry;

pub use coordinator::{Coordinator, JournalSink};
pub use registry::{RegisterError, WorkerRegistry, WorkerStats, FAILURE_LIMIT};

use std::fmt::Write as _;
use std::sync::Arc;

use tauhls_json::Json;

/// Which part a server plays in a cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Not clustered (still serves partitions if asked).
    Single,
    /// Partitions jobs across registered workers.
    Coordinator,
    /// Registers with and heartbeats a coordinator.
    Worker,
}

impl Role {
    /// The role's status-body spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Role::Single => "single",
            Role::Coordinator => "coordinator",
            Role::Worker => "worker",
        }
    }
}

/// The per-server cluster state: role, worker table, and (for
/// coordinators) the dispatcher.
pub struct Cluster {
    /// This server's role.
    pub role: Role,
    /// The worker table (empty and unused outside coordinator mode,
    /// but always present so registrations are handled uniformly).
    pub registry: Arc<WorkerRegistry>,
    /// The dispatcher, coordinator role only.
    pub coordinator: Option<Coordinator>,
}

impl Cluster {
    /// The `cluster` section of `GET /v1/status`.
    pub fn status_json(&self, metrics: &crate::Metrics) -> Json {
        let workers: Vec<Json> = self
            .registry
            .snapshot()
            .into_iter()
            .map(|w| {
                let mut pairs = vec![
                    ("addr", Json::from(w.addr.as_str())),
                    ("healthy", Json::from(w.healthy)),
                    (
                        "consecutive_failures",
                        Json::from(u64::from(w.consecutive_failures)),
                    ),
                    ("dispatched", Json::from(w.dispatched)),
                    ("completed", Json::from(w.completed)),
                    ("requeued", Json::from(w.requeued)),
                ];
                if let Some(secs) = w.last_heartbeat_secs {
                    pairs.push(("last_heartbeat_seconds_ago", Json::Float(secs)));
                }
                Json::object(pairs)
            })
            .collect();
        let mut partitions = vec![(
            "inflight",
            Json::from(self.coordinator.as_ref().map_or(0, Coordinator::inflight)),
        )];
        for event in crate::CLUSTER_EVENTS {
            partitions.push((event, Json::from(metrics.cluster_count(event))));
        }
        Json::object([
            ("role", Json::from(self.role.as_str())),
            ("workers", Json::Array(workers)),
            ("partitions", Json::object(partitions)),
        ])
    }

    /// Per-worker gauge lines appended to the `/metrics` exposition
    /// (the scalar cluster counters render inside
    /// [`crate::Metrics::render`]).
    pub fn render_metrics(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# TYPE tauhls_serve_cluster_partitions_inflight gauge");
        let _ = writeln!(
            out,
            "tauhls_serve_cluster_partitions_inflight {}",
            self.coordinator.as_ref().map_or(0, Coordinator::inflight)
        );
        let _ = writeln!(out, "# TYPE tauhls_serve_cluster_workers gauge");
        let snapshot = self.registry.snapshot();
        let _ = writeln!(out, "tauhls_serve_cluster_workers {}", snapshot.len());
        let _ = writeln!(out, "# TYPE tauhls_serve_cluster_worker_healthy gauge");
        for w in &snapshot {
            let _ = writeln!(
                out,
                "tauhls_serve_cluster_worker_healthy{{worker=\"{}\"}} {}",
                w.addr,
                u8::from(w.healthy)
            );
        }
        let _ = writeln!(
            out,
            "# TYPE tauhls_serve_cluster_worker_partitions_total counter"
        );
        for w in &snapshot {
            for (event, value) in [
                ("dispatched", w.dispatched),
                ("completed", w.completed),
                ("requeued", w.requeued),
            ] {
                let _ = writeln!(
                    out,
                    "tauhls_serve_cluster_worker_partitions_total{{worker=\"{}\",event=\"{event}\"}} {value}",
                    w.addr
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_and_metrics_render_worker_rows() {
        let registry = Arc::new(WorkerRegistry::new());
        registry.register("127.0.0.1:9001").unwrap();
        registry.mark_dispatch("127.0.0.1:9001");
        registry.mark_success("127.0.0.1:9001");
        let cluster = Cluster {
            role: Role::Coordinator,
            registry,
            coordinator: None,
        };
        let status = cluster.status_json(&crate::Metrics::new()).to_compact();
        assert!(status.contains("\"role\":\"coordinator\""), "{status}");
        assert!(status.contains("\"addr\":\"127.0.0.1:9001\""), "{status}");
        assert!(status.contains("\"completed\":1"), "{status}");
        let metrics = cluster.render_metrics();
        assert!(
            metrics.contains("tauhls_serve_cluster_worker_healthy{worker=\"127.0.0.1:9001\"} 1"),
            "{metrics}"
        );
        assert!(
            metrics.contains(
                "tauhls_serve_cluster_worker_partitions_total{worker=\"127.0.0.1:9001\",event=\"completed\"} 1"
            ),
            "{metrics}"
        );
    }
}
