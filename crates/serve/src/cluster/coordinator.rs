//! The dispatch half of cluster mode: split a job, ship the partitions,
//! survive the failures, merge the partials.
//!
//! [`Coordinator::execute`] has exactly the executor shape the job
//! manager and the synchronous handlers use, so cluster mode is a
//! drop-in execution strategy: every caller keeps its caching,
//! journaling, and error semantics. The invariants:
//!
//! * **Byte-identity.** Partition planning and merging are
//!   [`tauhls_core::partition`]; the merged body equals a single-node
//!   run at any worker count. Workers recompute their slice from
//!   `(spec, part, of)` — no negotiated state.
//! * **Requeue on loss.** A failed or timed-out dispatch marks the
//!   worker, journals a `part_requeue`, backs off deterministically
//!   (the job-retry curve, keyed by `job:part:attempt`), and retries on
//!   the next live worker. When attempts run out — or no worker is
//!   live — the coordinator computes the slice locally, so a job
//!   converges even with every worker dead.
//! * **No lost answers.** Workers cache partials content-addressed, so
//!   a re-dispatched partition (worker restart, coordinator restart)
//!   is answered from cache, byte-identical.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use tauhls_core::jobspec::{JobError, JobSpec};
use tauhls_core::partition::{self, Part};
use tauhls_core::{StageCache, StageRecord};
use tauhls_json::Json;
use tauhls_sim::BatchRunner;

use super::registry::WorkerRegistry;
use crate::client;
use crate::config::ServeConfig;
use crate::jobs::{backoff_delay, ExecResult};
use crate::metrics::Metrics;

/// Where the coordinator's partition lifecycle events go: the job
/// manager's durable journal, once it exists (`(job_id, event, extra)`,
/// exactly the journal's own shape).
pub type JournalSink = Arc<dyn Fn(&str, &str, Vec<(&str, Json)>) + Send + Sync>;

/// The cluster dispatcher. One per coordinator-mode server, shared by
/// the synchronous handlers and the async job workers.
pub struct Coordinator {
    registry: Arc<WorkerRegistry>,
    metrics: Arc<Metrics>,
    connect_timeout: Duration,
    partition_timeout: Duration,
    max_attempts: u32,
    backoff_base: Duration,
    partitions: usize,
    inflight: AtomicU64,
    journal: Mutex<Option<JournalSink>>,
}

impl Coordinator {
    /// Builds a coordinator over `registry` with the cluster knobs from
    /// `config`.
    pub fn new(
        registry: Arc<WorkerRegistry>,
        metrics: Arc<Metrics>,
        config: &ServeConfig,
    ) -> Coordinator {
        Coordinator {
            registry,
            metrics,
            connect_timeout: config.heartbeat_interval.max(Duration::from_millis(250)),
            partition_timeout: config.partition_timeout,
            max_attempts: config.cluster_max_attempts.max(1),
            backoff_base: config.job_backoff_base,
            partitions: config.cluster_partitions,
            inflight: AtomicU64::new(0),
            journal: Mutex::new(None),
        }
    }

    /// Connects the partition lifecycle events to the durable job
    /// journal (called once the job manager exists).
    pub fn set_journal(&self, sink: JournalSink) {
        *self.journal.lock().unwrap_or_else(PoisonError::into_inner) = Some(sink);
    }

    /// Partitions currently dispatched or running.
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    fn journal_event(&self, job: &str, event: &str, extra: Vec<(&str, Json)>) {
        let guard = self.journal.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(sink) = guard.as_ref() {
            sink(job, event, extra);
        }
    }

    /// Runs `spec` across the cluster: plan, dispatch, requeue, merge.
    /// With no live workers the whole job runs locally — the coordinator
    /// degrades to a plain single-node server, never an error.
    pub fn execute(
        &self,
        spec: &JobSpec,
        runner: &BatchRunner,
        stages: Option<&StageCache>,
    ) -> Result<(Json, Vec<StageRecord>), JobError> {
        let live = self.registry.live_workers();
        if live.is_empty() {
            self.metrics.count_cluster("local");
            return spec.run_with(runner, stages);
        }
        let want = if self.partitions > 0 {
            self.partitions
        } else {
            live.len()
        };
        let parts = partition::plan(spec, want)?;
        let job = spec.job_id();
        let canonical = spec.canonical();
        let mut slots: Vec<Option<ExecResult>> = (0..parts.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .iter()
                .map(|&part| {
                    let (job, canonical) = (&job, &canonical);
                    scope.spawn(move || self.run_one(spec, part, job, canonical, runner, stages))
                })
                .collect();
            for (slot, handle) in slots.iter_mut().zip(handles) {
                *slot = Some(handle.join().unwrap_or_else(|_| {
                    Err(JobError::Failed("partition thread panicked".to_string()))
                }));
            }
        });
        let mut partials = Vec::with_capacity(parts.len());
        let mut records = Vec::new();
        for slot in slots {
            let (partial, mut recs) =
                slot.unwrap_or_else(|| Err(JobError::Failed("partition missing".to_string())))?;
            partials.push(partial);
            records.append(&mut recs);
        }
        let body = partition::merge(spec, &partials)?;
        Ok((body, records))
    }

    /// One partition's life: remote attempts with requeue, then the
    /// local fallback.
    fn run_one(
        &self,
        spec: &JobSpec,
        part: Part,
        job: &str,
        canonical: &Json,
        runner: &BatchRunner,
        stages: Option<&StageCache>,
    ) -> Result<(Json, Vec<StageRecord>), JobError> {
        self.inflight.fetch_add(1, Ordering::Relaxed);
        let result = self.run_one_inner(spec, part, job, canonical, runner, stages);
        self.inflight.fetch_sub(1, Ordering::Relaxed);
        result
    }

    fn run_one_inner(
        &self,
        spec: &JobSpec,
        part: Part,
        job: &str,
        canonical: &Json,
        runner: &BatchRunner,
        stages: Option<&StageCache>,
    ) -> Result<(Json, Vec<StageRecord>), JobError> {
        let body = Json::object([
            ("spec", canonical.clone()),
            ("part", Json::from(part.index)),
            ("of", Json::from(part.total)),
        ])
        .to_compact();
        let coords = || {
            vec![
                ("part", Json::from(part.index)),
                ("of", Json::from(part.total)),
            ]
        };
        for attempt in 1..=self.max_attempts {
            runner.check_cancelled().map_err(|_| JobError::Cancelled)?;
            let live = self.registry.live_workers();
            if live.is_empty() {
                break;
            }
            // Rotate by attempt so a requeued partition lands on the
            // next live worker, not the one that just failed it.
            let worker = &live[(part.index + attempt as usize - 1) % live.len()];
            self.registry.mark_dispatch(worker);
            self.metrics.count_cluster("dispatched");
            let mut extra = coords();
            extra.push(("worker", Json::from(worker.as_str())));
            extra.push(("attempt", Json::from(u64::from(attempt))));
            self.journal_event(job, "dispatch", extra);
            match self.dispatch(worker, &body) {
                Ok(partial) => {
                    self.registry.mark_success(worker);
                    self.metrics.count_cluster("completed");
                    self.journal_event(job, "part_done", coords());
                    return Ok((partial, Vec::new()));
                }
                Err(error) => {
                    self.registry.mark_failure(worker);
                    self.metrics.count_cluster("requeued");
                    let mut extra = coords();
                    extra.push(("worker", Json::from(worker.as_str())));
                    extra.push(("error", Json::from(error.as_str())));
                    self.journal_event(job, "part_requeue", extra);
                    self.metrics.log_event(&format!(
                        "cluster: partition {}/{} requeued off {worker} (attempt {attempt}): {error}",
                        part.index, part.total
                    ));
                    self.sleep_backoff(job, part, attempt, runner)?;
                }
            }
        }
        // Remote attempts exhausted (or no worker live): converge by
        // computing the slice here.
        self.metrics.count_cluster("local");
        let result = partition::run_part(spec, part, runner, stages)?;
        self.journal_event(job, "part_done", coords());
        Ok(result)
    }

    /// POSTs one partition to `worker` and parses the partial strictly.
    fn dispatch(&self, worker: &str, body: &str) -> Result<Json, String> {
        let response = client::request_timeouts(
            worker,
            "POST",
            "/v1/cluster/partition",
            &[],
            Some(body),
            self.connect_timeout,
            self.partition_timeout,
        )?;
        if response.status != 200 {
            return Err(format!(
                "HTTP {}: {}",
                response.status,
                response.body.trim()
            ));
        }
        Json::parse(&response.body).map_err(|e| format!("partial is not valid JSON: {e}"))
    }

    /// The deterministic retry curve, interruptible by cancellation.
    fn sleep_backoff(
        &self,
        job: &str,
        part: Part,
        attempt: u32,
        runner: &BatchRunner,
    ) -> Result<(), JobError> {
        let key = format!("{job}:{}:{}", part.index, part.total);
        let mut left = backoff_delay(self.backoff_base, &key, attempt);
        while !left.is_zero() {
            runner.check_cancelled().map_err(|_| JobError::Cancelled)?;
            let step = left.min(Duration::from_millis(20));
            std::thread::sleep(step);
            left = left.saturating_sub(step);
        }
        Ok(())
    }
}
