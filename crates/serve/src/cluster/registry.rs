//! The coordinator's view of its workers: who exists, who is healthy,
//! and what each one has done.
//!
//! Registration is strict (the satellite of DESIGN §5j): addresses must
//! be well-formed `host:port` pairs, duplicates are rejected, and a
//! worker cannot register the coordinator's own listen address (a
//! self-referential cluster would dispatch partitions to itself
//! forever). Health is failure-counted: a worker leaves the live set
//! after [`FAILURE_LIMIT`] consecutive dispatch/probe failures and
//! rejoins on the first successful heartbeat or probe.

use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Consecutive failures after which a worker is considered dead and no
/// longer receives partitions (until a heartbeat or probe revives it).
pub const FAILURE_LIMIT: u32 = 3;

/// Why a registration was refused (each maps to a `400` on
/// `POST /v1/cluster/register`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegisterError {
    /// The address is already registered.
    Duplicate,
    /// The address is the coordinator's own listen address.
    SelfReferential,
    /// The address is not a `host:port` pair.
    Invalid(String),
}

impl std::fmt::Display for RegisterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegisterError::Duplicate => write!(f, "worker address is already registered"),
            RegisterError::SelfReferential => {
                write!(f, "worker address is the coordinator itself")
            }
            RegisterError::Invalid(m) => write!(f, "invalid worker address: {m}"),
        }
    }
}

#[derive(Debug)]
struct Entry {
    addr: String,
    last_heartbeat: Option<Instant>,
    consecutive_failures: u32,
    dispatched: u64,
    completed: u64,
    requeued: u64,
}

/// One worker's public state, as `/v1/status` and `/metrics` report it.
#[derive(Clone, Debug)]
pub struct WorkerStats {
    /// The worker's `host:port` address.
    pub addr: String,
    /// Whether the worker is in the live dispatch set.
    pub healthy: bool,
    /// Seconds since the last heartbeat or successful probe, if any.
    pub last_heartbeat_secs: Option<f64>,
    /// Consecutive dispatch/probe failures since the last success.
    pub consecutive_failures: u32,
    /// Partitions dispatched to this worker.
    pub dispatched: u64,
    /// Partitions this worker answered successfully.
    pub completed: u64,
    /// Partitions requeued off this worker after a failure.
    pub requeued: u64,
}

/// The worker table, shared between the request handlers (register /
/// heartbeat), the health prober, and the coordinator's dispatch loop.
#[derive(Debug, Default)]
pub struct WorkerRegistry {
    self_addr: Mutex<String>,
    entries: Mutex<Vec<Entry>>,
}

/// `host:port` validation without DNS: the port must parse, the host
/// must be non-empty. Normalizes `localhost` to `127.0.0.1` so the
/// self-address check cannot be dodged by respelling the loopback.
fn normalize(addr: &str) -> Result<String, RegisterError> {
    let (host, port) = addr
        .rsplit_once(':')
        .ok_or_else(|| RegisterError::Invalid("expected host:port".to_string()))?;
    if host.is_empty() {
        return Err(RegisterError::Invalid("empty host".to_string()));
    }
    let port: u16 = port
        .parse()
        .map_err(|_| RegisterError::Invalid(format!("bad port {port:?}")))?;
    if port == 0 {
        return Err(RegisterError::Invalid("port 0".to_string()));
    }
    let host = if host == "localhost" {
        "127.0.0.1"
    } else {
        host
    };
    Ok(format!("{host}:{port}"))
}

impl WorkerRegistry {
    /// Fresh, empty registry.
    pub fn new() -> WorkerRegistry {
        WorkerRegistry::default()
    }

    /// Records the coordinator's own bound address, the one registrations
    /// must not equal.
    pub fn set_self_addr(&self, addr: &str) {
        let mut own = self
            .self_addr
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *own = normalize(addr).unwrap_or_else(|_| addr.to_string());
    }

    fn lock_entries(&self) -> std::sync::MutexGuard<'_, Vec<Entry>> {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Adds a worker. Rejects malformed, duplicate, and self-referential
    /// addresses — each a distinct [`RegisterError`].
    pub fn register(&self, addr: &str) -> Result<(), RegisterError> {
        let addr = normalize(addr)?;
        {
            let own = self
                .self_addr
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if !own.is_empty() && *own == addr {
                return Err(RegisterError::SelfReferential);
            }
        }
        let mut entries = self.lock_entries();
        if entries.iter().any(|e| e.addr == addr) {
            return Err(RegisterError::Duplicate);
        }
        entries.push(Entry {
            addr,
            last_heartbeat: None,
            consecutive_failures: 0,
            dispatched: 0,
            completed: 0,
            requeued: 0,
        });
        Ok(())
    }

    /// Refreshes a worker's liveness; an unknown address registers first
    /// (so a worker restarted against a restarted coordinator re-joins
    /// without a separate register call).
    pub fn heartbeat(&self, addr: &str) -> Result<(), RegisterError> {
        match self.register(addr) {
            Ok(()) | Err(RegisterError::Duplicate) => {}
            Err(e) => return Err(e),
        }
        let addr = normalize(addr)?;
        let mut entries = self.lock_entries();
        if let Some(entry) = entries.iter_mut().find(|e| e.addr == addr) {
            entry.last_heartbeat = Some(Instant::now());
            entry.consecutive_failures = 0;
        }
        Ok(())
    }

    /// Counts a partition handed to `addr`.
    pub fn mark_dispatch(&self, addr: &str) {
        if let Some(entry) = self.lock_entries().iter_mut().find(|e| e.addr == addr) {
            entry.dispatched += 1;
        }
    }

    /// Counts a successful partition answer (and revives the worker).
    pub fn mark_success(&self, addr: &str) {
        if let Some(entry) = self.lock_entries().iter_mut().find(|e| e.addr == addr) {
            entry.completed += 1;
            entry.consecutive_failures = 0;
            entry.last_heartbeat = Some(Instant::now());
        }
    }

    /// Counts a dispatch or probe failure; at [`FAILURE_LIMIT`] the
    /// worker leaves the live set.
    pub fn mark_failure(&self, addr: &str) {
        if let Some(entry) = self.lock_entries().iter_mut().find(|e| e.addr == addr) {
            entry.requeued += 1;
            entry.consecutive_failures = entry.consecutive_failures.saturating_add(1);
        }
    }

    /// The workers currently eligible for dispatch, in registration
    /// order (deterministic for a fixed history of events).
    pub fn live_workers(&self) -> Vec<String> {
        self.lock_entries()
            .iter()
            .filter(|e| e.consecutive_failures < FAILURE_LIMIT)
            .map(|e| e.addr.clone())
            .collect()
    }

    /// Every registered address, live or not (the prober walks all of
    /// them — a probe success is how a dead worker comes back).
    pub fn all_workers(&self) -> Vec<String> {
        self.lock_entries().iter().map(|e| e.addr.clone()).collect()
    }

    /// A point-in-time copy of every worker's public state.
    pub fn snapshot(&self) -> Vec<WorkerStats> {
        self.lock_entries()
            .iter()
            .map(|e| WorkerStats {
                addr: e.addr.clone(),
                healthy: e.consecutive_failures < FAILURE_LIMIT,
                last_heartbeat_secs: e.last_heartbeat.map(|t| t.elapsed().as_secs_f64()),
                consecutive_failures: e.consecutive_failures,
                dispatched: e.dispatched,
                completed: e.completed,
                requeued: e.requeued,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_validates_duplicates_self_and_shape() {
        let reg = WorkerRegistry::new();
        reg.set_self_addr("127.0.0.1:7203");
        assert!(reg.register("127.0.0.1:7204").is_ok());
        assert_eq!(
            reg.register("127.0.0.1:7204"),
            Err(RegisterError::Duplicate)
        );
        assert_eq!(
            reg.register("127.0.0.1:7203"),
            Err(RegisterError::SelfReferential)
        );
        // `localhost` is the same loopback; the self check normalizes.
        assert_eq!(
            reg.register("localhost:7203"),
            Err(RegisterError::SelfReferential)
        );
        for bad in ["no-port", ":7", "x:", "x:0", "x:banana", "x:70000"] {
            assert!(
                matches!(reg.register(bad), Err(RegisterError::Invalid(_))),
                "{bad}"
            );
        }
        assert_eq!(reg.live_workers(), vec!["127.0.0.1:7204".to_string()]);
    }

    #[test]
    fn failures_kill_and_heartbeats_revive() {
        let reg = WorkerRegistry::new();
        reg.register("10.0.0.1:9000").unwrap();
        for _ in 0..FAILURE_LIMIT {
            reg.mark_failure("10.0.0.1:9000");
        }
        assert!(reg.live_workers().is_empty());
        assert_eq!(reg.all_workers().len(), 1);
        reg.heartbeat("10.0.0.1:9000").unwrap();
        assert_eq!(reg.live_workers().len(), 1);
        let stats = &reg.snapshot()[0];
        assert!(stats.healthy);
        assert_eq!(stats.requeued, u64::from(FAILURE_LIMIT));
        assert!(stats.last_heartbeat_secs.is_some());
    }

    #[test]
    fn heartbeat_from_unknown_worker_registers_it() {
        let reg = WorkerRegistry::new();
        reg.set_self_addr("127.0.0.1:7203");
        reg.heartbeat("127.0.0.1:7300").unwrap();
        assert_eq!(reg.live_workers(), vec!["127.0.0.1:7300".to_string()]);
        assert!(reg.heartbeat("127.0.0.1:7203").is_err(), "self heartbeat");
    }
}
