//! Drivers that regenerate the paper's Table 1 and Table 2 and the Fig 4
//! state-explosion sweep.

use crate::pipeline::{Synthesis, Timing};
use std::collections::BTreeSet;
use std::fmt;
use tauhls_dfg::{benchmarks, Dfg};
use tauhls_fsm::{synthesize, Encoding, Fsm};
use tauhls_logic::AreaModel;
use tauhls_sched::Allocation;
use tauhls_sim::{
    derive_seed, enhancement_percent, latency_quad_batch, BatchRunner, ElasticSpec, LatencySummary,
};

/// One row of the Table 1 area analysis.
#[derive(Clone, Debug)]
pub struct AreaRow {
    /// FSM name (CENT-FSM, CENT-SYNC-FSM, DIST-FSM, D-FSM-*).
    pub name: String,
    /// Input signal count.
    pub inputs: usize,
    /// Output signal count.
    pub outputs: usize,
    /// Symbolic state count.
    pub states: usize,
    /// Flip-flop count under the chosen encoding.
    pub ffs: usize,
    /// Combinational area (gate equivalents).
    pub area_com: f64,
    /// Sequential area (gate equivalents).
    pub area_seq: f64,
}

/// The Table 1 reproduction: area analysis of the three controller styles
/// for the differential-equation benchmark.
#[derive(Clone, Debug)]
pub struct Table1 {
    /// All rows, in the paper's order.
    pub rows: Vec<AreaRow>,
    /// The state encoding used.
    pub encoding: String,
}

fn area_row(name: &str, fsm: &Fsm, encoding: Encoding, model: &AreaModel) -> AreaRow {
    let syn = synthesize(fsm, encoding, model);
    AreaRow {
        name: name.to_string(),
        inputs: fsm.inputs().len(),
        outputs: fsm.outputs().len(),
        states: fsm.num_states(),
        ffs: syn.flip_flops(),
        area_com: syn.area().combinational,
        area_seq: syn.area().sequential,
    }
}

/// Regenerates Table 1: CENT-FSM, CENT-SYNC-FSM and DIST-FSM (plus its
/// component controllers) for Diff.Eq under `{×:2 (TAU), +:1, −:1}`.
pub fn table1(encoding: Encoding, model: &AreaModel) -> Table1 {
    let design = Synthesis::new(benchmarks::diffeq())
        .allocation(Allocation::paper(2, 1, 1))
        .with_centralized()
        .run()
        .expect("diffeq synthesizes");

    let mut rows = Vec::new();
    rows.push(area_row(
        "CENT-FSM",
        design.centralized().expect("requested"),
        encoding,
        model,
    ));
    rows.push(area_row(
        "CENT-SYNC-FSM",
        design.cent_sync(),
        encoding,
        model,
    ));

    // Component D-FSMs and the aggregate DIST-FSM row.
    let mut dist = AreaRow {
        name: "DIST-FSM".to_string(),
        inputs: 0,
        outputs: 0,
        states: 0,
        ffs: 0,
        area_com: 0.0,
        area_seq: 0.0,
    };
    let mut component_rows = Vec::new();
    let mut in_names: BTreeSet<String> = BTreeSet::new();
    let mut out_names: BTreeSet<String> = BTreeSet::new();
    let units = design.bound().allocation().units();
    for (unit, fsm) in design.distributed().controllers() {
        let row = area_row(
            &format!("D-FSM-{}", units[unit.0].display_name()),
            fsm,
            encoding,
            model,
        );
        dist.states += row.states;
        dist.ffs += row.ffs;
        dist.area_com += row.area_com;
        dist.area_seq += row.area_seq;
        in_names.extend(fsm.inputs().iter().cloned());
        out_names.extend(fsm.outputs().iter().cloned());
        component_rows.push(row);
    }
    dist.inputs = in_names.len();
    dist.outputs = out_names.len();
    rows.push(dist);
    rows.extend(component_rows);

    Table1 {
        rows,
        encoding: format!("{encoding:?}"),
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 1. Area analysis for TAUBM FSMs and a distributed FSM (Diff.Eq, {} encoding)",
            self.encoding
        )?;
        writeln!(
            f,
            "{:<14} {:>5} {:>7} {:>5} {:>7} {:>18}",
            "FSM", "I/O", "", "States", "FFs", "Area(Com./Seq.)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<14} {:>5}/{:<7} {:>5} {:>7} {:>10.0} / {:.0}",
                r.name, r.inputs, r.outputs, r.states, r.ffs, r.area_com, r.area_seq
            )?;
        }
        Ok(())
    }
}

/// One row of the Table 2 latency comparison.
#[derive(Clone, Debug)]
pub struct LatencyRow {
    /// Benchmark name.
    pub name: String,
    /// Allocation summary, e.g. `×:2, +:1`.
    pub resources: String,
    /// The synchronized TAUBM latency summary (`LT_TAU`).
    pub lt_tau: SummaryCells,
    /// The distributed latency summary (`LT_DIST`).
    pub lt_dist: SummaryCells,
    /// The centralized product-controller summary (`LT_CENT`; equals
    /// `LT_DIST` cycle for cycle — measured, not assumed).
    pub lt_cent: SummaryCells,
    /// The elastic (GALS) summary (`LT_ELAS`): the distributed control
    /// unit under per-controller local clocks ([`ElasticSpec::default`])
    /// — the price of giving up the single global clock.
    pub lt_elas: SummaryCells,
    /// Enhancement percentage per swept `P`.
    pub enhancement: Vec<f64>,
}

/// Serializable `[best][avg...][worst]` cells in nanoseconds.
#[derive(Clone, Debug)]
pub struct SummaryCells {
    /// Best-case latency, ns.
    pub best_ns: f64,
    /// Average latency per swept `P`, ns.
    pub avg_ns: Vec<f64>,
    /// Worst-case latency, ns.
    pub worst_ns: f64,
    /// The rendered cell string.
    pub rendered: String,
}

impl SummaryCells {
    fn from_summary(s: &LatencySummary, clock_ns: f64) -> Self {
        SummaryCells {
            best_ns: s.best_cycles as f64 * clock_ns,
            avg_ns: s.average_cycles.iter().map(|c| c * clock_ns).collect(),
            worst_ns: s.worst_cycles as f64 * clock_ns,
            rendered: s.to_ns_string(clock_ns),
        }
    }
}

/// The Table 2 reproduction.
#[derive(Clone, Debug)]
pub struct Table2 {
    /// Benchmark rows in the paper's order.
    pub rows: Vec<LatencyRow>,
    /// Fast clock period (ns).
    pub clock_ns: f64,
    /// The swept short-probability values.
    pub p_values: Vec<f64>,
    /// Monte-Carlo trials per average.
    pub trials: usize,
}

/// The paper's benchmark suite with its Table 2 allocations — the one
/// canonical accessor every driver, bench bin, and test routes through.
/// Graphs come from the [`benchmarks::NAMES`] registry via
/// [`benchmarks::by_name`].
pub fn paper_benchmarks() -> Vec<(Dfg, Allocation, &'static str)> {
    let rows: [(&str, Allocation, &'static str); 6] = [
        ("fir3", Allocation::paper(2, 1, 0), "*:2, +:1"),
        ("fir5", Allocation::paper(2, 1, 0), "*:2, +:1"),
        ("iir2", Allocation::paper(2, 1, 0), "*:2, +:1"),
        ("iir3", Allocation::paper(3, 2, 0), "*:3, +:2"),
        ("diffeq", Allocation::paper(2, 1, 1), "*:2, +:1, -:1"),
        ("ar_lattice4", Allocation::paper(4, 2, 0), "*:4, +:2"),
    ];
    rows.into_iter()
        .map(|(name, alloc, resources)| {
            let dfg = benchmarks::by_name(name).expect("registry covers the paper suite");
            (dfg, alloc, resources)
        })
        .collect()
}

/// Regenerates Table 2: `LT_TAU` vs `LT_DIST` vs `LT_CENT` vs `LT_ELAS`
/// for the six benchmarks at `P ∈ {0.9, 0.7, 0.5}`, with each row's trials
/// fanned over `runner`'s workers (one seed-space partition per benchmark,
/// so the table is bit-identical for any thread count). The coupled draws
/// are RNG-neutral, so the `LT_TAU`/`LT_DIST` cells match the historical
/// two-column table byte for byte; `LT_CENT` rides along on the same
/// tables and equals `LT_DIST` by bisimulation, and `LT_ELAS` (elastic
/// clocking at [`ElasticSpec::default`], skew schedules on their own
/// salted seed stream) rides the very same tables without disturbing any
/// historical cell.
///
/// Returns an error only on an abnormal simulation — in practice
/// [`tauhls_sim::SimError::Cancelled`] when `runner` carries a tripped
/// [`tauhls_sim::CancelToken`] (the paper suite itself is fault-free).
pub fn table2(
    trials: usize,
    seed: u64,
    runner: &BatchRunner,
) -> Result<Table2, tauhls_sim::SimError> {
    let timing = Timing::default();
    let p_values = vec![0.9, 0.7, 0.5];
    let mut rows = Vec::new();
    for (row_id, (dfg, alloc, resources)) in paper_benchmarks().into_iter().enumerate() {
        let name = dfg.name().to_string();
        let design = Synthesis::new(dfg)
            .allocation(alloc)
            .timing(timing)
            .run()
            .expect("benchmark synthesizes");
        let row_seed = derive_seed(seed, row_id as u64, 0);
        let (tau, dist, cent, elas) = latency_quad_batch(
            design.bound(),
            &p_values,
            trials as u64,
            row_seed,
            ElasticSpec::default(),
            runner,
        )?;
        let enhancement = enhancement_percent(&tau, &dist);
        rows.push(LatencyRow {
            name,
            resources: resources.to_string(),
            lt_tau: SummaryCells::from_summary(&tau, timing.clock_ns()),
            lt_dist: SummaryCells::from_summary(&dist, timing.clock_ns()),
            lt_cent: SummaryCells::from_summary(&cent, timing.clock_ns()),
            lt_elas: SummaryCells::from_summary(&elas, timing.clock_ns()),
            enhancement,
        });
    }
    Ok(Table2 {
        rows,
        clock_ns: timing.clock_ns(),
        p_values,
        trials,
    })
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 2. Latency comparison between TAUBM FSMs and new distributed FSMs"
        )?;
        writeln!(
            f,
            "(clock {} ns; averages over {} trials at P = {:?})",
            self.clock_ns, self.trials, self.p_values
        )?;
        writeln!(
            f,
            "{:<12} {:<14} {:<28} {:<28} {:<28} {:<28} Enhancement",
            "DFG", "Resources", "LT_TAU (ns)", "LT_DIST (ns)", "LT_CENT (ns)", "LT_ELAS (ns)"
        )?;
        for r in &self.rows {
            let enh: Vec<String> = r.enhancement.iter().map(|e| format!("{e:.1}%")).collect();
            writeln!(
                f,
                "{:<12} {:<14} {:<28} {:<28} {:<28} {:<28} [{}]",
                r.name,
                r.resources,
                r.lt_tau.rendered,
                r.lt_dist.rendered,
                r.lt_cent.rendered,
                r.lt_elas.rendered,
                enh.join(", ")
            )?;
        }
        Ok(())
    }
}

/// One point of the Fig 4 state-explosion sweep.
#[derive(Clone, Debug)]
pub struct ExplosionPoint {
    /// Number of concurrently active TAUs.
    pub n: usize,
    /// Reachable states of the centralized product (Fig 4a).
    pub cent_states: usize,
    /// Transitions leaving the all-executing product state.
    pub cent_branching: usize,
    /// Total states over the distributed controllers.
    pub dist_states: usize,
    /// States of the synchronized controller (Fig 4b).
    pub sync_states: usize,
}

/// Sweeps `n` independent TAU multiplications through all three controller
/// styles, exhibiting Fig 4's exponential-vs-linear growth.
///
/// # Panics
///
/// Panics if `max_n > 10` (the product enumerates `2^n` input minterms).
pub fn fig4_explosion(max_n: usize) -> Vec<ExplosionPoint> {
    assert!(max_n <= 10);
    let mut out = Vec::new();
    for n in 1..=max_n {
        let mut b = tauhls_dfg::DfgBuilder::new(format!("ind{n}"));
        let x = b.input("x");
        let mut seqs = Vec::new();
        for i in 0..n {
            let m = b.mul(x.into(), x.into());
            b.output(format!("y{i}"), m);
            seqs.push(vec![m]);
        }
        let dfg = b.build().expect("valid");
        let design = Synthesis::new(dfg)
            .allocation(Allocation::paper(n, 0, 0))
            .explicit_binding(seqs)
            .run()
            .expect("synthesizes");
        // The Fig 4(a) machine: raw synchronous product of the (looping)
        // unit controllers — each extra TAU doubles its states, and the
        // all-executing state branches 2^n ways.
        let fsms: Vec<tauhls_fsm::Fsm> = (0..n)
            .map(|u| tauhls_fsm::unit_controller(design.bound(), tauhls_sched::UnitId(u)))
            .collect();
        let refs: Vec<&tauhls_fsm::Fsm> = fsms.iter().collect();
        let cent = tauhls_fsm::synchronous_product("CENT", &refs);
        let init = cent.initial();
        out.push(ExplosionPoint {
            n,
            cent_states: cent.num_states(),
            cent_branching: cent.transitions_from(init).len(),
            dist_states: design.distributed().total_states(),
            sync_states: design.cent_sync().num_states(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shapes_match_paper_claims() {
        let t = table1(Encoding::Binary, &AreaModel::default());
        assert_eq!(t.rows.len(), 7);
        let get = |name: &str| t.rows.iter().find(|r| r.name == name).unwrap();
        let cent = get("CENT-FSM");
        let sync = get("CENT-SYNC-FSM");
        let dist = get("DIST-FSM");
        // Paper claim 1: DIST costs more than CENT-SYNC (≈3×), well within
        // an order of magnitude.
        assert!(dist.area_com + dist.area_seq > sync.area_com + sync.area_seq);
        assert!(dist.area_seq >= 2.0 * sync.area_seq);
        // Paper claim 2: CENT-FSM is bigger than DIST combinationally
        // (≈1.6× total in the paper).
        assert!(
            cent.area_com > dist.area_com,
            "cent {} vs dist {}",
            cent.area_com,
            dist.area_com
        );
        // CENT has (many) more states than CENT-SYNC.
        assert!(cent.states > sync.states);
        // Component rows sum to the aggregate.
        let sum_ffs: usize = t
            .rows
            .iter()
            .filter(|r| r.name.starts_with("D-FSM"))
            .map(|r| r.ffs)
            .sum();
        assert_eq!(sum_ffs, dist.ffs);
        // Display renders every row.
        let s = t.to_string();
        for r in &t.rows {
            assert!(s.contains(&r.name));
        }
    }

    #[test]
    fn table2_shape_matches_paper() {
        let t = table2(300, 42, &BatchRunner::new(2)).expect("fault-free");
        assert_eq!(t.rows.len(), 6);
        for r in &t.rows {
            // Distributed dominates everywhere.
            for (a, b) in r.lt_dist.avg_ns.iter().zip(&r.lt_tau.avg_ns) {
                assert!(a <= b, "{}: dist {a} > tau {b}", r.name);
            }
            assert!(r.lt_dist.best_ns <= r.lt_tau.best_ns);
            assert!(r.lt_dist.worst_ns <= r.lt_tau.worst_ns);
            // The centralized product is bisimilar to the distributed
            // realization: identical cells, including the rendering.
            assert_eq!(r.lt_cent.rendered, r.lt_dist.rendered, "{}", r.name);
            // Elastic clocking can only cost latency relative to the
            // single-clock distributed style (same coupled tables).
            for (e, d) in r.lt_elas.avg_ns.iter().zip(&r.lt_dist.avg_ns) {
                assert!(e >= d, "{}: elas {e} < dist {d}", r.name);
            }
            assert!(r.lt_elas.best_ns >= r.lt_dist.best_ns);
            assert!(r.lt_elas.worst_ns >= r.lt_dist.worst_ns);
            for e in &r.enhancement {
                assert!(*e >= -0.5, "{}: negative enhancement {e}", r.name);
            }
        }
        // Benchmarks with more concurrent TAUs gain more: AR-lattice (four
        // TAUs per step) beats FIR3 (at most two) at P=0.7 (paper: 8.9% vs
        // 1.6%). At P=0.5 our lattice's gain shrinks again because almost
        // every operation is long under either controller.
        let fir3 = &t.rows[0];
        let ar = &t.rows[5];
        assert!(
            ar.enhancement[1] > fir3.enhancement[1],
            "ar {:?} fir3 {:?}",
            ar.enhancement,
            fir3.enhancement
        );
        let s = t.to_string();
        assert!(s.contains("fir5") && s.contains("ar_lattice4"));
    }

    #[test]
    fn fig4_growth_is_exponential_vs_linear() {
        let pts = fig4_explosion(5);
        assert_eq!(pts.len(), 5);
        for p in &pts {
            assert_eq!(p.cent_states, 1 << p.n);
            assert_eq!(p.cent_branching, 1 << p.n);
            assert_eq!(p.dist_states, 2 * p.n);
            assert_eq!(p.sync_states, 2);
        }
    }
}
