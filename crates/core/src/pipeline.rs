//! The end-to-end synthesis pipeline: DFG + allocation + timing →
//! scheduled/bound design → controllers → area and latency reports.
//!
//! [`Synthesis::run`] is a thin driver over the staged pass pipeline in
//! [`crate::stages`]; use [`Synthesis::run_traced`] to also observe the
//! artifact-hash chain and per-stage wall times.

use std::sync::Arc;

use crate::stages::{self, BindStrategy, ControlUnits, PipelineTrace, StageCache, SynthesisInput};
use rand::Rng;
use tauhls_dfg::Dfg;
use tauhls_fsm::{synthesize, DistributedControlUnit, Encoding, Fsm, SynthesizedFsm};
use tauhls_logic::AreaModel;
use tauhls_sched::{Allocation, BoundDfg, UnitId};
use tauhls_sim::{
    latency_summary, latency_summary_batch, BatchRunner, ControlStyle, LatencySummary,
};

/// Timing parameters of the telescopic system (paper Table 2 footer:
/// `SD(×) = 15 ns, LD(×) = 20 ns, FD(+,−) = 15 ns`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Timing {
    /// Short delay of the telescopic units — the fast clock period, ns.
    pub sd_ns: f64,
    /// Long (worst-case) delay of the telescopic units, ns.
    pub ld_ns: f64,
    /// Fixed delay of the non-telescopic units, ns.
    pub fd_ns: f64,
}

impl Default for Timing {
    fn default() -> Self {
        Timing {
            sd_ns: 15.0,
            ld_ns: 20.0,
            fd_ns: 15.0,
        }
    }
}

impl Timing {
    /// The system clock period: the slowest single-cycle path, i.e.
    /// `max(SD, FD)`.
    pub fn clock_ns(&self) -> f64 {
        self.sd_ns.max(self.fd_ns)
    }
}

/// Builder for a telescopic-controller synthesis run.
///
/// # Examples
///
/// ```
/// use tauhls_core::Synthesis;
/// use tauhls_dfg::benchmarks::fir3;
/// use tauhls_sched::Allocation;
///
/// let design = Synthesis::new(fir3())
///     .allocation(Allocation::paper(2, 1, 0))
///     .run()?;
/// assert_eq!(design.distributed().controllers().len(), 3);
/// # Ok::<(), tauhls_core::SynthesisError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Synthesis {
    dfg: Dfg,
    allocation: Allocation,
    timing: Timing,
    strategy: BindStrategy,
    build_centralized: bool,
}

/// Errors from [`Synthesis::run`].
#[derive(Clone, Debug, PartialEq)]
pub enum SynthesisError {
    /// The request is malformed before any pass can run (empty graph,
    /// self-contradictory configuration).
    InvalidConfig(String),
    /// The allocation lacks a unit for a used operation class.
    InsufficientAllocation,
    /// The explicit binding was rejected.
    Binding(tauhls_sched::BindError),
}

impl std::fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthesisError::InvalidConfig(why) => write!(f, "invalid synthesis request: {why}"),
            SynthesisError::InsufficientAllocation => {
                write!(f, "allocation lacks a unit for a used operation class")
            }
            SynthesisError::Binding(e) => write!(f, "binding rejected: {e}"),
        }
    }
}

impl std::error::Error for SynthesisError {}

impl Synthesis {
    /// Starts a synthesis run for the given graph with the paper's default
    /// timing and an empty allocation (set one with
    /// [`Synthesis::allocation`]).
    pub fn new(dfg: Dfg) -> Self {
        Synthesis {
            dfg,
            allocation: Allocation::new(),
            timing: Timing::default(),
            strategy: BindStrategy::LeftEdge,
            build_centralized: false,
        }
    }

    /// Sets the resource allocation.
    pub fn allocation(mut self, alloc: Allocation) -> Self {
        self.allocation = alloc;
        self
    }

    /// Overrides the timing parameters.
    pub fn timing(mut self, timing: Timing) -> Self {
        self.timing = timing;
        self
    }

    /// Selects the binding strategy (left-edge by default).
    pub fn strategy(mut self, strategy: BindStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Forces an explicit per-unit binding (paper-figure reproduction).
    pub fn explicit_binding(mut self, sequences: Vec<Vec<tauhls_dfg::OpId>>) -> Self {
        self.strategy = BindStrategy::Explicit(sequences);
        self
    }

    /// Also build the centralized product FSM (CENT-FSM). Off by default —
    /// its state count grows exponentially with concurrent TAUs.
    pub fn with_centralized(mut self) -> Self {
        self.build_centralized = true;
        self
    }

    /// Runs scheduling, binding, and controller generation.
    ///
    /// # Errors
    ///
    /// Returns a [`SynthesisError`] if the allocation cannot execute the
    /// graph or an explicit binding is inconsistent.
    pub fn run(self) -> Result<Design, SynthesisError> {
        self.run_traced().map(|(design, _)| design)
    }

    /// Like [`Synthesis::run`], returning the [`PipelineTrace`] alongside
    /// the design: the artifact-hash chain plus per-stage wall times.
    ///
    /// # Errors
    ///
    /// Returns a [`SynthesisError`] if the allocation cannot execute the
    /// graph or an explicit binding is inconsistent.
    pub fn run_traced(self) -> Result<(Design, PipelineTrace), SynthesisError> {
        self.run_cached(None)
    }

    /// Like [`Synthesis::run_traced`], consulting (and filling) a shared
    /// [`StageCache`] so repeated or prefix-equal requests skip work.
    ///
    /// # Errors
    ///
    /// Returns a [`SynthesisError`] if the allocation cannot execute the
    /// graph or an explicit binding is inconsistent.
    pub fn run_cached(
        self,
        cache: Option<&StageCache>,
    ) -> Result<(Design, PipelineTrace), SynthesisError> {
        let mut trace = PipelineTrace::default();
        let input = SynthesisInput {
            dfg: self.dfg,
            allocation: self.allocation,
            strategy: self.strategy,
        };
        let controls = stages::run_front(&input, self.build_centralized, cache, &mut trace)?;
        Ok((
            Design {
                controls,
                timing: self.timing,
            },
            trace,
        ))
    }
}

/// A fully synthesized design: binding plus all generated controllers.
#[derive(Clone, Debug)]
pub struct Design {
    controls: Arc<ControlUnits>,
    timing: Timing,
}

impl Design {
    /// The scheduled-and-bound DFG.
    pub fn bound(&self) -> &BoundDfg {
        self.controls.design().bound()
    }

    /// The generated controllers as a shareable staged artifact (the
    /// input to the `logic` stage).
    pub fn control_units(&self) -> &Arc<ControlUnits> {
        &self.controls
    }

    /// The distributed control unit (the paper's proposal).
    pub fn distributed(&self) -> &DistributedControlUnit {
        self.controls.distributed()
    }

    /// The synchronized centralized controller (CENT-SYNC / TAUBM style).
    pub fn cent_sync(&self) -> &Fsm {
        self.controls.cent_sync()
    }

    /// The centralized product FSM, if requested via
    /// [`Synthesis::with_centralized`].
    pub fn centralized(&self) -> Option<&Fsm> {
        self.controls.centralized()
    }

    /// The timing parameters.
    pub fn timing(&self) -> &Timing {
        &self.timing
    }

    /// Synthesizes one distributed controller to gates.
    ///
    /// # Panics
    ///
    /// Panics if the unit has no controller.
    pub fn synthesize_controller(
        &self,
        unit: UnitId,
        encoding: Encoding,
        model: &AreaModel,
    ) -> SynthesizedFsm {
        let fsm = self
            .controls
            .distributed()
            .controller(unit)
            .expect("unit has a controller");
        synthesize(fsm, encoding, model)
    }

    /// Latency summary under a control style (cycles; multiply by
    /// [`Timing::clock_ns`] for ns).
    pub fn latency(
        &self,
        style: ControlStyle,
        p_values: &[f64],
        trials: usize,
        rng: &mut impl Rng,
    ) -> LatencySummary {
        latency_summary(self.bound(), style, p_values, trials, rng).expect("fault-free simulation")
    }

    /// Like [`Design::latency`], but on the deterministic batch engine:
    /// trials fan out over `runner`'s workers and the summary is
    /// bit-identical for any thread count.
    pub fn latency_batch(
        &self,
        style: ControlStyle,
        p_values: &[f64],
        trials: usize,
        seed: u64,
        runner: &BatchRunner,
    ) -> LatencySummary {
        latency_summary_batch(self.bound(), style, p_values, trials as u64, seed, runner)
            .expect("fault-free simulation")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tauhls_dfg::benchmarks::{diffeq, fir3};

    #[test]
    fn pipeline_runs_end_to_end() {
        let design = Synthesis::new(diffeq())
            .allocation(Allocation::paper(2, 1, 1))
            .run()
            .unwrap();
        assert_eq!(design.distributed().controllers().len(), 4);
        let mut rng = StdRng::seed_from_u64(1);
        let lat = design.latency(ControlStyle::Distributed, &[0.9], 50, &mut rng);
        assert_eq!(lat.best_cycles, 4);
        let batched = design.latency_batch(
            ControlStyle::Distributed,
            &[0.9],
            50,
            1,
            &BatchRunner::new(2),
        );
        assert_eq!(batched.best_cycles, 4);
        assert_eq!(
            batched,
            design.latency_batch(
                ControlStyle::Distributed,
                &[0.9],
                50,
                1,
                &BatchRunner::serial()
            )
        );
    }

    #[test]
    fn insufficient_allocation_rejected() {
        let err = Synthesis::new(diffeq())
            .allocation(Allocation::paper(2, 1, 0))
            .run()
            .unwrap_err();
        assert_eq!(err, SynthesisError::InsufficientAllocation);
    }

    #[test]
    fn zero_multipliers_with_multiply_ops_rejected_without_panic() {
        // fir3 is multiplication-heavy; an allocation with no multiplier
        // must fail as a typed error at entry, not a downstream panic.
        let err = Synthesis::new(fir3())
            .allocation(Allocation::paper(0, 1, 0))
            .run()
            .unwrap_err();
        assert_eq!(err, SynthesisError::InsufficientAllocation);
    }

    #[test]
    fn empty_graph_rejected_as_invalid_config() {
        let empty = tauhls_dfg::DfgBuilder::new("empty").build().unwrap();
        let err = Synthesis::new(empty)
            .allocation(Allocation::paper(1, 1, 1))
            .run()
            .unwrap_err();
        assert!(matches!(err, SynthesisError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn chains_strategy_matches_bind_chains() {
        use crate::stages::BindStrategy;
        let design = Synthesis::new(fir3())
            .allocation(Allocation::paper(2, 1, 0))
            .strategy(BindStrategy::Chains)
            .run()
            .unwrap();
        let direct = tauhls_sched::BoundDfg::bind_chains(&fir3(), &Allocation::paper(2, 1, 0));
        assert_eq!(design.bound().sequences(), direct.sequences());
        assert_eq!(design.bound().schedule_arcs(), direct.schedule_arcs());
    }

    #[test]
    fn traced_run_reports_four_front_stages() {
        let (design, trace) = Synthesis::new(fir3())
            .allocation(Allocation::paper(2, 1, 0))
            .run_traced()
            .unwrap();
        assert_eq!(design.distributed().controllers().len(), 3);
        let stages: Vec<_> = trace.records.iter().map(|r| r.stage).collect();
        assert_eq!(stages, ["canonicalize", "order", "bind", "controllers"]);
        assert!(trace.records.iter().all(|r| !r.cache_hit));
    }

    #[test]
    fn centralized_on_request() {
        let d = Synthesis::new(fir3())
            .allocation(Allocation::paper(2, 1, 0))
            .run()
            .unwrap();
        assert!(d.centralized().is_none());
        let d = Synthesis::new(fir3())
            .allocation(Allocation::paper(2, 1, 0))
            .with_centralized()
            .run()
            .unwrap();
        let c = d.centralized().unwrap();
        c.check().unwrap();
        assert!(c.num_states() > d.cent_sync().num_states());
    }

    #[test]
    fn timing_defaults_match_paper() {
        let t = Timing::default();
        assert_eq!(t.clock_ns(), 15.0);
        assert_eq!(t.ld_ns, 20.0);
    }
}
