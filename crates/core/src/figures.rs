//! Textual regeneration of the paper's illustrative figures (1, 2, 3, 6,
//! 7). Each function returns a report string; the `tauhls-bench` binaries
//! print them, and DOT output is available through the underlying types.

use std::fmt::Write as _;
use tauhls_datapath::{ArrayMultiplier, CompletionGenerator, FunctionalUnit, Tau, Technology};
use tauhls_dfg::{benchmarks, OpId, ResourceClass, TaubmDfg};
use tauhls_fsm::{cent_sync_fsm_with_schedule, unit_controller, DistributedControlUnit};
use tauhls_logic::AreaModel;
use tauhls_sched::{reachability, Allocation, BoundDfg, DependencyGraph, UnitId};

/// The paper's Fig 2 time-step assignment for [`benchmarks::fig2_dfg`]:
/// `T0={O0,O3}, T1={O1}, T2={O2,O4}, T3={O5}`.
pub const FIG2_STEPS: [usize; 6] = [0, 1, 2, 0, 2, 3];

/// The paper's Fig 3(c) binding for [`benchmarks::fig3_dfg`]:
/// `(O0,O1)→M1, (O6,O4,O8)→M2, (O3,O2)→A1, (O7,O5)→A2`.
pub fn fig3_paper_binding() -> BoundDfg {
    BoundDfg::bind_explicit(
        &benchmarks::fig3_dfg(),
        &Allocation::paper(2, 2, 0),
        vec![
            vec![OpId(0), OpId(1)],
            vec![OpId(6), OpId(4), OpId(8)],
            vec![OpId(3), OpId(2)],
            vec![OpId(7), OpId(5)],
        ],
    )
    .expect("the paper binding is valid")
}

/// Fig 1: the structure of a TAU — a small multiplier telescoped with a
/// synthesized completion signal generator, with SD/LD and the generator's
/// own gate cost.
pub fn fig1_report() -> String {
    let mut s = String::new();
    let unit = ArrayMultiplier::new(8);
    let short = 9;
    let tau = Tau::new(unit, short);
    let tech = Technology {
        ns_per_level: 20.0 / f64::from(tau.long_levels()),
    };
    let _ = writeln!(
        s,
        "Fig 1. A telescopic arithmetic unit (8-bit array multiplier)"
    );
    let _ = writeln!(
        s,
        "  arithmetic logic : {} (worst case {} gate levels)",
        unit.name(),
        unit.worst_delay_levels()
    );
    let _ = writeln!(
        s,
        "  SD = {} levels = {:.1} ns   LD = {} levels = {:.1} ns",
        tau.short_levels(),
        tau.sd_ns(&tech),
        tau.long_levels(),
        tau.ld_ns(&tech)
    );
    let gen = CompletionGenerator::synthesize(&unit, short);
    let area = gen.area(&AreaModel::default());
    let _ = writeln!(
        s,
        "  completion signal generator: {} product terms, {} literals, {:.0} GE",
        gen.cover().len(),
        gen.cover().literal_count(),
        area.combinational
    );
    let _ = writeln!(s, "  P over uniform operands = {:.3}", gen.uniform_p());
    let _ = writeln!(
        s,
        "  example: 3 x 5   -> C = {}",
        i32::from(tau.evaluate(3, 5).short)
    );
    let _ = writeln!(
        s,
        "  example: 255 x 255 -> C = {}",
        i32::from(tau.evaluate(255, 255).short)
    );
    s
}

/// Fig 2: the original DFG, its TAUBM DFG (split steps), and the TAUBM FSM.
pub fn fig2_report() -> String {
    let mut s = String::new();
    let g = benchmarks::fig2_dfg();
    let _ = writeln!(
        s,
        "Fig 2(a). Original DFG '{}' ({} ops)",
        g.name(),
        g.num_ops()
    );
    for v in g.op_ids() {
        let _ = writeln!(
            s,
            "  {v} [{}] preds: {:?}",
            g.op(v).kind.symbol(),
            g.preds(v)
        );
    }
    let taubm = TaubmDfg::derive(&g, &FIG2_STEPS, &[ResourceClass::Multiplier].into());
    let _ = writeln!(s, "\nFig 2(b). TAUBM DFG (× bound to TAUs):");
    for (i, st) in taubm.steps().iter().enumerate() {
        let _ = writeln!(
            s,
            "  T{i}{}  fixed: {:?}  tau: {:?}",
            if st.is_split() { " + T'" } else { "    " },
            st.fixed_ops,
            st.tau_ops
        );
    }
    let _ = writeln!(
        s,
        "  latency: best {} cycles, worst {} cycles",
        taubm.best_latency_cycles(),
        taubm.worst_latency_cycles()
    );
    let bound = BoundDfg::bind(&g, &Allocation::paper(2, 1, 0));
    let fsm = cent_sync_fsm_with_schedule(&bound, &FIG2_STEPS);
    let _ = writeln!(s, "\nFig 2(c). TAUBM FSM:");
    let _ = write!(s, "{}", fsm.describe());
    s
}

/// Fig 3: the dependency graph of the multiplications, its clique cover,
/// the schedule-arc insertion, and the final bound DFG.
pub fn fig3_report() -> String {
    let mut s = String::new();
    let g = benchmarks::fig3_dfg();
    let reach = reachability(&g);
    let dep = DependencyGraph::for_class(&g, ResourceClass::Multiplier, &reach);
    let _ = writeln!(s, "Fig 3(b). Dependency graph of the multiplications:");
    let _ = writeln!(s, "  nodes: {:?}", dep.nodes());
    for (i, &a) in dep.nodes().iter().enumerate() {
        for &b in dep.nodes().iter().skip(i + 1) {
            if dep.dependent(a, b) {
                let _ = writeln!(s, "  edge {a} -- {b}");
            }
        }
    }
    let cover = dep.min_clique_cover();
    let _ = writeln!(
        s,
        "  minimum clique cover: {:?} -> {} TAU multipliers required",
        cover,
        cover.len()
    );
    let bound = fig3_paper_binding();
    let _ = writeln!(
        s,
        "\nFig 3(c). Scheduled DFG under 2 TAU multipliers + 2 adders:"
    );
    let units = bound.allocation().units();
    for (u, seq) in bound.sequences().iter().enumerate() {
        let _ = writeln!(s, "  {} runs {:?}", units[u].display_name(), seq);
    }
    let _ = writeln!(s, "  inserted schedule arcs: {:?}", bound.schedule_arcs());
    s
}

/// Fig 6: the arithmetic unit controller FSM for TAU multiplier M1 of the
/// Fig 3(c) binding.
pub fn fig6_report() -> String {
    let bound = fig3_paper_binding();
    let fsm = unit_controller(&bound, UnitId(0));
    format!("Fig 6. {}", fsm.describe())
}

/// Fig 7: the distributed synchronous global control unit with optimized
/// completion-signal wiring.
pub fn fig7_report() -> String {
    let mut s = String::new();
    let bound = fig3_paper_binding();
    let cu = DistributedControlUnit::generate(&bound);
    let units = bound.allocation().units();
    let _ = writeln!(s, "Fig 7. Distributed synchronous global control unit");
    for (u, fsm) in cu.controllers() {
        let _ = writeln!(
            s,
            "  CONT_{}: {} states, inputs {:?}, outputs {:?}",
            units[u.0].display_name(),
            fsm.num_states(),
            fsm.inputs(),
            fsm.outputs()
        );
    }
    let _ = writeln!(s, "  completion-signal wiring (after optimization):");
    for (p, sig, c) in cu.signal_wiring() {
        let _ = writeln!(
            s,
            "    {} --{}--> {}",
            units[p.0].display_name(),
            sig,
            units[c.0].display_name()
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_reports_telescoping() {
        let s = fig1_report();
        assert!(s.contains("SD = 9 levels"));
        assert!(s.contains("completion signal generator"));
        assert!(s.contains("3 x 5   -> C = 1"));
        assert!(s.contains("255 x 255 -> C = 0"));
    }

    #[test]
    fn fig2_reports_split_steps_and_fsm() {
        let s = fig2_report();
        assert!(s.contains("best 4 cycles, worst 6 cycles"));
        assert!(s.contains("S0'"));
        assert!(s.contains("S2'"));
    }

    #[test]
    fn fig3_reports_cliques_and_arcs() {
        let s = fig3_report();
        assert!(s.contains("3 TAU multipliers required"));
        assert!(s.contains("O6, O4"));
        assert!(s.contains("schedule arcs"));
    }

    #[test]
    fn fig6_lists_ten_transitions() {
        let s = fig6_report();
        assert!(s.contains("10 transitions"));
        assert!(s.contains("C_M1"));
        assert!(s.contains("C_CO(3)"));
    }

    #[test]
    fn fig7_shows_optimized_wiring() {
        let s = fig7_report();
        assert!(s.contains("CONT_M1"));
        assert!(s.contains("--C_CO(3)-->"));
        // C_CO(0) was optimized away, so it never appears as wiring.
        assert!(!s.contains("--C_CO(0)-->"));
    }
}
