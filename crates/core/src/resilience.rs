//! Resilience sweeps: Monte-Carlo fault injection through the batch engine.
//!
//! The fault-injection layer in `tauhls-sim` turns completion-signal
//! failures into structured [`SimError`]s; this module measures how well
//! that detection works. For every fault kind it samples random fault
//! plans (seeded separately from the simulation streams, so plan shape
//! never perturbs the completion draws), runs each plan through
//! [`simulate_distributed_with`] on the [`BatchRunner`], and classifies
//! the outcome:
//!
//! * **detected** — the run ended in [`SimError::Deadlock`] or
//!   [`SimError::Desync`]; the *detection latency* is the gap between the
//!   injection cycle and the diagnosed cycle;
//! * **survived** — the run completed and passed its post-run invariants
//!   (e.g. a dropped pulse whose producer never actually pulsed at that
//!   cycle, or a fault scheduled after the graph drained).
//!
//! All counters are exact integers folded in chunk order, so the report —
//! including its JSON rendering — is bit-identical for any thread count.

use rand::rngs::StdRng;
use std::fmt;
use tauhls_check::{arbitrary_fault, Gen};
use tauhls_fsm::DistributedControlUnit;
use tauhls_sched::BoundDfg;
use tauhls_sim::{
    derive_seed, elastic_trial_skew_seed, simulate_cent_with, simulate_distributed_with,
    simulate_elastic_with, trial_rng, Accumulator, BatchRunner, CentControlUnit, CompletionModel,
    ControlStyleSet, ElasticSpec, FaultPlan, LaneConfigs, LaneModels, LaneOutcome, SimConfig,
    SimError, SlicedSim, LANES,
};

/// The fault-kind tags a sweep probes, in report order.
pub const FAULT_KINDS: [&str; 6] = [
    "stuck_short",
    "stuck_long",
    "drop_pulse",
    "spurious_pulse",
    "delay_latch",
    "flip_state",
];

/// Seed-space partition for the simulation streams (one job per kind).
const SIM_JOB_BASE: u64 = 0x7265_7369; // "resi"
/// Disjoint partition for the plan-generation streams.
const PLAN_JOB_BASE: u64 = 0x706C_616E; // "plan"

/// Which engine legs a resilience sweep runs, and the elastic clocking
/// it probes.
///
/// The distributed leg is mandatory — it is the engine under test and
/// every counter is classified against it. The CENT and ELASTIC legs are
/// optional cross-checks: skipping one zeroes its counters without
/// perturbing any other leg (all legs re-derive their streams from the
/// same `(seed, kind, trial)` coordinates and the table model consumes
/// no RNG at simulation time).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResilienceOptions {
    /// Engine legs to run; must contain [`ControlStyleSet::DIST`].
    pub styles: ControlStyleSet,
    /// Clock-domain spec for the ELASTIC leg (ignored when the leg is
    /// not selected).
    pub elastic: ElasticSpec,
}

impl Default for ResilienceOptions {
    fn default() -> Self {
        ResilienceOptions {
            styles: ControlStyleSet::DIST | ControlStyleSet::CENT | ControlStyleSet::ELASTIC,
            elastic: ElasticSpec::default(),
        }
    }
}

/// Exact per-kind tallies; integer-only so folding — per-chunk on one
/// node or per-partition across nodes — is order-independent and exact.
///
/// These are the values a distributed partition puts on the wire: every
/// derived statistic in [`KindStats`] (rates, mean latency) is a pure
/// function of them, so a report rebuilt from merged counters renders to
/// the same bytes as a single-node sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KindCounters {
    /// Trials ending in a diagnosed deadlock.
    pub deadlock: u64,
    /// Trials ending in a diagnosed desynchronization.
    pub desync: u64,
    /// Trials that completed and passed the post-run invariants.
    pub survived: u64,
    /// Sum of detection latencies (injection → diagnosis) over trials
    /// that reported a detected cycle.
    pub latency_sum: u64,
    /// Number of trials contributing to [`KindCounters::latency_sum`].
    pub latency_samples: u64,
    /// Trials where the CENT engine classified identically to DIST.
    pub cent_agree: u64,
    /// ELASTIC-leg trials ending in a diagnosed deadlock.
    pub elastic_deadlock: u64,
    /// ELASTIC-leg trials ending in a diagnosed desynchronization.
    pub elastic_desync: u64,
    /// ELASTIC-leg trials that completed and passed the invariants.
    pub elastic_survived: u64,
    /// Sum of ELASTIC-leg detection latencies (fabric cycles).
    pub elastic_latency_sum: u64,
    /// Trials contributing to [`KindCounters::elastic_latency_sum`].
    pub elastic_latency_samples: u64,
}

impl Accumulator for KindCounters {
    fn empty() -> Self {
        KindCounters::default()
    }
    fn fold(&mut self, other: Self) {
        self.deadlock += other.deadlock;
        self.desync += other.desync;
        self.survived += other.survived;
        self.latency_sum += other.latency_sum;
        self.latency_samples += other.latency_samples;
        self.cent_agree += other.cent_agree;
        self.elastic_deadlock += other.elastic_deadlock;
        self.elastic_desync += other.elastic_desync;
        self.elastic_survived += other.elastic_survived;
        self.elastic_latency_sum += other.elastic_latency_sum;
        self.elastic_latency_samples += other.elastic_latency_samples;
    }
}

/// Sweep results for one fault kind.
#[derive(Clone, Debug)]
pub struct KindStats {
    /// The fault-kind tag (see [`FAULT_KINDS`]).
    pub kind: String,
    /// Trials run for this kind.
    pub trials: u64,
    /// Trials ending in a diagnosed deadlock.
    pub detected_deadlock: u64,
    /// Trials ending in a diagnosed desynchronization.
    pub detected_desync: u64,
    /// Trials that completed and passed the post-run invariants.
    pub survived: u64,
    /// Mean cycles from injection to diagnosis, over detected trials
    /// (0 when nothing was detected).
    pub mean_detection_latency: f64,
    /// Trials where the centralized CENT engine, fed the same completion
    /// table and fault plan, classified the outcome identically to the
    /// distributed engine (same cycle count on survival, same error
    /// variant on detection) — a bisimulation cross-check on the fault
    /// path.
    pub cent_agreement: u64,
    /// ELASTIC-leg trials ending in a diagnosed deadlock (0 when the
    /// elastic leg was not selected).
    pub elastic_deadlock: u64,
    /// ELASTIC-leg trials ending in a diagnosed desynchronization.
    pub elastic_desync: u64,
    /// ELASTIC-leg trials that completed and passed the invariants.
    pub elastic_survived: u64,
    /// Mean fabric cycles from injection to diagnosis on the ELASTIC
    /// leg (0 when nothing was detected).
    pub elastic_mean_detection_latency: f64,
}

impl KindStats {
    /// Fraction of trials where the fault was caught as a structured error.
    pub fn detection_rate(&self) -> f64 {
        (self.detected_deadlock + self.detected_desync) as f64 / self.trials as f64
    }

    /// Fraction of trials the system rode through unharmed.
    pub fn survival_fraction(&self) -> f64 {
        self.survived as f64 / self.trials as f64
    }

    /// Fraction of trials where CENT and DIST agreed (see
    /// [`KindStats::cent_agreement`]).
    pub fn cent_agreement_rate(&self) -> f64 {
        self.cent_agreement as f64 / self.trials as f64
    }

    /// Fraction of ELASTIC-leg trials caught as a structured error.
    pub fn elastic_detection_rate(&self) -> f64 {
        (self.elastic_deadlock + self.elastic_desync) as f64 / self.trials as f64
    }

    /// Fraction of ELASTIC-leg trials the system rode through unharmed.
    pub fn elastic_survival_fraction(&self) -> f64 {
        self.elastic_survived as f64 / self.trials as f64
    }
}

/// A full resilience sweep over every fault kind for one bound design.
#[derive(Clone, Debug)]
pub struct ResilienceReport {
    /// Benchmark name.
    pub name: String,
    /// Short-completion probability of the completion draws.
    pub p: f64,
    /// Trials per fault kind.
    pub trials: u64,
    /// Base seed.
    pub seed: u64,
    /// One row per fault kind, in [`FAULT_KINDS`] order.
    pub rows: Vec<KindStats>,
}

/// Draws a fault of exactly the requested kind by rejection from the
/// shared [`arbitrary_fault`] distribution (deterministic in the `Gen`
/// stream; each round hits the target kind with probability 1/6).
fn draw_fault_of_kind(
    g: &mut Gen,
    tag: &str,
    num_ops: usize,
    num_controllers: usize,
    max_cycle: usize,
) -> tauhls_sim::Fault {
    loop {
        let f = arbitrary_fault(g, num_ops, num_controllers, max_cycle);
        if f.kind.tag() == tag {
            return f;
        }
    }
}

/// Runs `trials` fault-injection trials per fault kind against the
/// distributed engine at short-probability `p`, fanned over `runner`'s
/// workers.
///
/// Every trial derives two independent streams from `(seed, kind, trial)`:
/// one generates the fault plan, the other the completion draws — so the
/// completion table a trial sees is independent of the fault injected
/// into it.
///
/// # Panics
///
/// Panics if `trials == 0` or `p` is not a probability.
pub fn resilience_sweep(
    bound: &BoundDfg,
    p: f64,
    trials: u64,
    seed: u64,
    runner: &BatchRunner,
) -> ResilienceReport {
    resilience_sweep_with(
        bound,
        p,
        trials,
        seed,
        &ResilienceOptions::default(),
        runner,
    )
}

/// [`resilience_sweep`] with explicit leg selection and elastic spec.
///
/// The distributed counters are invariant under the options: deselecting
/// CENT or ELASTIC only zeroes that leg's columns, and the elastic spec
/// only shapes the elastic columns.
///
/// # Panics
///
/// Panics if `trials == 0`, `p` is not a probability, or `opts.styles`
/// does not contain the distributed leg.
pub fn resilience_sweep_with(
    bound: &BoundDfg,
    p: f64,
    trials: u64,
    seed: u64,
    opts: &ResilienceOptions,
    runner: &BatchRunner,
) -> ResilienceReport {
    let counters =
        resilience_kind_counters_with(bound, p, trials, seed, 0..FAULT_KINDS.len(), opts, runner);
    report_from_counters(bound.dfg().name(), p, trials, seed, &counters)
}

/// Runs the fault-injection trials for a contiguous *range* of fault
/// kinds (global indices into [`FAULT_KINDS`]) and returns their raw
/// counters, one entry per kind in range order.
///
/// Because every trial is seeded from the global `(seed, kind, trial)`
/// coordinates, the counters a sub-range produces are identical to the
/// corresponding rows of a full sweep — this is the partition primitive a
/// distributed coordinator shards a resilience sweep on.
///
/// # Panics
///
/// Panics if `trials == 0`, `p` is not a probability, or the range runs
/// past [`FAULT_KINDS`].
pub fn resilience_kind_counters(
    bound: &BoundDfg,
    p: f64,
    trials: u64,
    seed: u64,
    kinds: std::ops::Range<usize>,
    runner: &BatchRunner,
) -> Vec<KindCounters> {
    resilience_kind_counters_with(
        bound,
        p,
        trials,
        seed,
        kinds,
        &ResilienceOptions::default(),
        runner,
    )
}

/// [`resilience_kind_counters`] with explicit leg selection and elastic
/// spec; the partition primitive behind [`resilience_sweep_with`].
///
/// # Panics
///
/// Panics if `trials == 0`, `p` is not a probability, the range runs
/// past [`FAULT_KINDS`], or `opts.styles` does not contain the
/// distributed leg.
pub fn resilience_kind_counters_with(
    bound: &BoundDfg,
    p: f64,
    trials: u64,
    seed: u64,
    kinds: std::ops::Range<usize>,
    opts: &ResilienceOptions,
    runner: &BatchRunner,
) -> Vec<KindCounters> {
    assert!(trials > 0 && (0.0..=1.0).contains(&p));
    assert!(kinds.end <= FAULT_KINDS.len());
    assert!(
        opts.styles.contains(ControlStyleSet::DIST),
        "the distributed leg is the engine under test and cannot be deselected"
    );
    let run_cent = opts.styles.contains(ControlStyleSet::CENT);
    let run_elastic = opts.styles.contains(ControlStyleSet::ELASTIC);
    let cu = DistributedControlUnit::generate(bound);
    let cent_cu = CentControlUnit::without_product(bound);
    let num_ops = bound.dfg().num_ops();
    let num_controllers = cu.controllers().len();
    // Injection window: wide enough to hit every phase of a run (worst
    // case is ~best + one extension per TAU op <= 2n), narrow enough that
    // most faults land inside the run.
    let max_cycle = 2 * num_ops + 4;
    let mut out = Vec::with_capacity(kinds.len());
    for kind_idx in kinds {
        let tag = &FAULT_KINDS[kind_idx];
        // Reconstructs one trial's fault plan and completion table and runs
        // both scalar legs — the oracle path for lanes the sliced engine
        // declines (every detected fault lands here, since the sliced
        // engine defers all error diagnosis to the scalar kernel).
        let scalar_trial =
            |trial: u64, fault: &tauhls_sim::Fault, cfg: &SimConfig, acc: &mut KindCounters| {
                let mut rng = trial_rng(seed, SIM_JOB_BASE + kind_idx as u64, trial);
                let table = CompletionModel::draw_table(num_ops, p, &mut rng);
                let outcome = simulate_distributed_with(bound, &cu, &table, None, &mut rng, cfg);
                // The table model never consumes RNG, so the CENT leg can ride
                // the same stream without perturbing the distributed outcome.
                if run_cent {
                    let cent_outcome =
                        simulate_cent_with(bound, &cent_cu, &table, None, &mut rng, cfg);
                    let agree = match (&outcome, &cent_outcome) {
                        (Ok(d), Ok(c)) => d.cycles == c.cycles,
                        (Err(d), Err(c)) => std::mem::discriminant(d) == std::mem::discriminant(c),
                        _ => false,
                    };
                    if agree {
                        acc.cent_agree += 1;
                    }
                }
                match outcome {
                    Ok(_) => acc.survived += 1,
                    Err(err) => {
                        if matches!(err, SimError::Deadlock(_)) {
                            acc.deadlock += 1;
                        } else {
                            acc.desync += 1;
                        }
                        if let Some(cycle) = err.detected_cycle() {
                            acc.latency_sum += cycle.saturating_sub(fault.at_cycle) as u64;
                            acc.latency_samples += 1;
                        }
                    }
                }
            };
        // The elastic oracle for lanes the sliced elastic engine declines:
        // rebuilds the trial's table on a fresh stream and runs the scalar
        // GALS kernel with the trial's derived skew schedule.
        let scalar_elastic_trial = |trial: u64,
                                    fault: &tauhls_sim::Fault,
                                    cfg: &SimConfig,
                                    acc: &mut KindCounters| {
            let mut rng = trial_rng(seed, SIM_JOB_BASE + kind_idx as u64, trial);
            let table = CompletionModel::draw_table(num_ops, p, &mut rng);
            let skew = elastic_trial_skew_seed(seed, SIM_JOB_BASE + kind_idx as u64, trial);
            let outcome =
                simulate_elastic_with(bound, &cu, &table, None, &mut rng, cfg, opts.elastic, skew);
            match outcome {
                Ok(_) => acc.elastic_survived += 1,
                Err(err) => {
                    if matches!(err, SimError::Deadlock(_)) {
                        acc.elastic_deadlock += 1;
                    } else {
                        acc.elastic_desync += 1;
                    }
                    if let Some(cycle) = err.detected_cycle() {
                        acc.elastic_latency_sum += cycle.saturating_sub(fault.at_cycle) as u64;
                        acc.elastic_latency_samples += 1;
                    }
                }
            }
        };
        let acc: KindCounters = runner.run_chunked(
            trials,
            || {
                (
                    SlicedSim::distributed(bound, &cu, None),
                    Vec::<StdRng>::new(),
                    Vec::<CompletionModel>::new(),
                    Vec::<SimConfig>::new(),
                    Vec::<tauhls_sim::Fault>::new(),
                    Vec::<u64>::new(),
                )
            },
            |(sim, rngs, tables, cfgs, faults, skews), range, acc: &mut KindCounters| {
                let mut start = range.start;
                while start < range.end {
                    let end = (start + LANES as u64).min(range.end);
                    rngs.clear();
                    tables.clear();
                    cfgs.clear();
                    faults.clear();
                    skews.clear();
                    for trial in start..end {
                        let plan_seed = derive_seed(seed, PLAN_JOB_BASE + kind_idx as u64, trial);
                        let mut plan_gen = Gen::from_seed(plan_seed);
                        let fault = draw_fault_of_kind(
                            &mut plan_gen,
                            tag,
                            num_ops,
                            num_controllers,
                            max_cycle,
                        );
                        cfgs.push(SimConfig::with_faults(FaultPlan::single(
                            fault.at_cycle,
                            fault.kind,
                        )));
                        faults.push(fault);
                        let mut rng = trial_rng(seed, SIM_JOB_BASE + kind_idx as u64, trial);
                        tables.push(CompletionModel::draw_table(num_ops, p, &mut rng));
                        rngs.push(rng);
                        skews.push(elastic_trial_skew_seed(
                            seed,
                            SIM_JOB_BASE + kind_idx as u64,
                            trial,
                        ));
                    }
                    let out = sim.run(
                        &LaneModels::PerLane(&tables[..]),
                        &LaneConfigs::PerLane(&cfgs[..]),
                        rngs,
                    );
                    for (lane, outcome) in out.iter().enumerate() {
                        match outcome {
                            LaneOutcome::Done(_) => {
                                // A sliced lane only completes when the run
                                // survived its post-run invariants; CENT is
                                // the product-free wrapper around the same
                                // controller bank, so agreement holds by
                                // construction (the scalar fallback path
                                // still cross-checks it on every detected
                                // trial).
                                acc.survived += 1;
                                if run_cent {
                                    acc.cent_agree += 1;
                                }
                            }
                            LaneOutcome::Fallback => {
                                scalar_trial(start + lane as u64, &faults[lane], &cfgs[lane], acc);
                            }
                        }
                    }
                    if run_elastic {
                        // Table models draw nothing at simulation time, so
                        // the per-lane streams are untouched by the
                        // distributed pass and the elastic leg can reuse
                        // the same RNG bank.
                        let eout = sim.run_elastic(
                            opts.elastic,
                            skews,
                            &LaneModels::PerLane(&tables[..]),
                            &LaneConfigs::PerLane(&cfgs[..]),
                            rngs,
                        );
                        for (lane, outcome) in eout.iter().enumerate() {
                            match outcome {
                                LaneOutcome::Done(_) => acc.elastic_survived += 1,
                                LaneOutcome::Fallback => {
                                    scalar_elastic_trial(
                                        start + lane as u64,
                                        &faults[lane],
                                        &cfgs[lane],
                                        acc,
                                    );
                                }
                            }
                        }
                    }
                    start = end;
                }
            },
        );
        out.push(acc);
    }
    out
}

/// Rebuilds a full [`ResilienceReport`] from one [`KindCounters`] per
/// fault kind (in [`FAULT_KINDS`] order).
///
/// Every derived statistic (mean latency, and the rates computed by the
/// JSON rendering) is recomputed from the exact integer counters, so a
/// report assembled from distributed partials is field-for-field — and
/// byte-for-byte once rendered — identical to a local sweep.
///
/// # Panics
///
/// Panics if `counters` does not carry exactly one entry per fault kind.
pub fn report_from_counters(
    name: &str,
    p: f64,
    trials: u64,
    seed: u64,
    counters: &[KindCounters],
) -> ResilienceReport {
    assert_eq!(counters.len(), FAULT_KINDS.len(), "one entry per kind");
    let rows = FAULT_KINDS
        .iter()
        .zip(counters)
        .map(|(tag, acc)| KindStats {
            kind: tag.to_string(),
            trials,
            detected_deadlock: acc.deadlock,
            detected_desync: acc.desync,
            survived: acc.survived,
            mean_detection_latency: if acc.latency_samples == 0 {
                0.0
            } else {
                acc.latency_sum as f64 / acc.latency_samples as f64
            },
            cent_agreement: acc.cent_agree,
            elastic_deadlock: acc.elastic_deadlock,
            elastic_desync: acc.elastic_desync,
            elastic_survived: acc.elastic_survived,
            elastic_mean_detection_latency: if acc.elastic_latency_samples == 0 {
                0.0
            } else {
                acc.elastic_latency_sum as f64 / acc.elastic_latency_samples as f64
            },
        })
        .collect();
    ResilienceReport {
        name: name.to_string(),
        p,
        trials,
        seed,
        rows,
    }
}

impl fmt::Display for ResilienceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Resilience sweep for '{}' (P = {}, {} trials/kind, seed {})",
            self.name, self.p, self.trials, self.seed
        )?;
        writeln!(
            f,
            "{:<15} {:>9} {:>8} {:>9} {:>10} {:>12} {:>8} {:>10} {:>11}",
            "fault kind",
            "deadlock",
            "desync",
            "survived",
            "detect %",
            "latency (cy)",
            "cent %",
            "elas surv",
            "elas det %"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<15} {:>9} {:>8} {:>9} {:>9.1}% {:>12.2} {:>7.1}% {:>10} {:>10.1}%",
                r.kind,
                r.detected_deadlock,
                r.detected_desync,
                r.survived,
                r.detection_rate() * 100.0,
                r.mean_detection_latency,
                r.cent_agreement_rate() * 100.0,
                r.elastic_survived,
                r.elastic_detection_rate() * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tauhls_dfg::benchmarks::fir5;
    use tauhls_sched::Allocation;

    #[test]
    fn sweep_accounts_for_every_trial_and_detects_something() {
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let report = resilience_sweep(&bound, 0.5, 60, 2003, &BatchRunner::serial());
        assert_eq!(report.rows.len(), FAULT_KINDS.len());
        for r in &report.rows {
            assert_eq!(
                r.detected_deadlock + r.detected_desync + r.survived,
                r.trials,
                "{}: outcomes must partition the trials",
                r.kind
            );
            assert_eq!(
                r.elastic_deadlock + r.elastic_desync + r.elastic_survived,
                r.trials,
                "{}: elastic outcomes must partition the trials",
                r.kind
            );
        }
        // The persistent faults are reliably caught.
        let by_kind = |k: &str| report.rows.iter().find(|r| r.kind == k).unwrap();
        assert!(by_kind("stuck_long").detected_deadlock > 0);
        assert!(by_kind("stuck_short").detected_desync > 0);
        // The bisimilar CENT engine classifies every trial identically.
        for r in &report.rows {
            assert_eq!(r.cent_agreement, r.trials, "{}: CENT disagreed", r.kind);
        }
    }

    #[test]
    fn sweep_matches_scalar_reference() {
        // Re-derive every trial with the plain scalar engines (no slicing,
        // no batching) and demand identical counters from the sweep.
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let (p, trials, seed) = (0.5, 70u64, 2003u64);
        let report = resilience_sweep(&bound, p, trials, seed, &BatchRunner::new(4));
        let cu = DistributedControlUnit::generate(&bound);
        let num_ops = bound.dfg().num_ops();
        let num_controllers = cu.controllers().len();
        let max_cycle = 2 * num_ops + 4;
        for (kind_idx, tag) in FAULT_KINDS.iter().enumerate() {
            let (mut survived, mut deadlock, mut desync) = (0u64, 0u64, 0u64);
            let (mut latency_sum, mut latency_samples) = (0u64, 0u64);
            for trial in 0..trials {
                let plan_seed = derive_seed(seed, PLAN_JOB_BASE + kind_idx as u64, trial);
                let mut plan_gen = Gen::from_seed(plan_seed);
                let fault =
                    draw_fault_of_kind(&mut plan_gen, tag, num_ops, num_controllers, max_cycle);
                let cfg = SimConfig::with_faults(FaultPlan::single(fault.at_cycle, fault.kind));
                let mut rng = trial_rng(seed, SIM_JOB_BASE + kind_idx as u64, trial);
                let table = CompletionModel::draw_table(num_ops, p, &mut rng);
                match simulate_distributed_with(&bound, &cu, &table, None, &mut rng, &cfg) {
                    Ok(_) => survived += 1,
                    Err(err) => {
                        if matches!(err, SimError::Deadlock(_)) {
                            deadlock += 1;
                        } else {
                            desync += 1;
                        }
                        if let Some(cycle) = err.detected_cycle() {
                            latency_sum += cycle.saturating_sub(fault.at_cycle) as u64;
                            latency_samples += 1;
                        }
                    }
                }
            }
            let row = &report.rows[kind_idx];
            assert_eq!(row.survived, survived, "{tag}: survived");
            assert_eq!(row.detected_deadlock, deadlock, "{tag}: deadlock");
            assert_eq!(row.detected_desync, desync, "{tag}: desync");
            let mean = if latency_samples == 0 {
                0.0
            } else {
                latency_sum as f64 / latency_samples as f64
            };
            assert_eq!(row.mean_detection_latency, mean, "{tag}: latency");
        }
    }

    #[test]
    fn sweep_is_bit_identical_across_thread_counts() {
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let serial = resilience_sweep(&bound, 0.5, 48, 7, &BatchRunner::serial());
        for threads in [2usize, 8] {
            let parallel = resilience_sweep(&bound, 0.5, 48, 7, &BatchRunner::new(threads));
            for (a, b) in serial.rows.iter().zip(&parallel.rows) {
                assert_eq!(a.detected_deadlock, b.detected_deadlock);
                assert_eq!(a.detected_desync, b.detected_desync);
                assert_eq!(a.survived, b.survived);
                assert_eq!(a.mean_detection_latency, b.mean_detection_latency);
                assert_eq!(a.elastic_deadlock, b.elastic_deadlock);
                assert_eq!(a.elastic_desync, b.elastic_desync);
                assert_eq!(a.elastic_survived, b.elastic_survived);
                assert_eq!(
                    a.elastic_mean_detection_latency,
                    b.elastic_mean_detection_latency
                );
            }
        }
    }

    #[test]
    fn sweep_elastic_zero_spec_bisimulates_dist() {
        // At skew bound 0 and sync latency 0 the elastic kernel is
        // cycle-for-cycle the distributed kernel, so every elastic counter
        // must equal its distributed twin — fault classification included.
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let opts = ResilienceOptions {
            elastic: ElasticSpec::zero(),
            ..ResilienceOptions::default()
        };
        let report = resilience_sweep_with(&bound, 0.5, 48, 2003, &opts, &BatchRunner::new(3));
        for r in &report.rows {
            assert_eq!(r.elastic_deadlock, r.detected_deadlock, "{}", r.kind);
            assert_eq!(r.elastic_desync, r.detected_desync, "{}", r.kind);
            assert_eq!(r.elastic_survived, r.survived, "{}", r.kind);
            assert_eq!(
                r.elastic_mean_detection_latency, r.mean_detection_latency,
                "{}",
                r.kind
            );
        }
    }

    #[test]
    fn sweep_styles_gate_legs_without_perturbing_dist() {
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let full = resilience_sweep(&bound, 0.5, 40, 11, &BatchRunner::serial());
        let opts = ResilienceOptions {
            styles: ControlStyleSet::DIST,
            ..ResilienceOptions::default()
        };
        let dist_only = resilience_sweep_with(&bound, 0.5, 40, 11, &opts, &BatchRunner::serial());
        for (a, b) in full.rows.iter().zip(&dist_only.rows) {
            assert_eq!(a.detected_deadlock, b.detected_deadlock);
            assert_eq!(a.detected_desync, b.detected_desync);
            assert_eq!(a.survived, b.survived);
            assert_eq!(a.mean_detection_latency, b.mean_detection_latency);
            assert_eq!(b.cent_agreement, 0);
            assert_eq!(
                b.elastic_deadlock + b.elastic_desync + b.elastic_survived,
                0
            );
        }
    }

    #[test]
    fn sweep_elastic_matches_scalar_reference() {
        // Re-derive the elastic leg of every trial with the plain scalar
        // GALS kernel and demand identical counters from the sweep.
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let (p, trials, seed) = (0.5, 50u64, 2003u64);
        let spec = ElasticSpec::default();
        let report = resilience_sweep(&bound, p, trials, seed, &BatchRunner::new(4));
        let cu = DistributedControlUnit::generate(&bound);
        let num_ops = bound.dfg().num_ops();
        let num_controllers = cu.controllers().len();
        let max_cycle = 2 * num_ops + 4;
        for (kind_idx, tag) in FAULT_KINDS.iter().enumerate() {
            let (mut survived, mut deadlock, mut desync) = (0u64, 0u64, 0u64);
            for trial in 0..trials {
                let plan_seed = derive_seed(seed, PLAN_JOB_BASE + kind_idx as u64, trial);
                let mut plan_gen = Gen::from_seed(plan_seed);
                let fault =
                    draw_fault_of_kind(&mut plan_gen, tag, num_ops, num_controllers, max_cycle);
                let cfg = SimConfig::with_faults(FaultPlan::single(fault.at_cycle, fault.kind));
                let mut rng = trial_rng(seed, SIM_JOB_BASE + kind_idx as u64, trial);
                let table = CompletionModel::draw_table(num_ops, p, &mut rng);
                let skew = elastic_trial_skew_seed(seed, SIM_JOB_BASE + kind_idx as u64, trial);
                match simulate_elastic_with(&bound, &cu, &table, None, &mut rng, &cfg, spec, skew) {
                    Ok(_) => survived += 1,
                    Err(err) => {
                        if matches!(err, SimError::Deadlock(_)) {
                            deadlock += 1;
                        } else {
                            desync += 1;
                        }
                    }
                }
            }
            let row = &report.rows[kind_idx];
            assert_eq!(row.elastic_survived, survived, "{tag}: elastic survived");
            assert_eq!(row.elastic_deadlock, deadlock, "{tag}: elastic deadlock");
            assert_eq!(row.elastic_desync, desync, "{tag}: elastic desync");
        }
    }
}
