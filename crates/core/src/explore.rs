//! Allocation-space exploration: enumerate unit allocations, measure each
//! design's average latency (distributed control) and whole-system area,
//! and return the Pareto frontier — the "resource allocation" piece of the
//! paper's §6 future-work HLS tool, built from the parts this workspace
//! already has.

use crate::pipeline::Synthesis;
use crate::report::system_area;
use tauhls_dfg::{Dfg, ResourceClass};
use tauhls_fsm::Encoding;
use tauhls_logic::AreaModel;
use tauhls_sched::Allocation;
use tauhls_sim::{derive_seed, latency_pair_batch, BatchRunner};

/// One explored design point.
#[derive(Clone, Debug)]
pub struct DesignPoint {
    /// TAU multipliers allocated.
    pub muls: usize,
    /// Adders allocated.
    pub adds: usize,
    /// Subtractors allocated.
    pub subs: usize,
    /// Mean distributed latency in cycles at the probed `P`.
    pub latency_cycles: f64,
    /// Whole-system area in gate equivalents.
    pub area_ge: f64,
    /// True iff the point survives Pareto filtering.
    pub pareto: bool,
}

/// Exploration parameters.
#[derive(Clone, Copy, Debug)]
pub struct ExploreParams {
    /// Maximum units per class to consider.
    pub max_muls: usize,
    /// Maximum adders.
    pub max_adds: usize,
    /// Maximum subtractors.
    pub max_subs: usize,
    /// Short probability to probe.
    pub p: f64,
    /// Monte-Carlo trials per point.
    pub trials: usize,
    /// Datapath width for the area model.
    pub width: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ExploreParams {
    fn default() -> Self {
        ExploreParams {
            max_muls: 4,
            max_adds: 2,
            max_subs: 2,
            p: 0.7,
            trials: 400,
            width: 16,
            seed: 2003,
        }
    }
}

/// Enumerates the allocation space and measures every feasible point;
/// points not dominated in (latency, area) are flagged `pareto`. Each
/// point's Monte-Carlo trials fan out over `runner`'s workers, seeded by
/// the point's allocation triple so results do not depend on enumeration
/// order or thread count.
///
/// # Panics
///
/// Panics if `trials == 0` or all class maxima are zero.
pub fn explore_allocations(
    dfg: &Dfg,
    params: &ExploreParams,
    runner: &BatchRunner,
) -> Vec<DesignPoint> {
    assert!(params.trials > 0);
    let hist = dfg.class_histogram();
    let need = |c: ResourceClass| hist.get(&c).copied().unwrap_or(0);
    // A class with no operations needs (and gets) no units; otherwise
    // sweep 1..=max.
    let range = |c: ResourceClass, max: usize| {
        if need(c) == 0 {
            0..=0
        } else {
            1..=max.max(1)
        }
    };
    let mut points = Vec::new();

    for muls in range(ResourceClass::Multiplier, params.max_muls) {
        for adds in range(ResourceClass::Adder, params.max_adds) {
            for subs in range(ResourceClass::Subtractor, params.max_subs) {
                let alloc = Allocation::paper(muls, adds, subs);
                if !alloc.covers(dfg) {
                    continue;
                }
                let design = Synthesis::new(dfg.clone())
                    .allocation(alloc)
                    .run()
                    .expect("covered allocation synthesizes");
                let point_id = ((muls as u64) << 16) | ((adds as u64) << 8) | subs as u64;
                let point_seed = derive_seed(params.seed, point_id, 0);
                let (_, dist) = latency_pair_batch(
                    design.bound(),
                    &[params.p],
                    params.trials as u64,
                    point_seed,
                    runner,
                )
                .expect("fault-free simulation");
                let area = system_area(
                    &design,
                    Encoding::Binary,
                    &AreaModel::default(),
                    params.width,
                );
                points.push(DesignPoint {
                    muls,
                    adds,
                    subs,
                    latency_cycles: dist.average_cycles[0],
                    area_ge: area.total(),
                    pareto: false,
                });
            }
        }
    }

    // Pareto filter: a point survives if no other point is at least as
    // good in both dimensions and strictly better in one. Latency is a
    // Monte-Carlo estimate, so comparisons use a small tolerance to keep
    // statistically-tied points from shielding each other.
    const LAT_EPS: f64 = 0.02;
    let snapshot = points.clone();
    for p in &mut points {
        p.pareto = !snapshot.iter().any(|q| {
            (q.latency_cycles <= p.latency_cycles + LAT_EPS && q.area_ge < p.area_ge)
                || (q.latency_cycles < p.latency_cycles - LAT_EPS && q.area_ge <= p.area_ge)
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use tauhls_dfg::benchmarks::fir5;

    #[test]
    fn frontier_is_nonempty_and_consistent() {
        let pts = explore_allocations(
            &fir5(),
            &ExploreParams {
                max_muls: 3,
                max_adds: 2,
                max_subs: 0,
                trials: 150,
                ..Default::default()
            },
            &BatchRunner::new(2),
        );
        assert!(!pts.is_empty());
        let frontier: Vec<_> = pts.iter().filter(|p| p.pareto).collect();
        assert!(!frontier.is_empty());
        // No frontier point dominates another (with the filter's noise
        // tolerance).
        for a in &frontier {
            for b in &frontier {
                let dominates = a.latency_cycles <= b.latency_cycles + 0.02
                    && a.area_ge < b.area_ge
                    || a.latency_cycles < b.latency_cycles - 0.02 && a.area_ge <= b.area_ge;
                assert!(!dominates, "{a:?} dominates {b:?}");
            }
        }
        // More multipliers never hurt latency (same adders).
        let lat = |m: usize| {
            pts.iter()
                .find(|p| p.muls == m && p.adds == 1)
                .map(|p| p.latency_cycles)
                .unwrap()
        };
        assert!(lat(3) <= lat(1) + 1e-9);
    }

    #[test]
    fn subtractor_range_skipped_when_unused() {
        // FIR has no subtract-class ops: subs should stay at 0.
        let pts = explore_allocations(
            &fir5(),
            &ExploreParams {
                max_muls: 2,
                max_adds: 1,
                max_subs: 2,
                trials: 50,
                ..Default::default()
            },
            &BatchRunner::serial(),
        );
        assert!(pts.iter().all(|p| p.subs == 0));
    }
}
