//! Allocation-space exploration: enumerate unit allocations, measure each
//! design's average latency (distributed control) and whole-system area,
//! and return the Pareto frontier — the "resource allocation" piece of the
//! paper's §6 future-work HLS tool, built from the parts this workspace
//! already has.

use crate::pipeline::Synthesis;
use crate::report::{system_area, system_area_from_logic};
use crate::stages::{self, BindStrategy, PipelineTrace, StageCache, StageRecord, SynthesisInput};
use crate::{SynthesisError, Timing};
use std::fmt;
use tauhls_dfg::{Dfg, ResourceClass};
use tauhls_fsm::Encoding;
use tauhls_logic::AreaModel;
use tauhls_sched::{Allocation, BoundDfg};
use tauhls_sim::{
    derive_seed, latency_pair_batch, latency_summary_batch, BatchRunner, ControlStyle, ElasticSpec,
    SimError,
};

/// One explored design point.
#[derive(Clone, Debug)]
pub struct DesignPoint {
    /// TAU multipliers allocated.
    pub muls: usize,
    /// Adders allocated.
    pub adds: usize,
    /// Subtractors allocated.
    pub subs: usize,
    /// Mean distributed latency in cycles at the probed `P`.
    pub latency_cycles: f64,
    /// Whole-system area in gate equivalents.
    pub area_ge: f64,
    /// True iff the point survives Pareto filtering.
    pub pareto: bool,
}

/// Exploration parameters.
#[derive(Clone, Copy, Debug)]
pub struct ExploreParams {
    /// Maximum units per class to consider.
    pub max_muls: usize,
    /// Maximum adders.
    pub max_adds: usize,
    /// Maximum subtractors.
    pub max_subs: usize,
    /// Short probability to probe.
    pub p: f64,
    /// Monte-Carlo trials per point.
    pub trials: usize,
    /// Datapath width for the area model.
    pub width: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ExploreParams {
    fn default() -> Self {
        ExploreParams {
            max_muls: 4,
            max_adds: 2,
            max_subs: 2,
            p: 0.7,
            trials: 400,
            width: 16,
            seed: 2003,
        }
    }
}

/// Enumerates the allocation space and measures every feasible point;
/// points not dominated in (latency, area) are flagged `pareto`. Each
/// point's Monte-Carlo trials fan out over `runner`'s workers, seeded by
/// the point's allocation triple so results do not depend on enumeration
/// order or thread count.
///
/// # Panics
///
/// Panics if `trials == 0` or all class maxima are zero.
pub fn explore_allocations(
    dfg: &Dfg,
    params: &ExploreParams,
    runner: &BatchRunner,
) -> Vec<DesignPoint> {
    assert!(params.trials > 0);
    let hist = dfg.class_histogram();
    let need = |c: ResourceClass| hist.get(&c).copied().unwrap_or(0);
    // A class with no operations needs (and gets) no units; otherwise
    // sweep 1..=max.
    let range = |c: ResourceClass, max: usize| {
        if need(c) == 0 {
            0..=0
        } else {
            1..=max.max(1)
        }
    };
    let mut points = Vec::new();

    for muls in range(ResourceClass::Multiplier, params.max_muls) {
        for adds in range(ResourceClass::Adder, params.max_adds) {
            for subs in range(ResourceClass::Subtractor, params.max_subs) {
                let alloc = Allocation::paper(muls, adds, subs);
                if !alloc.covers(dfg) {
                    continue;
                }
                let design = Synthesis::new(dfg.clone())
                    .allocation(alloc)
                    .run()
                    .expect("covered allocation synthesizes");
                let point_id = ((muls as u64) << 16) | ((adds as u64) << 8) | subs as u64;
                let point_seed = derive_seed(params.seed, point_id, 0);
                let (_, dist) = latency_pair_batch(
                    design.bound(),
                    &[params.p],
                    params.trials as u64,
                    point_seed,
                    runner,
                )
                .expect("fault-free simulation");
                let area = system_area(
                    &design,
                    Encoding::Binary,
                    &AreaModel::default(),
                    params.width,
                );
                points.push(DesignPoint {
                    muls,
                    adds,
                    subs,
                    latency_cycles: dist.average_cycles[0],
                    area_ge: area.total(),
                    pareto: false,
                });
            }
        }
    }

    // Pareto filter: a point survives if no other point is at least as
    // good in both dimensions and strictly better in one. Latency is a
    // Monte-Carlo estimate, so comparisons use a small tolerance to keep
    // statistically-tied points from shielding each other.
    const LAT_EPS: f64 = 0.02;
    let snapshot = points.clone();
    for p in &mut points {
        p.pareto = !snapshot.iter().any(|q| {
            (q.latency_cycles <= p.latency_cycles + LAT_EPS && q.area_ge < p.area_ge)
                || (q.latency_cycles < p.latency_cycles - LAT_EPS && q.area_ge <= p.area_ge)
        });
    }
    points
}

// ---------------------------------------------------------------------------
// Full design-space sweep (the `/v1/dfg/explore` engine)
// ---------------------------------------------------------------------------

/// Parameters of a full design-space sweep: the allocation ranges of
/// [`ExploreParams`] crossed with state encodings, SD/LD clock-period
/// ratios, and a list of short-completion probabilities.
#[derive(Clone, Debug)]
pub struct SweepParams {
    /// Maximum telescopic multipliers to consider.
    pub max_muls: usize,
    /// Maximum adders.
    pub max_adds: usize,
    /// Maximum subtractors.
    pub max_subs: usize,
    /// State encodings swept in the area estimate.
    pub encodings: Vec<Encoding>,
    /// Short-completion probabilities swept in the latency estimate.
    pub p_values: Vec<f64>,
    /// SD/LD clock-period ratios; the SD clock is `ratio × ld_ns`.
    pub sd_ld: Vec<f64>,
    /// Elastic skew bounds swept in the latency estimate: `0` measures
    /// the synchronous distributed controllers, `s > 0` the ELASTIC
    /// (GALS) controllers at skew bound `s` (handshake latency fixed at
    /// the [`ElasticSpec::default`] value).
    pub skew: Vec<u64>,
    /// Monte-Carlo trials per allocation.
    pub trials: u64,
    /// Datapath width for the area model.
    pub width: u32,
    /// Base RNG seed.
    pub seed: u64,
}

/// One point of the full sweep grid.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// TAU multipliers allocated.
    pub muls: usize,
    /// Adders allocated.
    pub adds: usize,
    /// Subtractors allocated.
    pub subs: usize,
    /// State encoding of the synthesized controllers.
    pub encoding: Encoding,
    /// Short-completion probability of this scenario.
    pub p: f64,
    /// SD/LD clock ratio of this scenario.
    pub sd_ld: f64,
    /// Elastic skew bound of this scenario (`0` = synchronous clocks).
    pub skew: u64,
    /// Mean latency in SD cycles — distributed control at `skew == 0`,
    /// elastic (GALS) control otherwise.
    pub avg_cycles: f64,
    /// Mean latency in nanoseconds: `avg_cycles × sd_ld × ld_ns`.
    pub latency_ns: f64,
    /// Whole-system area in gate equivalents.
    pub area_ge: f64,
    /// True iff no other design dominates this one in its scenario.
    pub pareto: bool,
}

/// Why a design-space sweep failed.
#[derive(Debug)]
pub enum SweepError {
    /// The Monte-Carlo latency estimate failed (e.g. cancelled).
    Sim(SimError),
    /// Controller synthesis failed for a swept allocation.
    Synthesis(SynthesisError),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Sim(e) => write!(f, "sweep simulation failed: {e}"),
            SweepError::Synthesis(e) => write!(f, "sweep synthesis failed: {e}"),
        }
    }
}

impl std::error::Error for SweepError {}

/// Sweeps the full design space of `dfg` and marks the latency/area
/// Pareto frontier.
///
/// The grid is allocations (class-aware, like [`explore_allocations`]) ×
/// `encodings` × `p_values` × `sd_ld` × `skew`. Each allocation is
/// simulated once per skew bound — a batched call covering every `P`,
/// seeded by the allocation triple so results are independent of
/// enumeration order and of `runner`'s thread count — and synthesized
/// once per encoding through the shared [`StageCache`]. Cycle counts
/// don't depend on encoding or clock ratio, so those axes are pure
/// post-processing; the skew axis re-simulates (elastic stalls change
/// cycle counts) but reuses the same per-trial completion tables as the
/// synchronous leg.
///
/// `(p, sd_ld, skew)` describe the *scenario* (workload, clock, and
/// clocking discipline), not the design, so Pareto domination is judged
/// only between points of the same scenario: within each group a point
/// survives if no other allocation/encoding is at least as good in both
/// latency and area and strictly better in one (with the same noise
/// tolerance as [`explore_allocations`]). Skew is a scenario axis rather
/// than a design axis because elastic latency is never below the
/// synchronous latency of the same design — folding it into the frontier
/// would just erase every skewed point.
///
/// Returns the swept points (grid order: allocation, then `P`, then
/// encoding, then ratio, then skew) plus the stage records of every
/// synthesis run, for the caller's stage metrics.
pub fn design_space(
    dfg: &Dfg,
    params: &SweepParams,
    runner: &BatchRunner,
    stage_cache: Option<&StageCache>,
) -> Result<(Vec<SweepPoint>, Vec<StageRecord>), SweepError> {
    let allocs = enumerate_allocations(dfg, params);
    let (mut points, records) = design_space_slice(dfg, params, &allocs, runner, stage_cache)?;
    mark_scenario_pareto(&mut points);
    Ok((points, records))
}

/// The deterministic allocation enumeration a sweep iterates: class-aware
/// ranges (a class with no operations gets 0 units, otherwise `1..=max`),
/// filtered to allocations that cover `dfg`, in nested
/// muls → adds → subs order.
///
/// Exposed so a distributed coordinator can plan contiguous partitions
/// over exactly the order [`design_space`] uses; each allocation is
/// independently seeded by its triple, so any contiguous slice computes
/// the same points the full sweep would.
pub fn enumerate_allocations(dfg: &Dfg, params: &SweepParams) -> Vec<(usize, usize, usize)> {
    let hist = dfg.class_histogram();
    let need = |c: ResourceClass| hist.get(&c).copied().unwrap_or(0);
    let range = |c: ResourceClass, max: usize| {
        if need(c) == 0 {
            0..=0
        } else {
            1..=max.max(1)
        }
    };
    let mut allocs = Vec::new();
    for muls in range(ResourceClass::Multiplier, params.max_muls) {
        for adds in range(ResourceClass::Adder, params.max_adds) {
            for subs in range(ResourceClass::Subtractor, params.max_subs) {
                if Allocation::paper(muls, adds, subs).covers(dfg) {
                    allocs.push((muls, adds, subs));
                }
            }
        }
    }
    allocs
}

/// Measures the sweep points of an explicit allocation list — a
/// contiguous slice of [`enumerate_allocations`] when called by a
/// partition, or the full list when called by [`design_space`].
///
/// Per-allocation seeding (`derive_seed(seed, point_id, 0)` from the
/// triple) makes the output independent of which slice an allocation
/// lands in. Pareto flags are **not** marked: domination is judged across
/// the whole grid, so the caller runs [`mark_scenario_pareto`] after
/// concatenating slices in enumeration order.
pub fn design_space_slice(
    dfg: &Dfg,
    params: &SweepParams,
    allocs: &[(usize, usize, usize)],
    runner: &BatchRunner,
    stage_cache: Option<&StageCache>,
) -> Result<(Vec<SweepPoint>, Vec<StageRecord>), SweepError> {
    let ld_ns = Timing::default().ld_ns;
    let mut points = Vec::new();
    let mut records = Vec::new();

    for &(muls, adds, subs) in allocs {
        let alloc = Allocation::paper(muls, adds, subs);
        let bound = BoundDfg::bind(dfg, &alloc);
        let point_id = ((muls as u64) << 16) | ((adds as u64) << 8) | subs as u64;
        let point_seed = derive_seed(params.seed, point_id, 0);
        let (_, dist) =
            latency_pair_batch(&bound, &params.p_values, params.trials, point_seed, runner)
                .map_err(SweepError::Sim)?;
        // Per-skew cycle estimates, indexed [skew][p]. Skew 0 reuses the
        // distributed leg; nonzero bounds run the elastic engine at the
        // same seed, so both legs draw identical completion tables.
        let mut cycles_by_skew = Vec::with_capacity(params.skew.len());
        for &s in &params.skew {
            if s == 0 {
                cycles_by_skew.push(dist.average_cycles.clone());
            } else {
                let spec = ElasticSpec {
                    skew_bound: s.min(u64::from(u32::MAX)) as u32,
                    ..ElasticSpec::default()
                };
                let elas = latency_summary_batch(
                    &bound,
                    ControlStyle::Elastic(spec),
                    &params.p_values,
                    params.trials,
                    point_seed,
                    runner,
                )
                .map_err(SweepError::Sim)?;
                cycles_by_skew.push(elas.average_cycles);
            }
        }
        let mut areas = Vec::with_capacity(params.encodings.len());
        for &encoding in &params.encodings {
            let input = SynthesisInput {
                dfg: dfg.clone(),
                allocation: Allocation::paper(muls, adds, subs),
                strategy: BindStrategy::LeftEdge,
            };
            let mut trace = PipelineTrace::default();
            let (logic, _) = stages::run_full(
                &input,
                false,
                encoding,
                &AreaModel::default(),
                stage_cache,
                &mut trace,
            )
            .map_err(SweepError::Synthesis)?;
            records.extend(trace.records);
            let area = system_area_from_logic(&logic, &AreaModel::default(), params.width);
            areas.push(area.total());
        }
        for (ip, &p) in params.p_values.iter().enumerate() {
            for (ie, &encoding) in params.encodings.iter().enumerate() {
                for &ratio in &params.sd_ld {
                    for (is, &skew) in params.skew.iter().enumerate() {
                        let cycles = cycles_by_skew[is][ip];
                        points.push(SweepPoint {
                            muls,
                            adds,
                            subs,
                            encoding,
                            p,
                            sd_ld: ratio,
                            skew,
                            avg_cycles: cycles,
                            latency_ns: cycles * ld_ns * ratio,
                            area_ge: areas[ie],
                            pareto: false,
                        });
                    }
                }
            }
        }
    }
    Ok((points, records))
}

/// Marks each point's `pareto` flag within its `(p, sd_ld, skew)`
/// scenario group. Exact float equality is the group key — every group
/// member carries the identical swept value, not a recomputation.
///
/// Public so a merge of distributed partials can re-run the exact filter
/// [`design_space`] applies after reassembling the grid.
pub fn mark_scenario_pareto(points: &mut [SweepPoint]) {
    const LAT_EPS: f64 = 0.02;
    let snapshot: Vec<(f64, f64, u64, f64, f64)> = points
        .iter()
        .map(|p| (p.p, p.sd_ld, p.skew, p.avg_cycles, p.area_ge))
        .collect();
    for p in points.iter_mut() {
        p.pareto = !snapshot.iter().any(|&(qp, qr, qs, q_cycles, q_area)| {
            qp == p.p
                && qr == p.sd_ld
                && qs == p.skew
                && ((q_cycles <= p.avg_cycles + LAT_EPS && q_area < p.area_ge)
                    || (q_cycles < p.avg_cycles - LAT_EPS && q_area <= p.area_ge))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tauhls_dfg::benchmarks::fir5;

    #[test]
    fn frontier_is_nonempty_and_consistent() {
        let pts = explore_allocations(
            &fir5(),
            &ExploreParams {
                max_muls: 3,
                max_adds: 2,
                max_subs: 0,
                trials: 150,
                ..Default::default()
            },
            &BatchRunner::new(2),
        );
        assert!(!pts.is_empty());
        let frontier: Vec<_> = pts.iter().filter(|p| p.pareto).collect();
        assert!(!frontier.is_empty());
        // No frontier point dominates another (with the filter's noise
        // tolerance).
        for a in &frontier {
            for b in &frontier {
                let dominates = a.latency_cycles <= b.latency_cycles + 0.02
                    && a.area_ge < b.area_ge
                    || a.latency_cycles < b.latency_cycles - 0.02 && a.area_ge <= b.area_ge;
                assert!(!dominates, "{a:?} dominates {b:?}");
            }
        }
        // More multipliers never hurt latency (same adders).
        let lat = |m: usize| {
            pts.iter()
                .find(|p| p.muls == m && p.adds == 1)
                .map(|p| p.latency_cycles)
                .unwrap()
        };
        assert!(lat(3) <= lat(1) + 1e-9);
    }

    #[test]
    fn design_space_sweep_is_grouped_deterministic_and_cache_transparent() {
        let params = SweepParams {
            max_muls: 2,
            max_adds: 1,
            max_subs: 0,
            encodings: vec![Encoding::Binary, Encoding::Gray],
            p_values: vec![0.9, 0.5],
            sd_ld: vec![0.75, 1.0],
            skew: vec![0],
            trials: 60,
            width: 16,
            seed: 2003,
        };
        let (pts, recs) = design_space(&fir5(), &params, &BatchRunner::serial(), None).unwrap();
        // 2 allocations × 2 P × 2 encodings × 2 ratios.
        assert_eq!(pts.len(), 16);
        assert_eq!(recs.len(), 4 * crate::stages::STAGE_NAMES.len());
        // Latency renders as cycles × ratio × LD; cycles are ratio- and
        // encoding-independent.
        for p in &pts {
            assert!((p.latency_ns - p.avg_cycles * 20.0 * p.sd_ld).abs() < 1e-9);
        }
        // Pareto domination never crosses a (p, sd_ld) scenario: every
        // scenario group keeps at least one survivor.
        for &(sp, sr) in &[(0.9, 0.75), (0.9, 1.0), (0.5, 0.75), (0.5, 1.0)] {
            assert!(
                pts.iter().any(|p| p.p == sp && p.sd_ld == sr && p.pareto),
                "scenario ({sp}, {sr}) lost its whole frontier"
            );
        }
        // Thread-count invariance, with and without a stage cache.
        let (threaded, _) = design_space(&fir5(), &params, &BatchRunner::new(3), None).unwrap();
        let cache = StageCache::new(64);
        let (cached, cached_recs) =
            design_space(&fir5(), &params, &BatchRunner::new(2), Some(&cache)).unwrap();
        let render = |ps: &[SweepPoint]| {
            ps.iter()
                .map(|p| format!("{p:?}"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(render(&pts), render(&threaded));
        assert_eq!(render(&pts), render(&cached));
        // The second encoding of each allocation reuses the cached
        // pipeline prefix.
        assert!(cached_recs.iter().any(|r| r.cache_hit));
    }

    #[test]
    fn design_space_skew_axis_adds_elastic_scenarios() {
        let params = SweepParams {
            max_muls: 2,
            max_adds: 1,
            max_subs: 0,
            encodings: vec![Encoding::Binary],
            p_values: vec![0.7],
            sd_ld: vec![1.0],
            skew: vec![0, 2],
            trials: 60,
            width: 16,
            seed: 2003,
        };
        let (pts, _) = design_space(&fir5(), &params, &BatchRunner::serial(), None).unwrap();
        // 2 allocations × 1 P × 1 encoding × 1 ratio × 2 skews.
        assert_eq!(pts.len(), 4);
        // Each skew scenario keeps its own frontier.
        for skew in [0u64, 2] {
            assert!(
                pts.iter().any(|p| p.skew == skew && p.pareto),
                "skew {skew} scenario lost its whole frontier"
            );
        }
        // Elastic stalls never beat the synchronous leg of the same design.
        for a in pts.iter().filter(|p| p.skew != 0) {
            let twin = pts
                .iter()
                .find(|b| b.skew == 0 && b.muls == a.muls && b.adds == a.adds && b.subs == a.subs)
                .expect("every elastic point has a synchronous twin");
            assert!(
                a.avg_cycles >= twin.avg_cycles - 1e-9,
                "elastic {a:?} undercut synchronous {twin:?}"
            );
        }
        // Determinism across thread counts with the skew axis in play.
        let (threaded, _) = design_space(&fir5(), &params, &BatchRunner::new(3), None).unwrap();
        assert_eq!(format!("{pts:?}"), format!("{threaded:?}"));
    }

    #[test]
    fn subtractor_range_skipped_when_unused() {
        // FIR has no subtract-class ops: subs should stay at 0.
        let pts = explore_allocations(
            &fir5(),
            &ExploreParams {
                max_muls: 2,
                max_adds: 1,
                max_subs: 2,
                trials: 50,
                ..Default::default()
            },
            &BatchRunner::serial(),
        );
        assert!(pts.iter().all(|p| p.subs == 0));
    }
}
