//! Unit-utilization analysis: the paper's §1 motivation is that the
//! distributed structure "minimizes the idle time of each component
//! arithmetic unit". This experiment quantifies it: mean busy fraction per
//! unit under distributed vs synchronized control, with coupled
//! completion draws.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::fmt;
use tauhls_fsm::DistributedControlUnit;
use tauhls_sched::BoundDfg;
use tauhls_sim::{simulate_cent_sync, simulate_distributed, CompletionModel};

/// Utilization comparison for one benchmark.
#[derive(Clone, Debug, Serialize)]
pub struct UtilizationRow {
    /// Benchmark name.
    pub name: String,
    /// Mean latency (cycles) under distributed / synchronized control.
    pub dist_cycles: f64,
    /// Synchronized mean latency in cycles.
    pub sync_cycles: f64,
    /// Mean busy fraction over all units, distributed.
    pub dist_utilization: f64,
    /// Mean busy fraction over all units, synchronized.
    pub sync_utilization: f64,
}

/// A utilization comparison across the paper benchmarks.
#[derive(Clone, Debug, Serialize)]
pub struct UtilizationTable {
    /// One row per benchmark.
    pub rows: Vec<UtilizationRow>,
    /// The probed short probability.
    pub p: f64,
    /// Monte-Carlo trials.
    pub trials: usize,
}

/// Measures utilization for every paper benchmark at short-probability
/// `p` with `trials` coupled draws.
///
/// # Panics
///
/// Panics if `trials == 0` or `p` is not a probability.
pub fn utilization_table(p: f64, trials: usize, seed: u64) -> UtilizationTable {
    assert!(trials > 0 && (0.0..=1.0).contains(&p));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    for (dfg, alloc, _) in crate::experiments::paper_benchmarks() {
        let name = dfg.name().to_string();
        let bound = BoundDfg::bind(&dfg, &alloc);
        let cu = DistributedControlUnit::generate(&bound);
        let num_units = alloc.units().len();
        let mut acc = [0.0f64; 4]; // dist cycles, sync cycles, dist util, sync util
        for _ in 0..trials {
            let table = CompletionModel::draw_table(dfg.num_ops(), p, &mut rng);
            let d = simulate_distributed(&bound, &cu, &table, None, &mut rng);
            let s = simulate_cent_sync(&bound, &table, None, &mut rng);
            let util = |r: &tauhls_sim::SimResult| {
                (0..num_units)
                    .filter(|&u| !bound.sequence(tauhls_sched::UnitId(u)).is_empty())
                    .map(|u| r.utilization(u))
                    .sum::<f64>()
                    / cu.controllers().len() as f64
            };
            acc[0] += d.cycles as f64;
            acc[1] += s.cycles as f64;
            acc[2] += util(&d);
            acc[3] += util(&s);
        }
        let t = trials as f64;
        rows.push(UtilizationRow {
            name,
            dist_cycles: acc[0] / t,
            sync_cycles: acc[1] / t,
            dist_utilization: acc[2] / t,
            sync_utilization: acc[3] / t,
        });
    }
    UtilizationTable { rows, p, trials }
}

impl fmt::Display for UtilizationTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Unit utilization, distributed vs synchronized (P = {}, {} trials)",
            self.p, self.trials
        )?;
        writeln!(
            f,
            "{:<12} {:>10} {:>10} {:>11} {:>11}",
            "DFG", "dist cyc", "sync cyc", "dist util", "sync util"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<12} {:>10.2} {:>10.2} {:>10.1}% {:>10.1}%",
                r.name,
                r.dist_cycles,
                r.sync_cycles,
                r.dist_utilization * 100.0,
                r.sync_utilization * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributed_utilization_never_lower() {
        let t = utilization_table(0.6, 200, 5);
        assert_eq!(t.rows.len(), 6);
        for r in &t.rows {
            // Shorter makespan with (at most) the same busy work means
            // busy *fraction* can only rise under distributed control.
            assert!(
                r.dist_utilization >= r.sync_utilization - 1e-9,
                "{}: {} < {}",
                r.name,
                r.dist_utilization,
                r.sync_utilization
            );
            assert!(r.dist_cycles <= r.sync_cycles);
            assert!(r.dist_utilization <= 1.0 + 1e-9);
        }
        let s = t.to_string();
        assert!(s.contains("dist util"));
    }
}
