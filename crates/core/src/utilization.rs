//! Unit-utilization analysis: the paper's §1 motivation is that the
//! distributed structure "minimizes the idle time of each component
//! arithmetic unit". This experiment quantifies it: mean busy fraction per
//! unit under distributed vs synchronized control, with coupled
//! completion draws.

use std::fmt;
use tauhls_fsm::DistributedControlUnit;
use tauhls_sched::BoundDfg;
use tauhls_sim::{
    simulate_cent_sync, simulate_distributed, trial_rng, Accumulator, BatchRunner, CompletionModel,
    CycleStats,
};

/// Utilization comparison for one benchmark.
#[derive(Clone, Debug)]
pub struct UtilizationRow {
    /// Benchmark name.
    pub name: String,
    /// Mean latency (cycles) under distributed / synchronized control.
    pub dist_cycles: f64,
    /// Synchronized mean latency in cycles.
    pub sync_cycles: f64,
    /// Mean busy fraction over all units, distributed.
    pub dist_utilization: f64,
    /// Mean busy fraction over all units, synchronized.
    pub sync_utilization: f64,
}

/// A utilization comparison across the paper benchmarks.
#[derive(Clone, Debug)]
pub struct UtilizationTable {
    /// One row per benchmark.
    pub rows: Vec<UtilizationRow>,
    /// The probed short probability.
    pub p: f64,
    /// Monte-Carlo trials.
    pub trials: usize,
}

/// Per-trial accumulator: exact cycle stats plus busy-fraction sums.
///
/// The `f64` sums are not associative, but the batch runner folds chunk
/// accumulators in chunk-index order, so the table is still bit-identical
/// for any thread count.
#[derive(Default)]
struct UtilAcc {
    dist: CycleStats,
    sync: CycleStats,
    dist_util: f64,
    sync_util: f64,
}

impl Accumulator for UtilAcc {
    fn empty() -> Self {
        UtilAcc::default()
    }
    fn fold(&mut self, other: Self) {
        self.dist.merge(&other.dist);
        self.sync.merge(&other.sync);
        self.dist_util += other.dist_util;
        self.sync_util += other.sync_util;
    }
}

/// Measures utilization for every paper benchmark at short-probability
/// `p` with `trials` coupled draws, fanned over `runner`'s workers (one
/// seed-space partition per benchmark).
///
/// # Panics
///
/// Panics if `trials == 0` or `p` is not a probability.
pub fn utilization_table(
    p: f64,
    trials: usize,
    seed: u64,
    runner: &BatchRunner,
) -> UtilizationTable {
    assert!(trials > 0 && (0.0..=1.0).contains(&p));
    let mut rows = Vec::new();
    for (job_id, (dfg, alloc, _)) in crate::experiments::paper_benchmarks()
        .into_iter()
        .enumerate()
    {
        let name = dfg.name().to_string();
        let bound = BoundDfg::bind(&dfg, &alloc);
        let cu = DistributedControlUnit::generate(&bound);
        let num_units = alloc.units().len();
        let util = |r: &tauhls_sim::SimResult| {
            (0..num_units)
                .filter(|&u| !bound.sequence(tauhls_sched::UnitId(u)).is_empty())
                .map(|u| r.utilization(u))
                .sum::<f64>()
                / cu.controllers().len() as f64
        };
        let acc: UtilAcc = runner.run(trials as u64, |trial, acc: &mut UtilAcc| {
            let mut rng = trial_rng(seed, job_id as u64, trial);
            let table = CompletionModel::draw_table(dfg.num_ops(), p, &mut rng);
            let d = simulate_distributed(&bound, &cu, &table, None, &mut rng)
                .expect("fault-free simulation");
            let s =
                simulate_cent_sync(&bound, &table, None, &mut rng).expect("fault-free simulation");
            acc.dist.record(d.cycles);
            acc.sync.record(s.cycles);
            acc.dist_util += util(&d);
            acc.sync_util += util(&s);
        });
        let t = trials as f64;
        rows.push(UtilizationRow {
            name,
            dist_cycles: acc.dist.mean(),
            sync_cycles: acc.sync.mean(),
            dist_utilization: acc.dist_util / t,
            sync_utilization: acc.sync_util / t,
        });
    }
    UtilizationTable { rows, p, trials }
}

impl fmt::Display for UtilizationTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Unit utilization, distributed vs synchronized (P = {}, {} trials)",
            self.p, self.trials
        )?;
        writeln!(
            f,
            "{:<12} {:>10} {:>10} {:>11} {:>11}",
            "DFG", "dist cyc", "sync cyc", "dist util", "sync util"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<12} {:>10.2} {:>10.2} {:>10.1}% {:>10.1}%",
                r.name,
                r.dist_cycles,
                r.sync_cycles,
                r.dist_utilization * 100.0,
                r.sync_utilization * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributed_utilization_never_lower() {
        let t = utilization_table(0.6, 200, 5, &BatchRunner::new(2));
        assert_eq!(t.rows.len(), 6);
        for r in &t.rows {
            // Shorter makespan with (at most) the same busy work means
            // busy *fraction* can only rise under distributed control.
            assert!(
                r.dist_utilization >= r.sync_utilization - 1e-9,
                "{}: {} < {}",
                r.name,
                r.dist_utilization,
                r.sync_utilization
            );
            assert!(r.dist_cycles <= r.sync_cycles);
            assert!(r.dist_utilization <= 1.0 + 1e-9);
        }
        let s = t.to_string();
        assert!(s.contains("dist util"));
    }
}
