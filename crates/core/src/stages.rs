//! The staged synthesis pipeline: typed pass artifacts with deterministic
//! content hashes and a content-addressed stage cache.
//!
//! The paper's flow is inherently staged — DFG → ordering (Fig 3b) →
//! binding with schedule arcs (Fig 3c) → per-unit controller generation
//! (§4) → logic synthesis and area reports (Table 1). This module makes
//! each pass an explicit [`Stage`] over a typed artifact chain:
//!
//! | # | stage          | artifact             | content summarized in the hash |
//! |---|----------------|----------------------|--------------------------------|
//! | 1 | `canonicalize` | [`CanonicalDfg`]     | DFG, allocation, bind strategy |
//! | 2 | `order`        | [`OrderedDfg`]       | per-unit operation sequences   |
//! | 3 | `bind`         | [`BoundDesign`]      | schedule steps + schedule arcs |
//! | 4 | `controllers`  | [`ControlUnits`]     | D-FSMs, CENT-SYNC, opt. CENT   |
//! | 5 | `logic`        | [`SynthesizedLogic`] | encoded covers, FF counts, GE  |
//! | 6 | `report`       | [`Reports`]          | Table-1-style area rows        |
//!
//! Every artifact carries a 64-bit FNV-1a hash over a canonical byte
//! encoding of its content, chained with the producing stage's input hash
//! (the same content-addressing discipline as `jobspec::cache_key`). Equal
//! inputs therefore yield an identical artifact-hash chain on any thread
//! count and any machine, which makes stage outputs safe to reuse through
//! a [`StageCache`]: two synthesis requests that differ only in `encoding`
//! share every artifact up to [`ControlUnits`] and diverge at the `logic`
//! stage (prefix reuse).

use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tauhls_dfg::{Dfg, OpId, Operand};
use tauhls_fsm::{
    cent_sync_fsm, synchronous_product, synthesize, DistributedControlUnit, Encoding, Fsm,
    SynthesizedFsm,
};
use tauhls_logic::AreaModel;
use tauhls_sched::{chain_sequences, left_edge_sequences, Allocation, BoundDfg, UnitId};

use crate::pipeline::SynthesisError;

/// The stage names, in pipeline order (the `stage` label space used by
/// [`StageRecord`] and the serve-layer metrics).
pub const STAGE_NAMES: [&str; 6] = [
    "canonicalize",
    "order",
    "bind",
    "controllers",
    "logic",
    "report",
];

// ---------------------------------------------------------------------------
// Content hashing
// ---------------------------------------------------------------------------

/// Incremental 64-bit FNV-1a hasher over a canonical byte encoding.
///
/// Deliberately *not* `std::hash::Hasher`: the std trait is allowed to vary
/// across releases/platforms, while artifact hashes must be stable enough
/// to serve as cross-process cache keys and golden-file fingerprints.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `usize` widened to `u64` (stable across word sizes).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs a length-prefixed UTF-8 string (the prefix prevents
    /// concatenation ambiguity between adjacent fields).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

fn hash_operand(h: &mut Fnv64, o: Operand) {
    match o {
        Operand::Input(i) => {
            h.write(&[0]);
            h.write_usize(i.0);
        }
        Operand::Const(c) => {
            h.write(&[1]);
            h.write(&c.to_le_bytes());
        }
        Operand::Op(p) => {
            h.write(&[2]);
            h.write_usize(p.0);
        }
    }
}

fn hash_dfg(h: &mut Fnv64, dfg: &Dfg) {
    h.write_str(dfg.name());
    h.write_usize(dfg.num_inputs());
    for name in dfg.input_names() {
        h.write_str(name);
    }
    h.write_usize(dfg.num_ops());
    for op in dfg.ops() {
        h.write_str(op.kind.symbol());
        hash_operand(h, op.lhs);
        hash_operand(h, op.rhs);
    }
    h.write_usize(dfg.outputs().len());
    for (name, op) in dfg.outputs() {
        h.write_str(name);
        h.write_usize(op.0);
    }
}

fn hash_allocation(h: &mut Fnv64, alloc: &Allocation) {
    let units = alloc.units();
    h.write_usize(units.len());
    for u in units {
        h.write_str(u.class.short_name());
        h.write(&[u8::from(u.telescopic)]);
    }
}

fn hash_sequences(h: &mut Fnv64, sequences: &[Vec<OpId>]) {
    h.write_usize(sequences.len());
    for seq in sequences {
        h.write_usize(seq.len());
        for &o in seq {
            h.write_usize(o.0);
        }
    }
}

fn hash_fsm(h: &mut Fnv64, fsm: &Fsm) {
    h.write_str(fsm.name());
    h.write_usize(fsm.num_states());
    h.write_usize(fsm.initial().0);
    h.write_usize(fsm.inputs().len());
    for name in fsm.inputs() {
        h.write_str(name);
    }
    h.write_usize(fsm.outputs().len());
    for name in fsm.outputs() {
        h.write_str(name);
    }
    h.write_usize(fsm.transitions().len());
    for t in fsm.transitions() {
        h.write_usize(t.from.0);
        h.write_usize(t.to.0);
        // Guards are canonical expression trees; the Debug rendering is a
        // faithful serialization of that structure.
        h.write_str(&format!("{:?}", t.guard));
        h.write_usize(t.outputs.len());
        for &o in &t.outputs {
            h.write_usize(o);
        }
    }
}

fn hash_synthesized(h: &mut Fnv64, syn: &SynthesizedFsm) {
    h.write_str(syn.name());
    h.write_usize(syn.num_states());
    h.write_usize(syn.flip_flops());
    h.write_u64(syn.initial_code());
    let area = syn.area();
    h.write_u64(area.combinational.to_bits());
    h.write_u64(area.sequential.to_bits());
    h.write_usize(area.flip_flops);
    h.write_u64(u64::from(area.literals));
}

fn encoding_tag(encoding: Encoding) -> u8 {
    match encoding {
        Encoding::Binary => 0,
        Encoding::Gray => 1,
        Encoding::OneHot => 2,
    }
}

// ---------------------------------------------------------------------------
// Artifacts
// ---------------------------------------------------------------------------

/// How operations are ordered onto unit instances (the pipeline's only
/// front-end degree of freedom besides the allocation itself).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BindStrategy {
    /// List schedule + arc-avoiding left-edge assignment
    /// ([`BoundDfg::bind`]).
    LeftEdge,
    /// Minimum chain cover with least-loaded merging
    /// ([`BoundDfg::bind_chains`]).
    Chains,
    /// Explicit per-unit sequences, e.g. the paper's hand bindings
    /// ([`BoundDfg::bind_explicit`]).
    Explicit(Vec<Vec<OpId>>),
}

/// The validated synthesis request: stage 1's output and the root of the
/// artifact-hash chain.
#[derive(Clone, Debug)]
pub struct CanonicalDfg {
    dfg: Dfg,
    allocation: Allocation,
    strategy: BindStrategy,
    hash: u64,
}

impl CanonicalDfg {
    /// The dataflow graph.
    pub fn dfg(&self) -> &Dfg {
        &self.dfg
    }

    /// The resource allocation.
    pub fn allocation(&self) -> &Allocation {
        &self.allocation
    }

    /// The binding strategy.
    pub fn strategy(&self) -> &BindStrategy {
        &self.strategy
    }

    /// The artifact content hash.
    pub fn hash(&self) -> u64 {
        self.hash
    }
}

/// Per-unit operation sequences (Fig 3b's chain structure): stage 2's
/// output, before schedule arcs are materialized.
#[derive(Clone, Debug)]
pub struct OrderedDfg {
    canonical: Arc<CanonicalDfg>,
    sequences: Vec<Vec<OpId>>,
    hash: u64,
}

impl OrderedDfg {
    /// The canonical request this ordering was derived from.
    pub fn canonical(&self) -> &Arc<CanonicalDfg> {
        &self.canonical
    }

    /// The per-unit execution orders, indexed by [`Allocation::units`].
    pub fn sequences(&self) -> &[Vec<OpId>] {
        &self.sequences
    }

    /// The artifact content hash.
    pub fn hash(&self) -> u64 {
        self.hash
    }
}

/// The scheduled-and-bound design (Fig 3c): stage 3's output.
#[derive(Clone, Debug)]
pub struct BoundDesign {
    bound: BoundDfg,
    hash: u64,
}

impl BoundDesign {
    /// The bound DFG (schedule, unit assignment, schedule arcs).
    pub fn bound(&self) -> &BoundDfg {
        &self.bound
    }

    /// The artifact content hash.
    pub fn hash(&self) -> u64 {
        self.hash
    }
}

/// All generated controllers (paper §4): stage 4's output.
#[derive(Clone, Debug)]
pub struct ControlUnits {
    design: Arc<BoundDesign>,
    distributed: DistributedControlUnit,
    cent_sync: Fsm,
    centralized: Option<Fsm>,
    hash: u64,
}

impl ControlUnits {
    /// The bound design the controllers were generated from.
    pub fn design(&self) -> &Arc<BoundDesign> {
        &self.design
    }

    /// The distributed control unit (the paper's proposal).
    pub fn distributed(&self) -> &DistributedControlUnit {
        &self.distributed
    }

    /// The synchronized centralized controller (CENT-SYNC / TAUBM style).
    pub fn cent_sync(&self) -> &Fsm {
        &self.cent_sync
    }

    /// The centralized product FSM, when requested.
    pub fn centralized(&self) -> Option<&Fsm> {
        self.centralized.as_ref()
    }

    /// The artifact content hash.
    pub fn hash(&self) -> u64 {
        self.hash
    }
}

/// Gate-level realizations of every controller under one encoding:
/// stage 5's output.
#[derive(Clone, Debug)]
pub struct SynthesizedLogic {
    controls: Arc<ControlUnits>,
    encoding: Encoding,
    controllers: Vec<(UnitId, SynthesizedFsm)>,
    cent_sync: SynthesizedFsm,
    centralized: Option<SynthesizedFsm>,
    hash: u64,
}

impl SynthesizedLogic {
    /// The symbolic controllers this logic realizes.
    pub fn controls(&self) -> &Arc<ControlUnits> {
        &self.controls
    }

    /// The state encoding used.
    pub fn encoding(&self) -> Encoding {
        self.encoding
    }

    /// The synthesized distributed controllers, one per occupied unit.
    pub fn controllers(&self) -> &[(UnitId, SynthesizedFsm)] {
        &self.controllers
    }

    /// The synthesized CENT-SYNC controller.
    pub fn cent_sync(&self) -> &SynthesizedFsm {
        &self.cent_sync
    }

    /// The synthesized centralized product, when it was generated.
    pub fn centralized(&self) -> Option<&SynthesizedFsm> {
        self.centralized.as_ref()
    }

    /// The artifact content hash.
    pub fn hash(&self) -> u64 {
        self.hash
    }
}

/// One Table-1-style area row.
#[derive(Clone, Debug, PartialEq)]
pub struct ReportRow {
    /// Controller name (CENT-FSM, CENT-SYNC-FSM, DIST-FSM, D-FSM-*).
    pub name: String,
    /// Input signal count.
    pub inputs: usize,
    /// Output signal count.
    pub outputs: usize,
    /// Symbolic state count.
    pub states: usize,
    /// Flip-flop count under the chosen encoding.
    pub flip_flops: usize,
    /// Combinational area (gate equivalents).
    pub area_combinational: f64,
    /// Sequential area (gate equivalents).
    pub area_sequential: f64,
}

/// The Table-1-style area report: stage 6's output and the end of the
/// artifact chain.
#[derive(Clone, Debug)]
pub struct Reports {
    rows: Vec<ReportRow>,
    hash: u64,
}

impl Reports {
    /// The area rows: CENT-FSM (when generated), CENT-SYNC-FSM, the
    /// aggregate DIST-FSM, then the component D-FSMs.
    pub fn rows(&self) -> &[ReportRow] {
        &self.rows
    }

    /// The artifact content hash.
    pub fn hash(&self) -> u64 {
        self.hash
    }
}

// ---------------------------------------------------------------------------
// The Stage abstraction
// ---------------------------------------------------------------------------

/// One pass of the synthesis pipeline: a pure function from an input
/// artifact (plus the stage's own parameters) to an output artifact.
///
/// `input_hash` must absorb *everything* `apply` depends on — the upstream
/// artifact hash and any stage parameters — because it is the stage-cache
/// key: equal input hashes are contractually interchangeable outputs.
pub trait Stage {
    /// The consumed artifact (plus request parameters for the first stage).
    type Input;
    /// The produced artifact.
    type Output: Send + Sync + 'static;

    /// The stage's label in traces, metrics, and cache keys.
    fn name(&self) -> &'static str;

    /// Hash of the input artifact combined with the stage parameters.
    fn input_hash(&self, input: &Self::Input) -> u64;

    /// Runs the pass.
    ///
    /// # Errors
    ///
    /// Returns a [`SynthesisError`] when the input is invalid for this
    /// stage (bad allocation, inconsistent explicit binding, ...).
    fn apply(&self, input: &Self::Input) -> Result<Self::Output, SynthesisError>;

    /// The produced artifact's content hash.
    fn output_hash(&self, output: &Self::Output) -> u64;
}

/// One executed (or cache-served) stage: the trace entry emitted by
/// [`run_stage`].
#[derive(Clone, Debug)]
pub struct StageRecord {
    /// Stage label (one of [`STAGE_NAMES`]).
    pub stage: &'static str,
    /// Hash of the stage's input artifact + parameters.
    pub input_hash: u64,
    /// Content hash of the produced artifact.
    pub output_hash: u64,
    /// Wall time spent (near zero on a stage-cache hit).
    pub wall: Duration,
    /// Whether the output came from a [`StageCache`].
    pub cache_hit: bool,
}

/// The ordered stage records of one pipeline run.
#[derive(Clone, Debug, Default)]
pub struct PipelineTrace {
    /// One record per executed stage, in execution order.
    pub records: Vec<StageRecord>,
}

impl PipelineTrace {
    /// The artifact-hash chain: `(stage, output_hash)` in stage order.
    pub fn hash_chain(&self) -> Vec<(&'static str, u64)> {
        self.records
            .iter()
            .map(|r| (r.stage, r.output_hash))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// The stage cache
// ---------------------------------------------------------------------------

struct StageCacheEntry {
    value: Arc<dyn Any + Send + Sync>,
    output_hash: u64,
    stamp: u64,
}

struct StageCacheInner {
    map: HashMap<(&'static str, u64), StageCacheEntry>,
    stamp: u64,
    hits: u64,
    misses: u64,
}

/// A content-addressed cache of stage outputs, keyed by
/// `(stage name, input hash)`.
///
/// Because stage input hashes absorb the full upstream artifact chain plus
/// stage parameters, a hit is interchangeable with recomputation. Entries
/// are evicted least-recently-used once `capacity` is exceeded. All
/// methods are `&self` and thread-safe; the cache is meant to be shared
/// across requests (the serve layer holds one per process).
pub struct StageCache {
    capacity: usize,
    inner: Mutex<StageCacheInner>,
}

impl std::fmt::Debug for StageCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageCache")
            .field("capacity", &self.capacity)
            .field("entries", &self.entries())
            .finish()
    }
}

impl StageCache {
    /// Creates a cache holding at most `capacity` stage outputs
    /// (a zero capacity disables insertion entirely).
    pub fn new(capacity: usize) -> Self {
        StageCache {
            capacity,
            inner: Mutex::new(StageCacheInner {
                map: HashMap::new(),
                stamp: 0,
                hits: 0,
                misses: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, StageCacheInner> {
        // A poisoned stage cache only ever holds immutable finished
        // artifacts, so continuing with the data is sound.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Looks up a stage output, bumping its recency on a hit. Returns the
    /// artifact and its content hash.
    pub fn get<T: Send + Sync + 'static>(
        &self,
        stage: &'static str,
        input_hash: u64,
    ) -> Option<(Arc<T>, u64)> {
        let mut inner = self.lock();
        inner.stamp += 1;
        let stamp = inner.stamp;
        match inner.map.get_mut(&(stage, input_hash)) {
            Some(entry) => {
                entry.stamp = stamp;
                let value = Arc::clone(&entry.value).downcast::<T>().ok()?;
                let output_hash = entry.output_hash;
                inner.hits += 1;
                Some((value, output_hash))
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Stores a stage output, evicting the least-recently-used entries
    /// when the capacity is exceeded.
    pub fn insert<T: Send + Sync + 'static>(
        &self,
        stage: &'static str,
        input_hash: u64,
        value: Arc<T>,
        output_hash: u64,
    ) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.lock();
        inner.stamp += 1;
        let stamp = inner.stamp;
        inner.map.insert(
            (stage, input_hash),
            StageCacheEntry {
                value,
                output_hash,
                stamp,
            },
        );
        while inner.map.len() > self.capacity {
            let oldest = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(&k, _)| k);
            match oldest {
                Some(k) => inner.map.remove(&k),
                None => break,
            };
        }
    }

    /// Number of cached stage outputs.
    pub fn entries(&self) -> usize {
        self.lock().map.len()
    }

    /// Lifetime lookup hits.
    pub fn hit_count(&self) -> u64 {
        self.lock().hits
    }

    /// Lifetime lookup misses.
    pub fn miss_count(&self) -> u64 {
        self.lock().misses
    }
}

/// Drives one stage: consult `cache`, run `apply` on a miss, store the
/// output, and append a [`StageRecord`] to `trace`.
///
/// # Errors
///
/// Propagates the stage's [`SynthesisError`].
pub fn run_stage<S: Stage>(
    stage: &S,
    input: &S::Input,
    cache: Option<&StageCache>,
    trace: &mut PipelineTrace,
) -> Result<Arc<S::Output>, SynthesisError> {
    let input_hash = stage.input_hash(input);
    let start = Instant::now();
    if let Some(cache) = cache {
        if let Some((value, output_hash)) = cache.get::<S::Output>(stage.name(), input_hash) {
            trace.records.push(StageRecord {
                stage: stage.name(),
                input_hash,
                output_hash,
                wall: start.elapsed(),
                cache_hit: true,
            });
            return Ok(value);
        }
    }
    let output = stage.apply(input)?;
    let output_hash = stage.output_hash(&output);
    let value = Arc::new(output);
    if let Some(cache) = cache {
        cache.insert(stage.name(), input_hash, Arc::clone(&value), output_hash);
    }
    trace.records.push(StageRecord {
        stage: stage.name(),
        input_hash,
        output_hash,
        wall: start.elapsed(),
        cache_hit: false,
    });
    Ok(value)
}

// ---------------------------------------------------------------------------
// The concrete stages
// ---------------------------------------------------------------------------

/// The raw synthesis request consumed by [`Canonicalize`].
#[derive(Clone, Debug)]
pub struct SynthesisInput {
    /// The dataflow graph.
    pub dfg: Dfg,
    /// The resource allocation.
    pub allocation: Allocation,
    /// The binding strategy.
    pub strategy: BindStrategy,
}

/// Stage 1: validates the request and roots the artifact-hash chain.
#[derive(Clone, Copy, Debug)]
pub struct Canonicalize;

impl Stage for Canonicalize {
    type Input = SynthesisInput;
    type Output = CanonicalDfg;

    fn name(&self) -> &'static str {
        "canonicalize"
    }

    fn input_hash(&self, input: &SynthesisInput) -> u64 {
        let mut h = Fnv64::new();
        hash_dfg(&mut h, &input.dfg);
        hash_allocation(&mut h, &input.allocation);
        match &input.strategy {
            BindStrategy::LeftEdge => h.write(&[0]),
            BindStrategy::Chains => h.write(&[1]),
            BindStrategy::Explicit(seqs) => {
                h.write(&[2]);
                hash_sequences(&mut h, seqs);
            }
        }
        h.finish()
    }

    fn apply(&self, input: &SynthesisInput) -> Result<CanonicalDfg, SynthesisError> {
        if input.dfg.num_ops() == 0 {
            return Err(SynthesisError::InvalidConfig(format!(
                "graph '{}' has no operations to synthesize",
                input.dfg.name()
            )));
        }
        if !input.allocation.covers(&input.dfg) {
            return Err(SynthesisError::InsufficientAllocation);
        }
        let mut h = Fnv64::new();
        h.write_str("canonicalize");
        h.write_u64(self.input_hash(input));
        Ok(CanonicalDfg {
            dfg: input.dfg.clone(),
            allocation: input.allocation.clone(),
            strategy: input.strategy.clone(),
            hash: h.finish(),
        })
    }

    fn output_hash(&self, output: &CanonicalDfg) -> u64 {
        output.hash
    }
}

/// Stage 2: computes per-unit operation sequences under the strategy.
#[derive(Clone, Copy, Debug)]
pub struct Order;

impl Stage for Order {
    type Input = Arc<CanonicalDfg>;
    type Output = OrderedDfg;

    fn name(&self) -> &'static str {
        "order"
    }

    fn input_hash(&self, input: &Arc<CanonicalDfg>) -> u64 {
        input.hash
    }

    fn apply(&self, input: &Arc<CanonicalDfg>) -> Result<OrderedDfg, SynthesisError> {
        let sequences = match &input.strategy {
            BindStrategy::LeftEdge => left_edge_sequences(&input.dfg, &input.allocation),
            BindStrategy::Chains => chain_sequences(&input.dfg, &input.allocation),
            BindStrategy::Explicit(seqs) => seqs.clone(),
        };
        let mut h = Fnv64::new();
        h.write_str("order");
        h.write_u64(input.hash);
        hash_sequences(&mut h, &sequences);
        Ok(OrderedDfg {
            canonical: Arc::clone(input),
            sequences,
            hash: h.finish(),
        })
    }

    fn output_hash(&self, output: &OrderedDfg) -> u64 {
        output.hash
    }
}

/// Stage 3: materializes the binding — schedule arcs, combined
/// reachability, legality checks.
#[derive(Clone, Copy, Debug)]
pub struct Bind;

impl Stage for Bind {
    type Input = Arc<OrderedDfg>;
    type Output = BoundDesign;

    fn name(&self) -> &'static str {
        "bind"
    }

    fn input_hash(&self, input: &Arc<OrderedDfg>) -> u64 {
        input.hash
    }

    fn apply(&self, input: &Arc<OrderedDfg>) -> Result<BoundDesign, SynthesisError> {
        let canonical = input.canonical();
        let bound = BoundDfg::bind_explicit(
            &canonical.dfg,
            &canonical.allocation,
            input.sequences.clone(),
        )
        .map_err(SynthesisError::Binding)?;
        let mut h = Fnv64::new();
        h.write_str("bind");
        h.write_u64(input.hash);
        h.write_usize(bound.schedule_arcs().len());
        for &(a, b) in bound.schedule_arcs() {
            h.write_usize(a.0);
            h.write_usize(b.0);
        }
        for v in bound.dfg().op_ids() {
            h.write_usize(bound.schedule().step(v));
        }
        Ok(BoundDesign {
            bound,
            hash: h.finish(),
        })
    }

    fn output_hash(&self, output: &BoundDesign) -> u64 {
        output.hash
    }
}

/// Stage 4: generates the distributed D-FSMs, CENT-SYNC, and (optionally)
/// the centralized product FSM.
#[derive(Clone, Copy, Debug)]
pub struct GenerateControllers {
    /// Also build the CENT-FSM product (exponential in concurrent TAUs).
    pub centralized: bool,
}

impl Stage for GenerateControllers {
    type Input = Arc<BoundDesign>;
    type Output = ControlUnits;

    fn name(&self) -> &'static str {
        "controllers"
    }

    fn input_hash(&self, input: &Arc<BoundDesign>) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(input.hash);
        h.write(&[u8::from(self.centralized)]);
        h.finish()
    }

    fn apply(&self, input: &Arc<BoundDesign>) -> Result<ControlUnits, SynthesisError> {
        let bound = input.bound();
        let distributed = DistributedControlUnit::generate(bound);
        let cent_sync = cent_sync_fsm(bound);
        let centralized = self.centralized.then(|| {
            // Fig 4(a)-style CENT-FSM: synchronous product of *single-shot*
            // controllers (one DFG iteration, absorbing DONE) with state
            // minimization — the canonical centralized machine tracking
            // every TAU's completion independently.
            let mut fsms: Vec<Fsm> = (0..bound.allocation().units().len())
                .filter(|&u| !bound.sequence(UnitId(u)).is_empty())
                .map(|u| tauhls_fsm::unit_controller_opts(bound, UnitId(u), true))
                .collect();
            tauhls_fsm::optimize_dead_completions(&mut fsms);
            let refs: Vec<&Fsm> = fsms.iter().collect();
            let product = synchronous_product(&format!("CENT({})", bound.dfg().name()), &refs);
            tauhls_fsm::minimize_states(&product)
        });
        let mut h = Fnv64::new();
        h.write_str("controllers");
        h.write_u64(self.input_hash(input));
        h.write_usize(distributed.controllers().len());
        for (unit, fsm) in distributed.controllers() {
            h.write_usize(unit.0);
            hash_fsm(&mut h, fsm);
        }
        hash_fsm(&mut h, &cent_sync);
        match &centralized {
            Some(fsm) => {
                h.write(&[1]);
                hash_fsm(&mut h, fsm);
            }
            None => h.write(&[0]),
        }
        Ok(ControlUnits {
            design: Arc::clone(input),
            distributed,
            cent_sync,
            centralized,
            hash: h.finish(),
        })
    }

    fn output_hash(&self, output: &ControlUnits) -> u64 {
        output.hash
    }
}

/// Stage 5: synthesizes every controller to gates under one encoding.
#[derive(Clone, Copy, Debug)]
pub struct SynthesizeLogic {
    /// The state encoding.
    pub encoding: Encoding,
    /// The gate-equivalent cost model.
    pub model: AreaModel,
}

impl Stage for SynthesizeLogic {
    type Input = Arc<ControlUnits>;
    type Output = SynthesizedLogic;

    fn name(&self) -> &'static str {
        "logic"
    }

    fn input_hash(&self, input: &Arc<ControlUnits>) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(input.hash);
        h.write(&[encoding_tag(self.encoding)]);
        h.write_u64(self.model.and_per_input.to_bits());
        h.write_u64(self.model.or_per_input.to_bits());
        h.write_u64(self.model.inverter.to_bits());
        h.write_u64(self.model.flip_flop.to_bits());
        h.finish()
    }

    fn apply(&self, input: &Arc<ControlUnits>) -> Result<SynthesizedLogic, SynthesisError> {
        let controllers: Vec<(UnitId, SynthesizedFsm)> = input
            .distributed()
            .controllers()
            .iter()
            .map(|(unit, fsm)| (*unit, synthesize(fsm, self.encoding, &self.model)))
            .collect();
        let cent_sync = synthesize(input.cent_sync(), self.encoding, &self.model);
        let centralized = input
            .centralized()
            .map(|fsm| synthesize(fsm, self.encoding, &self.model));
        let mut h = Fnv64::new();
        h.write_str("logic");
        h.write_u64(self.input_hash(input));
        h.write_usize(controllers.len());
        for (unit, syn) in &controllers {
            h.write_usize(unit.0);
            hash_synthesized(&mut h, syn);
        }
        hash_synthesized(&mut h, &cent_sync);
        match &centralized {
            Some(syn) => {
                h.write(&[1]);
                hash_synthesized(&mut h, syn);
            }
            None => h.write(&[0]),
        }
        Ok(SynthesizedLogic {
            controls: Arc::clone(input),
            encoding: self.encoding,
            controllers,
            cent_sync,
            centralized,
            hash: h.finish(),
        })
    }

    fn output_hash(&self, output: &SynthesizedLogic) -> u64 {
        output.hash
    }
}

/// Stage 6: folds the synthesized logic into Table-1-style area rows.
#[derive(Clone, Copy, Debug)]
pub struct Report;

impl Stage for Report {
    type Input = Arc<SynthesizedLogic>;
    type Output = Reports;

    fn name(&self) -> &'static str {
        "report"
    }

    fn input_hash(&self, input: &Arc<SynthesizedLogic>) -> u64 {
        input.hash
    }

    fn apply(&self, input: &Arc<SynthesizedLogic>) -> Result<Reports, SynthesisError> {
        let controls = input.controls();
        let mut rows = Vec::new();
        if let (Some(fsm), Some(syn)) = (controls.centralized(), input.centralized()) {
            rows.push(report_row("CENT-FSM", fsm, syn));
        }
        rows.push(report_row(
            "CENT-SYNC-FSM",
            controls.cent_sync(),
            input.cent_sync(),
        ));

        let units = controls.design().bound().allocation().units();
        let mut dist = ReportRow {
            name: "DIST-FSM".to_string(),
            inputs: 0,
            outputs: 0,
            states: 0,
            flip_flops: 0,
            area_combinational: 0.0,
            area_sequential: 0.0,
        };
        let mut component_rows = Vec::new();
        let mut in_names: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        let mut out_names: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        for ((unit, fsm), (_, syn)) in controls
            .distributed()
            .controllers()
            .iter()
            .zip(input.controllers())
        {
            let row = report_row(&format!("D-FSM-{}", units[unit.0].display_name()), fsm, syn);
            dist.states += row.states;
            dist.flip_flops += row.flip_flops;
            dist.area_combinational += row.area_combinational;
            dist.area_sequential += row.area_sequential;
            in_names.extend(fsm.inputs().iter().cloned());
            out_names.extend(fsm.outputs().iter().cloned());
            component_rows.push(row);
        }
        dist.inputs = in_names.len();
        dist.outputs = out_names.len();
        rows.push(dist);
        rows.extend(component_rows);

        let mut h = Fnv64::new();
        h.write_str("report");
        h.write_u64(input.hash);
        h.write_usize(rows.len());
        for row in &rows {
            h.write_str(&row.name);
            h.write_usize(row.inputs);
            h.write_usize(row.outputs);
            h.write_usize(row.states);
            h.write_usize(row.flip_flops);
            h.write_u64(row.area_combinational.to_bits());
            h.write_u64(row.area_sequential.to_bits());
        }
        Ok(Reports {
            rows,
            hash: h.finish(),
        })
    }

    fn output_hash(&self, output: &Reports) -> u64 {
        output.hash
    }
}

fn report_row(name: &str, fsm: &Fsm, syn: &SynthesizedFsm) -> ReportRow {
    ReportRow {
        name: name.to_string(),
        inputs: fsm.inputs().len(),
        outputs: fsm.outputs().len(),
        states: fsm.num_states(),
        flip_flops: syn.flip_flops(),
        area_combinational: syn.area().combinational,
        area_sequential: syn.area().sequential,
    }
}

// ---------------------------------------------------------------------------
// Full-chain driver
// ---------------------------------------------------------------------------

/// Runs the front half of the pipeline (stages 1–4), producing the
/// controllers every downstream consumer shares.
///
/// # Errors
///
/// Returns a [`SynthesisError`] if the request is invalid or the binding
/// is inconsistent.
pub fn run_front(
    input: &SynthesisInput,
    centralized: bool,
    cache: Option<&StageCache>,
    trace: &mut PipelineTrace,
) -> Result<Arc<ControlUnits>, SynthesisError> {
    let canonical = run_stage(&Canonicalize, input, cache, trace)?;
    let ordered = run_stage(&Order, &canonical, cache, trace)?;
    let bound = run_stage(&Bind, &ordered, cache, trace)?;
    run_stage(&GenerateControllers { centralized }, &bound, cache, trace)
}

/// Runs the complete six-stage pipeline, producing the area report and
/// the synthesized logic it summarizes.
///
/// # Errors
///
/// Returns a [`SynthesisError`] if the request is invalid or the binding
/// is inconsistent.
pub fn run_full(
    input: &SynthesisInput,
    centralized: bool,
    encoding: Encoding,
    model: &AreaModel,
    cache: Option<&StageCache>,
    trace: &mut PipelineTrace,
) -> Result<(Arc<SynthesizedLogic>, Arc<Reports>), SynthesisError> {
    let controls = run_front(input, centralized, cache, trace)?;
    let logic = run_stage(
        &SynthesizeLogic {
            encoding,
            model: *model,
        },
        &controls,
        cache,
        trace,
    )?;
    let reports = run_stage(&Report, &logic, cache, trace)?;
    Ok((logic, reports))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tauhls_dfg::benchmarks::{diffeq, fir3};

    fn input(dfg: Dfg, alloc: Allocation) -> SynthesisInput {
        SynthesisInput {
            dfg,
            allocation: alloc,
            strategy: BindStrategy::LeftEdge,
        }
    }

    #[test]
    fn hash_chain_is_deterministic() {
        let run = || {
            let mut trace = PipelineTrace::default();
            run_full(
                &input(diffeq(), Allocation::paper(2, 1, 1)),
                false,
                Encoding::Binary,
                &AreaModel::default(),
                None,
                &mut trace,
            )
            .expect("synthesizes");
            trace.hash_chain()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        assert_eq!(
            a.iter().map(|&(s, _)| s).collect::<Vec<_>>(),
            STAGE_NAMES.to_vec()
        );
    }

    #[test]
    fn hashes_separate_different_requests() {
        let chain = |dfg: Dfg, alloc: Allocation, enc: Encoding| {
            let mut trace = PipelineTrace::default();
            run_full(
                &input(dfg, alloc),
                false,
                enc,
                &AreaModel::default(),
                None,
                &mut trace,
            )
            .expect("synthesizes");
            trace.hash_chain()
        };
        let base = chain(fir3(), Allocation::paper(2, 1, 0), Encoding::Binary);
        let other_alloc = chain(fir3(), Allocation::paper(1, 1, 0), Encoding::Binary);
        assert_ne!(base[0].1, other_alloc[0].1, "allocation must enter stage 1");
        let other_enc = chain(fir3(), Allocation::paper(2, 1, 0), Encoding::OneHot);
        // Encoding enters only at the logic stage: the first four artifact
        // hashes are shared, the last two diverge.
        assert_eq!(&base[..4], &other_enc[..4]);
        assert_ne!(base[4].1, other_enc[4].1);
        assert_ne!(base[5].1, other_enc[5].1);
    }

    #[test]
    fn stage_cache_prefix_reuse_across_encodings() {
        let cache = StageCache::new(64);
        let mut cold = PipelineTrace::default();
        run_full(
            &input(fir3(), Allocation::paper(2, 1, 0)),
            false,
            Encoding::Binary,
            &AreaModel::default(),
            Some(&cache),
            &mut cold,
        )
        .expect("synthesizes");
        assert!(cold.records.iter().all(|r| !r.cache_hit));

        // Same request, different encoding: stages 1-4 hit, 5-6 recompute.
        let mut warm = PipelineTrace::default();
        run_full(
            &input(fir3(), Allocation::paper(2, 1, 0)),
            false,
            Encoding::Gray,
            &AreaModel::default(),
            Some(&cache),
            &mut warm,
        )
        .expect("synthesizes");
        let hits: Vec<_> = warm
            .records
            .iter()
            .filter(|r| r.cache_hit)
            .map(|r| r.stage)
            .collect();
        assert_eq!(hits, ["canonicalize", "order", "bind", "controllers"]);
        // The shared prefix reproduces the cold run's exact hashes.
        for (c, w) in cold.records.iter().zip(&warm.records).take(4) {
            assert_eq!(c.output_hash, w.output_hash);
        }
        assert_ne!(cold.records[4].output_hash, warm.records[4].output_hash);

        // Replaying the cold request end-to-end is now all hits.
        let mut replay = PipelineTrace::default();
        run_full(
            &input(fir3(), Allocation::paper(2, 1, 0)),
            false,
            Encoding::Binary,
            &AreaModel::default(),
            Some(&cache),
            &mut replay,
        )
        .expect("synthesizes");
        assert!(replay.records.iter().all(|r| r.cache_hit));
        for (c, r) in cold.records.iter().zip(&replay.records) {
            assert_eq!(c.output_hash, r.output_hash);
        }
    }

    #[test]
    fn stage_cache_evicts_least_recently_used() {
        let cache = StageCache::new(2);
        cache.insert("canonicalize", 1, Arc::new(1u32), 10);
        cache.insert("canonicalize", 2, Arc::new(2u32), 20);
        // Touch key 1 so key 2 is the eviction victim.
        assert!(cache.get::<u32>("canonicalize", 1).is_some());
        cache.insert("canonicalize", 3, Arc::new(3u32), 30);
        assert_eq!(cache.entries(), 2);
        assert!(cache.get::<u32>("canonicalize", 2).is_none());
        assert!(cache.get::<u32>("canonicalize", 1).is_some());
        assert!(cache.get::<u32>("canonicalize", 3).is_some());
    }

    #[test]
    fn empty_graph_is_invalid_config() {
        let empty = tauhls_dfg::DfgBuilder::new("empty").build().expect("valid");
        let mut trace = PipelineTrace::default();
        let err = run_front(
            &input(empty, Allocation::paper(1, 1, 0)),
            false,
            None,
            &mut trace,
        )
        .unwrap_err();
        assert!(matches!(err, SynthesisError::InvalidConfig(_)), "{err}");
        assert!(err.to_string().contains("no operations"), "{err}");
    }
}
