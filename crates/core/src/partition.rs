//! Deterministic partition planning and bit-identical merging of job
//! results — the single-node core of the distributed cluster mode.
//!
//! A coordinator splits one [`JobSpec`] into contiguous partitions over
//! the spec's natural unit axis, ships each partition to a worker, and
//! reassembles the partial results into the final response body. The
//! invariant this module owes the cluster is **byte-identity**: the body
//! [`merge`] produces must equal the body [`JobSpec::run_with`] produces
//! on one node, at any partition count, for every job kind. Three design
//! rules deliver it:
//!
//! 1. **Global coordinates on the wire.** Every partition runs its slice
//!    with the *global* indices a single-node run would use — simulate
//!    seeds each `P` leg by its index in the full `p_values` list,
//!    resilience seeds each fault kind by its [`FAULT_KINDS`] index, and
//!    explore seeds each allocation by its own triple — so a unit's
//!    numbers never depend on which partition it landed in.
//! 2. **Exact values in partials.** Partials carry raw `u64` counters and
//!    `f64` measurements. Integers are exact by construction; floats are
//!    exact because `tauhls-json` renders shortest-roundtrip, so
//!    `f64 → JSON → f64` is the identity for finite values.
//! 3. **One body builder.** [`merge`] reassembles the same in-memory
//!    structures (latency summaries, resilience counters, sweep points)
//!    the local path computes and renders them through the *same*
//!    builders `run_with` uses — cross-grid post-processing (Pareto
//!    marking, enhancement rows) is recomputed over the merged whole, so
//!    the final rendering is structurally shared, not merely equal.
//!
//! The unit axes: simulate partitions over `p_values`, resilience over
//! the six fault kinds, explore over the deterministic allocation
//! enumeration. `table2`, `synth`, and `area` have no partitionable axis
//! and plan as a single partition whose partial embeds the whole body.

use crate::explore::{
    design_space_slice, enumerate_allocations, mark_scenario_pareto, SweepError, SweepPoint,
};
use crate::jobspec::{bind_spec, build_dfg, encoding_name, parse_encoding, JobError, JobSpec};
use crate::resilience::{
    report_from_counters, resilience_kind_counters_with, KindCounters, FAULT_KINDS,
};
use crate::stages::{StageCache, StageRecord};
use tauhls_json::Json;
use tauhls_sim::{latency_quad_batch_indexed, BatchRunner, LatencySummary};

/// One contiguous slice of a job's partition axis.
///
/// `lo..hi` are global unit indices; the planner's slices tile the axis
/// in index order, so concatenating partial results by `index` recovers
/// single-node unit order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Part {
    /// Position of this partition in the plan (0-based).
    pub index: usize,
    /// Number of partitions in the plan.
    pub total: usize,
    /// First unit covered (inclusive, global index).
    pub lo: usize,
    /// One past the last unit covered (global index).
    pub hi: usize,
}

/// The length of `spec`'s partition axis: swept `P` values for simulate,
/// fault kinds for resilience, covering allocations for explore, and `1`
/// for the indivisible kinds.
///
/// # Errors
///
/// [`JobError::Invalid`] when the spec's DFG fails to resolve.
pub fn unit_count(spec: &JobSpec) -> Result<usize, JobError> {
    Ok(match spec {
        JobSpec::Simulate(s) => s.p_values.len(),
        JobSpec::Resilience(_) => FAULT_KINDS.len(),
        JobSpec::Explore(s) => {
            let graph = build_dfg(&s.dfg).map_err(JobError::Invalid)?;
            enumerate_allocations(&graph, &s.sweep_params()).len()
        }
        JobSpec::Table2(_) | JobSpec::Synth(_) | JobSpec::Area(_) => 1,
    })
}

/// Plans `spec` into at most `max_parts` contiguous partitions.
///
/// Partition `k` of `n` covers units `[k·U/n, (k+1)·U/n)` — the same
/// arithmetic on every node, so a coordinator and a worker handed only
/// `(spec, k, n)` agree on the slice without negotiation. The plan never
/// exceeds the unit count (no empty partitions) and is never empty.
///
/// # Errors
///
/// As [`unit_count`].
pub fn plan(spec: &JobSpec, max_parts: usize) -> Result<Vec<Part>, JobError> {
    let units = unit_count(spec)?;
    let total = max_parts.max(1).min(units.max(1));
    Ok((0..total)
        .map(|k| Part {
            index: k,
            total,
            lo: k * units / total,
            hi: (k + 1) * units / total,
        })
        .collect())
}

/// Recomputes the slice partition `index` of `total` covers — the
/// worker-side half of [`plan`], for a node that received only the
/// coordinates.
///
/// # Errors
///
/// [`JobError::Invalid`] when the coordinates are out of range for the
/// spec (wrong `total`, or `index >= total`).
pub fn part_for(spec: &JobSpec, index: usize, total: usize) -> Result<Part, JobError> {
    let parts = plan(spec, total)?;
    if parts.len() != total {
        return Err(JobError::Invalid(format!(
            "job splits into at most {} parts, not {total}",
            parts.len()
        )));
    }
    parts
        .get(index)
        .copied()
        .ok_or_else(|| JobError::Invalid(format!("part {index} out of range for {total} parts")))
}

fn sweep_error(e: SweepError) -> JobError {
    match e {
        SweepError::Sim(err) => JobError::from_sim(err),
        SweepError::Synthesis(err) => JobError::from_synthesis(err),
    }
}

fn summary_partial(s: &LatencySummary) -> Json {
    Json::object([
        ("best_cycles", Json::from(s.best_cycles)),
        ("average_cycles", Json::floats(&s.average_cycles)),
        ("worst_cycles", Json::from(s.worst_cycles)),
    ])
}

/// Runs one partition of `spec` to its partial-result JSON.
///
/// The partial carries the partition coordinates plus exactly the values
/// [`merge`] needs: per-`P` latency legs (simulate), raw fault-kind
/// counters (resilience), unmarked sweep points (explore), or the whole
/// response body (the indivisible kinds). Stage records from synthesis
/// work are returned alongside for the caller's stage metrics, exactly
/// as [`JobSpec::run_with`] does.
///
/// # Errors
///
/// As [`JobSpec::run_with`], plus [`JobError::Invalid`] for slice bounds
/// that don't fit the spec.
pub fn run_part(
    spec: &JobSpec,
    part: Part,
    runner: &BatchRunner,
    stage_cache: Option<&StageCache>,
) -> Result<(Json, Vec<StageRecord>), JobError> {
    let coords = |payload: (&'static str, Json)| {
        Json::object([
            ("part", Json::from(part.index)),
            ("of", Json::from(part.total)),
            payload,
        ])
    };
    match spec {
        JobSpec::Simulate(s) => {
            if part.hi > s.p_values.len() {
                return Err(JobError::Invalid("slice beyond p_values".to_string()));
            }
            let bound =
                bind_spec(&s.dfg, s.muls, s.adds, s.subs, s.chains).map_err(JobError::Invalid)?;
            let indexed: Vec<(u64, f64)> = (part.lo..part.hi)
                .map(|i| (i as u64, s.p_values[i]))
                .collect();
            let (tau, dist, cent, elas) =
                latency_quad_batch_indexed(&bound, &indexed, s.trials, s.seed, s.elastic, runner)
                    .map_err(JobError::from_sim)?;
            Ok((
                coords((
                    "legs",
                    Json::object([
                        ("lt_tau", summary_partial(&tau)),
                        ("lt_dist", summary_partial(&dist)),
                        ("lt_cent", summary_partial(&cent)),
                        ("lt_elas", summary_partial(&elas)),
                    ]),
                )),
                Vec::new(),
            ))
        }
        JobSpec::Resilience(s) => {
            if part.hi > FAULT_KINDS.len() {
                return Err(JobError::Invalid("slice beyond fault kinds".to_string()));
            }
            let bound =
                bind_spec(&s.dfg, s.muls, s.adds, s.subs, s.chains).map_err(JobError::Invalid)?;
            let counters = resilience_kind_counters_with(
                &bound,
                s.p,
                s.trials,
                s.seed,
                part.lo..part.hi,
                &s.options(),
                runner,
            );
            runner.check_cancelled().map_err(JobError::from_sim)?;
            let rows: Vec<Json> = counters
                .iter()
                .map(|c| {
                    Json::object([
                        ("deadlock", Json::from(c.deadlock)),
                        ("desync", Json::from(c.desync)),
                        ("survived", Json::from(c.survived)),
                        ("latency_sum", Json::from(c.latency_sum)),
                        ("latency_samples", Json::from(c.latency_samples)),
                        ("cent_agree", Json::from(c.cent_agree)),
                        ("elastic_deadlock", Json::from(c.elastic_deadlock)),
                        ("elastic_desync", Json::from(c.elastic_desync)),
                        ("elastic_survived", Json::from(c.elastic_survived)),
                        ("elastic_latency_sum", Json::from(c.elastic_latency_sum)),
                        (
                            "elastic_latency_samples",
                            Json::from(c.elastic_latency_samples),
                        ),
                    ])
                })
                .collect();
            Ok((coords(("counters", Json::array(rows))), Vec::new()))
        }
        JobSpec::Explore(s) => {
            let graph = build_dfg(&s.dfg).map_err(JobError::Invalid)?;
            let params = s.sweep_params();
            let allocs = enumerate_allocations(&graph, &params);
            if part.hi > allocs.len().max(1) {
                return Err(JobError::Invalid("slice beyond allocations".to_string()));
            }
            let slice = &allocs[part.lo.min(allocs.len())..part.hi.min(allocs.len())];
            let (points, records) = design_space_slice(&graph, &params, slice, runner, stage_cache)
                .map_err(sweep_error)?;
            let pts: Vec<Json> = points
                .iter()
                .map(|p| {
                    Json::object([
                        ("muls", Json::from(p.muls)),
                        ("adds", Json::from(p.adds)),
                        ("subs", Json::from(p.subs)),
                        ("encoding", Json::from(encoding_name(p.encoding))),
                        ("p", Json::Float(p.p)),
                        ("sd_ld", Json::Float(p.sd_ld)),
                        ("skew", Json::from(p.skew)),
                        ("avg_cycles", Json::Float(p.avg_cycles)),
                        ("latency_ns", Json::Float(p.latency_ns)),
                        ("area_ge", Json::Float(p.area_ge)),
                    ])
                })
                .collect();
            Ok((coords(("points", Json::array(pts))), records))
        }
        JobSpec::Table2(_) | JobSpec::Synth(_) | JobSpec::Area(_) => {
            let (body, records) = spec.run_with(runner, stage_cache)?;
            Ok((coords(("body", body)), records))
        }
    }
}

fn bad(msg: &str) -> JobError {
    JobError::Failed(format!("malformed partition partial: {msg}"))
}

fn field<'a>(obj: &'a Json, key: &str, msg: &str) -> Result<&'a Json, JobError> {
    obj.get(key).ok_or_else(|| bad(msg))
}

fn u64_field(obj: &Json, key: &str) -> Result<u64, JobError> {
    field(obj, key, key)?.as_u64().ok_or_else(|| bad(key))
}

fn floats_field(obj: &Json, key: &str) -> Result<Vec<f64>, JobError> {
    field(obj, key, key)?
        .as_array()
        .ok_or_else(|| bad(key))?
        .iter()
        .map(|v| v.as_f64().ok_or_else(|| bad(key)))
        .collect()
}

fn summary_from_partial(
    legs: &Json,
    leg: &str,
    p_values: &[f64],
    lo: usize,
    hi: usize,
) -> Result<LatencySummary, JobError> {
    let obj = field(legs, leg, leg)?;
    let avg = floats_field(obj, "average_cycles")?;
    if avg.len() != hi - lo {
        return Err(bad("average_cycles length mismatch"));
    }
    Ok(LatencySummary {
        best_cycles: u64_field(obj, "best_cycles")? as usize,
        average_cycles: avg,
        worst_cycles: u64_field(obj, "worst_cycles")? as usize,
        p_values: p_values[lo..hi].to_vec(),
    })
}

/// Merges partition partials — in partition order, one per planned part —
/// back into the final response body.
///
/// The reassembled body is byte-identical to [`JobSpec::run`] on a single
/// node: exact integers and round-trip-exact floats restore the very
/// values the single-node run computes, and rendering goes through the
/// same body builders. Cross-partition post-processing (Pareto marking
/// for explore, enhancement rows for simulate) is recomputed here over
/// the merged whole.
///
/// # Errors
///
/// [`JobError::Failed`] when the partials don't form exactly the plan
/// ([`plan`]`(spec, partials.len())`) — wrong count, wrong coordinates,
/// missing fields, or mismatched slice lengths.
pub fn merge(spec: &JobSpec, partials: &[Json]) -> Result<Json, JobError> {
    let parts = plan(spec, partials.len())?;
    if parts.len() != partials.len() {
        return Err(bad(&format!(
            "expected {} partials, got {}",
            parts.len(),
            partials.len()
        )));
    }
    for (part, partial) in parts.iter().zip(partials) {
        if u64_field(partial, "part")? != part.index as u64
            || u64_field(partial, "of")? != part.total as u64
        {
            return Err(bad("partition coordinates out of order"));
        }
    }
    match spec {
        JobSpec::Simulate(s) => {
            let mut tau: Option<LatencySummary> = None;
            let mut dist: Option<LatencySummary> = None;
            let mut cent: Option<LatencySummary> = None;
            let mut elas: Option<LatencySummary> = None;
            for (part, partial) in parts.iter().zip(partials) {
                let legs = field(partial, "legs", "legs")?;
                for (acc, leg) in [
                    (&mut tau, "lt_tau"),
                    (&mut dist, "lt_dist"),
                    (&mut cent, "lt_cent"),
                    (&mut elas, "lt_elas"),
                ] {
                    let piece = summary_from_partial(legs, leg, &s.p_values, part.lo, part.hi)?;
                    match acc {
                        None => *acc = Some(piece),
                        Some(whole) => {
                            // Best/worst are deterministic extremes; every
                            // partition reports the same values.
                            if whole.best_cycles != piece.best_cycles
                                || whole.worst_cycles != piece.worst_cycles
                            {
                                return Err(bad("partitions disagree on best/worst"));
                            }
                            whole.average_cycles.extend(piece.average_cycles);
                            whole.p_values.extend(piece.p_values);
                        }
                    }
                }
            }
            match (tau, dist, cent, elas) {
                (Some(tau), Some(dist), Some(cent), Some(elas)) => {
                    if tau.average_cycles.len() != s.p_values.len() {
                        return Err(bad("merged sweep does not cover p_values"));
                    }
                    Ok(spec.simulate_body(&tau, &dist, &cent, &elas))
                }
                _ => Err(bad("no partials")),
            }
        }
        JobSpec::Resilience(s) => {
            let mut counters = Vec::with_capacity(FAULT_KINDS.len());
            for (part, partial) in parts.iter().zip(partials) {
                let rows = field(partial, "counters", "counters")?
                    .as_array()
                    .ok_or_else(|| bad("counters"))?;
                if rows.len() != part.hi - part.lo {
                    return Err(bad("counters length mismatch"));
                }
                for row in rows {
                    counters.push(KindCounters {
                        deadlock: u64_field(row, "deadlock")?,
                        desync: u64_field(row, "desync")?,
                        survived: u64_field(row, "survived")?,
                        latency_sum: u64_field(row, "latency_sum")?,
                        latency_samples: u64_field(row, "latency_samples")?,
                        cent_agree: u64_field(row, "cent_agree")?,
                        elastic_deadlock: u64_field(row, "elastic_deadlock")?,
                        elastic_desync: u64_field(row, "elastic_desync")?,
                        elastic_survived: u64_field(row, "elastic_survived")?,
                        elastic_latency_sum: u64_field(row, "elastic_latency_sum")?,
                        elastic_latency_samples: u64_field(row, "elastic_latency_samples")?,
                    });
                }
            }
            if counters.len() != FAULT_KINDS.len() {
                return Err(bad("merged counters do not cover all fault kinds"));
            }
            let graph = build_dfg(&s.dfg).map_err(JobError::Invalid)?;
            let report = report_from_counters(graph.name(), s.p, s.trials, s.seed, &counters);
            Ok(spec.resilience_body(&report))
        }
        JobSpec::Explore(s) => {
            let graph = build_dfg(&s.dfg).map_err(JobError::Invalid)?;
            let mut points = Vec::new();
            for partial in partials {
                let pts = field(partial, "points", "points")?
                    .as_array()
                    .ok_or_else(|| bad("points"))?;
                for p in pts {
                    let enc = field(p, "encoding", "encoding")?
                        .as_str()
                        .and_then(parse_encoding)
                        .ok_or_else(|| bad("encoding"))?;
                    let f = |key: &str| -> Result<f64, JobError> {
                        field(p, key, key)?.as_f64().ok_or_else(|| bad(key))
                    };
                    points.push(SweepPoint {
                        muls: u64_field(p, "muls")? as usize,
                        adds: u64_field(p, "adds")? as usize,
                        subs: u64_field(p, "subs")? as usize,
                        encoding: enc,
                        p: f("p")?,
                        sd_ld: f("sd_ld")?,
                        skew: u64_field(p, "skew")?,
                        avg_cycles: f("avg_cycles")?,
                        latency_ns: f("latency_ns")?,
                        area_ge: f("area_ge")?,
                        pareto: false,
                    });
                }
            }
            mark_scenario_pareto(&mut points);
            Ok(spec.explore_body(&graph, &points))
        }
        JobSpec::Table2(_) | JobSpec::Synth(_) | JobSpec::Area(_) => partials
            .first()
            .and_then(|p| p.get("body"))
            .cloned()
            .ok_or_else(|| bad("missing body")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobspec::Endpoint;

    fn spec(endpoint: Endpoint, text: &str) -> JobSpec {
        JobSpec::from_json(endpoint, &Json::parse(text).expect("well-formed test spec"))
            .expect("valid test spec")
    }

    /// Splits, runs, and merges `spec` at several partition counts,
    /// demanding byte-identity with the single-node body every time.
    fn assert_conformance(spec: &JobSpec, max_parts_list: &[usize]) {
        let runner = BatchRunner::new(2);
        let single = spec
            .run_with(&runner, None)
            .expect("single-node run")
            .0
            .to_compact();
        for &max_parts in max_parts_list {
            let parts = plan(spec, max_parts).expect("plan");
            let partials: Vec<Json> = parts
                .iter()
                .map(|&part| {
                    // Round-trip each partial through its serialized form,
                    // exactly as the HTTP wire does.
                    let (partial, _) = run_part(spec, part, &runner, None).expect("part run");
                    Json::parse(&partial.to_compact()).expect("partial round-trips")
                })
                .collect();
            let merged = merge(spec, &partials).expect("merge").to_compact();
            assert_eq!(
                merged, single,
                "byte-identity violated at max_parts={max_parts}"
            );
        }
    }

    #[test]
    fn simulate_merges_bit_identically() {
        let s = spec(
            Endpoint::Simulate,
            r#"{"dfg":"fir3","p":[0.3,0.5,0.7,0.9,1.0],"trials":60,"seed":11}"#,
        );
        assert_conformance(&s, &[1, 2, 3, 5, 8]);
    }

    #[test]
    fn resilience_merges_bit_identically() {
        let s = spec(
            Endpoint::Resilience,
            r#"{"dfg":"fir5","p":0.5,"trials":40,"seed":2003}"#,
        );
        assert_conformance(&s, &[1, 2, 3, 6]);
    }

    #[test]
    fn explore_merges_bit_identically() {
        let s = spec(
            Endpoint::Explore,
            r#"{"dfg":"fir5","max_muls":2,"max_adds":2,"p":[0.5,0.9],"trials":40,"seed":7}"#,
        );
        assert_conformance(&s, &[1, 2, 3, 4]);
    }

    #[test]
    fn indivisible_kinds_plan_one_part_and_merge_to_the_body() {
        let s = spec(
            Endpoint::Synth,
            r#"{"dfg":"fir3","muls":1,"adds":1,"encoding":"gray"}"#,
        );
        assert_eq!(unit_count(&s).unwrap(), 1);
        assert_conformance(&s, &[1, 3]);
    }

    #[test]
    fn plan_is_contiguous_total_and_worker_side_recomputable() {
        let s = spec(
            Endpoint::Simulate,
            r#"{"dfg":"fir3","p":[0.1,0.2,0.3,0.4,0.5],"trials":10}"#,
        );
        for max_parts in 1..=7 {
            let parts = plan(&s, max_parts).unwrap();
            assert!(parts.len() <= 5, "never more parts than units");
            assert_eq!(parts[0].lo, 0);
            assert_eq!(parts.last().unwrap().hi, 5);
            for w in parts.windows(2) {
                assert_eq!(w[0].hi, w[1].lo, "contiguous tiling");
            }
            for part in &parts {
                assert!(part.hi > part.lo, "no empty partitions");
                assert_eq!(
                    part_for(&s, part.index, part.total).unwrap(),
                    *part,
                    "worker recomputes the same slice"
                );
            }
        }
        assert!(part_for(&s, 9, 3).is_err());
        assert!(part_for(&s, 0, 9).is_err(), "over-split total is rejected");
    }

    #[test]
    fn merge_rejects_shuffled_or_short_partials() {
        let s = spec(
            Endpoint::Simulate,
            r#"{"dfg":"fir3","p":[0.25,0.75],"trials":20}"#,
        );
        let runner = BatchRunner::serial();
        let parts = plan(&s, 2).unwrap();
        let mut partials: Vec<Json> = parts
            .iter()
            .map(|&part| run_part(&s, part, &runner, None).unwrap().0)
            .collect();
        partials.swap(0, 1);
        assert!(merge(&s, &partials).is_err(), "out-of-order partials");
        partials.truncate(1);
        assert!(merge(&s, &partials).is_err(), "short partials");
    }
}
