//! Whole-system area reporting: controllers + functional units +
//! completion generators + datapath registers on one gate-equivalent
//! scale.

use crate::pipeline::Design;
use std::fmt;
use tauhls_datapath::{ArrayMultiplier, RippleCarryAdder, RippleCarrySubtractor, UnitArea};
use tauhls_dfg::ResourceClass;
use tauhls_fsm::{synthesize, Encoding};
use tauhls_logic::AreaModel;
use tauhls_sched::allocate_registers;

/// Coarse gate-equivalent estimate for a completion signal generator of a
/// `width`-bit telescopic unit (leading-significance detection plus a
/// small threshold comparator; exact synthesis is available for small
/// widths via [`tauhls_datapath::CompletionGenerator`]).
pub fn completion_generator_estimate_ge(width: u32) -> f64 {
    10.0 * f64::from(width)
}

/// A full-system area breakdown for one synthesized design.
#[derive(Clone, Debug)]
pub struct SystemArea {
    /// Datapath operand width the estimate assumes.
    pub width: u32,
    /// Distributed-controller area: combinational GE.
    pub control_com: f64,
    /// Distributed-controller area: sequential GE.
    pub control_seq: f64,
    /// Functional-unit area (adders/subtractors/multipliers), GE.
    pub units: f64,
    /// Completion-signal generators of the telescopic units, GE.
    pub completion_generators: f64,
    /// Number of datapath result registers (left-edge allocation).
    pub register_count: usize,
    /// Register-file area (`register_count × width × FF`), GE.
    pub registers: f64,
}

impl SystemArea {
    /// Total system area in gate equivalents.
    pub fn total(&self) -> f64 {
        self.control_com
            + self.control_seq
            + self.units
            + self.completion_generators
            + self.registers
    }

    /// Fraction of the total spent on control (the overhead the paper's
    /// distributed style trades for latency).
    pub fn control_fraction(&self) -> f64 {
        (self.control_com + self.control_seq) / self.total()
    }
}

impl fmt::Display for SystemArea {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "system area ({}-bit datapath, GE):", self.width)?;
        writeln!(
            f,
            "  control        {:>10.0} (com {:.0} + seq {:.0})",
            self.control_com + self.control_seq,
            self.control_com,
            self.control_seq
        )?;
        writeln!(f, "  units          {:>10.0}", self.units)?;
        writeln!(f, "  completion gen {:>10.0}", self.completion_generators)?;
        writeln!(
            f,
            "  registers      {:>10.0} ({} x {} bits)",
            self.registers, self.register_count, self.width
        )?;
        writeln!(
            f,
            "  total          {:>10.0} (control fraction {:.1}%)",
            self.total(),
            self.control_fraction() * 100.0
        )
    }
}

/// Computes the system-area breakdown for a design under the given state
/// encoding, area model, and datapath width.
pub fn system_area(
    design: &Design,
    encoding: Encoding,
    model: &AreaModel,
    width: u32,
) -> SystemArea {
    let bound = design.bound();
    let mut control_com = 0.0;
    let mut control_seq = 0.0;
    for (_, fsm) in design.distributed().controllers() {
        let syn = synthesize(fsm, encoding, model);
        control_com += syn.area().combinational;
        control_seq += syn.area().sequential;
    }
    system_area_parts(bound, model, width, control_com, control_seq)
}

/// Like [`system_area`], but reusing the gate-level controllers of an
/// already-synthesized [`SynthesizedLogic`] artifact instead of
/// re-synthesizing them — the staged-pipeline path, where the `logic`
/// stage output is shared across report consumers.
pub fn system_area_from_logic(
    logic: &crate::stages::SynthesizedLogic,
    model: &AreaModel,
    width: u32,
) -> SystemArea {
    let bound = logic.controls().design().bound();
    let mut control_com = 0.0;
    let mut control_seq = 0.0;
    for (_, syn) in logic.controllers() {
        control_com += syn.area().combinational;
        control_seq += syn.area().sequential;
    }
    system_area_parts(bound, model, width, control_com, control_seq)
}

fn system_area_parts(
    bound: &tauhls_sched::BoundDfg,
    model: &AreaModel,
    width: u32,
    control_com: f64,
    control_seq: f64,
) -> SystemArea {
    let alloc = bound.allocation();
    let mut units = 0.0;
    let mut completion = 0.0;
    for u in alloc.units() {
        let ge = match u.class {
            ResourceClass::Multiplier => ArrayMultiplier::new(width.min(32)).area_ge(),
            ResourceClass::Adder => RippleCarryAdder::new(width).area_ge(),
            ResourceClass::Subtractor => RippleCarrySubtractor::new(width).area_ge(),
        };
        units += ge;
        if u.telescopic {
            completion += completion_generator_estimate_ge(width);
        }
    }

    let regs = allocate_registers(bound);
    let registers = regs.num_registers() as f64 * f64::from(width) * model.flip_flop;

    SystemArea {
        width,
        control_com,
        control_seq,
        units,
        completion_generators: completion,
        register_count: regs.num_registers(),
        registers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Synthesis;
    use tauhls_dfg::benchmarks::diffeq;
    use tauhls_sched::Allocation;

    #[test]
    fn diffeq_system_area_breakdown() {
        let design = Synthesis::new(diffeq())
            .allocation(Allocation::paper(2, 1, 1))
            .run()
            .unwrap();
        let a = system_area(&design, Encoding::Binary, &AreaModel::default(), 16);
        assert!(a.total() > 0.0);
        // Two 16-bit array multipliers dominate everything else.
        assert!(a.units > a.control_com + a.control_seq);
        // Control is a minor fraction of the system — the paper's §5
        // "small additional area overhead" claim in system context.
        assert!(a.control_fraction() < 0.25, "{}", a.control_fraction());
        assert!(a.register_count >= 4);
        let rendered = a.to_string();
        assert!(rendered.contains("control fraction"));
    }

    #[test]
    fn wider_datapath_raises_everything_but_control() {
        let design = Synthesis::new(diffeq())
            .allocation(Allocation::paper(2, 1, 1))
            .run()
            .unwrap();
        let a16 = system_area(&design, Encoding::Binary, &AreaModel::default(), 16);
        let a32 = system_area(&design, Encoding::Binary, &AreaModel::default(), 32);
        assert_eq!(a16.control_com, a32.control_com);
        assert!(a32.units > a16.units);
        assert!(a32.registers > a16.registers);
        assert!(a32.control_fraction() < a16.control_fraction());
    }
}
