//! Canonical job specifications shared by the CLI and the simulation
//! service.
//!
//! A [`JobSpec`] is the validated, fully-materialized form of a request
//! against one of the service endpoints (`simulate`, `table2`,
//! `resilience`). Parsing is strict — unknown keys, duplicate keys, wrong
//! types, and out-of-range values are all rejected with one-line messages
//! — and every optional field is materialized to its default, so two
//! requests that mean the same job normalize to the same
//! [`JobSpec::canonical`] rendering regardless of field order, omitted
//! defaults, or numeric spelling (`[1]` vs `[1.0]`). That rendering,
//! serialized compactly, is the content-addressed [`JobSpec::cache_key`]:
//! equal keys imply byte-identical responses, because the batch engine is
//! bit-deterministic in `(spec, seed)`.

use std::fmt;

use tauhls_dfg::{benchmarks, parse_dfg, Dfg};
use tauhls_json::{Json, ToJson};
use tauhls_sched::{Allocation, BoundDfg};
use tauhls_sim::{
    enhancement_percent, latency_triple_batch, BatchRunner, LatencySummary, SimError,
};

use crate::experiments::table2;
use crate::resilience::resilience_sweep;
use crate::Timing;

/// Upper bound on Monte-Carlo trials a single job may request.
pub const MAX_TRIALS: u64 = 1_000_000;
/// Upper bound on the number of `P` values in one sweep.
pub const MAX_P_VALUES: usize = 16;
/// Upper bound on the byte length of an inline DFG description.
pub const MAX_DFG_TEXT: usize = 64 * 1024;
/// Upper bound on any one unit count (`muls`/`adds`/`subs`).
pub const MAX_UNITS: usize = 64;

/// The benchmark DFGs a job may name, in registry order.
pub const BENCHMARKS: [&str; 7] = [
    "diffeq",
    "fir3",
    "fir5",
    "iir2",
    "iir3",
    "ar_lattice4",
    "ewf",
];

fn benchmark(name: &str) -> Option<Dfg> {
    Some(match name {
        "diffeq" => benchmarks::diffeq(),
        "fir3" => benchmarks::fir3(),
        "fir5" => benchmarks::fir5(),
        "iir2" => benchmarks::iir2(),
        "iir3" => benchmarks::iir3(),
        "ar_lattice4" => benchmarks::ar_lattice4(),
        "ewf" => benchmarks::ewf(),
        _ => return None,
    })
}

/// The service endpoints a [`JobSpec`] can target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// One DFG, three controller styles, a `P` sweep.
    Simulate,
    /// The paper's Table 2 over the built-in benchmark suite.
    Table2,
    /// Fault-injection sweep over every fault kind.
    Resilience,
}

impl Endpoint {
    /// The endpoint's path segment (`simulate` in `POST /v1/simulate`).
    pub fn as_str(self) -> &'static str {
        match self {
            Endpoint::Simulate => "simulate",
            Endpoint::Table2 => "table2",
            Endpoint::Resilience => "resilience",
        }
    }

    /// Parses a path segment back into an endpoint.
    pub fn parse(s: &str) -> Option<Endpoint> {
        Some(match s {
            "simulate" => Endpoint::Simulate,
            "table2" => Endpoint::Table2,
            "resilience" => Endpoint::Resilience,
            _ => return None,
        })
    }
}

/// Where a job's dataflow graph comes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DfgSource {
    /// One of the built-in [`BENCHMARKS`], by name.
    Benchmark(String),
    /// An inline `.dfg` description, validated at parse time.
    Inline(String),
}

impl DfgSource {
    fn build(&self) -> Result<Dfg, String> {
        match self {
            DfgSource::Benchmark(name) => {
                benchmark(name).ok_or_else(|| format!("unknown benchmark '{name}'"))
            }
            DfgSource::Inline(text) => parse_dfg(text).map_err(|e| format!("dfg_text: {e}")),
        }
    }
}

/// Validated spec for `POST /v1/simulate`.
#[derive(Clone, Debug, PartialEq)]
pub struct SimulateSpec {
    /// The graph to bind and simulate.
    pub dfg: DfgSource,
    /// Telescopic multipliers allocated.
    pub muls: usize,
    /// Adders allocated.
    pub adds: usize,
    /// Subtractors allocated.
    pub subs: usize,
    /// `true` → chain binding, `false` → left-edge (the default).
    pub chains: bool,
    /// Short-completion probabilities to sweep.
    pub p_values: Vec<f64>,
    /// Monte-Carlo trials.
    pub trials: u64,
    /// Base RNG seed (part of the cache key: same spec, same bytes).
    pub seed: u64,
}

/// Validated spec for `POST /v1/table2`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table2Spec {
    /// Monte-Carlo trials per benchmark row.
    pub trials: u64,
    /// Base RNG seed.
    pub seed: u64,
}

/// Validated spec for `POST /v1/resilience`.
#[derive(Clone, Debug, PartialEq)]
pub struct ResilienceSpec {
    /// The graph to bind and inject faults into.
    pub dfg: DfgSource,
    /// Telescopic multipliers allocated.
    pub muls: usize,
    /// Adders allocated.
    pub adds: usize,
    /// Subtractors allocated.
    pub subs: usize,
    /// `true` → chain binding, `false` → left-edge (the default).
    pub chains: bool,
    /// Short-completion probability of the completion draws.
    pub p: f64,
    /// Trials per fault kind.
    pub trials: u64,
    /// Base RNG seed.
    pub seed: u64,
}

/// One validated, canonicalized service job.
#[derive(Clone, Debug, PartialEq)]
pub enum JobSpec {
    /// `POST /v1/simulate`.
    Simulate(SimulateSpec),
    /// `POST /v1/table2`.
    Table2(Table2Spec),
    /// `POST /v1/resilience`.
    Resilience(ResilienceSpec),
}

/// Why a job could not be completed, pre-sorted into HTTP status classes.
#[derive(Clone, Debug, PartialEq)]
pub enum JobError {
    /// The request itself was malformed (HTTP 400).
    Invalid(String),
    /// The job was cancelled before it finished, e.g. during a graceful
    /// drain (HTTP 503); no partial result is produced or cached.
    Cancelled,
    /// The simulation failed abnormally (HTTP 500).
    Failed(String),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Invalid(m) => write!(f, "invalid job spec: {m}"),
            JobError::Cancelled => write!(f, "job cancelled before completion"),
            JobError::Failed(m) => write!(f, "simulation failed: {m}"),
        }
    }
}

impl std::error::Error for JobError {}

impl JobError {
    fn from_sim(err: SimError) -> JobError {
        match err {
            SimError::Cancelled => JobError::Cancelled,
            SimError::InvalidConfig(m) => JobError::Invalid(m),
            other => JobError::Failed(other.to_string()),
        }
    }
}

// ---------------------------------------------------------------------------
// Strict field extraction
// ---------------------------------------------------------------------------

/// Strict reader over a parsed JSON object: every key must be known, no
/// key may repeat, and each extractor enforces its field's type and range.
struct Fields<'a> {
    pairs: &'a [(String, Json)],
}

impl<'a> Fields<'a> {
    fn new(spec: &'a Json, allowed: &[&str]) -> Result<Fields<'a>, String> {
        let pairs = spec
            .as_object()
            .ok_or_else(|| "job spec must be a JSON object".to_string())?;
        for (i, (key, _)) in pairs.iter().enumerate() {
            if !allowed.contains(&key.as_str()) {
                return Err(format!(
                    "unknown field '{key}' (allowed: {})",
                    allowed.join(", ")
                ));
            }
            if pairs[..i].iter().any(|(k, _)| k == key) {
                return Err(format!("duplicate field '{key}'"));
            }
        }
        Ok(Fields { pairs })
    }

    fn get(&self, key: &str) -> Option<&'a Json> {
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn u64_in(&self, key: &str, default: u64, min: u64, max: u64) -> Result<u64, String> {
        let v = match self.get(key) {
            None => default,
            Some(j) => j
                .as_u64()
                .ok_or_else(|| format!("'{key}' must be a non-negative integer"))?,
        };
        if v < min || v > max {
            return Err(format!("'{key}' must be in {min}..={max}, got {v}"));
        }
        Ok(v)
    }

    fn usize_in(&self, key: &str, default: usize, max: usize) -> Result<usize, String> {
        Ok(self.u64_in(key, default as u64, 0, max as u64)? as usize)
    }

    fn seed(&self) -> Result<u64, String> {
        self.u64_in("seed", 2003, 0, u64::MAX)
    }

    fn probability(&self, key: &str, default: f64) -> Result<f64, String> {
        let v = match self.get(key) {
            None => default,
            Some(j) => j
                .as_f64()
                .ok_or_else(|| format!("'{key}' must be a number"))?,
        };
        if !(0.0..=1.0).contains(&v) {
            return Err(format!("'{key}' must be a probability in [0, 1], got {v}"));
        }
        Ok(v)
    }

    fn p_values(&self) -> Result<Vec<f64>, String> {
        let Some(j) = self.get("p") else {
            return Ok(vec![0.9, 0.7, 0.5]);
        };
        let items = j
            .as_array()
            .ok_or_else(|| "'p' must be an array of probabilities".to_string())?;
        if items.is_empty() || items.len() > MAX_P_VALUES {
            return Err(format!("'p' must hold 1..={MAX_P_VALUES} values"));
        }
        items
            .iter()
            .map(|item| {
                let v = item
                    .as_f64()
                    .ok_or_else(|| "'p' must be an array of numbers".to_string())?;
                if !(0.0..=1.0).contains(&v) {
                    return Err(format!("'p' entries must be in [0, 1], got {v}"));
                }
                Ok(v)
            })
            .collect()
    }

    fn binding(&self) -> Result<bool, String> {
        match self.get("binding") {
            None => Ok(false),
            Some(j) => match j.as_str() {
                Some("left-edge") => Ok(false),
                Some("chains") => Ok(true),
                _ => Err("'binding' must be \"left-edge\" or \"chains\"".to_string()),
            },
        }
    }

    fn dfg(&self) -> Result<DfgSource, String> {
        match (self.get("dfg"), self.get("dfg_text")) {
            (Some(_), Some(_)) => Err("give either 'dfg' or 'dfg_text', not both".to_string()),
            (Some(j), None) => {
                let name = j
                    .as_str()
                    .ok_or_else(|| "'dfg' must be a benchmark name string".to_string())?;
                if benchmark(name).is_none() {
                    return Err(format!(
                        "unknown benchmark '{name}' (one of: {})",
                        BENCHMARKS.join(", ")
                    ));
                }
                Ok(DfgSource::Benchmark(name.to_string()))
            }
            (None, Some(j)) => {
                let text = j
                    .as_str()
                    .ok_or_else(|| "'dfg_text' must be a string".to_string())?;
                if text.len() > MAX_DFG_TEXT {
                    return Err(format!(
                        "'dfg_text' exceeds {MAX_DFG_TEXT} bytes ({} given)",
                        text.len()
                    ));
                }
                Ok(DfgSource::Inline(text.to_string()))
            }
            (None, None) => Ok(DfgSource::Benchmark("fir5".to_string())),
        }
    }
}

fn bind_spec(
    dfg: &DfgSource,
    muls: usize,
    adds: usize,
    subs: usize,
    chains: bool,
) -> Result<BoundDfg, String> {
    let graph = dfg.build()?;
    let alloc = Allocation::paper(muls, adds, subs);
    if !alloc.covers(&graph) {
        return Err("allocation lacks a unit for a used operation class".to_string());
    }
    Ok(if chains {
        BoundDfg::bind_chains(&graph, &alloc)
    } else {
        BoundDfg::bind(&graph, &alloc)
    })
}

impl JobSpec {
    /// Parses and fully validates a job spec for `endpoint`.
    ///
    /// Strict by design: unknown or duplicate fields, wrong types,
    /// out-of-range values, unknown benchmarks, unparsable inline DFGs,
    /// and allocations that cannot cover the graph are all rejected here,
    /// so a spec that parses is guaranteed to run (absent cancellation).
    pub fn from_json(endpoint: Endpoint, spec: &Json) -> Result<JobSpec, JobError> {
        JobSpec::parse(endpoint, spec).map_err(JobError::Invalid)
    }

    fn parse(endpoint: Endpoint, spec: &Json) -> Result<JobSpec, String> {
        match endpoint {
            Endpoint::Simulate => {
                let f = Fields::new(
                    spec,
                    &[
                        "dfg", "dfg_text", "muls", "adds", "subs", "binding", "p", "trials", "seed",
                    ],
                )?;
                let s = SimulateSpec {
                    dfg: f.dfg()?,
                    muls: f.usize_in("muls", 2, MAX_UNITS)?,
                    adds: f.usize_in("adds", 1, MAX_UNITS)?,
                    subs: f.usize_in("subs", 1, MAX_UNITS)?,
                    chains: f.binding()?,
                    p_values: f.p_values()?,
                    trials: f.u64_in("trials", 2000, 1, MAX_TRIALS)?,
                    seed: f.seed()?,
                };
                bind_spec(&s.dfg, s.muls, s.adds, s.subs, s.chains)?;
                Ok(JobSpec::Simulate(s))
            }
            Endpoint::Table2 => {
                let f = Fields::new(spec, &["trials", "seed"])?;
                Ok(JobSpec::Table2(Table2Spec {
                    trials: f.u64_in("trials", 2000, 1, MAX_TRIALS)?,
                    seed: f.seed()?,
                }))
            }
            Endpoint::Resilience => {
                let f = Fields::new(
                    spec,
                    &[
                        "dfg", "dfg_text", "muls", "adds", "subs", "binding", "p", "trials", "seed",
                    ],
                )?;
                let s = ResilienceSpec {
                    dfg: f.dfg()?,
                    muls: f.usize_in("muls", 2, MAX_UNITS)?,
                    adds: f.usize_in("adds", 1, MAX_UNITS)?,
                    subs: f.usize_in("subs", 1, MAX_UNITS)?,
                    chains: f.binding()?,
                    p: f.probability("p", 0.5)?,
                    trials: f.u64_in("trials", 2000, 1, MAX_TRIALS)?,
                    seed: f.seed()?,
                };
                bind_spec(&s.dfg, s.muls, s.adds, s.subs, s.chains)?;
                Ok(JobSpec::Resilience(s))
            }
        }
    }

    /// The endpoint this spec targets.
    pub fn endpoint(&self) -> Endpoint {
        match self {
            JobSpec::Simulate(_) => Endpoint::Simulate,
            JobSpec::Table2(_) => Endpoint::Table2,
            JobSpec::Resilience(_) => Endpoint::Resilience,
        }
    }

    /// Monte-Carlo trials this job will run (table2: per benchmark row;
    /// resilience: per fault kind) — the unit of the service's
    /// trials-per-second gauge.
    pub fn trials(&self) -> u64 {
        match self {
            JobSpec::Simulate(s) => s.trials,
            JobSpec::Table2(s) => s.trials,
            JobSpec::Resilience(s) => s.trials,
        }
    }

    /// The canonical rendering: every field materialized, in one fixed
    /// order, with the endpoint embedded — the value whose compact form is
    /// [`JobSpec::cache_key`].
    pub fn canonical(&self) -> Json {
        fn dfg_pair(dfg: &DfgSource) -> (&'static str, Json) {
            match dfg {
                DfgSource::Benchmark(name) => ("dfg", Json::from(name.as_str())),
                DfgSource::Inline(text) => ("dfg_text", Json::from(text.as_str())),
            }
        }
        fn binding(chains: bool) -> Json {
            Json::from(if chains { "chains" } else { "left-edge" })
        }
        match self {
            JobSpec::Simulate(s) => Json::object([
                ("endpoint", Json::from("simulate")),
                dfg_pair(&s.dfg),
                ("muls", Json::from(s.muls)),
                ("adds", Json::from(s.adds)),
                ("subs", Json::from(s.subs)),
                ("binding", binding(s.chains)),
                ("p", Json::floats(&s.p_values)),
                ("trials", Json::from(s.trials)),
                ("seed", Json::from(s.seed)),
            ]),
            JobSpec::Table2(s) => Json::object([
                ("endpoint", Json::from("table2")),
                ("trials", Json::from(s.trials)),
                ("seed", Json::from(s.seed)),
            ]),
            JobSpec::Resilience(s) => Json::object([
                ("endpoint", Json::from("resilience")),
                dfg_pair(&s.dfg),
                ("muls", Json::from(s.muls)),
                ("adds", Json::from(s.adds)),
                ("subs", Json::from(s.subs)),
                ("binding", binding(s.chains)),
                ("p", Json::Float(s.p)),
                ("trials", Json::from(s.trials)),
                ("seed", Json::from(s.seed)),
            ]),
        }
    }

    /// The content address of this job: the compact canonical rendering.
    /// Two specs with equal keys produce byte-identical responses, because
    /// every field feeding the simulation (seed included) is in the key
    /// and the batch engine is bit-deterministic.
    pub fn cache_key(&self) -> String {
        self.canonical().to_compact()
    }

    /// Runs the job to its JSON response body on `runner`.
    ///
    /// A runner carrying a tripped [`tauhls_sim::CancelToken`] yields
    /// [`JobError::Cancelled`] — never a partial result — so a draining
    /// server cannot poison its cache.
    pub fn run(&self, runner: &BatchRunner) -> Result<Json, JobError> {
        match self {
            JobSpec::Simulate(s) => {
                let bound = bind_spec(&s.dfg, s.muls, s.adds, s.subs, s.chains)
                    .map_err(JobError::Invalid)?;
                let (tau, dist, cent) =
                    latency_triple_batch(&bound, &s.p_values, s.trials, s.seed, runner)
                        .map_err(JobError::from_sim)?;
                let clk = Timing::default().clock_ns();
                let cells = |summary: &LatencySummary| {
                    Json::object([
                        ("best_cycles", Json::from(summary.best_cycles)),
                        ("average_cycles", Json::floats(&summary.average_cycles)),
                        ("worst_cycles", Json::from(summary.worst_cycles)),
                        (
                            "rendered_ns",
                            Json::from(summary.to_ns_string(clk).as_str()),
                        ),
                    ])
                };
                let enhancement = enhancement_percent(&tau, &dist);
                Ok(Json::object([
                    ("spec", self.canonical()),
                    ("clock_ns", Json::from(clk)),
                    ("lt_tau", cells(&tau)),
                    ("lt_dist", cells(&dist)),
                    ("lt_cent", cells(&cent)),
                    ("enhancement_percent", Json::floats(&enhancement)),
                ]))
            }
            JobSpec::Table2(s) => {
                let t = table2(s.trials as usize, s.seed, runner).map_err(JobError::from_sim)?;
                Ok(Json::object([
                    ("spec", self.canonical()),
                    ("table2", t.to_json()),
                ]))
            }
            JobSpec::Resilience(s) => {
                let bound = bind_spec(&s.dfg, s.muls, s.adds, s.subs, s.chains)
                    .map_err(JobError::Invalid)?;
                let report = resilience_sweep(&bound, s.p, s.trials, s.seed, runner);
                // `resilience_sweep` folds whatever chunks ran; surface a
                // cancellation instead of returning (and caching) a
                // partially-populated report.
                runner.check_cancelled().map_err(JobError::from_sim)?;
                Ok(Json::object([
                    ("spec", self.canonical()),
                    ("report", report.to_json()),
                ]))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tauhls_sim::CancelToken;

    fn parse(endpoint: Endpoint, text: &str) -> Result<JobSpec, JobError> {
        JobSpec::from_json(endpoint, &Json::parse(text).expect("well-formed test spec"))
    }

    #[test]
    fn canonicalization_erases_field_order_defaults_and_number_spelling() {
        let a = parse(Endpoint::Simulate, r#"{"trials":50,"p":[1],"seed":2003}"#).unwrap();
        let b = parse(Endpoint::Simulate, r#"{"p":[1.0],"trials":50}"#).unwrap();
        assert_eq!(a.cache_key(), b.cache_key());
        // Defaults materialize into the key.
        assert!(a.cache_key().contains("\"dfg\":\"fir5\""));
        assert!(a.cache_key().contains("\"binding\":\"left-edge\""));
        // A differing seed is a different content address.
        let c = parse(Endpoint::Simulate, r#"{"p":[1.0],"trials":50,"seed":1}"#).unwrap();
        assert_ne!(a.cache_key(), c.cache_key());
    }

    #[test]
    fn empty_specs_materialize_paper_defaults() {
        let JobSpec::Simulate(s) = parse(Endpoint::Simulate, "{}").unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(s.dfg, DfgSource::Benchmark("fir5".to_string()));
        assert_eq!((s.muls, s.adds, s.subs), (2, 1, 1));
        assert_eq!(s.p_values, vec![0.9, 0.7, 0.5]);
        assert_eq!((s.trials, s.seed), (2000, 2003));
        let JobSpec::Resilience(r) = parse(Endpoint::Resilience, "{}").unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(r.p, 0.5);
    }

    #[test]
    fn strict_parsing_rejects_malformed_specs() {
        let cases: &[(Endpoint, &str, &str)] = &[
            (Endpoint::Simulate, "[]", "must be a JSON object"),
            (Endpoint::Simulate, r#"{"wat":1}"#, "unknown field 'wat'"),
            (Endpoint::Table2, r#"{"p":[0.5]}"#, "unknown field 'p'"),
            (
                Endpoint::Simulate,
                r#"{"trials":1,"trials":2}"#,
                "duplicate field 'trials'",
            ),
            (Endpoint::Simulate, r#"{"trials":0}"#, "'trials' must be in"),
            (
                Endpoint::Simulate,
                r#"{"trials":1000001}"#,
                "'trials' must be in",
            ),
            (
                Endpoint::Simulate,
                r#"{"trials":-3}"#,
                "non-negative integer",
            ),
            (Endpoint::Simulate, r#"{"p":[]}"#, "'p' must hold"),
            (Endpoint::Simulate, r#"{"p":[1.5]}"#, "in [0, 1]"),
            (Endpoint::Simulate, r#"{"p":0.5}"#, "'p' must be an array"),
            (
                Endpoint::Resilience,
                r#"{"p":[0.5]}"#,
                "'p' must be a number",
            ),
            (Endpoint::Resilience, r#"{"p":-0.1}"#, "in [0, 1]"),
            (
                Endpoint::Simulate,
                r#"{"binding":"sideways"}"#,
                "'binding' must be",
            ),
            (Endpoint::Simulate, r#"{"dfg":"nope"}"#, "unknown benchmark"),
            (
                Endpoint::Simulate,
                r#"{"dfg":"fir5","dfg_text":"x"}"#,
                "not both",
            ),
            (Endpoint::Simulate, r#"{"dfg_text":"@#$"}"#, "dfg_text:"),
            (Endpoint::Simulate, r#"{"muls":65}"#, "'muls' must be in"),
            (
                Endpoint::Simulate,
                r#"{"dfg":"fir5","subs":0,"adds":0}"#,
                "allocation lacks a unit",
            ),
        ];
        for (endpoint, text, needle) in cases {
            let err = parse(*endpoint, text).expect_err(text).to_string();
            assert!(err.contains(needle), "{text}: got {err:?}, want {needle:?}");
            assert!(!err.contains('\n'), "{text}: multi-line error {err:?}");
        }
    }

    #[test]
    fn simulate_runs_and_embeds_its_canonical_spec() {
        let spec = parse(Endpoint::Simulate, r#"{"trials":40,"p":[0.5],"seed":7}"#).unwrap();
        let body = spec.run(&BatchRunner::serial()).unwrap();
        assert_eq!(body.get("spec").unwrap().to_compact(), spec.cache_key());
        assert!(body.get("lt_tau").unwrap().get("best_cycles").is_some());
        assert_eq!(
            body.get("enhancement_percent")
                .unwrap()
                .as_array()
                .map(<[Json]>::len),
            Some(1)
        );
        // Same spec, same runner → byte-identical body (the cache-hit
        // guarantee, before any cache is involved).
        let again = spec.run(&BatchRunner::new(4)).unwrap();
        assert_eq!(body.to_compact(), again.to_compact());
    }

    #[test]
    fn inline_dfg_and_table2_and_resilience_run() {
        let axpy =
            "dfg axpy\ninput a\ninput x\ninput y\nop m = mul a x\nop r = add m y\noutput r r\n";
        let text = format!(
            r#"{{"dfg_text":"{}","trials":25,"p":[0.5]}}"#,
            axpy.replace('\n', "\\n")
        );
        let spec = parse(Endpoint::Simulate, &text).unwrap();
        assert!(spec.run(&BatchRunner::serial()).is_ok());

        let t2 = parse(Endpoint::Table2, r#"{"trials":20,"seed":3}"#).unwrap();
        let body = t2.run(&BatchRunner::serial()).unwrap();
        assert!(body.get("table2").unwrap().get("rows").is_some());

        let res = parse(Endpoint::Resilience, r#"{"trials":12,"seed":3}"#).unwrap();
        let body = res.run(&BatchRunner::serial()).unwrap();
        assert!(body.get("report").unwrap().get("rows").is_some());
    }

    #[test]
    fn cancelled_runner_yields_cancelled_not_partial_results() {
        let token = CancelToken::new();
        token.cancel();
        let runner = BatchRunner::serial().with_cancel(token);
        for (endpoint, text) in [
            (Endpoint::Simulate, r#"{"trials":40}"#),
            (Endpoint::Table2, r#"{"trials":20}"#),
            (Endpoint::Resilience, r#"{"trials":12}"#),
        ] {
            let spec = parse(endpoint, text).unwrap();
            assert_eq!(spec.run(&runner), Err(JobError::Cancelled), "{text}");
        }
    }
}
