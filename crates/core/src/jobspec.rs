//! Canonical job specifications shared by the CLI and the simulation
//! service.
//!
//! A [`JobSpec`] is the validated, fully-materialized form of a request
//! against one of the service endpoints (`simulate`, `table2`,
//! `resilience`). Parsing is strict — unknown keys, duplicate keys, wrong
//! types, and out-of-range values are all rejected with one-line messages
//! — and every optional field is materialized to its default, so two
//! requests that mean the same job normalize to the same
//! [`JobSpec::canonical`] rendering regardless of field order, omitted
//! defaults, or numeric spelling (`[1]` vs `[1.0]`). That rendering,
//! serialized compactly, is the content-addressed [`JobSpec::cache_key`]:
//! equal keys imply byte-identical responses, because the batch engine is
//! bit-deterministic in `(spec, seed)`.

use std::borrow::Cow;
use std::fmt;

use tauhls_dfg::{benchmarks, parse_dfg, Dfg};
use tauhls_fsm::Encoding;
use tauhls_json::{Json, JsonRef, ToJson};
use tauhls_logic::AreaModel;
use tauhls_sched::{Allocation, BoundDfg};
use tauhls_sim::{
    enhancement_percent, latency_triple_batch, BatchRunner, LatencySummary, SimError,
};

use crate::experiments::table2;
use crate::report::system_area_from_logic;
use crate::resilience::resilience_sweep;
use crate::stages::{
    self, BindStrategy, PipelineTrace, StageCache, StageRecord, SynthesisInput, SynthesizedLogic,
};
use crate::{SynthesisError, Timing};

/// Upper bound on Monte-Carlo trials a single job may request.
pub const MAX_TRIALS: u64 = 1_000_000;
/// Upper bound on the number of `P` values in one sweep.
pub const MAX_P_VALUES: usize = 16;
/// Upper bound on the byte length of an inline DFG description.
pub const MAX_DFG_TEXT: usize = 64 * 1024;
/// Upper bound on any one unit count (`muls`/`adds`/`subs`).
pub const MAX_UNITS: usize = 64;
/// Upper bound on the datapath width of an area estimate.
pub const MAX_WIDTH: u64 = 128;

/// The benchmark DFGs a job may name, in registry order (the canonical
/// [`benchmarks::NAMES`] registry).
pub const BENCHMARKS: [&str; 7] = benchmarks::NAMES;

fn benchmark(name: &str) -> Option<Dfg> {
    benchmarks::by_name(name)
}

/// The service endpoints a [`JobSpec`] can target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// One DFG, three controller styles, a `P` sweep.
    Simulate,
    /// The paper's Table 2 over the built-in benchmark suite.
    Table2,
    /// Fault-injection sweep over every fault kind.
    Resilience,
    /// Staged controller synthesis: artifact-hash chain plus per-unit
    /// controller logic.
    Synth,
    /// Table-1-style controller area rows plus the full-system estimate.
    Area,
}

impl Endpoint {
    /// The endpoint's path segment (`simulate` in `POST /v1/simulate`).
    pub fn as_str(self) -> &'static str {
        match self {
            Endpoint::Simulate => "simulate",
            Endpoint::Table2 => "table2",
            Endpoint::Resilience => "resilience",
            Endpoint::Synth => "synth",
            Endpoint::Area => "area",
        }
    }

    /// Parses a path segment back into an endpoint.
    pub fn parse(s: &str) -> Option<Endpoint> {
        Some(match s {
            "simulate" => Endpoint::Simulate,
            "table2" => Endpoint::Table2,
            "resilience" => Endpoint::Resilience,
            "synth" => Endpoint::Synth,
            "area" => Endpoint::Area,
            _ => return None,
        })
    }
}

fn encoding_name(encoding: Encoding) -> &'static str {
    match encoding {
        Encoding::Binary => "binary",
        Encoding::Gray => "gray",
        Encoding::OneHot => "onehot",
    }
}

fn parse_encoding(s: &str) -> Option<Encoding> {
    Some(match s {
        "binary" => Encoding::Binary,
        "gray" => Encoding::Gray,
        "onehot" => Encoding::OneHot,
        _ => return None,
    })
}

/// Where a job's dataflow graph comes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DfgSource {
    /// One of the built-in [`BENCHMARKS`], by name.
    Benchmark(String),
    /// An inline `.dfg` description, validated at parse time.
    Inline(String),
}

impl DfgSource {
    fn build(&self) -> Result<Dfg, String> {
        match self {
            DfgSource::Benchmark(name) => {
                benchmark(name).ok_or_else(|| format!("unknown benchmark '{name}'"))
            }
            DfgSource::Inline(text) => parse_dfg(text).map_err(|e| format!("dfg_text: {e}")),
        }
    }
}

/// Validated spec for `POST /v1/simulate`.
#[derive(Clone, Debug, PartialEq)]
pub struct SimulateSpec {
    /// The graph to bind and simulate.
    pub dfg: DfgSource,
    /// Telescopic multipliers allocated.
    pub muls: usize,
    /// Adders allocated.
    pub adds: usize,
    /// Subtractors allocated.
    pub subs: usize,
    /// `true` → chain binding, `false` → left-edge (the default).
    pub chains: bool,
    /// Short-completion probabilities to sweep.
    pub p_values: Vec<f64>,
    /// Monte-Carlo trials.
    pub trials: u64,
    /// Base RNG seed (part of the cache key: same spec, same bytes).
    pub seed: u64,
}

/// Validated spec for `POST /v1/table2`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table2Spec {
    /// Monte-Carlo trials per benchmark row.
    pub trials: u64,
    /// Base RNG seed.
    pub seed: u64,
}

/// Validated spec for `POST /v1/resilience`.
#[derive(Clone, Debug, PartialEq)]
pub struct ResilienceSpec {
    /// The graph to bind and inject faults into.
    pub dfg: DfgSource,
    /// Telescopic multipliers allocated.
    pub muls: usize,
    /// Adders allocated.
    pub adds: usize,
    /// Subtractors allocated.
    pub subs: usize,
    /// `true` → chain binding, `false` → left-edge (the default).
    pub chains: bool,
    /// Short-completion probability of the completion draws.
    pub p: f64,
    /// Trials per fault kind.
    pub trials: u64,
    /// Base RNG seed.
    pub seed: u64,
}

/// Validated spec for `POST /v1/synth`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SynthSpec {
    /// The graph to synthesize controllers for.
    pub dfg: DfgSource,
    /// Telescopic multipliers allocated.
    pub muls: usize,
    /// Adders allocated.
    pub adds: usize,
    /// Subtractors allocated.
    pub subs: usize,
    /// `true` → chain binding, `false` → left-edge (the default).
    pub chains: bool,
    /// The state encoding for logic synthesis.
    pub encoding: Encoding,
}

/// Validated spec for `POST /v1/area`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AreaSpec {
    /// The graph to estimate.
    pub dfg: DfgSource,
    /// Telescopic multipliers allocated.
    pub muls: usize,
    /// Adders allocated.
    pub adds: usize,
    /// Subtractors allocated.
    pub subs: usize,
    /// `true` → chain binding, `false` → left-edge (the default).
    pub chains: bool,
    /// The state encoding for logic synthesis.
    pub encoding: Encoding,
    /// Datapath operand width of the system estimate.
    pub width: u32,
}

/// One validated, canonicalized service job.
#[derive(Clone, Debug, PartialEq)]
pub enum JobSpec {
    /// `POST /v1/simulate`.
    Simulate(SimulateSpec),
    /// `POST /v1/table2`.
    Table2(Table2Spec),
    /// `POST /v1/resilience`.
    Resilience(ResilienceSpec),
    /// `POST /v1/synth`.
    Synth(SynthSpec),
    /// `POST /v1/area`.
    Area(AreaSpec),
}

/// Why a job could not be completed, pre-sorted into HTTP status classes.
#[derive(Clone, Debug, PartialEq)]
pub enum JobError {
    /// The request itself was malformed (HTTP 400).
    Invalid(String),
    /// The job was cancelled before it finished, e.g. during a graceful
    /// drain (HTTP 503); no partial result is produced or cached.
    Cancelled,
    /// The simulation failed abnormally (HTTP 500).
    Failed(String),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Invalid(m) => write!(f, "invalid job spec: {m}"),
            JobError::Cancelled => write!(f, "job cancelled before completion"),
            JobError::Failed(m) => write!(f, "simulation failed: {m}"),
        }
    }
}

impl std::error::Error for JobError {}

impl JobError {
    fn from_sim(err: SimError) -> JobError {
        match err {
            SimError::Cancelled => JobError::Cancelled,
            SimError::InvalidConfig(m) => JobError::Invalid(m),
            other => JobError::Failed(other.to_string()),
        }
    }

    fn from_synthesis(err: SynthesisError) -> JobError {
        // Every synthesis failure is a property of the request (bad graph,
        // bad allocation, bad binding), so they all map to HTTP 400.
        JobError::Invalid(err.to_string())
    }
}

// ---------------------------------------------------------------------------
// Strict field extraction
// ---------------------------------------------------------------------------

/// Strict reader over a parsed JSON object: every key must be known, no
/// key may repeat, and each extractor enforces its field's type and range.
///
/// Operates on borrowed [`JsonRef`] pairs so the service's hot request
/// path can decode a spec straight out of the request buffer without
/// per-field string allocations; owned [`Json`] documents go through the
/// [`JsonRef::from_owned`] bridge.
struct Fields<'a> {
    pairs: &'a [(Cow<'a, str>, JsonRef<'a>)],
}

impl<'a> Fields<'a> {
    fn new(spec: &'a JsonRef<'a>, allowed: &[&str]) -> Result<Fields<'a>, String> {
        let pairs = spec
            .as_object()
            .ok_or_else(|| "job spec must be a JSON object".to_string())?;
        Fields::over(pairs, allowed)
    }

    fn over(
        pairs: &'a [(Cow<'a, str>, JsonRef<'a>)],
        allowed: &[&str],
    ) -> Result<Fields<'a>, String> {
        for (i, (key, _)) in pairs.iter().enumerate() {
            if !allowed.contains(&key.as_ref()) {
                return Err(format!(
                    "unknown field '{key}' (allowed: {})",
                    allowed.join(", ")
                ));
            }
            if pairs[..i].iter().any(|(k, _)| k == key) {
                return Err(format!("duplicate field '{key}'"));
            }
        }
        Ok(Fields { pairs })
    }

    fn get(&self, key: &str) -> Option<&'a JsonRef<'a>> {
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn u64_in(&self, key: &str, default: u64, min: u64, max: u64) -> Result<u64, String> {
        let v = match self.get(key) {
            None => default,
            Some(j) => j
                .as_u64()
                .ok_or_else(|| format!("'{key}' must be a non-negative integer"))?,
        };
        if v < min || v > max {
            return Err(format!("'{key}' must be in {min}..={max}, got {v}"));
        }
        Ok(v)
    }

    fn usize_in(&self, key: &str, default: usize, max: usize) -> Result<usize, String> {
        Ok(self.u64_in(key, default as u64, 0, max as u64)? as usize)
    }

    fn seed(&self) -> Result<u64, String> {
        self.u64_in("seed", 2003, 0, u64::MAX)
    }

    fn probability(&self, key: &str, default: f64) -> Result<f64, String> {
        let v = match self.get(key) {
            None => default,
            Some(j) => j
                .as_f64()
                .ok_or_else(|| format!("'{key}' must be a number"))?,
        };
        if !(0.0..=1.0).contains(&v) {
            return Err(format!("'{key}' must be a probability in [0, 1], got {v}"));
        }
        Ok(v)
    }

    fn p_values(&self) -> Result<Vec<f64>, String> {
        let Some(j) = self.get("p") else {
            return Ok(vec![0.9, 0.7, 0.5]);
        };
        let items = j
            .as_array()
            .ok_or_else(|| "'p' must be an array of probabilities".to_string())?;
        if items.is_empty() || items.len() > MAX_P_VALUES {
            return Err(format!("'p' must hold 1..={MAX_P_VALUES} values"));
        }
        items
            .iter()
            .map(|item| {
                let v = item
                    .as_f64()
                    .ok_or_else(|| "'p' must be an array of numbers".to_string())?;
                if !(0.0..=1.0).contains(&v) {
                    return Err(format!("'p' entries must be in [0, 1], got {v}"));
                }
                Ok(v)
            })
            .collect()
    }

    fn encoding(&self) -> Result<Encoding, String> {
        match self.get("encoding") {
            None => Ok(Encoding::Binary),
            Some(j) => j.as_str().and_then(parse_encoding).ok_or_else(|| {
                "'encoding' must be \"binary\", \"gray\", or \"onehot\"".to_string()
            }),
        }
    }

    fn binding(&self) -> Result<bool, String> {
        match self.get("binding") {
            None => Ok(false),
            Some(j) => match j.as_str() {
                Some("left-edge") => Ok(false),
                Some("chains") => Ok(true),
                _ => Err("'binding' must be \"left-edge\" or \"chains\"".to_string()),
            },
        }
    }

    fn dfg(&self) -> Result<DfgSource, String> {
        match (self.get("dfg"), self.get("dfg_text")) {
            (Some(_), Some(_)) => Err("give either 'dfg' or 'dfg_text', not both".to_string()),
            (Some(j), None) => {
                let name = j
                    .as_str()
                    .ok_or_else(|| "'dfg' must be a benchmark name string".to_string())?;
                if benchmark(name).is_none() {
                    return Err(format!(
                        "unknown benchmark '{name}' (one of: {})",
                        BENCHMARKS.join(", ")
                    ));
                }
                Ok(DfgSource::Benchmark(name.to_string()))
            }
            (None, Some(j)) => {
                let text = j
                    .as_str()
                    .ok_or_else(|| "'dfg_text' must be a string".to_string())?;
                if text.len() > MAX_DFG_TEXT {
                    return Err(format!(
                        "'dfg_text' exceeds {MAX_DFG_TEXT} bytes ({} given)",
                        text.len()
                    ));
                }
                Ok(DfgSource::Inline(text.to_string()))
            }
            (None, None) => Ok(DfgSource::Benchmark("fir5".to_string())),
        }
    }
}

/// Parse-time validation for the synthesis endpoints: the graph must
/// build, be non-empty, and be coverable by the allocation — so a spec
/// that parses is guaranteed to synthesize.
fn check_synthesizable(
    dfg: &DfgSource,
    muls: usize,
    adds: usize,
    subs: usize,
) -> Result<(), String> {
    let graph = dfg.build()?;
    if graph.num_ops() == 0 {
        return Err(format!("graph '{}' has no operations", graph.name()));
    }
    if !Allocation::paper(muls, adds, subs).covers(&graph) {
        return Err("allocation lacks a unit for a used operation class".to_string());
    }
    Ok(())
}

fn bind_spec(
    dfg: &DfgSource,
    muls: usize,
    adds: usize,
    subs: usize,
    chains: bool,
) -> Result<BoundDfg, String> {
    let graph = dfg.build()?;
    let alloc = Allocation::paper(muls, adds, subs);
    if !alloc.covers(&graph) {
        return Err("allocation lacks a unit for a used operation class".to_string());
    }
    Ok(if chains {
        BoundDfg::bind_chains(&graph, &alloc)
    } else {
        BoundDfg::bind(&graph, &alloc)
    })
}

/// Renders a trace's artifact-hash chain as a JSON array of
/// `{stage, hash}` objects, hashes as fixed-width hex — deliberately
/// without wall times, which vary run to run and would break the
/// byte-identical response-cache guarantee.
fn stage_hashes(trace: &PipelineTrace) -> Json {
    Json::array(
        trace
            .hash_chain()
            .into_iter()
            .map(|(stage, hash)| {
                Json::object([
                    ("stage", Json::from(stage)),
                    ("hash", Json::from(format!("{hash:016x}").as_str())),
                ])
            })
            .collect::<Vec<_>>(),
    )
}

/// The deterministic `/v1/synth` payload: one row per unit controller plus
/// the synchronizing CENT-SYNC-FSM.
fn synth_body(logic: &SynthesizedLogic) -> Json {
    let units = logic.controls().design().bound().allocation().units();
    let fsm_cells = |syn: &tauhls_fsm::SynthesizedFsm| {
        vec![
            ("states", Json::from(syn.num_states())),
            ("flip_flops", Json::from(syn.flip_flops())),
            ("inputs", Json::from(syn.num_inputs())),
            ("outputs", Json::from(syn.num_outputs())),
            ("area_combinational", Json::Float(syn.area().combinational)),
            ("area_sequential", Json::Float(syn.area().sequential)),
        ]
    };
    let controllers: Vec<Json> = logic
        .controllers()
        .iter()
        .map(|(unit, syn)| {
            let mut cells = vec![("unit", Json::from(units[unit.0].display_name().as_str()))];
            cells.extend(fsm_cells(syn));
            Json::object(cells)
        })
        .collect();
    Json::object([
        ("encoding", Json::from(encoding_name(logic.encoding()))),
        ("controllers", Json::array(controllers)),
        ("cent_sync", Json::object(fsm_cells(logic.cent_sync()))),
    ])
}

impl JobSpec {
    /// Parses and fully validates a job spec for `endpoint`.
    ///
    /// Strict by design: unknown or duplicate fields, wrong types,
    /// out-of-range values, unknown benchmarks, unparsable inline DFGs,
    /// and allocations that cannot cover the graph are all rejected here,
    /// so a spec that parses is guaranteed to run (absent cancellation).
    pub fn from_json(endpoint: Endpoint, spec: &Json) -> Result<JobSpec, JobError> {
        let view = JsonRef::from_owned(spec);
        JobSpec::parse(endpoint, &view).map_err(JobError::Invalid)
    }

    /// [`JobSpec::from_json`] over a borrowed document — the zero-copy
    /// entry the service's request path uses: field names and string
    /// values are read in place from the request buffer and only the
    /// strings the spec retains (benchmark names, inline DFG text) are
    /// copied out.
    pub fn from_json_ref(endpoint: Endpoint, spec: &JsonRef<'_>) -> Result<JobSpec, JobError> {
        JobSpec::parse(endpoint, spec).map_err(JobError::Invalid)
    }

    /// Parses a [`JobSpec::canonical`] document back into a spec: the
    /// embedded `endpoint` field selects the variant and the remaining
    /// fields re-validate exactly like a fresh request. This is the
    /// re-entry point for durable job journals, which persist the
    /// canonical rendering; round-tripping preserves the cache key.
    pub fn from_canonical(doc: &Json) -> Result<JobSpec, JobError> {
        let pairs = doc
            .as_object()
            .ok_or_else(|| JobError::Invalid("canonical spec must be a JSON object".to_string()))?;
        let endpoint = pairs
            .iter()
            .find(|(k, _)| k == "endpoint")
            .and_then(|(_, v)| v.as_str())
            .and_then(Endpoint::parse)
            .ok_or_else(|| {
                JobError::Invalid("canonical spec must name a known 'endpoint'".to_string())
            })?;
        let rest: Vec<(Cow<'_, str>, JsonRef<'_>)> = pairs
            .iter()
            .filter(|(k, _)| k != "endpoint")
            .map(|(k, v)| (Cow::Borrowed(k.as_str()), JsonRef::from_owned(v)))
            .collect();
        let view = JsonRef::Object(rest);
        JobSpec::parse(endpoint, &view).map_err(JobError::Invalid)
    }

    fn parse(endpoint: Endpoint, spec: &JsonRef<'_>) -> Result<JobSpec, String> {
        match endpoint {
            Endpoint::Simulate => {
                let f = Fields::new(
                    spec,
                    &[
                        "dfg", "dfg_text", "muls", "adds", "subs", "binding", "p", "trials", "seed",
                    ],
                )?;
                let s = SimulateSpec {
                    dfg: f.dfg()?,
                    muls: f.usize_in("muls", 2, MAX_UNITS)?,
                    adds: f.usize_in("adds", 1, MAX_UNITS)?,
                    subs: f.usize_in("subs", 1, MAX_UNITS)?,
                    chains: f.binding()?,
                    p_values: f.p_values()?,
                    trials: f.u64_in("trials", 2000, 1, MAX_TRIALS)?,
                    seed: f.seed()?,
                };
                bind_spec(&s.dfg, s.muls, s.adds, s.subs, s.chains)?;
                Ok(JobSpec::Simulate(s))
            }
            Endpoint::Table2 => {
                let f = Fields::new(spec, &["trials", "seed"])?;
                Ok(JobSpec::Table2(Table2Spec {
                    trials: f.u64_in("trials", 2000, 1, MAX_TRIALS)?,
                    seed: f.seed()?,
                }))
            }
            Endpoint::Resilience => {
                let f = Fields::new(
                    spec,
                    &[
                        "dfg", "dfg_text", "muls", "adds", "subs", "binding", "p", "trials", "seed",
                    ],
                )?;
                let s = ResilienceSpec {
                    dfg: f.dfg()?,
                    muls: f.usize_in("muls", 2, MAX_UNITS)?,
                    adds: f.usize_in("adds", 1, MAX_UNITS)?,
                    subs: f.usize_in("subs", 1, MAX_UNITS)?,
                    chains: f.binding()?,
                    p: f.probability("p", 0.5)?,
                    trials: f.u64_in("trials", 2000, 1, MAX_TRIALS)?,
                    seed: f.seed()?,
                };
                bind_spec(&s.dfg, s.muls, s.adds, s.subs, s.chains)?;
                Ok(JobSpec::Resilience(s))
            }
            Endpoint::Synth => {
                let f = Fields::new(
                    spec,
                    &[
                        "dfg", "dfg_text", "muls", "adds", "subs", "binding", "encoding",
                    ],
                )?;
                let s = SynthSpec {
                    dfg: f.dfg()?,
                    muls: f.usize_in("muls", 2, MAX_UNITS)?,
                    adds: f.usize_in("adds", 1, MAX_UNITS)?,
                    subs: f.usize_in("subs", 1, MAX_UNITS)?,
                    chains: f.binding()?,
                    encoding: f.encoding()?,
                };
                check_synthesizable(&s.dfg, s.muls, s.adds, s.subs)?;
                Ok(JobSpec::Synth(s))
            }
            Endpoint::Area => {
                let f = Fields::new(
                    spec,
                    &[
                        "dfg", "dfg_text", "muls", "adds", "subs", "binding", "encoding", "width",
                    ],
                )?;
                let s = AreaSpec {
                    dfg: f.dfg()?,
                    muls: f.usize_in("muls", 2, MAX_UNITS)?,
                    adds: f.usize_in("adds", 1, MAX_UNITS)?,
                    subs: f.usize_in("subs", 1, MAX_UNITS)?,
                    chains: f.binding()?,
                    encoding: f.encoding()?,
                    width: f.u64_in("width", 16, 1, MAX_WIDTH)? as u32,
                };
                check_synthesizable(&s.dfg, s.muls, s.adds, s.subs)?;
                Ok(JobSpec::Area(s))
            }
        }
    }

    /// The endpoint this spec targets.
    pub fn endpoint(&self) -> Endpoint {
        match self {
            JobSpec::Simulate(_) => Endpoint::Simulate,
            JobSpec::Table2(_) => Endpoint::Table2,
            JobSpec::Resilience(_) => Endpoint::Resilience,
            JobSpec::Synth(_) => Endpoint::Synth,
            JobSpec::Area(_) => Endpoint::Area,
        }
    }

    /// Monte-Carlo trials this job will run (table2: per benchmark row;
    /// resilience: per fault kind; zero for the synthesis endpoints, which
    /// run no simulation) — the unit of the service's trials-per-second
    /// gauge.
    pub fn trials(&self) -> u64 {
        match self {
            JobSpec::Simulate(s) => s.trials,
            JobSpec::Table2(s) => s.trials,
            JobSpec::Resilience(s) => s.trials,
            JobSpec::Synth(_) | JobSpec::Area(_) => 0,
        }
    }

    /// The canonical rendering: every field materialized, in one fixed
    /// order, with the endpoint embedded — the value whose compact form is
    /// [`JobSpec::cache_key`].
    pub fn canonical(&self) -> Json {
        fn dfg_pair(dfg: &DfgSource) -> (&'static str, Json) {
            match dfg {
                DfgSource::Benchmark(name) => ("dfg", Json::from(name.as_str())),
                DfgSource::Inline(text) => ("dfg_text", Json::from(text.as_str())),
            }
        }
        fn binding(chains: bool) -> Json {
            Json::from(if chains { "chains" } else { "left-edge" })
        }
        match self {
            JobSpec::Simulate(s) => Json::object([
                ("endpoint", Json::from("simulate")),
                dfg_pair(&s.dfg),
                ("muls", Json::from(s.muls)),
                ("adds", Json::from(s.adds)),
                ("subs", Json::from(s.subs)),
                ("binding", binding(s.chains)),
                ("p", Json::floats(&s.p_values)),
                ("trials", Json::from(s.trials)),
                ("seed", Json::from(s.seed)),
            ]),
            JobSpec::Table2(s) => Json::object([
                ("endpoint", Json::from("table2")),
                ("trials", Json::from(s.trials)),
                ("seed", Json::from(s.seed)),
            ]),
            JobSpec::Resilience(s) => Json::object([
                ("endpoint", Json::from("resilience")),
                dfg_pair(&s.dfg),
                ("muls", Json::from(s.muls)),
                ("adds", Json::from(s.adds)),
                ("subs", Json::from(s.subs)),
                ("binding", binding(s.chains)),
                ("p", Json::Float(s.p)),
                ("trials", Json::from(s.trials)),
                ("seed", Json::from(s.seed)),
            ]),
            JobSpec::Synth(s) => Json::object([
                ("endpoint", Json::from("synth")),
                dfg_pair(&s.dfg),
                ("muls", Json::from(s.muls)),
                ("adds", Json::from(s.adds)),
                ("subs", Json::from(s.subs)),
                ("binding", binding(s.chains)),
                ("encoding", Json::from(encoding_name(s.encoding))),
            ]),
            JobSpec::Area(s) => Json::object([
                ("endpoint", Json::from("area")),
                dfg_pair(&s.dfg),
                ("muls", Json::from(s.muls)),
                ("adds", Json::from(s.adds)),
                ("subs", Json::from(s.subs)),
                ("binding", binding(s.chains)),
                ("encoding", Json::from(encoding_name(s.encoding))),
                ("width", Json::from(s.width as u64)),
            ]),
        }
    }

    /// The content address of this job: the compact canonical rendering.
    /// Two specs with equal keys produce byte-identical responses, because
    /// every field feeding the simulation (seed included) is in the key
    /// and the batch engine is bit-deterministic.
    pub fn cache_key(&self) -> String {
        self.canonical().to_compact()
    }

    /// The content-derived job identifier: the FNV-1a 64-bit hash of
    /// [`JobSpec::cache_key`], as 16 lowercase hex digits. Resubmitting an
    /// identical spec therefore addresses the same job — submission is
    /// idempotent by construction — and the ID is stable across restarts,
    /// which is what lets a replayed journal reconnect status polls to
    /// recovered jobs.
    pub fn job_id(&self) -> String {
        let mut h = stages::Fnv64::new();
        h.write(self.cache_key().as_bytes());
        format!("{:016x}", h.finish())
    }

    /// Runs the job to its JSON response body on `runner`.
    ///
    /// A runner carrying a tripped [`tauhls_sim::CancelToken`] yields
    /// [`JobError::Cancelled`] — never a partial result — so a draining
    /// server cannot poison its cache.
    pub fn run(&self, runner: &BatchRunner) -> Result<Json, JobError> {
        self.run_with(runner, None).map(|(body, _)| body)
    }

    /// Like [`JobSpec::run`], threading an optional shared [`StageCache`]
    /// through the synthesis endpoints and returning the executed
    /// [`StageRecord`]s alongside the body (empty for the simulation
    /// endpoints).
    ///
    /// The response body is a pure function of the spec — per-stage wall
    /// times live only in the records, so a stage-cache hit is
    /// byte-identical to the cold run and response caching stays sound.
    ///
    /// # Errors
    ///
    /// As [`JobSpec::run`].
    pub fn run_with(
        &self,
        runner: &BatchRunner,
        stage_cache: Option<&StageCache>,
    ) -> Result<(Json, Vec<StageRecord>), JobError> {
        match self {
            JobSpec::Synth(s) => {
                let (logic, _, trace) = self.synthesize(
                    &s.dfg,
                    s.muls,
                    s.adds,
                    s.subs,
                    s.chains,
                    s.encoding,
                    stage_cache,
                )?;
                let body = Json::object([
                    ("spec", self.canonical()),
                    ("stages", stage_hashes(&trace)),
                    ("synth", synth_body(&logic)),
                ]);
                Ok((body, trace.records))
            }
            JobSpec::Area(s) => {
                let (logic, reports, trace) = self.synthesize(
                    &s.dfg,
                    s.muls,
                    s.adds,
                    s.subs,
                    s.chains,
                    s.encoding,
                    stage_cache,
                )?;
                let system = system_area_from_logic(&logic, &AreaModel::default(), s.width);
                let rows: Vec<Json> = reports
                    .rows()
                    .iter()
                    .map(|r| {
                        Json::object([
                            ("name", Json::from(r.name.as_str())),
                            ("inputs", Json::from(r.inputs)),
                            ("outputs", Json::from(r.outputs)),
                            ("states", Json::from(r.states)),
                            ("flip_flops", Json::from(r.flip_flops)),
                            ("area_combinational", Json::Float(r.area_combinational)),
                            ("area_sequential", Json::Float(r.area_sequential)),
                        ])
                    })
                    .collect();
                let body = Json::object([
                    ("spec", self.canonical()),
                    ("stages", stage_hashes(&trace)),
                    ("rows", Json::array(rows)),
                    ("system", system.to_json()),
                ]);
                Ok((body, trace.records))
            }
            _ => self.run_simulation(runner).map(|body| (body, Vec::new())),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn synthesize(
        &self,
        dfg: &DfgSource,
        muls: usize,
        adds: usize,
        subs: usize,
        chains: bool,
        encoding: Encoding,
        stage_cache: Option<&StageCache>,
    ) -> Result<
        (
            std::sync::Arc<SynthesizedLogic>,
            std::sync::Arc<stages::Reports>,
            PipelineTrace,
        ),
        JobError,
    > {
        let graph = dfg.build().map_err(JobError::Invalid)?;
        let input = SynthesisInput {
            dfg: graph,
            allocation: Allocation::paper(muls, adds, subs),
            strategy: if chains {
                BindStrategy::Chains
            } else {
                BindStrategy::LeftEdge
            },
        };
        let mut trace = PipelineTrace::default();
        let (logic, reports) = stages::run_full(
            &input,
            false,
            encoding,
            &AreaModel::default(),
            stage_cache,
            &mut trace,
        )
        .map_err(JobError::from_synthesis)?;
        Ok((logic, reports, trace))
    }

    fn run_simulation(&self, runner: &BatchRunner) -> Result<Json, JobError> {
        match self {
            JobSpec::Simulate(s) => {
                let bound = bind_spec(&s.dfg, s.muls, s.adds, s.subs, s.chains)
                    .map_err(JobError::Invalid)?;
                let (tau, dist, cent) =
                    latency_triple_batch(&bound, &s.p_values, s.trials, s.seed, runner)
                        .map_err(JobError::from_sim)?;
                let clk = Timing::default().clock_ns();
                let cells = |summary: &LatencySummary| {
                    Json::object([
                        ("best_cycles", Json::from(summary.best_cycles)),
                        ("average_cycles", Json::floats(&summary.average_cycles)),
                        ("worst_cycles", Json::from(summary.worst_cycles)),
                        (
                            "rendered_ns",
                            Json::from(summary.to_ns_string(clk).as_str()),
                        ),
                    ])
                };
                let enhancement = enhancement_percent(&tau, &dist);
                Ok(Json::object([
                    ("spec", self.canonical()),
                    ("clock_ns", Json::from(clk)),
                    ("lt_tau", cells(&tau)),
                    ("lt_dist", cells(&dist)),
                    ("lt_cent", cells(&cent)),
                    ("enhancement_percent", Json::floats(&enhancement)),
                ]))
            }
            JobSpec::Table2(s) => {
                let t = table2(s.trials as usize, s.seed, runner).map_err(JobError::from_sim)?;
                Ok(Json::object([
                    ("spec", self.canonical()),
                    ("table2", t.to_json()),
                ]))
            }
            JobSpec::Resilience(s) => {
                let bound = bind_spec(&s.dfg, s.muls, s.adds, s.subs, s.chains)
                    .map_err(JobError::Invalid)?;
                let report = resilience_sweep(&bound, s.p, s.trials, s.seed, runner);
                // `resilience_sweep` folds whatever chunks ran; surface a
                // cancellation instead of returning (and caching) a
                // partially-populated report.
                runner.check_cancelled().map_err(JobError::from_sim)?;
                Ok(Json::object([
                    ("spec", self.canonical()),
                    ("report", report.to_json()),
                ]))
            }
            // The synthesis endpoints are dispatched by `run_with` before
            // this helper is reached.
            JobSpec::Synth(_) | JobSpec::Area(_) => {
                unreachable!("synthesis endpoints handled in run_with")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tauhls_sim::CancelToken;

    fn parse(endpoint: Endpoint, text: &str) -> Result<JobSpec, JobError> {
        JobSpec::from_json(endpoint, &Json::parse(text).expect("well-formed test spec"))
    }

    #[test]
    fn canonicalization_erases_field_order_defaults_and_number_spelling() {
        let a = parse(Endpoint::Simulate, r#"{"trials":50,"p":[1],"seed":2003}"#).unwrap();
        let b = parse(Endpoint::Simulate, r#"{"p":[1.0],"trials":50}"#).unwrap();
        assert_eq!(a.cache_key(), b.cache_key());
        // Defaults materialize into the key.
        assert!(a.cache_key().contains("\"dfg\":\"fir5\""));
        assert!(a.cache_key().contains("\"binding\":\"left-edge\""));
        // A differing seed is a different content address.
        let c = parse(Endpoint::Simulate, r#"{"p":[1.0],"trials":50,"seed":1}"#).unwrap();
        assert_ne!(a.cache_key(), c.cache_key());
    }

    #[test]
    fn empty_specs_materialize_paper_defaults() {
        let JobSpec::Simulate(s) = parse(Endpoint::Simulate, "{}").unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(s.dfg, DfgSource::Benchmark("fir5".to_string()));
        assert_eq!((s.muls, s.adds, s.subs), (2, 1, 1));
        assert_eq!(s.p_values, vec![0.9, 0.7, 0.5]);
        assert_eq!((s.trials, s.seed), (2000, 2003));
        let JobSpec::Resilience(r) = parse(Endpoint::Resilience, "{}").unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(r.p, 0.5);
    }

    #[test]
    fn strict_parsing_rejects_malformed_specs() {
        let cases: &[(Endpoint, &str, &str)] = &[
            (Endpoint::Simulate, "[]", "must be a JSON object"),
            (Endpoint::Simulate, r#"{"wat":1}"#, "unknown field 'wat'"),
            (Endpoint::Table2, r#"{"p":[0.5]}"#, "unknown field 'p'"),
            (
                Endpoint::Simulate,
                r#"{"trials":1,"trials":2}"#,
                "duplicate field 'trials'",
            ),
            (Endpoint::Simulate, r#"{"trials":0}"#, "'trials' must be in"),
            (
                Endpoint::Simulate,
                r#"{"trials":1000001}"#,
                "'trials' must be in",
            ),
            (
                Endpoint::Simulate,
                r#"{"trials":-3}"#,
                "non-negative integer",
            ),
            (Endpoint::Simulate, r#"{"p":[]}"#, "'p' must hold"),
            (Endpoint::Simulate, r#"{"p":[1.5]}"#, "in [0, 1]"),
            (Endpoint::Simulate, r#"{"p":0.5}"#, "'p' must be an array"),
            (
                Endpoint::Resilience,
                r#"{"p":[0.5]}"#,
                "'p' must be a number",
            ),
            (Endpoint::Resilience, r#"{"p":-0.1}"#, "in [0, 1]"),
            (
                Endpoint::Simulate,
                r#"{"binding":"sideways"}"#,
                "'binding' must be",
            ),
            (Endpoint::Simulate, r#"{"dfg":"nope"}"#, "unknown benchmark"),
            (
                Endpoint::Simulate,
                r#"{"dfg":"fir5","dfg_text":"x"}"#,
                "not both",
            ),
            (Endpoint::Simulate, r#"{"dfg_text":"@#$"}"#, "dfg_text:"),
            (Endpoint::Simulate, r#"{"muls":65}"#, "'muls' must be in"),
            (
                Endpoint::Simulate,
                r#"{"dfg":"fir5","subs":0,"adds":0}"#,
                "allocation lacks a unit",
            ),
        ];
        for (endpoint, text, needle) in cases {
            let err = parse(*endpoint, text).expect_err(text).to_string();
            assert!(err.contains(needle), "{text}: got {err:?}, want {needle:?}");
            assert!(!err.contains('\n'), "{text}: multi-line error {err:?}");
        }
    }

    #[test]
    fn simulate_runs_and_embeds_its_canonical_spec() {
        let spec = parse(Endpoint::Simulate, r#"{"trials":40,"p":[0.5],"seed":7}"#).unwrap();
        let body = spec.run(&BatchRunner::serial()).unwrap();
        assert_eq!(body.get("spec").unwrap().to_compact(), spec.cache_key());
        assert!(body.get("lt_tau").unwrap().get("best_cycles").is_some());
        assert_eq!(
            body.get("enhancement_percent")
                .unwrap()
                .as_array()
                .map(<[Json]>::len),
            Some(1)
        );
        // Same spec, same runner → byte-identical body (the cache-hit
        // guarantee, before any cache is involved).
        let again = spec.run(&BatchRunner::new(4)).unwrap();
        assert_eq!(body.to_compact(), again.to_compact());
    }

    #[test]
    fn inline_dfg_and_table2_and_resilience_run() {
        let axpy =
            "dfg axpy\ninput a\ninput x\ninput y\nop m = mul a x\nop r = add m y\noutput r r\n";
        let text = format!(
            r#"{{"dfg_text":"{}","trials":25,"p":[0.5]}}"#,
            axpy.replace('\n', "\\n")
        );
        let spec = parse(Endpoint::Simulate, &text).unwrap();
        assert!(spec.run(&BatchRunner::serial()).is_ok());

        let t2 = parse(Endpoint::Table2, r#"{"trials":20,"seed":3}"#).unwrap();
        let body = t2.run(&BatchRunner::serial()).unwrap();
        assert!(body.get("table2").unwrap().get("rows").is_some());

        let res = parse(Endpoint::Resilience, r#"{"trials":12,"seed":3}"#).unwrap();
        let body = res.run(&BatchRunner::serial()).unwrap();
        assert!(body.get("report").unwrap().get("rows").is_some());
    }

    #[test]
    fn synth_runs_deterministically_and_embeds_its_hash_chain() {
        let spec = parse(Endpoint::Synth, r#"{"dfg":"fir3","muls":2,"adds":1}"#).unwrap();
        let (body, records) = spec.run_with(&BatchRunner::serial(), None).unwrap();
        assert_eq!(body.get("spec").unwrap().to_compact(), spec.cache_key());
        let chain = body.get("stages").unwrap().as_array().unwrap();
        assert_eq!(chain.len(), crate::stages::STAGE_NAMES.len());
        for (entry, name) in chain.iter().zip(crate::stages::STAGE_NAMES) {
            assert_eq!(entry.get("stage").unwrap().as_str(), Some(name));
            assert_eq!(entry.get("hash").unwrap().as_str().map(str::len), Some(16));
        }
        assert_eq!(records.len(), crate::stages::STAGE_NAMES.len());
        let synth = body.get("synth").unwrap();
        assert_eq!(
            synth.get("controllers").unwrap().as_array().map(<[_]>::len),
            Some(3),
            "fir3 @ (2,1,0) binds three units"
        );
        assert!(synth.get("cent_sync").unwrap().get("states").is_some());
        // Byte-identical rerun: the cache-hit guarantee for /v1/synth.
        let (again, _) = spec.run_with(&BatchRunner::serial(), None).unwrap();
        assert_eq!(body.to_compact(), again.to_compact());
    }

    #[test]
    fn area_reports_rows_and_system_breakdown() {
        let spec = parse(Endpoint::Area, r#"{"dfg":"diffeq","subs":1,"width":32}"#).unwrap();
        let body = spec.run(&BatchRunner::serial()).unwrap();
        let rows = body.get("rows").unwrap().as_array().unwrap();
        assert!(rows.iter().any(|r| r
            .get("name")
            .unwrap()
            .as_str()
            .is_some_and(|n| n.starts_with("D-FSM-"))));
        let system = body.get("system").unwrap();
        assert_eq!(system.get("width").unwrap().as_u64(), Some(32));
        assert!(system.get("total").unwrap().as_f64().unwrap() > 0.0);
        let frac = system.get("control_fraction").unwrap().as_f64().unwrap();
        assert!((0.0..1.0).contains(&frac));
    }

    #[test]
    fn synth_cache_is_shared_and_reused_across_encodings() {
        let cache = StageCache::new(64);
        let runner = BatchRunner::serial();
        let base = parse(Endpoint::Synth, r#"{"dfg":"fir5"}"#).unwrap();
        let (cold_body, cold) = base.run_with(&runner, Some(&cache)).unwrap();
        assert!(cold.iter().all(|r| !r.cache_hit));
        // Same graph + allocation, different encoding: the front of the
        // pipeline is served from cache, only logic + report recompute.
        let gray = parse(Endpoint::Synth, r#"{"dfg":"fir5","encoding":"gray"}"#).unwrap();
        let (gray_body, warm) = gray.run_with(&runner, Some(&cache)).unwrap();
        let hits: Vec<&str> = warm
            .iter()
            .filter(|r| r.cache_hit)
            .map(|r| r.stage)
            .collect();
        assert_eq!(hits, ["canonicalize", "order", "bind", "controllers"]);
        assert_ne!(cold_body.to_compact(), gray_body.to_compact());
        // A cache-served replay is byte-identical to the cold run.
        let (replay, records) = base.run_with(&runner, Some(&cache)).unwrap();
        assert!(records.iter().all(|r| r.cache_hit));
        assert_eq!(cold_body.to_compact(), replay.to_compact());
    }

    #[test]
    fn synthesis_specs_reject_uncoverable_and_empty_graphs_at_parse_time() {
        let cases: &[(Endpoint, &str, &str)] = &[
            (
                Endpoint::Synth,
                r#"{"dfg":"fir5","muls":0}"#,
                "allocation lacks a unit",
            ),
            (
                Endpoint::Area,
                r#"{"dfg":"diffeq","subs":0}"#,
                "allocation lacks a unit",
            ),
            (
                Endpoint::Synth,
                r#"{"encoding":"sideways"}"#,
                "'encoding' must be",
            ),
            (Endpoint::Synth, r#"{"trials":5}"#, "unknown field 'trials'"),
            (Endpoint::Area, r#"{"width":0}"#, "'width' must be in"),
            (Endpoint::Area, r#"{"width":129}"#, "'width' must be in"),
            (
                Endpoint::Synth,
                r#"{"dfg_text":"dfg empty\ninput a\n"}"#,
                "has no operations",
            ),
        ];
        for (endpoint, text, needle) in cases {
            let err = parse(*endpoint, text).expect_err(text).to_string();
            assert!(err.contains(needle), "{text}: got {err:?}, want {needle:?}");
            assert!(!err.contains('\n'), "{text}: multi-line error {err:?}");
        }
    }

    #[test]
    fn synth_canonicalization_materializes_encoding_and_width() {
        let a = parse(Endpoint::Synth, "{}").unwrap();
        assert!(a.cache_key().contains("\"encoding\":\"binary\""));
        let b = parse(Endpoint::Area, "{}").unwrap();
        assert!(b.cache_key().contains("\"width\":16"));
        assert_eq!(a.trials() + b.trials(), 0);
        assert_eq!(a.endpoint(), Endpoint::Synth);
        assert_eq!(Endpoint::parse("area"), Some(Endpoint::Area));
    }

    #[test]
    fn canonical_rendering_round_trips_through_from_canonical() {
        let texts: &[(Endpoint, &str)] = &[
            (Endpoint::Simulate, r#"{"trials":50,"p":[1],"seed":9}"#),
            (Endpoint::Table2, r#"{"trials":20}"#),
            (Endpoint::Resilience, r#"{"p":0.25,"trials":8}"#),
            (Endpoint::Synth, r#"{"dfg":"fir3","encoding":"gray"}"#),
            (Endpoint::Area, r#"{"width":32}"#),
        ];
        for (endpoint, text) in texts {
            let spec = parse(*endpoint, text).unwrap();
            let back = JobSpec::from_canonical(&spec.canonical()).unwrap();
            assert_eq!(back, spec, "{text}");
            assert_eq!(back.cache_key(), spec.cache_key(), "{text}");
            assert_eq!(back.job_id(), spec.job_id(), "{text}");
        }
        // The ID is a pure function of the content address.
        let a = parse(Endpoint::Simulate, r#"{"trials":50,"p":[1.0]}"#).unwrap();
        let b = parse(Endpoint::Simulate, r#"{"p":[1],"trials":50}"#).unwrap();
        assert_eq!(a.job_id(), b.job_id());
        assert_eq!(a.job_id().len(), 16);
        let c = parse(Endpoint::Simulate, r#"{"trials":51,"p":[1]}"#).unwrap();
        assert_ne!(a.job_id(), c.job_id());
        // Hostile canonical documents fail cleanly.
        for bad in [
            "[]",
            "{}",
            r#"{"endpoint":"nope"}"#,
            r#"{"endpoint":"simulate","wat":1}"#,
        ] {
            assert!(JobSpec::from_canonical(&Json::parse(bad).unwrap()).is_err());
        }
    }

    #[test]
    fn borrowed_and_owned_parses_agree() {
        let text = r#"{"dfg":"ewf","trials":40,"p":[0.9,0.5],"seed":7}"#;
        let owned = parse(Endpoint::Simulate, text).unwrap();
        let doc = JsonRef::parse(text).unwrap();
        let borrowed = JobSpec::from_json_ref(Endpoint::Simulate, &doc).unwrap();
        assert_eq!(borrowed, owned);
        // Errors surface identically through both entries.
        let bad = JsonRef::parse(r#"{"wat":1}"#).unwrap();
        let err = JobSpec::from_json_ref(Endpoint::Simulate, &bad).unwrap_err();
        assert!(err.to_string().contains("unknown field 'wat'"));
    }

    #[test]
    fn cancelled_runner_yields_cancelled_not_partial_results() {
        let token = CancelToken::new();
        token.cancel();
        let runner = BatchRunner::serial().with_cancel(token);
        for (endpoint, text) in [
            (Endpoint::Simulate, r#"{"trials":40}"#),
            (Endpoint::Table2, r#"{"trials":20}"#),
            (Endpoint::Resilience, r#"{"trials":12}"#),
        ] {
            let spec = parse(endpoint, text).unwrap();
            assert_eq!(spec.run(&runner), Err(JobError::Cancelled), "{text}");
        }
    }
}
