//! Canonical job specifications shared by the CLI and the simulation
//! service.
//!
//! A [`JobSpec`] is the validated, fully-materialized form of a request
//! against one of the service endpoints (`simulate`, `table2`,
//! `resilience`). Parsing is strict — unknown keys, duplicate keys, wrong
//! types, and out-of-range values are all rejected with one-line messages
//! — and every optional field is materialized to its default, so two
//! requests that mean the same job normalize to the same
//! [`JobSpec::canonical`] rendering regardless of field order, omitted
//! defaults, or numeric spelling (`[1]` vs `[1.0]`). That rendering,
//! serialized compactly, is the content-addressed [`JobSpec::cache_key`]:
//! equal keys imply byte-identical responses, because the batch engine is
//! bit-deterministic in `(spec, seed)`.

use std::borrow::Cow;
use std::fmt;

use tauhls_dfg::{benchmarks, canonical_wire, parse_wire_dfg, Dfg, DfgRegistry};
use tauhls_fsm::Encoding;
use tauhls_json::{Json, JsonRef, ToJson};
use tauhls_logic::AreaModel;
use tauhls_sched::{Allocation, BoundDfg};
use tauhls_sim::{
    enhancement_percent, latency_quad_batch, BatchRunner, ControlStyleSet, ElasticSpec,
    LatencySummary, SimError,
};

use crate::experiments::table2;
use crate::explore::{design_space, SweepError, SweepParams, SweepPoint};
use crate::report::system_area_from_logic;
use crate::resilience::{resilience_sweep_with, ResilienceOptions};
use crate::stages::{
    self, BindStrategy, PipelineTrace, StageCache, StageRecord, SynthesisInput, SynthesizedLogic,
};
use crate::{SynthesisError, Timing};

/// Upper bound on Monte-Carlo trials a single job may request.
pub const MAX_TRIALS: u64 = 1_000_000;
/// Upper bound on the number of `P` values in one sweep.
pub const MAX_P_VALUES: usize = 16;
/// Upper bound on the byte length of an inline DFG description.
pub const MAX_DFG_TEXT: usize = 64 * 1024;
/// Upper bound on any one unit count (`muls`/`adds`/`subs`).
pub const MAX_UNITS: usize = 64;
/// Upper bound on the datapath width of an area estimate.
pub const MAX_WIDTH: u64 = 128;
/// Upper bound on a per-class unit maximum in an explore sweep.
pub const MAX_EXPLORE_UNITS: usize = 8;
/// Upper bound on the elastic skew bound and handshake latency a job may
/// request (the watchdog budget scales linearly with both).
pub const MAX_SKEW: u64 = 16;
/// Upper bound on swept SD/LD clock ratios in one explore job.
pub const MAX_RATIOS: usize = 8;
/// Upper bound on the full explore grid (allocations × encodings × `P`
/// values × ratios), enforced at parse time so a spec that parses is
/// guaranteed to finish in bounded work.
pub const MAX_EXPLORE_POINTS: usize = 4096;

/// The benchmark DFGs a job may name, in registry order (the canonical
/// [`benchmarks::NAMES`] registry).
pub const BENCHMARKS: [&str; 7] = benchmarks::NAMES;

fn benchmark(name: &str) -> Option<Dfg> {
    benchmarks::by_name(name)
}

/// The service endpoints a [`JobSpec`] can target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// One DFG, three controller styles, a `P` sweep.
    Simulate,
    /// The paper's Table 2 over the built-in benchmark suite.
    Table2,
    /// Fault-injection sweep over every fault kind.
    Resilience,
    /// Staged controller synthesis: artifact-hash chain plus per-unit
    /// controller logic.
    Synth,
    /// Table-1-style controller area rows plus the full-system estimate.
    Area,
    /// Design-space exploration: allocation × encoding × SD/LD ratio ×
    /// completion probability, with the latency/area Pareto frontier.
    Explore,
}

impl Endpoint {
    /// The endpoint's path segment (`simulate` in `POST /v1/simulate`).
    pub fn as_str(self) -> &'static str {
        match self {
            Endpoint::Simulate => "simulate",
            Endpoint::Table2 => "table2",
            Endpoint::Resilience => "resilience",
            Endpoint::Synth => "synth",
            Endpoint::Area => "area",
            Endpoint::Explore => "explore",
        }
    }

    /// Parses a path segment back into an endpoint.
    pub fn parse(s: &str) -> Option<Endpoint> {
        Some(match s {
            "simulate" => Endpoint::Simulate,
            "table2" => Endpoint::Table2,
            "resilience" => Endpoint::Resilience,
            "synth" => Endpoint::Synth,
            "area" => Endpoint::Area,
            "explore" => Endpoint::Explore,
            _ => return None,
        })
    }
}

pub(crate) fn encoding_name(encoding: Encoding) -> &'static str {
    match encoding {
        Encoding::Binary => "binary",
        Encoding::Gray => "gray",
        Encoding::OneHot => "onehot",
    }
}

pub(crate) fn parse_encoding(s: &str) -> Option<Encoding> {
    Some(match s {
        "binary" => Encoding::Binary,
        "gray" => Encoding::Gray,
        "onehot" => Encoding::OneHot,
        _ => return None,
    })
}

pub use tauhls_dfg::DfgSource;

/// Resolves a [`DfgSource`] against the built-in benchmark registry —
/// the only registry the service exposes. `DfgSource` itself is
/// registry-agnostic, so embedders can resolve the same specs against
/// their own [`DfgRegistry`].
pub(crate) fn build_dfg(source: &DfgSource) -> Result<Dfg, String> {
    source.resolve(DfgRegistry::builtin())
}

/// Validated spec for `POST /v1/simulate`.
#[derive(Clone, Debug, PartialEq)]
pub struct SimulateSpec {
    /// The graph to bind and simulate.
    pub dfg: DfgSource,
    /// Telescopic multipliers allocated.
    pub muls: usize,
    /// Adders allocated.
    pub adds: usize,
    /// Subtractors allocated.
    pub subs: usize,
    /// `true` → chain binding, `false` → left-edge (the default).
    pub chains: bool,
    /// Short-completion probabilities to sweep.
    pub p_values: Vec<f64>,
    /// Monte-Carlo trials.
    pub trials: u64,
    /// Base RNG seed (part of the cache key: same spec, same bytes).
    pub seed: u64,
    /// Clock-domain parameters of the `LT_ELAS` leg.
    pub elastic: ElasticSpec,
}

/// Validated spec for `POST /v1/table2`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table2Spec {
    /// Monte-Carlo trials per benchmark row.
    pub trials: u64,
    /// Base RNG seed.
    pub seed: u64,
}

/// Validated spec for `POST /v1/resilience`.
#[derive(Clone, Debug, PartialEq)]
pub struct ResilienceSpec {
    /// The graph to bind and inject faults into.
    pub dfg: DfgSource,
    /// Telescopic multipliers allocated.
    pub muls: usize,
    /// Adders allocated.
    pub adds: usize,
    /// Subtractors allocated.
    pub subs: usize,
    /// `true` → chain binding, `false` → left-edge (the default).
    pub chains: bool,
    /// Short-completion probability of the completion draws.
    pub p: f64,
    /// Trials per fault kind.
    pub trials: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Engine legs to run; always contains the distributed leg.
    pub styles: ControlStyleSet,
    /// Clock-domain parameters of the elastic leg.
    pub elastic: ElasticSpec,
}

impl ResilienceSpec {
    /// The sweep options this spec describes — shared by whole-job
    /// execution and distributed partitions, so both run the same legs.
    pub fn options(&self) -> ResilienceOptions {
        ResilienceOptions {
            styles: self.styles,
            elastic: self.elastic,
        }
    }
}

/// Validated spec for `POST /v1/synth`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SynthSpec {
    /// The graph to synthesize controllers for.
    pub dfg: DfgSource,
    /// Telescopic multipliers allocated.
    pub muls: usize,
    /// Adders allocated.
    pub adds: usize,
    /// Subtractors allocated.
    pub subs: usize,
    /// `true` → chain binding, `false` → left-edge (the default).
    pub chains: bool,
    /// The state encoding for logic synthesis.
    pub encoding: Encoding,
}

/// Validated spec for `POST /v1/area`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AreaSpec {
    /// The graph to estimate.
    pub dfg: DfgSource,
    /// Telescopic multipliers allocated.
    pub muls: usize,
    /// Adders allocated.
    pub adds: usize,
    /// Subtractors allocated.
    pub subs: usize,
    /// `true` → chain binding, `false` → left-edge (the default).
    pub chains: bool,
    /// The state encoding for logic synthesis.
    pub encoding: Encoding,
    /// Datapath operand width of the system estimate.
    pub width: u32,
}

/// Validated spec for `POST /v1/dfg/explore` (also reachable as
/// `POST /v1/explore`): sweep the allocation space of a graph crossed
/// with state encodings, SD/LD clock ratios, and short-completion
/// probabilities, and report the latency/area Pareto frontier.
#[derive(Clone, Debug, PartialEq)]
pub struct ExploreSpec {
    /// The graph whose design space is swept.
    pub dfg: DfgSource,
    /// Highest telescopic-multiplier count to consider.
    pub max_muls: usize,
    /// Highest adder count.
    pub max_adds: usize,
    /// Highest subtractor count.
    pub max_subs: usize,
    /// State encodings to sweep in the area estimate.
    pub encodings: Vec<Encoding>,
    /// Short-completion probabilities to sweep.
    pub p_values: Vec<f64>,
    /// SD/LD clock-period ratios to sweep; each in `[0.5, 1]` so a long
    /// operation still fits in at most two short cycles.
    pub sd_ld: Vec<f64>,
    /// Elastic skew bounds to sweep; `0` measures the synchronous
    /// distributed controllers, `s > 0` the elastic (GALS) controllers.
    pub skew: Vec<u64>,
    /// Monte-Carlo trials per allocation point.
    pub trials: u64,
    /// Datapath width for the area model.
    pub width: u32,
    /// Base RNG seed.
    pub seed: u64,
}

impl ExploreSpec {
    /// The [`SweepParams`] this spec describes — the single source of
    /// truth shared by whole-job execution and distributed partitions, so
    /// both enumerate and seed the identical grid.
    pub fn sweep_params(&self) -> SweepParams {
        SweepParams {
            max_muls: self.max_muls,
            max_adds: self.max_adds,
            max_subs: self.max_subs,
            encodings: self.encodings.clone(),
            p_values: self.p_values.clone(),
            sd_ld: self.sd_ld.clone(),
            skew: self.skew.clone(),
            trials: self.trials,
            width: self.width,
            seed: self.seed,
        }
    }
}

/// One validated, canonicalized service job.
#[derive(Clone, Debug, PartialEq)]
pub enum JobSpec {
    /// `POST /v1/simulate`.
    Simulate(SimulateSpec),
    /// `POST /v1/table2`.
    Table2(Table2Spec),
    /// `POST /v1/resilience`.
    Resilience(ResilienceSpec),
    /// `POST /v1/synth`.
    Synth(SynthSpec),
    /// `POST /v1/area`.
    Area(AreaSpec),
    /// `POST /v1/dfg/explore`.
    Explore(ExploreSpec),
}

/// Why a job could not be completed, pre-sorted into HTTP status classes.
#[derive(Clone, Debug, PartialEq)]
pub enum JobError {
    /// The request itself was malformed (HTTP 400).
    Invalid(String),
    /// The job was cancelled before it finished, e.g. during a graceful
    /// drain (HTTP 503); no partial result is produced or cached.
    Cancelled,
    /// The simulation failed abnormally (HTTP 500).
    Failed(String),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Invalid(m) => write!(f, "invalid job spec: {m}"),
            JobError::Cancelled => write!(f, "job cancelled before completion"),
            JobError::Failed(m) => write!(f, "simulation failed: {m}"),
        }
    }
}

impl std::error::Error for JobError {}

impl JobError {
    pub(crate) fn from_sim(err: SimError) -> JobError {
        match err {
            SimError::Cancelled => JobError::Cancelled,
            SimError::InvalidConfig(m) => JobError::Invalid(m),
            other => JobError::Failed(other.to_string()),
        }
    }

    pub(crate) fn from_synthesis(err: SynthesisError) -> JobError {
        // Every synthesis failure is a property of the request (bad graph,
        // bad allocation, bad binding), so they all map to HTTP 400.
        JobError::Invalid(err.to_string())
    }
}

// ---------------------------------------------------------------------------
// Strict field extraction
// ---------------------------------------------------------------------------

/// Strict reader over a parsed JSON object: every key must be known, no
/// key may repeat, and each extractor enforces its field's type and range.
///
/// Operates on borrowed [`JsonRef`] pairs so the service's hot request
/// path can decode a spec straight out of the request buffer without
/// per-field string allocations; owned [`Json`] documents go through the
/// [`JsonRef::from_owned`] bridge.
struct Fields<'a> {
    pairs: &'a [(Cow<'a, str>, JsonRef<'a>)],
}

impl<'a> Fields<'a> {
    fn new(spec: &'a JsonRef<'a>, allowed: &[&str]) -> Result<Fields<'a>, String> {
        let pairs = spec
            .as_object()
            .ok_or_else(|| "job spec must be a JSON object".to_string())?;
        Fields::over(pairs, allowed)
    }

    fn over(
        pairs: &'a [(Cow<'a, str>, JsonRef<'a>)],
        allowed: &[&str],
    ) -> Result<Fields<'a>, String> {
        for (i, (key, _)) in pairs.iter().enumerate() {
            if !allowed.contains(&key.as_ref()) {
                return Err(format!(
                    "unknown field '{key}' (allowed: {})",
                    allowed.join(", ")
                ));
            }
            if pairs[..i].iter().any(|(k, _)| k == key) {
                return Err(format!("duplicate field '{key}'"));
            }
        }
        Ok(Fields { pairs })
    }

    fn get(&self, key: &str) -> Option<&'a JsonRef<'a>> {
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn u64_in(&self, key: &str, default: u64, min: u64, max: u64) -> Result<u64, String> {
        let v = match self.get(key) {
            None => default,
            Some(j) => j
                .as_u64()
                .ok_or_else(|| format!("'{key}' must be a non-negative integer"))?,
        };
        if v < min || v > max {
            return Err(format!("'{key}' must be in {min}..={max}, got {v}"));
        }
        Ok(v)
    }

    fn usize_in(&self, key: &str, default: usize, max: usize) -> Result<usize, String> {
        Ok(self.u64_in(key, default as u64, 0, max as u64)? as usize)
    }

    fn seed(&self) -> Result<u64, String> {
        self.u64_in("seed", 2003, 0, u64::MAX)
    }

    fn probability(&self, key: &str, default: f64) -> Result<f64, String> {
        let v = match self.get(key) {
            None => default,
            Some(j) => j
                .as_f64()
                .ok_or_else(|| format!("'{key}' must be a number"))?,
        };
        if !(0.0..=1.0).contains(&v) {
            return Err(format!("'{key}' must be a probability in [0, 1], got {v}"));
        }
        Ok(v)
    }

    fn p_values(&self) -> Result<Vec<f64>, String> {
        let Some(j) = self.get("p") else {
            return Ok(vec![0.9, 0.7, 0.5]);
        };
        let items = j
            .as_array()
            .ok_or_else(|| "'p' must be an array of probabilities".to_string())?;
        if items.is_empty() || items.len() > MAX_P_VALUES {
            return Err(format!("'p' must hold 1..={MAX_P_VALUES} values"));
        }
        items
            .iter()
            .map(|item| {
                let v = item
                    .as_f64()
                    .ok_or_else(|| "'p' must be an array of numbers".to_string())?;
                if !(0.0..=1.0).contains(&v) {
                    return Err(format!("'p' entries must be in [0, 1], got {v}"));
                }
                Ok(v)
            })
            .collect()
    }

    fn encoding(&self) -> Result<Encoding, String> {
        match self.get("encoding") {
            None => Ok(Encoding::Binary),
            Some(j) => j.as_str().and_then(parse_encoding).ok_or_else(|| {
                "'encoding' must be \"binary\", \"gray\", or \"onehot\"".to_string()
            }),
        }
    }

    fn encodings(&self) -> Result<Vec<Encoding>, String> {
        let Some(j) = self.get("encodings") else {
            return Ok(vec![Encoding::Binary]);
        };
        let items = j
            .as_array()
            .ok_or_else(|| "'encodings' must be an array of encoding names".to_string())?;
        if items.is_empty() || items.len() > 3 {
            return Err("'encodings' must hold 1..=3 names".to_string());
        }
        let mut out = Vec::new();
        for item in items {
            let enc = item.as_str().and_then(parse_encoding).ok_or_else(|| {
                "'encodings' entries must be \"binary\", \"gray\", or \"onehot\"".to_string()
            })?;
            if out.contains(&enc) {
                return Err(format!("duplicate encoding '{}'", encoding_name(enc)));
            }
            out.push(enc);
        }
        Ok(out)
    }

    fn ratios(&self) -> Result<Vec<f64>, String> {
        let Some(j) = self.get("sd_ld") else {
            // The paper's operating point: SD = 15 ns against LD = 20 ns.
            return Ok(vec![0.75]);
        };
        let items = j
            .as_array()
            .ok_or_else(|| "'sd_ld' must be an array of clock ratios".to_string())?;
        if items.is_empty() || items.len() > MAX_RATIOS {
            return Err(format!("'sd_ld' must hold 1..={MAX_RATIOS} values"));
        }
        items
            .iter()
            .map(|item| {
                let v = item
                    .as_f64()
                    .ok_or_else(|| "'sd_ld' must be an array of numbers".to_string())?;
                // Below 1/2 a long operation no longer fits in two short
                // cycles, which breaks the telescopic timing model.
                if !(0.5..=1.0).contains(&v) {
                    return Err(format!("'sd_ld' ratios must be in [0.5, 1], got {v}"));
                }
                Ok(v)
            })
            .collect()
    }

    fn skew_list(&self) -> Result<Vec<u64>, String> {
        let Some(j) = self.get("skew") else {
            // Default: the synchronous clocking discipline only.
            return Ok(vec![0]);
        };
        let items = j
            .as_array()
            .ok_or_else(|| "'skew' must be an array of skew bounds".to_string())?;
        if items.is_empty() || items.len() > MAX_RATIOS {
            return Err(format!("'skew' must hold 1..={MAX_RATIOS} values"));
        }
        let mut out = Vec::new();
        for item in items {
            let v = item
                .as_u64()
                .ok_or_else(|| "'skew' entries must be non-negative integers".to_string())?;
            if v > MAX_SKEW {
                return Err(format!("'skew' bounds must be at most {MAX_SKEW}, got {v}"));
            }
            if out.contains(&v) {
                return Err(format!("duplicate skew bound {v}"));
            }
            out.push(v);
        }
        Ok(out)
    }

    fn elastic(&self) -> Result<ElasticSpec, String> {
        let d = ElasticSpec::default();
        Ok(ElasticSpec {
            skew_bound: self.u64_in("skew", u64::from(d.skew_bound), 0, MAX_SKEW)? as u32,
            sync_latency: self.u64_in("sync_latency", u64::from(d.sync_latency), 0, MAX_SKEW)?
                as u32,
        })
    }

    fn styles(&self) -> Result<ControlStyleSet, String> {
        let Some(j) = self.get("styles") else {
            return Ok(ControlStyleSet::DIST | ControlStyleSet::CENT | ControlStyleSet::ELASTIC);
        };
        let set = if let Some(s) = j.as_str() {
            ControlStyleSet::parse(s)?
        } else if let Some(items) = j.as_array() {
            let mut set = ControlStyleSet::empty();
            for item in items {
                let name = item
                    .as_str()
                    .ok_or_else(|| "'styles' entries must be style names".to_string())?;
                set = set | ControlStyleSet::parse_one(name)?;
            }
            if set.is_empty() {
                return Err("'styles' must name at least one style".to_string());
            }
            set
        } else {
            return Err(
                "'styles' must be a comma-separated string or an array of style names".to_string(),
            );
        };
        if set.contains(ControlStyleSet::TAU) {
            return Err("'styles' supports dist, cent, and elastic here".to_string());
        }
        if !set.contains(ControlStyleSet::DIST) {
            return Err("'styles' must include 'dist' (the engine under test)".to_string());
        }
        Ok(set)
    }

    fn binding(&self) -> Result<bool, String> {
        match self.get("binding") {
            None => Ok(false),
            Some(j) => match j.as_str() {
                Some("left-edge") => Ok(false),
                Some("chains") => Ok(true),
                _ => Err("'binding' must be \"left-edge\" or \"chains\"".to_string()),
            },
        }
    }

    fn dfg(&self) -> Result<DfgSource, String> {
        match (self.get("dfg"), self.get("dfg_text")) {
            (Some(_), Some(_)) => Err("give either 'dfg' or 'dfg_text', not both".to_string()),
            (Some(j), None) => {
                if let Some(name) = j.as_str() {
                    if benchmark(name).is_none() {
                        return Err(format!(
                            "unknown benchmark '{name}' (one of: {})",
                            BENCHMARKS.join(", ")
                        ));
                    }
                    return Ok(DfgSource::Named(name.to_string()));
                }
                if j.as_object().is_some() {
                    // An inline wire-format graph. Validate it fully here
                    // and retain the *canonical* rendering, so every JSON
                    // spelling of the same graph shares one cache key and
                    // one job id. Byte offsets in the error refer to the
                    // compact rendering of the 'dfg' object.
                    let text = j.clone().into_owned().to_compact();
                    if text.len() > MAX_DFG_TEXT {
                        return Err(format!(
                            "'dfg' exceeds {MAX_DFG_TEXT} bytes ({} given)",
                            text.len()
                        ));
                    }
                    let graph = parse_wire_dfg(&text).map_err(|e| format!("dfg: {e}"))?;
                    return Ok(DfgSource::InlineWire(canonical_wire(&graph)));
                }
                Err("'dfg' must be a benchmark name string or an inline graph object".to_string())
            }
            (None, Some(j)) => {
                let text = j
                    .as_str()
                    .ok_or_else(|| "'dfg_text' must be a string".to_string())?;
                if text.len() > MAX_DFG_TEXT {
                    return Err(format!(
                        "'dfg_text' exceeds {MAX_DFG_TEXT} bytes ({} given)",
                        text.len()
                    ));
                }
                Ok(DfgSource::InlineText(text.to_string()))
            }
            (None, None) => Ok(DfgSource::Named("fir5".to_string())),
        }
    }
}

/// Parse-time validation for the synthesis endpoints: the graph must
/// build, be non-empty, and be coverable by the allocation — so a spec
/// that parses is guaranteed to synthesize.
fn check_synthesizable(
    dfg: &DfgSource,
    muls: usize,
    adds: usize,
    subs: usize,
) -> Result<(), String> {
    let graph = build_dfg(dfg)?;
    if graph.num_ops() == 0 {
        return Err(format!("graph '{}' has no operations", graph.name()));
    }
    if !Allocation::paper(muls, adds, subs).covers(&graph) {
        return Err("allocation lacks a unit for a used operation class".to_string());
    }
    Ok(())
}

pub(crate) fn bind_spec(
    dfg: &DfgSource,
    muls: usize,
    adds: usize,
    subs: usize,
    chains: bool,
) -> Result<BoundDfg, String> {
    let graph = build_dfg(dfg)?;
    let alloc = Allocation::paper(muls, adds, subs);
    if !alloc.covers(&graph) {
        return Err("allocation lacks a unit for a used operation class".to_string());
    }
    Ok(if chains {
        BoundDfg::bind_chains(&graph, &alloc)
    } else {
        BoundDfg::bind(&graph, &alloc)
    })
}

/// Renders a trace's artifact-hash chain as a JSON array of
/// `{stage, hash}` objects, hashes as fixed-width hex — deliberately
/// without wall times, which vary run to run and would break the
/// byte-identical response-cache guarantee.
fn stage_hashes(trace: &PipelineTrace) -> Json {
    Json::array(
        trace
            .hash_chain()
            .into_iter()
            .map(|(stage, hash)| {
                Json::object([
                    ("stage", Json::from(stage)),
                    ("hash", Json::from(format!("{hash:016x}").as_str())),
                ])
            })
            .collect::<Vec<_>>(),
    )
}

/// The deterministic `/v1/synth` payload: one row per unit controller plus
/// the synchronizing CENT-SYNC-FSM.
fn synth_body(logic: &SynthesizedLogic) -> Json {
    let units = logic.controls().design().bound().allocation().units();
    let fsm_cells = |syn: &tauhls_fsm::SynthesizedFsm| {
        vec![
            ("states", Json::from(syn.num_states())),
            ("flip_flops", Json::from(syn.flip_flops())),
            ("inputs", Json::from(syn.num_inputs())),
            ("outputs", Json::from(syn.num_outputs())),
            ("area_combinational", Json::Float(syn.area().combinational)),
            ("area_sequential", Json::Float(syn.area().sequential)),
        ]
    };
    let controllers: Vec<Json> = logic
        .controllers()
        .iter()
        .map(|(unit, syn)| {
            let mut cells = vec![("unit", Json::from(units[unit.0].display_name().as_str()))];
            cells.extend(fsm_cells(syn));
            Json::object(cells)
        })
        .collect();
    Json::object([
        ("encoding", Json::from(encoding_name(logic.encoding()))),
        ("controllers", Json::array(controllers)),
        ("cent_sync", Json::object(fsm_cells(logic.cent_sync()))),
    ])
}

impl JobSpec {
    /// Parses and fully validates a job spec for `endpoint`.
    ///
    /// Strict by design: unknown or duplicate fields, wrong types,
    /// out-of-range values, unknown benchmarks, unparsable inline DFGs,
    /// and allocations that cannot cover the graph are all rejected here,
    /// so a spec that parses is guaranteed to run (absent cancellation).
    pub fn from_json(endpoint: Endpoint, spec: &Json) -> Result<JobSpec, JobError> {
        let view = JsonRef::from_owned(spec);
        JobSpec::parse(endpoint, &view).map_err(JobError::Invalid)
    }

    /// [`JobSpec::from_json`] over a borrowed document — the zero-copy
    /// entry the service's request path uses: field names and string
    /// values are read in place from the request buffer and only the
    /// strings the spec retains (benchmark names, inline DFG text) are
    /// copied out.
    pub fn from_json_ref(endpoint: Endpoint, spec: &JsonRef<'_>) -> Result<JobSpec, JobError> {
        JobSpec::parse(endpoint, spec).map_err(JobError::Invalid)
    }

    /// Parses a [`JobSpec::canonical`] document back into a spec: the
    /// embedded `endpoint` field selects the variant and the remaining
    /// fields re-validate exactly like a fresh request. This is the
    /// re-entry point for durable job journals, which persist the
    /// canonical rendering; round-tripping preserves the cache key.
    pub fn from_canonical(doc: &Json) -> Result<JobSpec, JobError> {
        let pairs = doc
            .as_object()
            .ok_or_else(|| JobError::Invalid("canonical spec must be a JSON object".to_string()))?;
        let endpoint = pairs
            .iter()
            .find(|(k, _)| k == "endpoint")
            .and_then(|(_, v)| v.as_str())
            .and_then(Endpoint::parse)
            .ok_or_else(|| {
                JobError::Invalid("canonical spec must name a known 'endpoint'".to_string())
            })?;
        let rest: Vec<(Cow<'_, str>, JsonRef<'_>)> = pairs
            .iter()
            .filter(|(k, _)| k != "endpoint")
            .map(|(k, v)| (Cow::Borrowed(k.as_str()), JsonRef::from_owned(v)))
            .collect();
        let view = JsonRef::Object(rest);
        JobSpec::parse(endpoint, &view).map_err(JobError::Invalid)
    }

    fn parse(endpoint: Endpoint, spec: &JsonRef<'_>) -> Result<JobSpec, String> {
        match endpoint {
            Endpoint::Simulate => {
                let f = Fields::new(
                    spec,
                    &[
                        "dfg",
                        "dfg_text",
                        "muls",
                        "adds",
                        "subs",
                        "binding",
                        "p",
                        "trials",
                        "seed",
                        "skew",
                        "sync_latency",
                    ],
                )?;
                let s = SimulateSpec {
                    dfg: f.dfg()?,
                    muls: f.usize_in("muls", 2, MAX_UNITS)?,
                    adds: f.usize_in("adds", 1, MAX_UNITS)?,
                    subs: f.usize_in("subs", 1, MAX_UNITS)?,
                    chains: f.binding()?,
                    p_values: f.p_values()?,
                    trials: f.u64_in("trials", 2000, 1, MAX_TRIALS)?,
                    seed: f.seed()?,
                    elastic: f.elastic()?,
                };
                bind_spec(&s.dfg, s.muls, s.adds, s.subs, s.chains)?;
                Ok(JobSpec::Simulate(s))
            }
            Endpoint::Table2 => {
                let f = Fields::new(spec, &["trials", "seed"])?;
                Ok(JobSpec::Table2(Table2Spec {
                    trials: f.u64_in("trials", 2000, 1, MAX_TRIALS)?,
                    seed: f.seed()?,
                }))
            }
            Endpoint::Resilience => {
                let f = Fields::new(
                    spec,
                    &[
                        "dfg",
                        "dfg_text",
                        "muls",
                        "adds",
                        "subs",
                        "binding",
                        "p",
                        "trials",
                        "seed",
                        "styles",
                        "skew",
                        "sync_latency",
                    ],
                )?;
                let s = ResilienceSpec {
                    dfg: f.dfg()?,
                    muls: f.usize_in("muls", 2, MAX_UNITS)?,
                    adds: f.usize_in("adds", 1, MAX_UNITS)?,
                    subs: f.usize_in("subs", 1, MAX_UNITS)?,
                    chains: f.binding()?,
                    p: f.probability("p", 0.5)?,
                    trials: f.u64_in("trials", 2000, 1, MAX_TRIALS)?,
                    seed: f.seed()?,
                    styles: f.styles()?,
                    elastic: f.elastic()?,
                };
                bind_spec(&s.dfg, s.muls, s.adds, s.subs, s.chains)?;
                Ok(JobSpec::Resilience(s))
            }
            Endpoint::Synth => {
                let f = Fields::new(
                    spec,
                    &[
                        "dfg", "dfg_text", "muls", "adds", "subs", "binding", "encoding",
                    ],
                )?;
                let s = SynthSpec {
                    dfg: f.dfg()?,
                    muls: f.usize_in("muls", 2, MAX_UNITS)?,
                    adds: f.usize_in("adds", 1, MAX_UNITS)?,
                    subs: f.usize_in("subs", 1, MAX_UNITS)?,
                    chains: f.binding()?,
                    encoding: f.encoding()?,
                };
                check_synthesizable(&s.dfg, s.muls, s.adds, s.subs)?;
                Ok(JobSpec::Synth(s))
            }
            Endpoint::Area => {
                let f = Fields::new(
                    spec,
                    &[
                        "dfg", "dfg_text", "muls", "adds", "subs", "binding", "encoding", "width",
                    ],
                )?;
                let s = AreaSpec {
                    dfg: f.dfg()?,
                    muls: f.usize_in("muls", 2, MAX_UNITS)?,
                    adds: f.usize_in("adds", 1, MAX_UNITS)?,
                    subs: f.usize_in("subs", 1, MAX_UNITS)?,
                    chains: f.binding()?,
                    encoding: f.encoding()?,
                    width: f.u64_in("width", 16, 1, MAX_WIDTH)? as u32,
                };
                check_synthesizable(&s.dfg, s.muls, s.adds, s.subs)?;
                Ok(JobSpec::Area(s))
            }
            Endpoint::Explore => {
                let f = Fields::new(
                    spec,
                    &[
                        "dfg",
                        "dfg_text",
                        "max_muls",
                        "max_adds",
                        "max_subs",
                        "encodings",
                        "p",
                        "sd_ld",
                        "skew",
                        "trials",
                        "width",
                        "seed",
                    ],
                )?;
                let s = ExploreSpec {
                    dfg: f.dfg()?,
                    max_muls: f.usize_in("max_muls", 4, MAX_EXPLORE_UNITS)?,
                    max_adds: f.usize_in("max_adds", 2, MAX_EXPLORE_UNITS)?,
                    max_subs: f.usize_in("max_subs", 2, MAX_EXPLORE_UNITS)?,
                    encodings: f.encodings()?,
                    p_values: f.p_values()?,
                    sd_ld: f.ratios()?,
                    skew: f.skew_list()?,
                    trials: f.u64_in("trials", 400, 1, MAX_TRIALS)?,
                    width: f.u64_in("width", 16, 1, MAX_WIDTH)? as u32,
                    seed: f.seed()?,
                };
                // The maximal allocation must cover the graph, so at least
                // one swept point is feasible.
                check_synthesizable(&s.dfg, s.max_muls, s.max_adds, s.max_subs)?;
                let grid = s.max_muls.max(1)
                    * s.max_adds.max(1)
                    * s.max_subs.max(1)
                    * s.encodings.len()
                    * s.p_values.len()
                    * s.sd_ld.len()
                    * s.skew.len();
                if grid > MAX_EXPLORE_POINTS {
                    return Err(format!(
                        "explore grid of {grid} points exceeds {MAX_EXPLORE_POINTS} \
                         (shrink the unit maxima or the swept lists)"
                    ));
                }
                Ok(JobSpec::Explore(s))
            }
        }
    }

    /// The endpoint this spec targets.
    pub fn endpoint(&self) -> Endpoint {
        match self {
            JobSpec::Simulate(_) => Endpoint::Simulate,
            JobSpec::Table2(_) => Endpoint::Table2,
            JobSpec::Resilience(_) => Endpoint::Resilience,
            JobSpec::Synth(_) => Endpoint::Synth,
            JobSpec::Area(_) => Endpoint::Area,
            JobSpec::Explore(_) => Endpoint::Explore,
        }
    }

    /// Monte-Carlo trials this job will run (table2: per benchmark row;
    /// resilience: per fault kind; zero for the synthesis endpoints, which
    /// run no simulation) — the unit of the service's trials-per-second
    /// gauge.
    pub fn trials(&self) -> u64 {
        match self {
            JobSpec::Simulate(s) => s.trials,
            JobSpec::Table2(s) => s.trials,
            JobSpec::Resilience(s) => s.trials,
            JobSpec::Explore(s) => s.trials,
            JobSpec::Synth(_) | JobSpec::Area(_) => 0,
        }
    }

    /// The canonical rendering: every field materialized, in one fixed
    /// order, with the endpoint embedded — the value whose compact form is
    /// [`JobSpec::cache_key`].
    pub fn canonical(&self) -> Json {
        fn dfg_pair(dfg: &DfgSource) -> (&'static str, Json) {
            match dfg {
                DfgSource::Named(name) => ("dfg", Json::from(name.as_str())),
                DfgSource::InlineText(text) => ("dfg_text", Json::from(text.as_str())),
                DfgSource::InlineWire(text) => (
                    // The stored text is the canonical compact rendering
                    // the wire parser itself produced, so it re-parses by
                    // construction; embedding it as a JSON object (not a
                    // string) keeps the canonical spec self-describing and
                    // makes `from_canonical` re-validate it like a fresh
                    // request.
                    "dfg",
                    Json::parse(text).unwrap_or_else(|_| Json::from(text.as_str())),
                ),
            }
        }
        fn binding(chains: bool) -> Json {
            Json::from(if chains { "chains" } else { "left-edge" })
        }
        match self {
            JobSpec::Simulate(s) => Json::object([
                ("endpoint", Json::from("simulate")),
                dfg_pair(&s.dfg),
                ("muls", Json::from(s.muls)),
                ("adds", Json::from(s.adds)),
                ("subs", Json::from(s.subs)),
                ("binding", binding(s.chains)),
                ("p", Json::floats(&s.p_values)),
                ("trials", Json::from(s.trials)),
                ("seed", Json::from(s.seed)),
                ("skew", Json::from(u64::from(s.elastic.skew_bound))),
                (
                    "sync_latency",
                    Json::from(u64::from(s.elastic.sync_latency)),
                ),
            ]),
            JobSpec::Table2(s) => Json::object([
                ("endpoint", Json::from("table2")),
                ("trials", Json::from(s.trials)),
                ("seed", Json::from(s.seed)),
            ]),
            JobSpec::Resilience(s) => Json::object([
                ("endpoint", Json::from("resilience")),
                dfg_pair(&s.dfg),
                ("muls", Json::from(s.muls)),
                ("adds", Json::from(s.adds)),
                ("subs", Json::from(s.subs)),
                ("binding", binding(s.chains)),
                ("p", Json::Float(s.p)),
                ("trials", Json::from(s.trials)),
                ("seed", Json::from(s.seed)),
                (
                    "styles",
                    Json::array(
                        s.styles
                            .names()
                            .into_iter()
                            .map(Json::from)
                            .collect::<Vec<_>>(),
                    ),
                ),
                ("skew", Json::from(u64::from(s.elastic.skew_bound))),
                (
                    "sync_latency",
                    Json::from(u64::from(s.elastic.sync_latency)),
                ),
            ]),
            JobSpec::Synth(s) => Json::object([
                ("endpoint", Json::from("synth")),
                dfg_pair(&s.dfg),
                ("muls", Json::from(s.muls)),
                ("adds", Json::from(s.adds)),
                ("subs", Json::from(s.subs)),
                ("binding", binding(s.chains)),
                ("encoding", Json::from(encoding_name(s.encoding))),
            ]),
            JobSpec::Area(s) => Json::object([
                ("endpoint", Json::from("area")),
                dfg_pair(&s.dfg),
                ("muls", Json::from(s.muls)),
                ("adds", Json::from(s.adds)),
                ("subs", Json::from(s.subs)),
                ("binding", binding(s.chains)),
                ("encoding", Json::from(encoding_name(s.encoding))),
                ("width", Json::from(s.width as u64)),
            ]),
            JobSpec::Explore(s) => Json::object([
                ("endpoint", Json::from("explore")),
                dfg_pair(&s.dfg),
                ("max_muls", Json::from(s.max_muls)),
                ("max_adds", Json::from(s.max_adds)),
                ("max_subs", Json::from(s.max_subs)),
                (
                    "encodings",
                    Json::array(
                        s.encodings
                            .iter()
                            .map(|e| Json::from(encoding_name(*e)))
                            .collect::<Vec<_>>(),
                    ),
                ),
                ("p", Json::floats(&s.p_values)),
                ("sd_ld", Json::floats(&s.sd_ld)),
                (
                    "skew",
                    Json::array(s.skew.iter().map(|&v| Json::from(v)).collect::<Vec<_>>()),
                ),
                ("trials", Json::from(s.trials)),
                ("width", Json::from(s.width as u64)),
                ("seed", Json::from(s.seed)),
            ]),
        }
    }

    /// The content address of this job: the compact canonical rendering.
    /// Two specs with equal keys produce byte-identical responses, because
    /// every field feeding the simulation (seed included) is in the key
    /// and the batch engine is bit-deterministic.
    pub fn cache_key(&self) -> String {
        self.canonical().to_compact()
    }

    /// The content-derived job identifier: the FNV-1a 64-bit hash of
    /// [`JobSpec::cache_key`], as 16 lowercase hex digits. Resubmitting an
    /// identical spec therefore addresses the same job — submission is
    /// idempotent by construction — and the ID is stable across restarts,
    /// which is what lets a replayed journal reconnect status polls to
    /// recovered jobs.
    pub fn job_id(&self) -> String {
        let mut h = stages::Fnv64::new();
        h.write(self.cache_key().as_bytes());
        format!("{:016x}", h.finish())
    }

    /// Runs the job to its JSON response body on `runner`.
    ///
    /// A runner carrying a tripped [`tauhls_sim::CancelToken`] yields
    /// [`JobError::Cancelled`] — never a partial result — so a draining
    /// server cannot poison its cache.
    pub fn run(&self, runner: &BatchRunner) -> Result<Json, JobError> {
        self.run_with(runner, None).map(|(body, _)| body)
    }

    /// Like [`JobSpec::run`], threading an optional shared [`StageCache`]
    /// through the synthesis endpoints and returning the executed
    /// [`StageRecord`]s alongside the body (empty for the simulation
    /// endpoints).
    ///
    /// The response body is a pure function of the spec — per-stage wall
    /// times live only in the records, so a stage-cache hit is
    /// byte-identical to the cold run and response caching stays sound.
    ///
    /// # Errors
    ///
    /// As [`JobSpec::run`].
    pub fn run_with(
        &self,
        runner: &BatchRunner,
        stage_cache: Option<&StageCache>,
    ) -> Result<(Json, Vec<StageRecord>), JobError> {
        match self {
            JobSpec::Synth(s) => {
                let (logic, _, trace) = self.synthesize(
                    &s.dfg,
                    s.muls,
                    s.adds,
                    s.subs,
                    s.chains,
                    s.encoding,
                    stage_cache,
                )?;
                let body = Json::object([
                    ("spec", self.canonical()),
                    ("stages", stage_hashes(&trace)),
                    ("synth", synth_body(&logic)),
                ]);
                Ok((body, trace.records))
            }
            JobSpec::Area(s) => {
                let (logic, reports, trace) = self.synthesize(
                    &s.dfg,
                    s.muls,
                    s.adds,
                    s.subs,
                    s.chains,
                    s.encoding,
                    stage_cache,
                )?;
                let system = system_area_from_logic(&logic, &AreaModel::default(), s.width);
                let rows: Vec<Json> = reports
                    .rows()
                    .iter()
                    .map(|r| {
                        Json::object([
                            ("name", Json::from(r.name.as_str())),
                            ("inputs", Json::from(r.inputs)),
                            ("outputs", Json::from(r.outputs)),
                            ("states", Json::from(r.states)),
                            ("flip_flops", Json::from(r.flip_flops)),
                            ("area_combinational", Json::Float(r.area_combinational)),
                            ("area_sequential", Json::Float(r.area_sequential)),
                        ])
                    })
                    .collect();
                let body = Json::object([
                    ("spec", self.canonical()),
                    ("stages", stage_hashes(&trace)),
                    ("rows", Json::array(rows)),
                    ("system", system.to_json()),
                ]);
                Ok((body, trace.records))
            }
            JobSpec::Explore(s) => {
                let graph = build_dfg(&s.dfg).map_err(JobError::Invalid)?;
                let params = s.sweep_params();
                let (points, records) = design_space(&graph, &params, runner, stage_cache)
                    .map_err(|e| match e {
                        SweepError::Sim(err) => JobError::from_sim(err),
                        SweepError::Synthesis(err) => JobError::from_synthesis(err),
                    })?;
                Ok((self.explore_body(&graph, &points), records))
            }
            _ => self.run_simulation(runner).map(|body| (body, Vec::new())),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn synthesize(
        &self,
        dfg: &DfgSource,
        muls: usize,
        adds: usize,
        subs: usize,
        chains: bool,
        encoding: Encoding,
        stage_cache: Option<&StageCache>,
    ) -> Result<
        (
            std::sync::Arc<SynthesizedLogic>,
            std::sync::Arc<stages::Reports>,
            PipelineTrace,
        ),
        JobError,
    > {
        let graph = build_dfg(dfg).map_err(JobError::Invalid)?;
        let input = SynthesisInput {
            dfg: graph,
            allocation: Allocation::paper(muls, adds, subs),
            strategy: if chains {
                BindStrategy::Chains
            } else {
                BindStrategy::LeftEdge
            },
        };
        let mut trace = PipelineTrace::default();
        let (logic, reports) = stages::run_full(
            &input,
            false,
            encoding,
            &AreaModel::default(),
            stage_cache,
            &mut trace,
        )
        .map_err(JobError::from_synthesis)?;
        Ok((logic, reports, trace))
    }

    fn run_simulation(&self, runner: &BatchRunner) -> Result<Json, JobError> {
        match self {
            JobSpec::Simulate(s) => {
                let bound = bind_spec(&s.dfg, s.muls, s.adds, s.subs, s.chains)
                    .map_err(JobError::Invalid)?;
                let (tau, dist, cent, elas) =
                    latency_quad_batch(&bound, &s.p_values, s.trials, s.seed, s.elastic, runner)
                        .map_err(JobError::from_sim)?;
                Ok(self.simulate_body(&tau, &dist, &cent, &elas))
            }
            JobSpec::Table2(s) => {
                let t = table2(s.trials as usize, s.seed, runner).map_err(JobError::from_sim)?;
                Ok(Json::object([
                    ("spec", self.canonical()),
                    ("table2", t.to_json()),
                ]))
            }
            JobSpec::Resilience(s) => {
                let bound = bind_spec(&s.dfg, s.muls, s.adds, s.subs, s.chains)
                    .map_err(JobError::Invalid)?;
                let report =
                    resilience_sweep_with(&bound, s.p, s.trials, s.seed, &s.options(), runner);
                // `resilience_sweep` folds whatever chunks ran; surface a
                // cancellation instead of returning (and caching) a
                // partially-populated report.
                runner.check_cancelled().map_err(JobError::from_sim)?;
                Ok(self.resilience_body(&report))
            }
            // The synthesis and exploration endpoints are dispatched by
            // `run_with` before this helper is reached.
            JobSpec::Synth(_) | JobSpec::Area(_) | JobSpec::Explore(_) => {
                unreachable!("synthesis endpoints handled in run_with")
            }
        }
    }

    /// Renders the `/v1/simulate` response body from the four measured
    /// latency summaries. Shared by the local execution path and the
    /// distributed merge, so a body assembled from partition partials is
    /// byte-identical to a single-node run by construction.
    pub(crate) fn simulate_body(
        &self,
        tau: &LatencySummary,
        dist: &LatencySummary,
        cent: &LatencySummary,
        elas: &LatencySummary,
    ) -> Json {
        let clk = Timing::default().clock_ns();
        let cells = |summary: &LatencySummary| {
            Json::object([
                ("best_cycles", Json::from(summary.best_cycles)),
                ("average_cycles", Json::floats(&summary.average_cycles)),
                ("worst_cycles", Json::from(summary.worst_cycles)),
                (
                    "rendered_ns",
                    Json::from(summary.to_ns_string(clk).as_str()),
                ),
            ])
        };
        let enhancement = enhancement_percent(tau, dist);
        Json::object([
            ("spec", self.canonical()),
            ("clock_ns", Json::from(clk)),
            ("lt_tau", cells(tau)),
            ("lt_dist", cells(dist)),
            ("lt_cent", cells(cent)),
            ("lt_elas", cells(elas)),
            ("enhancement_percent", Json::floats(&enhancement)),
        ])
    }

    /// Renders the `/v1/resilience` response body from a finished report.
    /// Shared by local execution and the distributed merge.
    pub(crate) fn resilience_body(&self, report: &crate::resilience::ResilienceReport) -> Json {
        Json::object([("spec", self.canonical()), ("report", report.to_json())])
    }

    /// Renders the `/v1/dfg/explore` response body from the swept (and
    /// Pareto-marked) grid. Shared by local execution and the distributed
    /// merge.
    pub(crate) fn explore_body(&self, graph: &Dfg, points: &[SweepPoint]) -> Json {
        let point_json = |p: &SweepPoint| {
            Json::object([
                ("muls", Json::from(p.muls)),
                ("adds", Json::from(p.adds)),
                ("subs", Json::from(p.subs)),
                ("encoding", Json::from(encoding_name(p.encoding))),
                ("p", Json::Float(p.p)),
                ("sd_ld", Json::Float(p.sd_ld)),
                ("skew", Json::from(p.skew)),
                ("avg_cycles", Json::Float(p.avg_cycles)),
                ("latency_ns", Json::Float(p.latency_ns)),
                ("area_ge", Json::Float(p.area_ge)),
                ("pareto", Json::from(p.pareto)),
            ])
        };
        let frontier: Vec<Json> = points.iter().filter(|p| p.pareto).map(point_json).collect();
        let all: Vec<Json> = points.iter().map(point_json).collect();
        Json::object([
            ("spec", self.canonical()),
            (
                "graph",
                Json::object([
                    ("name", Json::from(graph.name())),
                    ("ops", Json::from(graph.num_ops())),
                    ("inputs", Json::from(graph.num_inputs())),
                ]),
            ),
            ("points", Json::array(all)),
            ("frontier", Json::array(frontier)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tauhls_sim::CancelToken;

    fn parse(endpoint: Endpoint, text: &str) -> Result<JobSpec, JobError> {
        JobSpec::from_json(endpoint, &Json::parse(text).expect("well-formed test spec"))
    }

    #[test]
    fn canonicalization_erases_field_order_defaults_and_number_spelling() {
        let a = parse(Endpoint::Simulate, r#"{"trials":50,"p":[1],"seed":2003}"#).unwrap();
        let b = parse(Endpoint::Simulate, r#"{"p":[1.0],"trials":50}"#).unwrap();
        assert_eq!(a.cache_key(), b.cache_key());
        // Defaults materialize into the key.
        assert!(a.cache_key().contains("\"dfg\":\"fir5\""));
        assert!(a.cache_key().contains("\"binding\":\"left-edge\""));
        // A differing seed is a different content address.
        let c = parse(Endpoint::Simulate, r#"{"p":[1.0],"trials":50,"seed":1}"#).unwrap();
        assert_ne!(a.cache_key(), c.cache_key());
    }

    #[test]
    fn empty_specs_materialize_paper_defaults() {
        let JobSpec::Simulate(s) = parse(Endpoint::Simulate, "{}").unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(s.dfg, DfgSource::Named("fir5".to_string()));
        assert_eq!((s.muls, s.adds, s.subs), (2, 1, 1));
        assert_eq!(s.p_values, vec![0.9, 0.7, 0.5]);
        assert_eq!((s.trials, s.seed), (2000, 2003));
        let JobSpec::Resilience(r) = parse(Endpoint::Resilience, "{}").unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(r.p, 0.5);
    }

    #[test]
    fn strict_parsing_rejects_malformed_specs() {
        let cases: &[(Endpoint, &str, &str)] = &[
            (Endpoint::Simulate, "[]", "must be a JSON object"),
            (Endpoint::Simulate, r#"{"wat":1}"#, "unknown field 'wat'"),
            (Endpoint::Table2, r#"{"p":[0.5]}"#, "unknown field 'p'"),
            (
                Endpoint::Simulate,
                r#"{"trials":1,"trials":2}"#,
                "duplicate field 'trials'",
            ),
            (Endpoint::Simulate, r#"{"trials":0}"#, "'trials' must be in"),
            (
                Endpoint::Simulate,
                r#"{"trials":1000001}"#,
                "'trials' must be in",
            ),
            (
                Endpoint::Simulate,
                r#"{"trials":-3}"#,
                "non-negative integer",
            ),
            (Endpoint::Simulate, r#"{"p":[]}"#, "'p' must hold"),
            (Endpoint::Simulate, r#"{"p":[1.5]}"#, "in [0, 1]"),
            (Endpoint::Simulate, r#"{"p":0.5}"#, "'p' must be an array"),
            (
                Endpoint::Resilience,
                r#"{"p":[0.5]}"#,
                "'p' must be a number",
            ),
            (Endpoint::Resilience, r#"{"p":-0.1}"#, "in [0, 1]"),
            (
                Endpoint::Simulate,
                r#"{"binding":"sideways"}"#,
                "'binding' must be",
            ),
            (Endpoint::Simulate, r#"{"dfg":"nope"}"#, "unknown benchmark"),
            (
                Endpoint::Simulate,
                r#"{"dfg":"fir5","dfg_text":"x"}"#,
                "not both",
            ),
            (Endpoint::Simulate, r#"{"dfg_text":"@#$"}"#, "dfg_text:"),
            (Endpoint::Simulate, r#"{"muls":65}"#, "'muls' must be in"),
            (
                Endpoint::Simulate,
                r#"{"dfg":"fir5","subs":0,"adds":0}"#,
                "allocation lacks a unit",
            ),
        ];
        for (endpoint, text, needle) in cases {
            let err = parse(*endpoint, text).expect_err(text).to_string();
            assert!(err.contains(needle), "{text}: got {err:?}, want {needle:?}");
            assert!(!err.contains('\n'), "{text}: multi-line error {err:?}");
        }
    }

    #[test]
    fn simulate_runs_and_embeds_its_canonical_spec() {
        let spec = parse(Endpoint::Simulate, r#"{"trials":40,"p":[0.5],"seed":7}"#).unwrap();
        let body = spec.run(&BatchRunner::serial()).unwrap();
        assert_eq!(body.get("spec").unwrap().to_compact(), spec.cache_key());
        assert!(body.get("lt_tau").unwrap().get("best_cycles").is_some());
        assert_eq!(
            body.get("enhancement_percent")
                .unwrap()
                .as_array()
                .map(<[Json]>::len),
            Some(1)
        );
        // Same spec, same runner → byte-identical body (the cache-hit
        // guarantee, before any cache is involved).
        let again = spec.run(&BatchRunner::new(4)).unwrap();
        assert_eq!(body.to_compact(), again.to_compact());
    }

    #[test]
    fn inline_dfg_and_table2_and_resilience_run() {
        let axpy =
            "dfg axpy\ninput a\ninput x\ninput y\nop m = mul a x\nop r = add m y\noutput r r\n";
        let text = format!(
            r#"{{"dfg_text":"{}","trials":25,"p":[0.5]}}"#,
            axpy.replace('\n', "\\n")
        );
        let spec = parse(Endpoint::Simulate, &text).unwrap();
        assert!(spec.run(&BatchRunner::serial()).is_ok());

        let t2 = parse(Endpoint::Table2, r#"{"trials":20,"seed":3}"#).unwrap();
        let body = t2.run(&BatchRunner::serial()).unwrap();
        assert!(body.get("table2").unwrap().get("rows").is_some());

        let res = parse(Endpoint::Resilience, r#"{"trials":12,"seed":3}"#).unwrap();
        let body = res.run(&BatchRunner::serial()).unwrap();
        assert!(body.get("report").unwrap().get("rows").is_some());
    }

    #[test]
    fn synth_runs_deterministically_and_embeds_its_hash_chain() {
        let spec = parse(Endpoint::Synth, r#"{"dfg":"fir3","muls":2,"adds":1}"#).unwrap();
        let (body, records) = spec.run_with(&BatchRunner::serial(), None).unwrap();
        assert_eq!(body.get("spec").unwrap().to_compact(), spec.cache_key());
        let chain = body.get("stages").unwrap().as_array().unwrap();
        assert_eq!(chain.len(), crate::stages::STAGE_NAMES.len());
        for (entry, name) in chain.iter().zip(crate::stages::STAGE_NAMES) {
            assert_eq!(entry.get("stage").unwrap().as_str(), Some(name));
            assert_eq!(entry.get("hash").unwrap().as_str().map(str::len), Some(16));
        }
        assert_eq!(records.len(), crate::stages::STAGE_NAMES.len());
        let synth = body.get("synth").unwrap();
        assert_eq!(
            synth.get("controllers").unwrap().as_array().map(<[_]>::len),
            Some(3),
            "fir3 @ (2,1,0) binds three units"
        );
        assert!(synth.get("cent_sync").unwrap().get("states").is_some());
        // Byte-identical rerun: the cache-hit guarantee for /v1/synth.
        let (again, _) = spec.run_with(&BatchRunner::serial(), None).unwrap();
        assert_eq!(body.to_compact(), again.to_compact());
    }

    #[test]
    fn area_reports_rows_and_system_breakdown() {
        let spec = parse(Endpoint::Area, r#"{"dfg":"diffeq","subs":1,"width":32}"#).unwrap();
        let body = spec.run(&BatchRunner::serial()).unwrap();
        let rows = body.get("rows").unwrap().as_array().unwrap();
        assert!(rows.iter().any(|r| r
            .get("name")
            .unwrap()
            .as_str()
            .is_some_and(|n| n.starts_with("D-FSM-"))));
        let system = body.get("system").unwrap();
        assert_eq!(system.get("width").unwrap().as_u64(), Some(32));
        assert!(system.get("total").unwrap().as_f64().unwrap() > 0.0);
        let frac = system.get("control_fraction").unwrap().as_f64().unwrap();
        assert!((0.0..1.0).contains(&frac));
    }

    #[test]
    fn synth_cache_is_shared_and_reused_across_encodings() {
        let cache = StageCache::new(64);
        let runner = BatchRunner::serial();
        let base = parse(Endpoint::Synth, r#"{"dfg":"fir5"}"#).unwrap();
        let (cold_body, cold) = base.run_with(&runner, Some(&cache)).unwrap();
        assert!(cold.iter().all(|r| !r.cache_hit));
        // Same graph + allocation, different encoding: the front of the
        // pipeline is served from cache, only logic + report recompute.
        let gray = parse(Endpoint::Synth, r#"{"dfg":"fir5","encoding":"gray"}"#).unwrap();
        let (gray_body, warm) = gray.run_with(&runner, Some(&cache)).unwrap();
        let hits: Vec<&str> = warm
            .iter()
            .filter(|r| r.cache_hit)
            .map(|r| r.stage)
            .collect();
        assert_eq!(hits, ["canonicalize", "order", "bind", "controllers"]);
        assert_ne!(cold_body.to_compact(), gray_body.to_compact());
        // A cache-served replay is byte-identical to the cold run.
        let (replay, records) = base.run_with(&runner, Some(&cache)).unwrap();
        assert!(records.iter().all(|r| r.cache_hit));
        assert_eq!(cold_body.to_compact(), replay.to_compact());
    }

    #[test]
    fn synthesis_specs_reject_uncoverable_and_empty_graphs_at_parse_time() {
        let cases: &[(Endpoint, &str, &str)] = &[
            (
                Endpoint::Synth,
                r#"{"dfg":"fir5","muls":0}"#,
                "allocation lacks a unit",
            ),
            (
                Endpoint::Area,
                r#"{"dfg":"diffeq","subs":0}"#,
                "allocation lacks a unit",
            ),
            (
                Endpoint::Synth,
                r#"{"encoding":"sideways"}"#,
                "'encoding' must be",
            ),
            (Endpoint::Synth, r#"{"trials":5}"#, "unknown field 'trials'"),
            (Endpoint::Area, r#"{"width":0}"#, "'width' must be in"),
            (Endpoint::Area, r#"{"width":129}"#, "'width' must be in"),
            (
                Endpoint::Synth,
                r#"{"dfg_text":"dfg empty\ninput a\n"}"#,
                "has no operations",
            ),
        ];
        for (endpoint, text, needle) in cases {
            let err = parse(*endpoint, text).expect_err(text).to_string();
            assert!(err.contains(needle), "{text}: got {err:?}, want {needle:?}");
            assert!(!err.contains('\n'), "{text}: multi-line error {err:?}");
        }
    }

    #[test]
    fn synth_canonicalization_materializes_encoding_and_width() {
        let a = parse(Endpoint::Synth, "{}").unwrap();
        assert!(a.cache_key().contains("\"encoding\":\"binary\""));
        let b = parse(Endpoint::Area, "{}").unwrap();
        assert!(b.cache_key().contains("\"width\":16"));
        assert_eq!(a.trials() + b.trials(), 0);
        assert_eq!(a.endpoint(), Endpoint::Synth);
        assert_eq!(Endpoint::parse("area"), Some(Endpoint::Area));
    }

    #[test]
    fn canonical_rendering_round_trips_through_from_canonical() {
        let texts: &[(Endpoint, &str)] = &[
            (Endpoint::Simulate, r#"{"trials":50,"p":[1],"seed":9}"#),
            (Endpoint::Table2, r#"{"trials":20}"#),
            (Endpoint::Resilience, r#"{"p":0.25,"trials":8}"#),
            (Endpoint::Synth, r#"{"dfg":"fir3","encoding":"gray"}"#),
            (Endpoint::Area, r#"{"width":32}"#),
            (
                Endpoint::Explore,
                r#"{"dfg":"fir3","max_muls":2,"sd_ld":[0.75,1],"encodings":["gray"]}"#,
            ),
        ];
        for (endpoint, text) in texts {
            let spec = parse(*endpoint, text).unwrap();
            let back = JobSpec::from_canonical(&spec.canonical()).unwrap();
            assert_eq!(back, spec, "{text}");
            assert_eq!(back.cache_key(), spec.cache_key(), "{text}");
            assert_eq!(back.job_id(), spec.job_id(), "{text}");
        }
        // The ID is a pure function of the content address.
        let a = parse(Endpoint::Simulate, r#"{"trials":50,"p":[1.0]}"#).unwrap();
        let b = parse(Endpoint::Simulate, r#"{"p":[1],"trials":50}"#).unwrap();
        assert_eq!(a.job_id(), b.job_id());
        assert_eq!(a.job_id().len(), 16);
        let c = parse(Endpoint::Simulate, r#"{"trials":51,"p":[1]}"#).unwrap();
        assert_ne!(a.job_id(), c.job_id());
        // Hostile canonical documents fail cleanly.
        for bad in [
            "[]",
            "{}",
            r#"{"endpoint":"nope"}"#,
            r#"{"endpoint":"simulate","wat":1}"#,
        ] {
            assert!(JobSpec::from_canonical(&Json::parse(bad).unwrap()).is_err());
        }
    }

    #[test]
    fn borrowed_and_owned_parses_agree() {
        let text = r#"{"dfg":"ewf","trials":40,"p":[0.9,0.5],"seed":7}"#;
        let owned = parse(Endpoint::Simulate, text).unwrap();
        let doc = JsonRef::parse(text).unwrap();
        let borrowed = JobSpec::from_json_ref(Endpoint::Simulate, &doc).unwrap();
        assert_eq!(borrowed, owned);
        // Errors surface identically through both entries.
        let bad = JsonRef::parse(r#"{"wat":1}"#).unwrap();
        let err = JobSpec::from_json_ref(Endpoint::Simulate, &bad).unwrap_err();
        assert!(err.to_string().contains("unknown field 'wat'"));
    }

    #[test]
    fn cancelled_runner_yields_cancelled_not_partial_results() {
        let token = CancelToken::new();
        token.cancel();
        let runner = BatchRunner::serial().with_cancel(token);
        for (endpoint, text) in [
            (Endpoint::Simulate, r#"{"trials":40}"#),
            (Endpoint::Table2, r#"{"trials":20}"#),
            (Endpoint::Resilience, r#"{"trials":12}"#),
        ] {
            let spec = parse(endpoint, text).unwrap();
            assert_eq!(spec.run(&runner), Err(JobError::Cancelled), "{text}");
        }
        let explore = parse(Endpoint::Explore, r#"{"trials":10,"max_muls":2}"#).unwrap();
        assert_eq!(explore.run(&runner), Err(JobError::Cancelled));
    }

    /// AXPY as a wire-format graph object, compact.
    const AXPY_WIRE: &str = r#"{"nodes":[{"id":"a","op":"input"},{"id":"x","op":"input"},{"id":"y","op":"input"},{"id":"m","op":"mul"},{"id":"r","op":"add"}],"edges":[{"from":"a","to":"m"},{"from":"x","to":"m"},{"from":"m","to":"r"},{"from":"y","to":"r"}],"outputs":{"r":"r"},"params":{"name":"axpy"}}"#;

    #[test]
    fn inline_wire_dfg_parses_runs_and_canonicalizes() {
        let text = format!(r#"{{"dfg":{AXPY_WIRE},"trials":25,"p":[0.5]}}"#);
        let spec = parse(Endpoint::Simulate, &text).unwrap();
        let JobSpec::Simulate(s) = &spec else {
            panic!("wrong variant");
        };
        assert!(matches!(&s.dfg, DfgSource::InlineWire(_)));
        let body = spec.run(&BatchRunner::serial()).unwrap();
        assert_eq!(body.get("spec").unwrap().to_compact(), spec.cache_key());
        // The canonical spec embeds the graph as a JSON object, and the
        // journal re-entry path re-validates it to the same spec.
        assert!(spec.cache_key().contains("\"dfg\":{\"nodes\""));
        let back = JobSpec::from_canonical(&spec.canonical()).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.job_id(), spec.job_id());
        // A different JSON spelling of the same graph — node-object keys
        // reordered — normalizes to the same content address and job id.
        let respelled =
            AXPY_WIRE.replace(r#"{"id":"a","op":"input"}"#, r#"{"op":"input","id":"a"}"#);
        assert_ne!(respelled, AXPY_WIRE);
        let other = parse(
            Endpoint::Simulate,
            &format!(r#"{{"dfg":{respelled},"trials":25,"p":[0.5]}}"#),
        )
        .unwrap();
        assert_eq!(other.cache_key(), spec.cache_key());
        assert_eq!(other.job_id(), spec.job_id());
        // The synthesis endpoints accept the same source.
        let synth = parse(Endpoint::Synth, &format!(r#"{{"dfg":{AXPY_WIRE}}}"#)).unwrap();
        assert!(synth.run_with(&BatchRunner::serial(), None).is_ok());
    }

    #[test]
    fn inline_wire_dfg_rejections() {
        let cases: &[(&str, &str)] = &[
            // Semantic wire errors surface with their byte offset.
            (r#"{"dfg":{"nodes":[]}}"#, "dfg: byte "),
            (
                r#"{"dfg":{"nodes":[{"id":"s","op":"add"}],"edges":[{"from":"s","to":"s"}],"outputs":{"o":"s"}}}"#,
                "dfg: byte ",
            ),
            // Wrong value type for 'dfg'.
            (
                r#"{"dfg":42}"#,
                "'dfg' must be a benchmark name string or an inline graph object",
            ),
            // Mutually exclusive with dfg_text, object or not.
            (
                &format!(r#"{{"dfg":{AXPY_WIRE},"dfg_text":"x"}}"#),
                "not both",
            ),
        ];
        for (text, needle) in cases {
            let err = parse(Endpoint::Simulate, text).expect_err(text).to_string();
            assert!(err.contains(needle), "{text}: got {err:?}, want {needle:?}");
        }
        // An inline graph still hits the allocation-coverage check.
        let err = parse(
            Endpoint::Synth,
            &format!(r#"{{"dfg":{AXPY_WIRE},"muls":0}}"#),
        )
        .expect_err("uncoverable")
        .to_string();
        assert!(err.contains("allocation lacks a unit"), "{err}");
    }

    #[test]
    fn explore_defaults_canonicalize_and_reject_bad_grids() {
        let JobSpec::Explore(s) = parse(Endpoint::Explore, "{}").unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!((s.max_muls, s.max_adds, s.max_subs), (4, 2, 2));
        assert_eq!(s.encodings, vec![Encoding::Binary]);
        assert_eq!(s.p_values, vec![0.9, 0.7, 0.5]);
        assert_eq!(s.sd_ld, vec![0.75]);
        assert_eq!((s.trials, s.width, s.seed), (400, 16, 2003));
        let key = JobSpec::Explore(s).cache_key();
        assert!(key.contains("\"endpoint\":\"explore\""));
        assert!(key.contains("\"sd_ld\":[0.75]"));
        assert!(key.contains("\"encodings\":[\"binary\"]"));

        let cases: &[(&str, &str)] = &[
            (r#"{"sd_ld":[0.4]}"#, "must be in [0.5, 1]"),
            (r#"{"sd_ld":[]}"#, "'sd_ld' must hold"),
            (r#"{"sd_ld":0.75}"#, "'sd_ld' must be an array"),
            (r#"{"encodings":["binary","binary"]}"#, "duplicate encoding"),
            (r#"{"encodings":[]}"#, "'encodings' must hold"),
            (
                r#"{"encodings":["sideways"]}"#,
                "'encodings' entries must be",
            ),
            (r#"{"max_muls":9}"#, "'max_muls' must be in"),
            (r#"{"dfg":"fir5","max_muls":0}"#, "allocation lacks a unit"),
            (
                r#"{"max_muls":8,"max_adds":8,"max_subs":8,"encodings":["binary","gray","onehot"],"sd_ld":[0.5,0.6,0.7,0.8]}"#,
                "exceeds 4096",
            ),
        ];
        for (text, needle) in cases {
            let err = parse(Endpoint::Explore, text).expect_err(text).to_string();
            assert!(err.contains(needle), "{text}: got {err:?}, want {needle:?}");
        }
    }

    #[test]
    fn explore_runs_thread_invariantly_with_a_consistent_frontier() {
        let text =
            r#"{"dfg":"fir3","max_muls":2,"max_adds":1,"trials":30,"p":[0.5],"sd_ld":[0.75,1.0]}"#;
        let spec = parse(Endpoint::Explore, text).unwrap();
        let (body, _) = spec.run_with(&BatchRunner::serial(), None).unwrap();
        assert_eq!(body.get("spec").unwrap().to_compact(), spec.cache_key());
        let points = body.get("points").unwrap().as_array().unwrap();
        // 2 allocations × 1 P × 1 encoding × 2 ratios.
        assert_eq!(points.len(), 4);
        let frontier = body.get("frontier").unwrap().as_array().unwrap();
        assert!(!frontier.is_empty());
        assert!(frontier
            .iter()
            .all(|p| p.get("pareto").unwrap() == &Json::Bool(true)));
        // Bit-identical at any thread count — the durable-job replay and
        // crash-recovery guarantee for explore bodies.
        let (threaded, _) = spec.run_with(&BatchRunner::new(4), None).unwrap();
        assert_eq!(body.to_compact(), threaded.to_compact());
        // The stage cache accelerates the synthesis legs without changing
        // a byte.
        let cache = StageCache::new(64);
        let (cold, _) = spec.run_with(&BatchRunner::serial(), Some(&cache)).unwrap();
        let (warm, records) = spec.run_with(&BatchRunner::serial(), Some(&cache)).unwrap();
        assert_eq!(cold.to_compact(), warm.to_compact());
        assert_eq!(body.to_compact(), warm.to_compact());
        assert!(records.iter().all(|r| r.cache_hit));
    }
}
