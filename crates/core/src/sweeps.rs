//! Parameter sweeps beyond the paper's fixed `P ∈ {0.9, 0.7, 0.5}` grid:
//! full latency-vs-`P` curves and enhancement-vs-TAU-count series, used by
//! the `fig_sweeps` binary and the design-space example.
//!
//! All sweeps run on the deterministic batch engine: pass
//! [`BatchRunner::serial()`] for the single-threaded oracle or
//! [`BatchRunner::new(n)`](BatchRunner::new) to fan trials over `n`
//! workers — the output is bit-identical either way.

use tauhls_dfg::Dfg;
use tauhls_sched::{Allocation, BoundDfg};
use tauhls_sim::{derive_seed, latency_pair_batch, BatchRunner};

/// One point of a latency-vs-`P` curve.
#[derive(Clone, Debug)]
pub struct CurvePoint {
    /// The short-completion probability.
    pub p: f64,
    /// Mean synchronized latency (cycles).
    pub sync_cycles: f64,
    /// Mean distributed latency (cycles).
    pub dist_cycles: f64,
    /// Enhancement percentage.
    pub enhancement: f64,
}

/// Sweeps `P` over `[0, 1]` in `steps` increments for one bound design.
///
/// # Panics
///
/// Panics if `steps < 2` or `trials == 0`.
pub fn latency_curve(
    bound: &BoundDfg,
    steps: usize,
    trials: usize,
    seed: u64,
    runner: &BatchRunner,
) -> Vec<CurvePoint> {
    assert!(steps >= 2 && trials > 0);
    let ps: Vec<f64> = (0..steps).map(|i| i as f64 / (steps - 1) as f64).collect();
    let (sync, dist) =
        latency_pair_batch(bound, &ps, trials as u64, seed, runner).expect("fault-free simulation");
    ps.iter()
        .enumerate()
        .map(|(i, &p)| {
            let s = sync.average_cycles[i];
            let d = dist.average_cycles[i];
            CurvePoint {
                p,
                sync_cycles: s,
                dist_cycles: d,
                enhancement: (s - d) / s * 100.0,
            }
        })
        .collect()
}

/// One point of an enhancement-vs-allocation series.
#[derive(Clone, Debug)]
pub struct AllocationPoint {
    /// Number of TAU multipliers allocated.
    pub muls: usize,
    /// Mean enhancement (%) at the probed `P`.
    pub enhancement: f64,
    /// Mean distributed latency (cycles).
    pub dist_cycles: f64,
    /// Schedule arcs the binder had to insert.
    pub schedule_arcs: usize,
}

/// Sweeps the TAU-multiplier count for a graph, measuring the distributed
/// gain at a fixed `P` — quantifying the paper's "this problem becomes
/// serious \[as\] more and more TAUs are used" motivation.
///
/// # Panics
///
/// Panics if `mul_range` is empty or `trials == 0`.
#[allow(clippy::too_many_arguments)]
pub fn allocation_series(
    dfg: &Dfg,
    adds: usize,
    subs: usize,
    mul_range: std::ops::RangeInclusive<usize>,
    p: f64,
    trials: usize,
    seed: u64,
    runner: &BatchRunner,
) -> Vec<AllocationPoint> {
    assert!(trials > 0);
    let mut out = Vec::new();
    for muls in mul_range {
        let alloc = Allocation::paper(muls, adds, subs);
        if !alloc.covers(dfg) {
            continue;
        }
        let bound = BoundDfg::bind(dfg, &alloc);
        // Each allocation point gets its own seed-space partition, so the
        // series is independent of which points the coverage filter skips.
        let point_seed = derive_seed(seed, muls as u64, 0);
        let (sync, dist) = latency_pair_batch(&bound, &[p], trials as u64, point_seed, runner)
            .expect("fault-free simulation");
        out.push(AllocationPoint {
            muls,
            enhancement: (sync.average_cycles[0] - dist.average_cycles[0]) / sync.average_cycles[0]
                * 100.0,
            dist_cycles: dist.average_cycles[0],
            schedule_arcs: bound.schedule_arcs().len(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tauhls_dfg::benchmarks::{ar_lattice4, fir5};

    #[test]
    fn curve_is_monotone_and_anchored() {
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let curve = latency_curve(&bound, 5, 500, 1, &BatchRunner::serial());
        assert_eq!(curve.len(), 5);
        // P = 1: both styles at best case, zero enhancement.
        let last = curve.last().unwrap();
        assert!((last.p - 1.0).abs() < 1e-12);
        assert!(last.enhancement.abs() < 1e-9);
        assert_eq!(last.sync_cycles, last.dist_cycles);
        // P = 0: both styles at worst case (deterministic).
        let first = &curve[0];
        assert!(first.sync_cycles >= first.dist_cycles);
        // Latency decreases with P for both styles.
        for w in curve.windows(2) {
            assert!(w[0].sync_cycles >= w[1].sync_cycles - 1e-9);
            assert!(w[0].dist_cycles >= w[1].dist_cycles - 1e-9);
        }
    }

    #[test]
    fn allocation_series_reports_arcs_and_gain() {
        let g = ar_lattice4();
        let pts = allocation_series(&g, 2, 0, 1..=4, 0.7, 300, 2, &BatchRunner::new(2));
        assert_eq!(pts.len(), 4);
        // One TAU: synchronized == distributed (the paper's base case).
        assert!(pts[0].enhancement.abs() < 0.8, "{}", pts[0].enhancement);
        // Fewer units need more serialization arcs.
        assert!(pts[0].schedule_arcs > pts[3].schedule_arcs);
        // More units shorten the schedule.
        assert!(pts[3].dist_cycles < pts[0].dist_cycles);
    }
}
