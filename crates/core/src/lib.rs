//! # tauhls-core — distributed synchronous control units for telescopic datapaths
//!
//! End-to-end reproduction of *"Distributed Synchronous Control Units for
//! Dataflow Graphs under Allocation of Telescopic Arithmetic Units"*
//! (DATE 2003). This crate ties the workspace substrates into the pipeline
//! a downstream user drives:
//!
//! 1. describe a dataflow graph (`tauhls-dfg`) and a resource allocation
//!    with telescopic classes (`tauhls-sched`);
//! 2. [`Synthesis`] schedules, binds (inserting schedule arcs), and
//!    generates the distributed per-unit controllers plus the centralized
//!    baselines (`tauhls-fsm`);
//! 3. the resulting [`Design`] reports gate-level area (`tauhls-logic`)
//!    and simulated latency (`tauhls-sim`, optionally operand-driven via
//!    `tauhls-datapath`).
//!
//! The [`experiments`] module regenerates the paper's Table 1, Table 2 and
//! the Fig 4 state-explosion sweep; [`figures`] regenerates the worked
//! examples of Figs 1-3, 6 and 7.
//!
//! # Examples
//!
//! ```
//! use tauhls_core::{Synthesis, Timing};
//! use tauhls_dfg::benchmarks::diffeq;
//! use tauhls_sched::Allocation;
//! use tauhls_sim::ControlStyle;
//! use rand::SeedableRng;
//!
//! let design = Synthesis::new(diffeq())
//!     .allocation(Allocation::paper(2, 1, 1))
//!     .timing(Timing::default())
//!     .run()?;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let dist = design.latency(ControlStyle::Distributed, &[0.9, 0.5], 100, &mut rng);
//! let sync = design.latency(ControlStyle::CentSync, &[0.9, 0.5], 100, &mut rng);
//! assert!(dist.average_cycles[1] <= sync.average_cycles[1]);
//! # Ok::<(), tauhls_core::SynthesisError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conformance;
pub mod experiments;
pub mod explore;
pub mod figures;
pub mod jobspec;
mod json;
pub mod partition;
mod pipeline;
pub mod report;
pub mod resilience;
pub mod stages;
pub mod sweeps;
pub mod utilization;

pub use pipeline::{Design, Synthesis, SynthesisError, Timing};
pub use stages::{BindStrategy, PipelineTrace, StageCache, StageRecord};
