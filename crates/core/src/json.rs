//! JSON renderings of the experiment artifacts.
//!
//! Every report type renders through [`tauhls_json`], whose emitter keeps
//! insertion order and shortest-roundtrip float formatting, so the
//! `results/*.json` golden files are byte-stable across platforms and
//! thread counts.

use crate::experiments::{AreaRow, ExplosionPoint, LatencyRow, SummaryCells, Table1, Table2};
use crate::report::SystemArea;
use crate::resilience::{KindStats, ResilienceReport};
use crate::sweeps::{AllocationPoint, CurvePoint};
use crate::utilization::{UtilizationRow, UtilizationTable};
use tauhls_json::{Json, ToJson};

impl ToJson for SystemArea {
    fn to_json(&self) -> Json {
        Json::object([
            ("width", Json::from(u64::from(self.width))),
            ("control_com", Json::Float(self.control_com)),
            ("control_seq", Json::Float(self.control_seq)),
            ("units", Json::Float(self.units)),
            (
                "completion_generators",
                Json::Float(self.completion_generators),
            ),
            ("register_count", Json::from(self.register_count)),
            ("registers", Json::Float(self.registers)),
            ("total", Json::Float(self.total())),
            ("control_fraction", Json::Float(self.control_fraction())),
        ])
    }
}

impl ToJson for AreaRow {
    fn to_json(&self) -> Json {
        Json::object([
            ("name", Json::from(self.name.as_str())),
            ("inputs", Json::from(self.inputs)),
            ("outputs", Json::from(self.outputs)),
            ("states", Json::from(self.states)),
            ("ffs", Json::from(self.ffs)),
            ("area_com", Json::from(self.area_com)),
            ("area_seq", Json::from(self.area_seq)),
        ])
    }
}

impl ToJson for Table1 {
    fn to_json(&self) -> Json {
        Json::object([
            ("encoding", Json::from(self.encoding.as_str())),
            ("rows", self.rows.to_json()),
        ])
    }
}

impl ToJson for SummaryCells {
    fn to_json(&self) -> Json {
        Json::object([
            ("best_ns", Json::from(self.best_ns)),
            ("avg_ns", Json::floats(&self.avg_ns)),
            ("worst_ns", Json::from(self.worst_ns)),
            ("rendered", Json::from(self.rendered.as_str())),
        ])
    }
}

impl ToJson for LatencyRow {
    fn to_json(&self) -> Json {
        Json::object([
            ("name", Json::from(self.name.as_str())),
            ("resources", Json::from(self.resources.as_str())),
            ("lt_tau", self.lt_tau.to_json()),
            ("lt_dist", self.lt_dist.to_json()),
            ("lt_cent", self.lt_cent.to_json()),
            ("lt_elas", self.lt_elas.to_json()),
            ("enhancement", Json::floats(&self.enhancement)),
        ])
    }
}

impl ToJson for Table2 {
    fn to_json(&self) -> Json {
        Json::object([
            ("clock_ns", Json::from(self.clock_ns)),
            ("p_values", Json::floats(&self.p_values)),
            ("trials", Json::from(self.trials)),
            ("rows", self.rows.to_json()),
        ])
    }
}

impl ToJson for ExplosionPoint {
    fn to_json(&self) -> Json {
        Json::object([
            ("n", Json::from(self.n)),
            ("cent_states", Json::from(self.cent_states)),
            ("cent_branching", Json::from(self.cent_branching)),
            ("dist_states", Json::from(self.dist_states)),
            ("sync_states", Json::from(self.sync_states)),
        ])
    }
}

impl ToJson for CurvePoint {
    fn to_json(&self) -> Json {
        Json::object([
            ("p", Json::from(self.p)),
            ("sync_cycles", Json::from(self.sync_cycles)),
            ("dist_cycles", Json::from(self.dist_cycles)),
            ("enhancement", Json::from(self.enhancement)),
        ])
    }
}

impl ToJson for AllocationPoint {
    fn to_json(&self) -> Json {
        Json::object([
            ("muls", Json::from(self.muls)),
            ("enhancement", Json::from(self.enhancement)),
            ("dist_cycles", Json::from(self.dist_cycles)),
            ("schedule_arcs", Json::from(self.schedule_arcs)),
        ])
    }
}

impl ToJson for UtilizationRow {
    fn to_json(&self) -> Json {
        Json::object([
            ("name", Json::from(self.name.as_str())),
            ("dist_cycles", Json::from(self.dist_cycles)),
            ("sync_cycles", Json::from(self.sync_cycles)),
            ("dist_utilization", Json::from(self.dist_utilization)),
            ("sync_utilization", Json::from(self.sync_utilization)),
        ])
    }
}

impl ToJson for UtilizationTable {
    fn to_json(&self) -> Json {
        Json::object([
            ("p", Json::from(self.p)),
            ("trials", Json::from(self.trials)),
            ("rows", self.rows.to_json()),
        ])
    }
}

impl ToJson for KindStats {
    fn to_json(&self) -> Json {
        Json::object([
            ("kind", Json::from(self.kind.as_str())),
            ("trials", Json::from(self.trials)),
            ("detected_deadlock", Json::from(self.detected_deadlock)),
            ("detected_desync", Json::from(self.detected_desync)),
            ("survived", Json::from(self.survived)),
            ("detection_rate", Json::from(self.detection_rate())),
            ("survival_fraction", Json::from(self.survival_fraction())),
            (
                "mean_detection_latency",
                Json::from(self.mean_detection_latency),
            ),
            ("cent_agreement", Json::from(self.cent_agreement)),
            (
                "cent_agreement_rate",
                Json::from(self.cent_agreement_rate()),
            ),
            ("elastic_deadlock", Json::from(self.elastic_deadlock)),
            ("elastic_desync", Json::from(self.elastic_desync)),
            ("elastic_survived", Json::from(self.elastic_survived)),
            (
                "elastic_detection_rate",
                Json::from(self.elastic_detection_rate()),
            ),
            (
                "elastic_survival_fraction",
                Json::from(self.elastic_survival_fraction()),
            ),
            (
                "elastic_mean_detection_latency",
                Json::from(self.elastic_mean_detection_latency),
            ),
        ])
    }
}

impl ToJson for ResilienceReport {
    fn to_json(&self) -> Json {
        Json::object([
            ("name", Json::from(self.name.as_str())),
            ("p", Json::from(self.p)),
            ("trials", Json::from(self.trials)),
            ("seed", Json::from(self.seed)),
            ("rows", self.rows.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tauhls_fsm::Encoding;
    use tauhls_logic::AreaModel;
    use tauhls_sim::BatchRunner;

    #[test]
    fn table1_json_has_all_rows() {
        let t = crate::experiments::table1(Encoding::Binary, &AreaModel::default());
        let s = t.to_json().to_pretty();
        for r in &t.rows {
            assert!(s.contains(&format!("\"name\": \"{}\"", r.name)));
        }
        assert!(s.ends_with('\n'));
    }

    #[test]
    fn table2_json_is_deterministic_across_thread_counts() {
        let a = crate::experiments::table2(120, 9, &BatchRunner::serial()).expect("fault-free");
        let b = crate::experiments::table2(120, 9, &BatchRunner::new(4)).expect("fault-free");
        assert_eq!(a.to_json().to_pretty(), b.to_json().to_pretty());
        assert!(a.to_json().to_compact().contains("\"clock_ns\":15.0"));
    }
}
